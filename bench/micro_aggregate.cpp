// Micro-benchmarks of the aggregation operations (the paper's
// "comprehensive overhead study of the aggregation operations implemented
// in Caliper"), plus ablations of DESIGN.md's key decisions:
//   - per-snapshot aggregation cost vs key width, operator set, and the
//     number of unique keys in the database
//   - key hashing: interned-string pointers (ours) vs re-hashing raw
//     string content on every snapshot
//   - merge / serialize / flush costs (the cross-process reduction path)
//   - CalQL parse cost
#include "aggregate/aggregation_db.hpp"
#include "common/hash.hpp"
#include "common/recordbatch.hpp"
#include "query/calql.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

using namespace calib;

namespace {

/// Registry + snapshots with `width` string key attributes plus a metric.
struct Fixture {
    AttributeRegistry registry;
    std::vector<SnapshotRecord> snapshots;
    Attribute metric;

    Fixture(int width, int unique_keys, int n_snapshots = 4096) {
        metric = registry.create("time", Variant::Type::Double,
                                 prop::as_value | prop::aggregatable);
        std::vector<Attribute> attrs;
        for (int w = 0; w < width; ++w)
            attrs.push_back(registry.create("key" + std::to_string(w),
                                            Variant::Type::String));
        // pre-intern the value universe
        std::vector<Variant> values;
        for (int u = 0; u < unique_keys; ++u)
            values.push_back(Variant("value-" + std::to_string(u)));

        snapshots.resize(n_snapshots);
        for (int i = 0; i < n_snapshots; ++i) {
            // first attribute carries the distinguishing value
            snapshots[i].append(attrs[0].id(), values[i % unique_keys]);
            for (int w = 1; w < width; ++w)
                snapshots[i].append(attrs[w].id(), values[0]);
            snapshots[i].append(metric.id(), Variant(1.0 + i * 0.25));
        }
    }

    std::string key_list(int width) const {
        std::string out;
        for (int w = 0; w < width; ++w) {
            if (w)
                out += ',';
            out += "key" + std::to_string(w);
        }
        return out;
    }
};

} // namespace

// -- per-snapshot cost vs key width -------------------------------------------

static void BM_Process_KeyWidth(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    Fixture fx(width, 64);
    AggregationDB db(AggregationConfig::parse("count,sum(time)", fx.key_list(width)),
                     &fx.registry);
    db.reserve(256);
    std::size_t i = 0;
    for (auto _ : state) {
        db.process(fx.snapshots[i++ & 4095]);
        benchmark::DoNotOptimize(db.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Process_KeyWidth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// -- per-snapshot cost vs operator set ------------------------------------------

static void BM_Process_Operators(benchmark::State& state) {
    static const char* op_sets[] = {
        "count",
        "count,sum(time)",
        "count,sum(time),min(time),max(time)",
        "count,sum(time),min(time),max(time),avg(time),variance(time)",
        "histogram(time)",
    };
    Fixture fx(2, 64);
    AggregationDB db(
        AggregationConfig::parse(op_sets[state.range(0)], fx.key_list(2)),
        &fx.registry);
    db.reserve(256);
    std::size_t i = 0;
    for (auto _ : state)
        db.process(fx.snapshots[i++ & 4095]);
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(op_sets[state.range(0)]);
}
BENCHMARK(BM_Process_Operators)->DenseRange(0, 4);

// -- per-snapshot cost vs number of unique keys (table pressure) ---------------

static void BM_Process_UniqueKeys(benchmark::State& state) {
    const int unique = static_cast<int>(state.range(0));
    Fixture fx(2, unique, std::max(4096, unique));
    AggregationDB db(AggregationConfig::parse("count,sum(time)", fx.key_list(2)),
                     &fx.registry);
    db.reserve(unique);
    std::size_t i = 0;
    const std::size_t mask = fx.snapshots.size() - 1;
    for (auto _ : state)
        db.process(fx.snapshots[i++ & mask]);
    state.SetItemsProcessed(state.iterations());
    state.counters["entries"] = static_cast<double>(db.size());
}
BENCHMARK(BM_Process_UniqueKeys)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// -- batched probe: process_batch vs a record-at-a-time loop -------------------
//
// Arg 0 = record loop, otherwise the batch size. Same rows, same groups;
// items processed counts rows, so time-per-item compares directly.

static void BM_BatchedProbe(benchmark::State& state) {
    const std::size_t batch_rows =
        state.range(0) == 0 ? 1024 : static_cast<std::size_t>(state.range(0));
    const bool batched = state.range(0) != 0;
    Fixture fx(2, 64, 4096);
    AggregationDB db(AggregationConfig::parse("count,sum(time)", fx.key_list(2)),
                     &fx.registry);
    db.reserve(256);

    RecordBatch rb;
    std::vector<std::uint32_t> sel;
    for (std::size_t r = 0; r < batch_rows; ++r) {
        rb.begin_row();
        for (const Entry& e : fx.snapshots[r & 4095])
            rb.append(e.attribute, e.value);
        rb.end_row();
        sel.push_back(static_cast<std::uint32_t>(r));
    }

    for (auto _ : state) {
        if (batched) {
            db.process_batch(rb, sel);
        } else {
            for (std::size_t r = 0; r < batch_rows; ++r)
                db.process(fx.snapshots[r & 4095]);
        }
        benchmark::DoNotOptimize(db.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch_rows));
    state.SetLabel(batched ? "process_batch" : "record loop");
}
BENCHMARK(BM_BatchedProbe)->Arg(0)->Arg(64)->Arg(256)->Arg(1024);

// -- implicit (group-by-everything) vs explicit keys -----------------------------

static void BM_Process_ImplicitKey(benchmark::State& state) {
    Fixture fx(4, 64);
    AggregationDB db(AggregationConfig::parse("count,sum(time)", "*"), &fx.registry);
    db.reserve(256);
    std::size_t i = 0;
    for (auto _ : state)
        db.process(fx.snapshots[i++ & 4095]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Process_ImplicitKey);

// -- ablation: interned-pointer hashing vs raw string re-hashing ----------------

static void BM_KeyHash_Interned(benchmark::State& state) {
    std::vector<Variant> values;
    for (int i = 0; i < 64; ++i)
        values.push_back(Variant("kernel-name-" + std::to_string(i)));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(values[i++ & 63].hash()); // pool-cached hash
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyHash_Interned);

static void BM_KeyHash_RawString(benchmark::State& state) {
    std::vector<std::string> values;
    for (int i = 0; i < 64; ++i)
        values.push_back("kernel-name-" + std::to_string(i));
    std::size_t i = 0;
    for (auto _ : state) {
        const std::string& s = values[i++ & 63];
        benchmark::DoNotOptimize(mix64(fnv1a(s))); // content hash every time
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyHash_RawString);

// -- merge / serialize / flush (cross-process reduction path) -------------------

static void BM_Merge(benchmark::State& state) {
    const int entries = static_cast<int>(state.range(0));
    Fixture fx(2, entries, std::max(4096, entries));
    const AggregationConfig cfg =
        AggregationConfig::parse("count,sum(time),min(time),max(time)",
                                 fx.key_list(2));
    AggregationDB src(cfg, &fx.registry);
    for (const SnapshotRecord& s : fx.snapshots)
        src.process(s);

    for (auto _ : state) {
        AggregationDB dst(cfg, &fx.registry);
        dst.reserve(entries);
        dst.merge(src);
        benchmark::DoNotOptimize(dst.size());
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_Merge)->Arg(16)->Arg(256)->Arg(4096);

static void BM_SerializeDeserialize(benchmark::State& state) {
    const int entries = static_cast<int>(state.range(0));
    Fixture fx(2, entries, std::max(4096, entries));
    const AggregationConfig cfg =
        AggregationConfig::parse("count,sum(time)", fx.key_list(2));
    AggregationDB src(cfg, &fx.registry);
    for (const SnapshotRecord& s : fx.snapshots)
        src.process(s);

    for (auto _ : state) {
        auto buf = src.serialize();
        AggregationDB dst(cfg, &fx.registry);
        dst.merge_serialized(buf);
        benchmark::DoNotOptimize(dst.size());
    }
    state.SetItemsProcessed(state.iterations() * entries);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * src.serialize().size()));
}
BENCHMARK(BM_SerializeDeserialize)->Arg(16)->Arg(256)->Arg(4096);

static void BM_Flush(benchmark::State& state) {
    const int entries = static_cast<int>(state.range(0));
    Fixture fx(2, entries, std::max(4096, entries));
    AggregationDB db(AggregationConfig::parse("count,sum(time)", fx.key_list(2)),
                     &fx.registry);
    for (const SnapshotRecord& s : fx.snapshots)
        db.process(s);

    for (auto _ : state) {
        std::size_t n = 0;
        db.flush([&n](RecordMap&&) { ++n; });
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_Flush)->Arg(16)->Arg(256)->Arg(4096);

// -- ablation: per-thread databases vs one shared, mutex-guarded database --------
//
// The paper's design keeps one aggregation database per thread to avoid
// locks on the snapshot path (§IV-B). These two fixtures quantify that
// choice under concurrent snapshot processing.

namespace {

/// Shared, thread-safe (magic-static) fixtures for the contention study.
Fixture& contention_fixture() {
    static Fixture fx(2, 64);
    return fx;
}

AggregationConfig contention_config() {
    return AggregationConfig::parse("count,sum(time)", contention_fixture().key_list(2));
}

} // namespace

static void BM_Concurrent_PerThreadDb(benchmark::State& state) {
    Fixture& fx = contention_fixture();
    AggregationDB db(contention_config(), &fx.registry); // one per thread
    db.reserve(256);

    std::size_t i = static_cast<std::size_t>(state.thread_index());
    for (auto _ : state)
        db.process(fx.snapshots[(i += 7) & 4095]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Concurrent_PerThreadDb)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

static void BM_Concurrent_SharedLockedDb(benchmark::State& state) {
    Fixture& fx = contention_fixture();
    static AggregationDB shared(contention_config(), &contention_fixture().registry);
    static std::mutex lock;

    std::size_t i = static_cast<std::size_t>(state.thread_index());
    for (auto _ : state) {
        std::lock_guard<std::mutex> guard(lock);
        shared.process(fx.snapshots[(i += 7) & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Concurrent_SharedLockedDb)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// -- CalQL parse -----------------------------------------------------------------

static void BM_CalqlParse(benchmark::State& state) {
    const std::string query =
        "SELECT kernel, sum(time.duration) AS total "
        "AGGREGATE count, sum(time.duration), min(time.duration) "
        "WHERE not(mpi.function), iteration#mainloop>10 "
        "GROUP BY kernel, amr.level, mpi.rank ORDER BY total DESC LIMIT 20";
    for (auto _ : state)
        benchmark::DoNotOptimize(parse_calql(query));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalqlParse);

BENCHMARK_MAIN();
