// Phase-2 merge-strategy study: GROUP BY key-cardinality sweep across the
// pairwise / tree / radix / adaptive merge strategies (src/engine/
// merge_strategy.hpp). For each key distribution (uniform, zipfian s=1.1,
// heavy-hitter) and nominal cardinality the bench runs the full engine at a
// fixed thread count and records the phase-2 merge wall time
// (EngineStats::merge_ns) per strategy, plus its speedup over the pairwise
// baseline. Output bytes are asserted identical across strategies — the
// byte-identity contract is what makes the strategy a pure performance knob.
//
// The interesting read is the crossover: pairwise wins at low cardinality
// (partition setup cost dominates), radix wins once the monolithic group
// table outgrows cache (~the adaptive selector's radix threshold). The
// "adaptive" rows record which strategy the selector actually picked.
//
// Emits BENCH_groupby.json (perf trajectory; bench/ci_gate_overrides.txt
// has the matching gate series).
//
// Environment knobs:
//   CALIB_BENCH_GB_FILES     input files                (default 16)
//   CALIB_BENCH_GB_RECORDS   records per file           (default 75000;
//                            raised per point so n >= 4x cardinality)
//   CALIB_BENCH_GB_THREADS   engine threads             (default 4)
//   CALIB_BENCH_GB_REPS      repetitions (best is kept) (default 2)
//   CALIB_BENCH_GB_KEYS      comma-separated cardinality sweep
//                            (default 1000,16000,160000,640000)
//   CALIB_BENCH_GB_BITS      merge_radix_bits override (0 = engine default)
#include "bench_common.hpp"
#include "engine/parallel_processor.hpp"
#include "io/caliwriter.hpp"
#include "query/calql.hpp"
#include "runtime/clock.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace calib;
using namespace calib::bench;

namespace {

/// Deterministic xorshift64* — the sweep must generate identical datasets
/// on every run and host.
struct Rng {
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed ? seed : 1) {}
    std::uint64_t next() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545F4914F6CDD1DULL;
    }
    double uniform01() {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }
};

/// Zipfian rank sampler: cumulative inverse-power table + binary search.
struct Zipf {
    std::vector<double> cdf;
    Zipf(std::size_t n, double s) : cdf(n) {
        double sum = 0;
        for (std::size_t i = 0; i < n; ++i)
            cdf[i] = sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        for (double& c : cdf)
            c /= sum;
    }
    std::size_t sample(double u) const {
        return static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    }
};

/// Key id for record \a i under the named distribution over \a nkeys.
std::size_t key_for(const std::string& dist, std::size_t i, std::size_t nkeys,
                    const Zipf* zipf, Rng& rng) {
    if (dist == "uniform")
        return (i * 0x9E3779B97F4A7C15ULL) % nkeys; // permuted round-robin
    if (dist == "zipf")
        return zipf->sample(rng.uniform01());
    // heavy-hitter: 90% of records land on one key, the tail is uniform
    return rng.uniform01() < 0.9 ? 0 : rng.next() % nkeys;
}

std::vector<std::string> generate(const std::string& dir, const std::string& dist,
                                  int nfiles, int per_file, std::size_t nkeys) {
    std::filesystem::create_directories(dir);
    const Zipf zipf_table(dist == "zipf" ? nkeys : 1, 1.1);
    Rng rng(0xC0FFEEULL ^ nkeys);
    std::vector<std::string> files;
    for (int f = 0; f < nfiles; ++f) {
        files.push_back(dir + "/" + dist + "-" + std::to_string(f) + ".cali");
        std::ofstream os(files.back());
        CaliWriter w(os);
        for (int i = 0; i < per_file; ++i) {
            const std::size_t global = static_cast<std::size_t>(f) *
                                           static_cast<std::size_t>(per_file) +
                                       static_cast<std::size_t>(i);
            RecordMap r;
            r.append("id", Variant(static_cast<long long>(
                               key_for(dist, global, nkeys, &zipf_table, rng))));
            r.append("count", Variant(static_cast<long long>(global % 13 + 1)));
            w.write_record(r);
        }
    }
    return files;
}

struct Measured {
    double merge_ms = 0;
    double wall_s   = 0;
    std::size_t groups = 0;
    engine::MergeStrategy executed = engine::MergeStrategy::Default;
    std::string output;
};

Measured run_strategy(const QuerySpec& spec, const std::vector<std::string>& files,
                      engine::MergeStrategy strategy, std::size_t threads,
                      int reps, unsigned radix_bits) {
    Measured best;
    for (int rep = 0; rep < reps; ++rep) {
        engine::EngineOptions opts;
        opts.threads        = threads;
        opts.merge_strategy = strategy;
        if (radix_bits != 0)
            opts.merge_radix_bits = radix_bits;
        engine::ParallelQueryProcessor eng(spec, opts);
        const std::uint64_t t0 = now_ns();
        QueryProcessor& proc   = eng.run(files);
        const std::size_t rows = proc.result().size();
        const double wall_s    = static_cast<double>(now_ns() - t0) * 1e-9;
        const double merge_ms =
            static_cast<double>(eng.stats().merge_ns) * 1e-6;
        if (rep == 0 || merge_ms < best.merge_ms) {
            best.merge_ms = merge_ms;
            best.wall_s   = wall_s;
        }
        if (rep == 0) {
            best.groups   = rows;
            best.executed = eng.stats().merge_strategy;
            std::ostringstream os;
            proc.write(os);
            best.output = os.str();
        }
    }
    return best;
}

} // namespace

int main() {
    // 16 files → 16 morsels → a 4-level merge DAG; phase-2 strategy choice
    // only matters when each key is merged several times, so the default
    // config keeps key multiplicity ≥4 (see cfg_per_file below)
    const int nfiles   = env_int("CALIB_BENCH_GB_FILES", 16);
    const int per_file = env_int("CALIB_BENCH_GB_RECORDS", 75000);
    const std::size_t threads =
        static_cast<std::size_t>(env_int("CALIB_BENCH_GB_THREADS", 4));
    const int reps = env_int("CALIB_BENCH_GB_REPS", 2);
    const auto radix_bits =
        static_cast<unsigned>(env_int("CALIB_BENCH_GB_BITS", 0));
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-gb-data").string();

    const QuerySpec spec =
        parse_calql("AGGREGATE sum(count),count GROUP BY id FORMAT csv");
    const char* const dists[] = {"uniform", "zipf", "heavy"};
    std::vector<std::size_t> cardinalities;
    {
        std::string list = "1000,16000,160000,640000";
        if (const char* env = std::getenv("CALIB_BENCH_GB_KEYS"); env && *env)
            list = env;
        std::istringstream is(list);
        for (std::string tok; std::getline(is, tok, ',');)
            if (!tok.empty())
                cardinalities.push_back(
                    static_cast<std::size_t>(std::stoull(tok)));
    }
    const engine::MergeStrategy strategies[] = {
        engine::MergeStrategy::Pairwise, engine::MergeStrategy::Tree,
        engine::MergeStrategy::Radix, engine::MergeStrategy::Adaptive};

    std::printf("# groupby merge-strategy sweep: %d files x %d records, "
                "%zu threads, %d reps\n",
                nfiles, per_file, threads, reps);
    std::printf("%8s %8s %8s %10s %10s %10s %10s %6s\n", "dist", "keys",
                "groups", "strategy", "merge_ms", "wall_s", "speedup", "ident");

    std::ostringstream json;
    json << "{\n  \"bench\": \"groupby\",\n  " << meta_json() << ",\n"
         << "  \"threads\": " << threads << ",\n  \"files\": " << nfiles
         << ",\n  \"records_per_file\": " << per_file << ",\n  \"results\": [";

    bool first = true;
    int not_identical = 0;
    for (const char* dist : dists) {
        for (std::size_t nkeys : cardinalities) {
            // keep at least ~4 records per nominal key so the uniform sweep
            // realizes the cardinality AND every key is merged across
            // several partials — multiplicity is what phase 2 reduces
            const int cfg_per_file = std::max(
                per_file, static_cast<int>(4 * nkeys /
                                           static_cast<std::size_t>(nfiles)));
            const std::vector<std::string> files =
                generate(dir, dist, nfiles, cfg_per_file, nkeys);
            double pairwise_ms = 0;
            std::string reference;
            for (engine::MergeStrategy s : strategies) {
                const Measured m =
                    run_strategy(spec, files, s, threads, reps, radix_bits);
                if (s == engine::MergeStrategy::Pairwise) {
                    pairwise_ms = m.merge_ms;
                    reference   = m.output;
                }
                const bool identical = m.output == reference;
                not_identical += identical ? 0 : 1;
                const double speedup =
                    m.merge_ms > 0 ? pairwise_ms / m.merge_ms : 1.0;
                std::string label = merge_strategy_name(s);
                if (s == engine::MergeStrategy::Adaptive)
                    label += std::string(":") +
                             merge_strategy_name(m.executed); // what it picked
                std::printf("%8s %8zu %8zu %10s %10.3f %10.3f %10.2f %6s\n",
                            dist, nkeys, m.groups, label.c_str(), m.merge_ms,
                            m.wall_s, speedup, identical ? "yes" : "NO");
                json << (first ? "" : ",") << "\n    {\"name\": \"" << dist
                     << "-k" << nkeys << "-" << merge_strategy_name(s)
                     << "\", \"groups\": " << m.groups
                     << ", \"merge_ms\": " << m.merge_ms
                     << ", \"wall_s\": " << m.wall_s
                     << ", \"speedup_vs_pairwise\": " << speedup
                     << ", \"identical_output\": "
                     << (identical ? "true" : "false") << "}";
                first = false;
            }
            std::filesystem::remove_all(dir);
        }
    }
    json << "\n  ],\n  \"identity_violations\": " << not_identical << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_groupby.json") << json.str();
    std::printf("# wrote BENCH_groupby.json\n");
    return not_identical == 0 ? 0 : 1;
}
