// Ablation: reduction-tree fan-out (design choice behind Fig. 4's
// binomial tree). The paper's cross-process reduction uses a binary
// (binomial) tree; this bench models the same reduction over k-ary trees:
// fewer levels, but (k-1) sequential merges per node and level. With
// merge costs comparable to network hops, the binary tree's log2(P)
// critical path wins — quantified here at the paper's 4096-rank scale.
#include "apps/paradis/generator.hpp"
#include "bench_common.hpp"
#include "mpisim/treereduce.hpp"

#include <filesystem>

using namespace calib;
using namespace calib::bench;

int main() {
    const int nprocs = env_int("CALIB_BENCH_FANOUT_PROCS", 4096);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-fanout-data").string();

    paradis::ParadisConfig cfg; // 2174 records, 85-key evaluation query
    const auto files = paradis::generate_dataset(dir, 1, cfg);
    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration) GROUP BY kernel,mpi.function");

    std::printf("# Ablation: reduction-tree fan-out at %d ranks "
                "(modeled, OmniPath-class network)\n",
                nprocs);
    std::printf("%8s %8s %14s %14s %8s\n", "fanout", "levels", "reduce (s)",
                "bytes moved", "out");

    for (int fanout : {2, 4, 8, 16, 64}) {
        // best of 5: the modeled cost is deterministic; min removes noise
        simmpi::QueryTimes best{};
        for (int rep = 0; rep < 5; ++rep) {
            const simmpi::QueryTimes t =
                simmpi::modeled_query_kary(spec, files[0], nprocs,
                                           simmpi::NetModel{}, fanout);
            if (rep == 0 || t.reduce_s < best.reduce_s)
                best = t;
        }
        int levels = 0;
        for (long covered = 1; covered < nprocs; covered *= fanout)
            ++levels;
        std::printf("%8d %8d %14.6f %14llu %8zu\n", fanout, levels, best.reduce_s,
                    static_cast<unsigned long long>(best.bytes_reduced),
                    best.output_records);
    }

    std::printf("\n# expected: fan-out 2 (the paper's binomial tree) has the\n"
                "# shortest critical path once per-node merge time matters\n");
    std::filesystem::remove_all(dir);
    return 0;
}
