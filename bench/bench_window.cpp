// WINDOW/SLIDE cost study: pane-count and slide-ratio sweep over the
// windowed aggregation path (src/aggregate/windowed_db.cpp).
//
// A windowed query splits the aggregation into ceil(W/S) pane
// AggregationDBs plus a fold of the live panes at flush, so the
// interesting axes are (a) how much the per-record pane routing costs
// against the unwindowed baseline and (b) how the flush-time fold scales
// with the pane count. The sweep runs one deterministic dataset — a
// monotone time.offset ramp with a fixed-cardinality key column — through
// the full parallel engine at slide ratios 1 (tumbling), 4, 16, and 64,
// with the window sized so roughly half the time axis stays live.
//
// Output bytes are asserted identical between 1 and 4 threads at every
// point: windowed results carry the same byte-identity contract as the
// plain engine (docs/ENGINE.md), and a violation fails the bench.
//
// Emits BENCH_window.json (perf trajectory; bench/ci_gate_overrides.txt
// has the matching window/* gate series).
//
// Environment knobs:
//   CALIB_BENCH_WIN_FILES    input files              (default 8)
//   CALIB_BENCH_WIN_RECORDS  records per file         (default 100000)
//   CALIB_BENCH_WIN_KEYS     key cardinality          (default 4000)
//   CALIB_BENCH_WIN_THREADS  engine threads           (default 4)
//   CALIB_BENCH_WIN_REPS     repetitions (best kept)  (default 2)
#include "bench_common.hpp"
#include "engine/parallel_processor.hpp"
#include "io/caliwriter.hpp"
#include "query/calql.hpp"
#include "runtime/clock.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace calib;
using namespace calib::bench;

namespace {

std::vector<std::string> generate(const std::string& dir, int nfiles,
                                  int per_file, std::size_t nkeys) {
    std::filesystem::create_directories(dir);
    std::vector<std::string> files;
    for (int f = 0; f < nfiles; ++f) {
        files.push_back(dir + "/win-" + std::to_string(f) + ".cali");
        std::ofstream os(files.back());
        CaliWriter w(os);
        for (int i = 0; i < per_file; ++i) {
            const std::size_t global = static_cast<std::size_t>(f) *
                                           static_cast<std::size_t>(per_file) +
                                       static_cast<std::size_t>(i);
            RecordMap r;
            // one record per microsecond of simulated time, interleaved
            // across files so every morsel spans many panes
            r.append("time.offset",
                     Variant(static_cast<double>(global)));
            r.append("id", Variant(static_cast<long long>(
                               (global * 0x9E3779B97F4A7C15ULL) % nkeys)));
            r.append("count", Variant(static_cast<long long>(global % 13 + 1)));
            w.write_record(r);
        }
    }
    return files;
}

struct Measured {
    double wall_s      = 0;
    double mrec_per_s  = 0;
    std::size_t groups = 0;
    std::string output;
};

Measured run_point(const QuerySpec& spec, const std::vector<std::string>& files,
                   std::size_t threads, int reps, std::uint64_t total_records) {
    Measured best;
    for (int rep = 0; rep < reps; ++rep) {
        engine::EngineOptions opts;
        opts.threads = threads;
        engine::ParallelQueryProcessor eng(spec, opts);
        const std::uint64_t t0 = now_ns();
        QueryProcessor& proc   = eng.run(files);
        const std::size_t rows = proc.result().size();
        const double wall_s    = static_cast<double>(now_ns() - t0) * 1e-9;
        if (rep == 0 || wall_s < best.wall_s) {
            best.wall_s     = wall_s;
            best.mrec_per_s = wall_s > 0 ? static_cast<double>(total_records) *
                                               1e-6 / wall_s
                                         : 0;
        }
        if (rep == 0) {
            best.groups = rows;
            std::ostringstream os;
            proc.write(os);
            best.output = os.str();
        }
    }
    return best;
}

} // namespace

int main() {
    const int nfiles   = env_int("CALIB_BENCH_WIN_FILES", 8);
    const int per_file = env_int("CALIB_BENCH_WIN_RECORDS", 100000);
    const std::size_t nkeys =
        static_cast<std::size_t>(env_int("CALIB_BENCH_WIN_KEYS", 4000));
    const std::size_t threads =
        static_cast<std::size_t>(env_int("CALIB_BENCH_WIN_THREADS", 4));
    const int reps = env_int("CALIB_BENCH_WIN_REPS", 2);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-win-data")
            .string();

    const std::uint64_t total = static_cast<std::uint64_t>(nfiles) *
                                static_cast<std::uint64_t>(per_file);
    const std::vector<std::string> files =
        generate(dir, nfiles, per_file, nkeys);
    // time axis is [0, total) microseconds; keep ~half of it live
    const std::uint64_t window_us = total / 2;

    std::printf("# window sweep: %d files x %d records, %zu keys, %zu threads, "
                "%d reps\n",
                nfiles, per_file, nkeys, threads, reps);
    std::printf("%10s %8s %8s %10s %10s %6s\n", "point", "panes", "groups",
                "wall_s", "mrec_s", "ident");

    std::ostringstream json;
    json << "{\n  \"bench\": \"window\",\n  " << meta_json() << ",\n"
         << "  \"threads\": " << threads << ",\n  \"files\": " << nfiles
         << ",\n  \"records_per_file\": " << per_file << ",\n  \"results\": [";

    bool first        = true;
    int not_identical = 0;

    // unwindowed baseline: same query, no WINDOW clause
    const std::string base_q =
        "AGGREGATE sum(count),count GROUP BY id FORMAT csv";
    {
        const QuerySpec spec = parse_calql(base_q);
        const Measured m = run_point(spec, files, threads, reps, total);
        const Measured serial = run_point(spec, files, 1, 1, total);
        const bool identical  = m.output == serial.output;
        not_identical += identical ? 0 : 1;
        std::printf("%10s %8s %8zu %10.3f %10.2f %6s\n", "baseline", "-",
                    m.groups, m.wall_s, m.mrec_per_s, identical ? "yes" : "NO");
        json << "\n    {\"name\": \"baseline\", \"panes\": 0, \"groups\": "
             << m.groups << ", \"wall_s\": " << m.wall_s
             << ", \"mrec_s\": " << m.mrec_per_s << ", \"identical_output\": "
             << (identical ? "true" : "false") << "}";
        first = false;
    }

    for (const std::uint64_t ratio : {std::uint64_t(1), std::uint64_t(4),
                                      std::uint64_t(16), std::uint64_t(64)}) {
        const std::uint64_t slide_us = window_us / ratio;
        const std::string q = base_q + " WINDOW " + std::to_string(window_us) +
                              " SLIDE " + std::to_string(slide_us);
        const QuerySpec spec  = parse_calql(q);
        const Measured m      = run_point(spec, files, threads, reps, total);
        const Measured serial = run_point(spec, files, 1, 1, total);
        const bool identical  = m.output == serial.output;
        not_identical += identical ? 0 : 1;
        const std::string name = "panes" + std::to_string(ratio);
        std::printf("%10s %8llu %8zu %10.3f %10.2f %6s\n", name.c_str(),
                    static_cast<unsigned long long>(spec.window.pane_count()),
                    m.groups, m.wall_s, m.mrec_per_s, identical ? "yes" : "NO");
        json << ",\n    {\"name\": \"" << name
             << "\", \"panes\": " << spec.window.pane_count()
             << ", \"groups\": " << m.groups << ", \"wall_s\": " << m.wall_s
             << ", \"mrec_s\": " << m.mrec_per_s << ", \"identical_output\": "
             << (identical ? "true" : "false") << "}";
    }
    (void)first;
    std::filesystem::remove_all(dir);

    json << "\n  ],\n  \"identity_violations\": " << not_identical << "\n}\n";
    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_window.json") << json.str();
    std::printf("# wrote BENCH_window.json\n");
    return not_identical == 0 ? 0 : 1;
}
