// Micro-benchmarks of the runtime hot paths: blackboard updates, the full
// event-mode snapshot pipeline (annotation event -> snapshot -> timer ->
// aggregation), trace appends, and the per-thread-database design's
// snapshot cost under realistic attribute loads.
#include "calib.hpp"

#include <benchmark/benchmark.h>

using namespace calib;

namespace {

Channel* make_channel(const char* name, std::initializer_list<
                                            std::pair<const std::string, std::string>>
                                            cfg) {
    return Caliper::instance().create_channel(name, RuntimeConfig(cfg));
}

} // namespace

// -- blackboard update without any active channel -------------------------------

static void BM_BeginEnd_NoChannel(benchmark::State& state) {
    Caliper& c        = Caliper::instance();
    const Attribute a = c.create_attribute("ubench.region", Variant::Type::String);
    const Variant v("region-name");
    for (auto _ : state) {
        c.begin(a, v);
        c.end(a);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BeginEnd_NoChannel);

// -- full event-mode pipeline: snapshot + timer + aggregation -------------------

static void BM_BeginEnd_EventAggregate(benchmark::State& state) {
    Caliper& c  = Caliper::instance();
    Channel* ch = make_channel("ubench-agg",
                               {{"services.enable", "event,timer,aggregate"},
                                {"aggregate.key", "ubench.fn"},
                                {"aggregate.ops", "count,sum(time.duration)"}});
    const Attribute a = c.create_attribute("ubench.fn", Variant::Type::String);
    const Variant v("fn");
    for (auto _ : state) {
        c.begin(a, v); // 1 snapshot
        c.end(a);      // 1 snapshot
    }
    state.SetItemsProcessed(state.iterations() * 2); // snapshots
    c.close_channel(ch);
    c.release_thread_states(ch);
}
BENCHMARK(BM_BeginEnd_EventAggregate);

// -- event-mode pipeline with a wide blackboard (7 attributes, paper §V-B) -------

static void BM_BeginEnd_WideBlackboard(benchmark::State& state) {
    Caliper& c  = Caliper::instance();
    Channel* ch = make_channel("ubench-wide",
                               {{"services.enable", "event,timer,aggregate"},
                                {"aggregate.key", "*"}});
    // populate seven long-lived attributes like the CleverLeaf experiment
    Annotation fn("ub.function"), region("ub.annotation"), kernel("ub.kernel");
    Annotation level("ub.amr.level"), iter("ub.iteration", prop::as_value);
    Annotation rank("ub.mpi.rank", prop::as_value), mpifn("ub.mpi.function");
    fn.begin(Variant("main"));
    region.begin(Variant("computation"));
    level.begin(Variant(2));
    iter.set(Variant(17));
    rank.set(Variant(3));

    for (auto _ : state) {
        kernel.begin(Variant("advec-cell"));
        kernel.end();
    }
    state.SetItemsProcessed(state.iterations() * 2);

    level.end();
    region.end();
    fn.end();
    c.close_channel(ch);
    c.release_thread_states(ch);
}
BENCHMARK(BM_BeginEnd_WideBlackboard);

// -- trace mode: snapshot storage cost -------------------------------------------

static void BM_BeginEnd_Trace(benchmark::State& state) {
    Caliper& c  = Caliper::instance();
    Channel* ch = make_channel("ubench-trace",
                               {{"services.enable", "event,timer,trace"},
                                {"trace.reserve", "16777216"}});
    const Attribute a = c.create_attribute("ubench.tr", Variant::Type::String);
    const Variant v("fn");
    for (auto _ : state) {
        c.begin(a, v);
        c.end(a);
    }
    state.SetItemsProcessed(state.iterations() * 2);
    c.close_channel(ch);
    c.release_thread_states(ch);
}
BENCHMARK(BM_BeginEnd_Trace);

// -- raw snapshot pull (blackboard capture only) ----------------------------------

static void BM_PullSnapshot(benchmark::State& state) {
    Caliper& c = Caliper::instance();
    Annotation a("ubench.pull.a"), b("ubench.pull.b"), d("ubench.pull.c");
    a.begin(Variant("x"));
    b.begin(Variant(42));
    d.begin(Variant(2.5));
    for (auto _ : state) {
        SnapshotRecord rec;
        c.pull_snapshot(rec);
        benchmark::DoNotOptimize(rec.size());
    }
    d.end();
    b.end();
    a.end();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PullSnapshot);

// -- set() path (iteration counters) ----------------------------------------------

static void BM_Set_EventAggregate(benchmark::State& state) {
    Caliper& c  = Caliper::instance();
    Channel* ch = make_channel("ubench-set",
                               {{"services.enable", "event,timer,aggregate"},
                                {"aggregate.key", "ubench.iter"},
                                {"aggregate.ops", "count"}});
    const Attribute a =
        c.create_attribute("ubench.iter", Variant::Type::Int, prop::as_value);
    long long i = 0;
    for (auto _ : state)
        c.set(a, Variant(i++ & 1023));
    state.SetItemsProcessed(state.iterations());
    c.close_channel(ch);
    c.release_thread_states(ch);
}
BENCHMARK(BM_Set_EventAggregate);

BENCHMARK_MAIN();
