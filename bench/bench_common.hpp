// Shared infrastructure for the figure/table reproduction benches:
// runs the CleverLeaf-sim mini-app under a measurement configuration and
// collects runtimes, snapshot counts, and flushed profile records.
//
// Environment knobs (all benches):
//   CALIB_BENCH_RANKS   simmpi ranks           (default 4; paper: 36/18)
//   CALIB_BENCH_STEPS   main loop timesteps    (default 30; paper: 100)
//   CALIB_BENCH_NX/NY   coarse grid size       (default 160x64; paper: 640x240)
//   CALIB_BENCH_REPS    repetitions for Fig. 3 (default 3; paper: 5)
#pragma once

#include "apps/cleverleaf/driver.hpp"
#include "calib.hpp"
#include "mpisim/runtime.hpp"
#include "runtime/clock.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>
#include <sys/resource.h>
#include <thread>
#include <unistd.h>
#include <vector>

// Build-time fallback commit id (set by CMake from `git rev-parse`); the
// CALIB_GIT_SHA environment variable overrides it at run time.
#ifndef CALIB_GIT_SHA
#define CALIB_GIT_SHA ""
#endif

namespace calib::bench {

inline int env_int(const char* name, int fallback) {
    const char* v = std::getenv(name);
    return v ? std::atoi(v) : fallback;
}

/// Run-provenance stamp for BENCH_*.json emitters: a ready-to-splice
/// `"meta": {...}` member carrying the commit id (CALIB_GIT_SHA env, then
/// the build-time definition), ISO-8601 UTC timestamp, hostname, hardware
/// concurrency, and optional CALIB_BUILD_TAG. calib-benchdiff reads these
/// fields when normalizing the document into the performance history.
inline std::string meta_json() {
    std::string commit;
    if (const char* env = std::getenv("CALIB_GIT_SHA"); env && *env)
        commit = env;
    else
        commit = CALIB_GIT_SHA;
    if (commit.empty())
        commit = "unknown";

    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char stamp[32];
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);

    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) != 0 || !host[0])
        std::snprintf(host, sizeof(host), "unknown");

    std::string json = "\"meta\": {\"commit\": \"" + commit +
                       "\", \"timestamp\": \"" + stamp + "\", \"host\": \"" +
                       host + "\", \"hardware_concurrency\": " +
                       std::to_string(std::thread::hardware_concurrency());
    if (const char* tag = std::getenv("CALIB_BUILD_TAG"); tag && *tag)
        json += std::string(", \"build\": \"") + tag + "\"";
    json += "}";
    return json;
}

struct BenchSetup {
    int ranks = env_int("CALIB_BENCH_RANKS", 4);
    int reps  = env_int("CALIB_BENCH_REPS", 3);
    clever::CleverConfig app;

    BenchSetup() {
        app.nx    = env_int("CALIB_BENCH_NX", 160);
        app.ny    = env_int("CALIB_BENCH_NY", 64);
        app.steps = env_int("CALIB_BENCH_STEPS", 30);
    }
};

/// Process CPU time (user+system, all threads) — on an oversubscribed
/// machine this is a far less noisy overhead metric than wall-clock.
inline double process_cpu_seconds() {
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
           1e-6 * static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec);
}

struct RunResult {
    double wall_s = 0;                ///< wall-clock of the parallel run
    double cpu_s  = 0;                ///< process CPU time consumed by the run
    std::uint64_t snapshots = 0;      ///< total snapshots across ranks
    std::uint64_t output_records = 0; ///< total flushed records across ranks
    std::vector<RecordMap> records;   ///< flushed profile (all ranks)
};

/// Run the mini-app once under \a profile ("" = baseline, no channel).
/// When \a keep_records is false the flushed records are counted but not
/// retained (saves memory in the overhead matrix).
inline RunResult run_clever(const BenchSetup& setup, const std::string& profile,
                            bool keep_records = false) {
    Caliper& c       = Caliper::instance();
    Channel* channel = nullptr;
    if (!profile.empty()) {
        static int serial = 0;
        channel = c.create_channel("bench-" + std::to_string(serial++),
                                   RuntimeConfig::from_string(profile));
    }

    RunResult result;
    std::mutex mutex;

    const double cpu0      = process_cpu_seconds();
    const std::uint64_t t0 = now_ns();
    simmpi::run(setup.ranks, [&](simmpi::Comm& comm) {
        clever::run_rank(comm, setup.app);
        if (!channel)
            return;
        std::uint64_t flushed = 0;
        std::vector<RecordMap> mine;
        c.flush_thread(channel, [&](RecordMap&& r) {
            ++flushed;
            if (keep_records)
                mine.push_back(std::move(r));
        });
        const std::uint64_t snaps =
            c.thread_data().channel_state(channel->id()).num_snapshots;
        std::lock_guard<std::mutex> lock(mutex);
        result.snapshots += snaps;
        result.output_records += flushed;
        for (RecordMap& r : mine)
            result.records.push_back(std::move(r));
    });
    result.wall_s = static_cast<double>(now_ns() - t0) * 1e-9;
    result.cpu_s  = process_cpu_seconds() - cpu0;

    if (channel) {
        c.close_channel(channel);
        c.release_thread_states(channel);
    }
    return result;
}

/// Measurement-configuration profiles used by Fig. 3 / Table I.
/// Scheme A: all attributes except the iteration number.
/// Scheme B: two attributes.
/// Scheme C: everything, including the main loop iteration.
inline std::string scheme_profile(char scheme, bool event_mode) {
    const std::string services = event_mode ? "event,timer" : "sampler,timer";
    // The paper samples every 10 ms over a ~20 s run; our scaled-down run
    // is ~100x shorter, so sample proportionally faster to keep a
    // comparable number of samples per process.
    const std::string sampler_cfg = event_mode ? "" : "sampler.frequency=1000\n";
    std::string key;
    switch (scheme) {
    case 'A':
        key = "function,annotation,kernel,amr.level,mpi.rank,mpi.function";
        break;
    case 'B':
        key = "kernel,mpi.function";
        break;
    case 'C':
        key = "*";
        break;
    case 'T': // trace configuration
        return "services.enable=" + services + ",trace\ntrace.reserve=262144\n" +
               sampler_cfg;
    }
    return "services.enable=" + services + ",aggregate\naggregate.key=" + key +
           "\naggregate.ops=count,sum(time.duration)\n" + sampler_cfg;
}

/// Simple statistics over repetitions.
struct Stat {
    double avg = 0, min = 1e300, max = 0;
    void add(double v) {
        avg += v;
        min = v < min ? v : min;
        max = v > max ? v : max;
    }
    void finish(int n) { avg /= n; }
};

} // namespace calib::bench
