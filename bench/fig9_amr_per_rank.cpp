// Figure 9 reproduction: runtime per mesh-refinement level per MPI rank
// (paper §VI-E):
//
//   AGGREGATE sum(time.duration)
//   WHERE not(mpi.function)
//   GROUP BY amr.level, mpi.rank
//
// Expected shape: the level proportions are similar on most ranks, with
// outliers — ranks whose strip contains more of the refined shock region
// spend disproportionally more time on fine levels.
#include "bench_common.hpp"

#include <iostream>
#include <map>

using namespace calib;
using namespace calib::bench;

int main() {
    BenchSetup setup;
    setup.ranks = env_int("CALIB_BENCH_RANKS", 6); // paper: 18 ranks

    std::printf("# Figure 9: runtime per AMR level per MPI rank\n");
    std::printf("# %dx%d, %d steps, %d ranks\n\n", setup.app.nx, setup.app.ny,
                setup.app.steps, setup.ranks);

    const RunResult run = run_clever(setup,
                                     "services.enable=event,timer,aggregate\n"
                                     "aggregate.key=*\n"
                                     "aggregate.ops=count,sum(time.duration)\n",
                                     /*keep_records=*/true);

    auto rows = run_query("AGGREGATE sum(sum#time.duration) AS t "
                          "WHERE not(mpi.function), amr.level "
                          "GROUP BY amr.level, mpi.rank",
                          run.records);

    std::map<long long, std::map<long long, double>> per_rank;
    for (const RecordMap& r : rows)
        per_rank[r.get("mpi.rank").to_int()][r.get("amr.level").to_int()] =
            r.get("t").to_double();

    std::printf("%8s %14s %14s %14s %18s\n", "rank", "level 0 (us)",
                "level 1 (us)", "level 2 (us)", "fine fraction");
    for (const auto& [rank, levels] : per_rank) {
        double t[3] = {0, 0, 0};
        for (const auto& [level, value] : levels)
            if (level >= 0 && level < 3)
                t[level] = value;
        const double total = t[0] + t[1] + t[2];
        std::printf("%8lld %14.1f %14.1f %14.1f %17.1f%%\n", rank, t[0], t[1],
                    t[2], total > 0 ? 100.0 * (t[1] + t[2]) / total : 0.0);
    }

    std::printf("\n# paper: proportions similar across ranks with outliers "
                "(ranks covering the refined region)\n");
    return 0;
}
