// Parallel query engine throughput: records/sec of the full offline
// pipeline (read -> parse -> aggregate -> merge) at 1/2/4/8 worker
// threads over a generated multi-file ParaDiS-sim dataset.
//
// Emits the measurement as JSON to stdout and to BENCH_parallel_query.json
// (perf trajectory). Speedups are relative to the 1-thread serial path;
// on a single-core machine expect ~1.0 across the board.
//
// Environment knobs:
//   CALIB_BENCH_PQ_FILES   input files            (default 8)
//   CALIB_BENCH_PQ_REPS    repetitions per point  (default 3; best is kept)
#include "apps/paradis/generator.hpp"
#include "bench_common.hpp"
#include "engine/parallel_processor.hpp"
#include "runtime/clock.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace calib;
using namespace calib::bench;

int main() {
    const int nfiles = env_int("CALIB_BENCH_PQ_FILES", 8);
    const int reps   = env_int("CALIB_BENCH_PQ_REPS", 3);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-pq-data").string();

    paradis::ParadisConfig dataset_config;
    std::printf("# parallel query engine: generating %d files x %d records...\n",
                nfiles, dataset_config.records_per_file);
    const std::vector<std::string> files =
        paradis::generate_dataset(dir, nfiles, dataset_config);

    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration),count GROUP BY kernel,mpi.function");

    const std::size_t thread_counts[] = {1, 2, 4, 8};
    double baseline_s = 0;
    std::uint64_t records = 0;
    std::string reference; // 1-thread rendering, for the identity check

    std::ostringstream json;
    json << "{\n  \"bench\": \"parallel_query\",\n  " << meta_json()
         << ",\n"
         << "  \"hardware_concurrency\": "
         << engine::ThreadPool::default_threads() << ",\n"
         << "  \"files\": " << nfiles << ",\n  \"results\": [";

    std::printf("%8s %12s %16s %10s %10s\n", "threads", "wall (s)", "records/sec",
                "speedup", "identical");
    bool first = true;
    for (std::size_t t : thread_counts) {
        double best_s = 0;
        std::string out;
        std::uint64_t in = 0;
        for (int rep = 0; rep < reps; ++rep) {
            engine::EngineOptions opts;
            opts.threads = t;
            engine::ParallelQueryProcessor eng(spec, opts);
            const std::uint64_t t0 = now_ns();
            QueryProcessor& proc   = eng.run(files);
            proc.result(); // include the finish step in the measurement
            const double wall_s = static_cast<double>(now_ns() - t0) * 1e-9;
            if (rep == 0 || wall_s < best_s)
                best_s = wall_s;
            in = proc.num_records_in();
            if (rep == 0) {
                std::ostringstream os;
                proc.write(os);
                out = os.str();
            }
        }
        if (t == 1) {
            baseline_s = best_s;
            records    = in;
            reference  = out;
        }
        const bool identical = out == reference;
        const double rps     = static_cast<double>(in) / best_s;
        const double speedup = baseline_s / best_s;
        std::printf("%8zu %12.5f %16.0f %10.2f %10s\n", t, best_s, rps, speedup,
                    identical ? "yes" : "NO");
        json << (first ? "" : ",") << "\n    {\"threads\": " << t
             << ", \"wall_s\": " << best_s << ", \"records_per_sec\": " << rps
             << ", \"speedup\": " << speedup
             << ", \"identical_output\": " << (identical ? "true" : "false")
             << "}";
        first = false;
    }
    json << "\n  ],\n  \"records\": " << records << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_parallel_query.json") << json.str();
    std::printf("# wrote BENCH_parallel_query.json\n");

    std::filesystem::remove_all(dir);
    return 0;
}
