// Overhead of the self-profiling instruments (src/obs) — verifies the
// "zero cost when disabled" claim the subsystem is designed around:
//
//   baseline   synthetic per-record workload (FNV-1a hash step), no
//              instruments;
//   disabled   the same workload plus one Counter::add and one
//              Timer-guard per record with metrics OFF — each touch is a
//              single relaxed atomic load and branch;
//   enabled    the same with metrics ON (fetch_add + two clock reads).
//
// Reports ns/record for each mode and the relative overheads, plus raw
// per-call costs of the individual instruments. Emits the measurement as
// JSON to stdout and to BENCH_micro_obs.json (perf trajectory). Always
// exits 0 — timing noise must not fail a CI run; the disabled-overhead
// acceptance line (<= 2%) is asserted by eye / trajectory tooling.
//
// Environment knobs:
//   CALIB_BENCH_OBS_RECORDS  workload iterations  (default 20000000)
//   CALIB_BENCH_OBS_REPS     repetitions          (default 3; best kept)
#include "bench_common.hpp"
#include "obs/metrics.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

using namespace calib;
using namespace calib::bench;

namespace {

// the instruments under test (global statics, like the library's own)
obs::Counter bench_counter("bench.obs.counter");
obs::Timer bench_timer("bench.obs.timer");
obs::Histogram bench_histogram("bench.obs.histogram");

/// One step of the synthetic record workload: an FNV-1a hash round,
/// roughly the cheapest per-record operation in the real pipeline (a
/// hash-table probe step). The accumulator flows into the result so the
/// loop cannot be optimized away.
inline std::uint64_t work_step(std::uint64_t h, std::uint64_t i) {
    h ^= i;
    h *= 0x100000001b3ull;
    return h;
}

double baseline_loop(std::uint64_t n, std::uint64_t& sink) {
    const std::uint64_t t0 = obs::now_ns();
    std::uint64_t h        = 0xcbf29ce484222325ull;
    for (std::uint64_t i = 0; i < n; ++i)
        h = work_step(h, i);
    sink += h;
    return static_cast<double>(obs::now_ns() - t0);
}

double instrumented_loop(std::uint64_t n, std::uint64_t& sink) {
    const std::uint64_t t0 = obs::now_ns();
    std::uint64_t h        = 0xcbf29ce484222325ull;
    for (std::uint64_t i = 0; i < n; ++i) {
        h = work_step(h, i);
        bench_counter.add();          // the per-record instrument touch
        if ((i & 0xffffu) == 0) {     // coarse span, like one per morsel
            obs::Timer::Scope scope(bench_timer);
            bench_histogram.record(i);
        }
    }
    sink += h;
    return static_cast<double>(obs::now_ns() - t0);
}

template <typename Fn> double best_ns(int reps, std::uint64_t n, Fn&& loop) {
    std::uint64_t sink = 0;
    double best        = 0;
    for (int i = 0; i < reps; ++i) {
        const double ns = loop(n, sink);
        if (i == 0 || ns < best)
            best = ns;
    }
    // publish the accumulator so the compiler must keep the work
    if (sink == 42)
        std::fprintf(stderr, "#\n");
    return best;
}

/// Raw per-call cost of one instrument write in the current enabled state.
template <typename Fn> double per_call_ns(std::uint64_t n, Fn&& call) {
    const std::uint64_t t0 = obs::now_ns();
    for (std::uint64_t i = 0; i < n; ++i)
        call(i);
    return static_cast<double>(obs::now_ns() - t0) / static_cast<double>(n);
}

} // namespace

int main() {
    const std::uint64_t n =
        static_cast<std::uint64_t>(env_int("CALIB_BENCH_OBS_RECORDS", 20000000));
    const int reps = env_int("CALIB_BENCH_OBS_REPS", 3);

    std::printf("# micro_obs: %llu records/loop, %d reps (best kept)\n",
                static_cast<unsigned long long>(n), reps);

    obs::set_enabled(false);
    const double base_ns     = best_ns(reps, n, baseline_loop);
    const double disabled_ns = best_ns(reps, n, instrumented_loop);

    obs::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
    const double enabled_ns = best_ns(reps, n, instrumented_loop);

    const double counter_call_ns =
        per_call_ns(n, [](std::uint64_t) { bench_counter.add(); });
    const double timer_call_ns = per_call_ns(n / 16, [](std::uint64_t) {
        obs::Timer::Scope scope(bench_timer);
    });
    obs::set_enabled(false);
    const double counter_off_ns =
        per_call_ns(n, [](std::uint64_t) { bench_counter.add(); });

    const double per_rec_base     = base_ns / static_cast<double>(n);
    const double per_rec_disabled = disabled_ns / static_cast<double>(n);
    const double per_rec_enabled  = enabled_ns / static_cast<double>(n);
    const double overhead_disabled_pct =
        (disabled_ns - base_ns) / base_ns * 100.0;
    const double overhead_enabled_pct = (enabled_ns - base_ns) / base_ns * 100.0;

    std::printf("%12s %14s %14s\n", "mode", "ns/record", "overhead");
    std::printf("%12s %14.3f %14s\n", "baseline", per_rec_base, "-");
    std::printf("%12s %14.3f %13.2f%%\n", "disabled", per_rec_disabled,
                overhead_disabled_pct);
    std::printf("%12s %14.3f %13.2f%%\n", "enabled", per_rec_enabled,
                overhead_enabled_pct);
    std::printf("# per call: counter off %.3f ns, counter on %.3f ns, "
                "timer scope on %.1f ns\n",
                counter_off_ns, counter_call_ns, timer_call_ns);
    if (overhead_disabled_pct > 2.0)
        std::printf("# WARNING: disabled overhead %.2f%% exceeds the 2%% target\n",
                    overhead_disabled_pct);

    std::ostringstream json;
    json << "{\n  \"bench\": \"micro_obs\",\n  " << meta_json() << ",\n"
         << "  \"records\": " << n << ",\n  \"results\": [\n"
         << "    {\"mode\": \"baseline\", \"ns_per_record\": " << per_rec_base
         << "},\n"
         << "    {\"mode\": \"disabled\", \"ns_per_record\": " << per_rec_disabled
         << ", \"overhead_pct\": " << overhead_disabled_pct << "},\n"
         << "    {\"mode\": \"enabled\", \"ns_per_record\": " << per_rec_enabled
         << ", \"overhead_pct\": " << overhead_enabled_pct << "}\n  ],\n"
         << "  \"counter_add_disabled_ns\": " << counter_off_ns << ",\n"
         << "  \"counter_add_enabled_ns\": " << counter_call_ns << ",\n"
         << "  \"timer_scope_enabled_ns\": " << timer_call_ns << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_micro_obs.json") << json.str();
    std::printf("# wrote BENCH_micro_obs.json\n");
    return 0;
}
