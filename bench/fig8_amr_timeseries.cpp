// Figure 8 reproduction: runtime per mesh-refinement level per timestep
// (paper §VI-E) — the headline application-specific aggregation:
//
//   AGGREGATE sum(time.duration)
//   WHERE not(mpi.function)
//   GROUP BY amr.level, iteration#mainloop
//
// over a scheme-C (group-by-everything) on-line profile.
//
// Expected shape: level 0 stays ~constant over the run; level 1 grows
// slightly; level 2 (the finest mesh over the developing shock) grows
// significantly.
#include "bench_common.hpp"

#include <iostream>
#include <map>

using namespace calib;
using namespace calib::bench;

int main() {
    BenchSetup setup;
    setup.app.steps = env_int("CALIB_BENCH_STEPS", 48);
    setup.app.regrid_interval = 4;

    std::printf("# Figure 8: runtime per AMR level per timestep\n");
    std::printf("# %dx%d, %d steps, %d ranks\n\n", setup.app.nx, setup.app.ny,
                setup.app.steps, setup.ranks);

    const RunResult run = run_clever(setup,
                                     "services.enable=event,timer,aggregate\n"
                                     "aggregate.key=*\n"
                                     "aggregate.ops=count,sum(time.duration)\n",
                                     /*keep_records=*/true);
    std::printf("# profile records: %llu\n\n",
                static_cast<unsigned long long>(run.output_records));

    auto rows = run_query("AGGREGATE sum(sum#time.duration) AS t "
                          "WHERE not(mpi.function), amr.level "
                          "GROUP BY amr.level, iteration#mainloop",
                          run.records);

    // pivot: one line per timestep, one column per level
    std::map<long long, std::map<long long, double>> series;
    for (const RecordMap& r : rows)
        series[r.get("iteration#mainloop").to_int()]
              [r.get("amr.level").to_int()] = r.get("t").to_double();

    std::printf("%10s %14s %14s %14s\n", "timestep", "level 0 (us)",
                "level 1 (us)", "level 2 (us)");
    for (const auto& [step, levels] : series) {
        std::printf("%10lld", step);
        for (long long l = 0; l < 3; ++l) {
            auto it = levels.find(l);
            std::printf(" %14.1f", it != levels.end() ? it->second : 0.0);
        }
        std::printf("\n");
    }

    // trend summary: compare first and last quarter of the run
    const long long n = setup.app.steps;
    double first[3] = {0, 0, 0}, last[3] = {0, 0, 0};
    for (const auto& [step, levels] : series)
        for (const auto& [level, t] : levels) {
            if (level > 2)
                continue;
            if (step < n / 4)
                first[level] += t;
            if (step >= 3 * n / 4)
                last[level] += t;
        }
    std::printf("\n# growth (last quarter / first quarter): level0 %.2fx, "
                "level1 %.2fx, level2 %.2fx\n",
                last[0] / first[0], last[1] / first[1], last[2] / first[2]);
    std::printf("# paper: level 0 ~flat, level 1 grows slightly, level 2 "
                "grows significantly\n");
    return 0;
}
