// Figure 4 reproduction: weak-scaling of the MPI-based off-line query
// application over a distributed ParaDiS-sim dataset (paper §V-C:
// 4096 files x 2174 records, 1 file per query process, 85 output records).
//
// Two modes (DESIGN.md):
//   real     — thread-backed simmpi ranks, up to CALIB_BENCH_FIG4_MAXREAL
//   modeled  — discrete-event mode: merges executed and timed for real,
//              network hops charged from a latency/bandwidth model,
//              scaling to the paper's 4096 processes
//
// Expected shape: local read+process time flat (weak scaling), tree
// reduction grows logarithmically with the process count.
#include "apps/paradis/generator.hpp"
#include "bench_common.hpp"
#include "mpisim/treereduce.hpp"

#include <filesystem>

using namespace calib;
using namespace calib::bench;

int main() {
    const int max_real = env_int("CALIB_BENCH_FIG4_MAXREAL", 32);
    const int max_modeled = env_int("CALIB_BENCH_FIG4_MAXMODEL", 4096);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-fig4-data").string();

    paradis::ParadisConfig dataset_config; // 2174 records per file
    std::printf("# Figure 4: scalability of cross-process aggregation\n");
    std::printf("# generating dataset: %d files x %d records...\n", max_real,
                dataset_config.records_per_file);
    const auto files = paradis::generate_dataset(dir, max_real, dataset_config);

    // the paper's evaluation query: total CPU time in computational kernels
    // and MPI functions across ranks -> 85 output records
    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration) GROUP BY kernel,mpi.function");

    std::printf("\n# real mode (simmpi rank-threads, 1 file per process)\n");
    std::printf("%8s %12s %12s %12s %8s\n", "nprocs", "total (s)", "local (s)",
                "reduce (s)", "out");
    for (int p = 1; p <= max_real; p *= 2) {
        std::vector<std::string> subset(files.begin(), files.begin() + p);
        std::vector<RecordMap> result;
        const simmpi::QueryTimes t = simmpi::parallel_query(spec, subset, p, &result);
        std::printf("%8d %12.5f %12.5f %12.5f %8zu\n", p, t.total_s, t.local_s,
                    t.reduce_s, t.output_records);
    }

    std::printf("\n# modeled mode (measured merges + OmniPath-class network "
                "model)\n");
    std::printf("%8s %12s %12s %12s %8s\n", "nprocs", "total (s)", "local (s)",
                "reduce (s)", "out");
    for (int p = 1; p <= max_modeled; p *= 4) {
        // take the best of several runs: the modeled cost is deterministic,
        // so the minimum is the cleanest estimator under scheduling noise
        simmpi::QueryTimes best{};
        for (int rep = 0; rep < 5; ++rep) {
            const simmpi::QueryTimes t =
                simmpi::modeled_query(spec, files[0], p, simmpi::NetModel{});
            if (rep == 0 || t.total_s < best.total_s)
                best = t;
        }
        std::printf("%8d %12.5f %12.5f %12.5f %8zu\n", p, best.total_s,
                    best.local_s, best.reduce_s, best.output_records);
    }

    std::printf("\n# paper: local time flat (weak scaling), reduction "
                "logarithmic in nprocs, 85 output records\n");
    std::filesystem::remove_all(dir);
    return 0;
}
