// Figure 5 reproduction: low-overhead kernel profile from sampling
// (paper §VI-B). On-line scheme: AGGREGATE count GROUP BY kernel at 100 Hz
// sampling; off-line: AGGREGATE sum(aggregate.count) GROUP BY kernel.
//
// Expected shape: most samples accumulate *outside* the annotated kernels
// (the unannotated flux computation, regridding, halo packing); among the
// annotated kernels, calc-dt dominates (it sweeps all levels and contains
// the dt reduction).
#include "bench_common.hpp"

#include <iostream>

using namespace calib;
using namespace calib::bench;

int main() {
    BenchSetup setup;
    setup.app.steps = env_int("CALIB_BENCH_STEPS", 40);
    // the paper samples at 100 Hz over a ~20 s run; our run is ~100x
    // shorter, so the default samples proportionally faster
    const int freq = env_int("CALIB_BENCH_SAMPLE_HZ", 2000);

    std::printf("# Figure 5: profile of user-annotated computational kernels\n");
    std::printf("# CleverLeaf-sim %dx%d, %d steps, %d ranks, %d Hz sampling\n\n",
                setup.app.nx, setup.app.ny, setup.app.steps, setup.ranks, freq);

    // stage 1 (on-line): count samples per kernel on each process
    const RunResult run = run_clever(setup,
                                     "services.enable=sampler,aggregate\n"
                                     "sampler.frequency=" + std::to_string(freq) +
                                     "\n"
                                     "aggregate.query=AGGREGATE count GROUP BY kernel\n",
                                     /*keep_records=*/true);

    std::printf("# %llu samples total; per-process profiles: %llu records\n\n",
                static_cast<unsigned long long>(run.snapshots),
                static_cast<unsigned long long>(run.output_records));

    // stage 2 (off-line): total samples per kernel across processes;
    // uses the paper's spelling "aggregate.count" for the on-line result
    run_query("SELECT kernel, sum(aggregate.count) AS samples, "
              "percent_total(count) AS \"%\" "
              "GROUP BY kernel ORDER BY samples DESC",
              run.records, std::cout);

    std::printf("\n# (empty kernel row = samples outside annotated kernels)\n"
                "# paper: calc-dt dominates annotated kernels; most samples "
                "fall outside them\n");
    return 0;
}
