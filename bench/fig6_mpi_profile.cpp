// Figure 6 reproduction: MPI function profile (paper §VI-C).
// On-line scheme: AGGREGATE count, time.duration GROUP BY mpi.function;
// off-line: accumulate across processes and report the top-10 functions.
//
// Expected shape: barrier synchronization dominates (end-of-step barriers
// absorb the AMR load imbalance), followed by allreduce (the dt
// reduction); point-to-point time is comparatively small.
#include "bench_common.hpp"

#include <iostream>

using namespace calib;
using namespace calib::bench;

int main() {
    BenchSetup setup;

    std::printf("# Figure 6: MPI function profile of CleverLeaf-sim\n");
    std::printf("# %dx%d, %d steps, %d ranks, event-based collection\n\n",
                setup.app.nx, setup.app.ny, setup.app.steps, setup.ranks);

    const RunResult run =
        run_clever(setup,
                   "services.enable=event,timer,aggregate\n"
                   "aggregate.query=AGGREGATE count, time.duration "
                   "GROUP BY mpi.function\n",
                   /*keep_records=*/true);

    run_query("SELECT mpi.function, sum(aggregate.count) AS count, "
              "sum(sum#time.duration) AS \"time (us)\", "
              "percent_total(sum#time.duration) AS \"%\" "
              "WHERE mpi.function "
              "GROUP BY mpi.function ORDER BY \"time (us)\" DESC LIMIT 10",
              run.records, std::cout);

    std::printf("\n# paper: MPI_Barrier >> MPI_Allreduce >> point-to-point\n");
    return 0;
}
