// Figure 3 reproduction: on-line aggregation overhead.
//
// Runs the instrumented CleverLeaf-sim under nine configurations —
// baseline (no data collection), tracing, and aggregation schemes A/B/C,
// each in sampled and event-based collection modes — and reports the
// median wall-clock/CPU time and run-to-run variation (paper: 5 runs).
//
// Configurations are interleaved round-robin across repetitions so that
// slow environmental drift (shared machine, thermal) cancels out, and the
// overhead is computed from process CPU time, which is much less noisy
// than wall-clock on an oversubscribed core.
//
// Expected shape (paper §V-B): sampling-mode overhead is small and flat
// across configurations; event-mode overheads are a few percent; tracing
// is slightly cheaper than aggregating; scheme C (per-iteration keys) is
// the most expensive aggregation scheme.
#include "bench_common.hpp"

#include <algorithm>
#include <vector>

using namespace calib::bench;

namespace {

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

int main() {
    BenchSetup setup;
    setup.reps = env_int("CALIB_BENCH_REPS", 5);

    struct Config {
        const char* name;
        std::string profile;
    };
    const Config configs[] = {
        {"baseline         ", ""},
        {"trace    (sample)", scheme_profile('T', false)},
        {"scheme A (sample)", scheme_profile('A', false)},
        {"scheme B (sample)", scheme_profile('B', false)},
        {"scheme C (sample)", scheme_profile('C', false)},
        {"trace    (event) ", scheme_profile('T', true)},
        {"scheme A (event) ", scheme_profile('A', true)},
        {"scheme B (event) ", scheme_profile('B', true)},
        {"scheme C (event) ", scheme_profile('C', true)},
    };
    constexpr int n_configs = static_cast<int>(std::size(configs));

    std::printf("# Figure 3: on-line aggregation overhead\n");
    std::printf("# CleverLeaf-sim %dx%d, %d steps, %d ranks, %d interleaved reps\n",
                setup.app.nx, setup.app.ny, setup.app.steps, setup.ranks,
                setup.reps);

    // warm-up (thread pools, allocator, string interning)
    run_clever(setup, "");

    std::vector<std::vector<double>> wall(n_configs), cpu(n_configs);
    for (int rep = 0; rep < setup.reps; ++rep) {
        for (int i = 0; i < n_configs; ++i) {
            const RunResult r = run_clever(setup, configs[i].profile);
            wall[i].push_back(r.wall_s);
            cpu[i].push_back(r.cpu_s);
        }
    }

    std::printf("%-19s %11s %11s %11s %11s %10s\n", "config", "wall med",
                "wall min", "wall max", "cpu med", "overhead");
    const double baseline_cpu = median(cpu[0]);
    for (int i = 0; i < n_configs; ++i) {
        const double wall_med = median(wall[i]);
        const double cpu_med  = median(cpu[i]);
        const double overhead =
            100.0 * (cpu_med - baseline_cpu) / baseline_cpu;
        std::printf("%-19s %11.4f %11.4f %11.4f %11.4f %9.2f%%\n", configs[i].name,
                    wall_med, *std::min_element(wall[i].begin(), wall[i].end()),
                    *std::max_element(wall[i].begin(), wall[i].end()), cpu_med,
                    overhead);
    }

    std::printf("\n# paper: sampling overhead ~0.85%%, event-mode 2-3.3%%;\n"
                "# tracing slightly cheaper than aggregation; C > A >= B\n");
    return 0;
}
