// calib-proxyd ingest throughput and live query latency.
//
// Starts an in-process daemon on a unix socket, then measures, for
// 1/4/16 concurrent clients, (a) aggregate ingest throughput — every
// client streams the same generated record mix and the clock stops when
// all records are folded (per-connection query acks prove folding) —
// and (b) live CalQL query latency against the loaded channel.
//
// The daemon is a single-threaded serialization point, so total ingest
// throughput should stay roughly flat as clients increase while per-
// client throughput divides; query latency grows with channel size, not
// client count. Emits JSON to stdout and BENCH_proxyd.json.
//
// Environment knobs:
//   CALIB_BENCH_PROXYD_RECORDS  records per client   (default 50000)
//   CALIB_BENCH_PROXYD_REPS     reps per point       (default 3; best kept)
//   CALIB_BENCH_PROXYD_QUERIES  query-latency reps   (default 25)
#include "bench_common.hpp"
#include "net/client.hpp"
#include "proxyd/daemon.hpp"
#include "runtime/clock.hpp"

#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace calib;
using namespace calib::bench;

namespace {

std::string socket_path(int serial) {
    return "/tmp/calib-bench-proxyd-" + std::to_string(getpid()) + "-" +
           std::to_string(serial) + ".sock";
}

/// One client's worth of traffic: a deterministic kernel/rank/value mix
/// (splitmix64) shaped like a typical per-rank profile stream.
void push_records(net::ProxyClient& client, int n, std::uint64_t seed) {
    static const char* kKernels[] = {"advec_cell", "advec_mom", "pdv",
                                     "viscosity", "accelerate"};
    AttributeRegistry registry;
    IdRecord rec;
    const id_t kernel = registry.create("kernel", Variant::Type::String, 0).id();
    const id_t rank   = registry.create("mpi.rank", Variant::Type::Int, 0).id();
    const id_t iter   = registry.create("iter", Variant::Type::Int, 0).id();
    const id_t value  = registry.create("val", Variant::Type::Int, 0).id();

    std::uint64_t state = seed;
    auto next           = [&]() {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    for (int i = 0; i < n; ++i) {
        rec.clear();
        rec.append(kernel, Variant(std::string_view(kKernels[next() % 5])));
        rec.append(rank, Variant(static_cast<std::int64_t>(next() % 16)));
        rec.append(iter, Variant(static_cast<std::int64_t>(next() % 100)));
        rec.append(value, Variant(static_cast<std::int64_t>(next() % 10000)));
        client.push(registry, rec);
    }
}

} // namespace

int main() {
    const int records_per_client = env_int("CALIB_BENCH_PROXYD_RECORDS", 50000);
    const int reps               = env_int("CALIB_BENCH_PROXYD_REPS", 3);
    const int query_reps         = env_int("CALIB_BENCH_PROXYD_QUERIES", 25);
    const int client_counts[]    = {1, 4, 16};

    std::ostringstream json;
    json << "{\n  \"bench\": \"proxyd\",\n  " << meta_json() << ",\n"
         << "  \"records_per_client\": " << records_per_client
         << ",\n  \"results\": [";

    std::printf("# proxyd: %d records/client, best of %d reps\n",
                records_per_client, reps);
    std::printf("%8s %12s %16s %14s %14s\n", "clients", "ingest (s)",
                "records/sec", "query avg(ms)", "query min(ms)");

    int serial = 0;
    bool first = true;
    for (int nclients : client_counts) {
        double best_ingest_s = 0;
        double query_avg_ms = 0, query_min_ms = 0;
        const std::uint64_t total_records =
            static_cast<std::uint64_t>(nclients) * records_per_client;

        for (int rep = 0; rep < reps; ++rep) {
            proxyd::DaemonOptions opts;
            opts.listen = socket_path(serial++);
            proxyd::ProxyDaemon daemon(opts);
            daemon.start();
            std::thread loop([&] { daemon.run(); });

            const std::uint64_t t0 = now_ns();
            std::vector<std::thread> pushers;
            for (int cl = 0; cl < nclients; ++cl) {
                pushers.emplace_back([&, cl] {
                    net::ProxyClient::Options copts;
                    copts.address     = daemon.ingest_address();
                    copts.channel     = "bench";
                    copts.client_name = "bench-" + std::to_string(cl);
                    net::ProxyClient client(copts);
                    push_records(client, records_per_client,
                                 0x1234u + static_cast<std::uint64_t>(cl));
                    // the ack proves every record on this connection folded
                    client.query("AGGREGATE count FORMAT csv");
                    client.close();
                });
            }
            for (std::thread& t : pushers)
                t.join();
            const double ingest_s = static_cast<double>(now_ns() - t0) * 1e-9;
            if (rep == 0 || ingest_s < best_ingest_s)
                best_ingest_s = ingest_s;

            if (daemon.stats().records != total_records)
                std::fprintf(stderr, "# WARNING: folded %llu of %llu records\n",
                             static_cast<unsigned long long>(
                                 daemon.stats().records),
                             static_cast<unsigned long long>(total_records));

            // query latency over the loaded channel (last rep only)
            if (rep == reps - 1) {
                net::ProxyClient::Options copts;
                copts.address     = daemon.ingest_address();
                copts.channel     = "bench";
                copts.client_name = "bench-query";
                net::ProxyClient qc(copts);
                double sum_ms = 0, min_ms = 0;
                for (int q = 0; q < query_reps; ++q) {
                    const std::uint64_t q0 = now_ns();
                    qc.query("AGGREGATE count,sum(val) GROUP BY kernel "
                             "FORMAT csv");
                    const double ms =
                        static_cast<double>(now_ns() - q0) * 1e-6;
                    sum_ms += ms;
                    min_ms = (q == 0 || ms < min_ms) ? ms : min_ms;
                }
                qc.close();
                query_avg_ms = sum_ms / query_reps;
                query_min_ms = min_ms;
            }

            daemon.stop();
            loop.join();
        }

        const double rps = static_cast<double>(total_records) / best_ingest_s;
        std::printf("%8d %12.4f %16.0f %14.3f %14.3f\n", nclients,
                    best_ingest_s, rps, query_avg_ms, query_min_ms);
        json << (first ? "" : ",") << "\n    {\"clients\": " << nclients
             << ", \"ingest_s\": " << best_ingest_s
             << ", \"records_per_sec\": " << rps
             << ", \"query_avg_ms\": " << query_avg_ms
             << ", \"query_min_ms\": " << query_min_ms << "}";
        first = false;
    }
    json << "\n  ]\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_proxyd.json") << json.str();
    std::printf("# wrote BENCH_proxyd.json\n");
    return 0;
}
