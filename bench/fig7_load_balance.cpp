// Figure 7 reproduction: load-balance study (paper §VI-D).
// On-line scheme: AGGREGATE time.duration GROUP BY kernel, mpi.function,
// mpi.rank; the off-line stage compares values *across ranks*: the figure's
// box distributions become min/avg/max rows here.
//
// Expected shape: mild imbalance in total computation mirrored by MPI
// (barrier wait) time; the top kernels account for only part of the
// computational imbalance; advec-mom is nearly balanced.
#include "bench_common.hpp"

#include <iostream>

using namespace calib;
using namespace calib::bench;

namespace {

void report(const char* title, const char* where, const char* group_extra,
            const std::vector<RecordMap>& profile) {
    std::printf("\n-- %s --\n", title);
    // stage A: per-rank totals
    // "mpi.rank" in WHERE keeps out the few startup records captured
    // before the rank attribute was set
    std::string q1 = std::string("AGGREGATE sum(sum#time.duration) AS t ") +
                     "WHERE mpi.rank, " + where + " GROUP BY mpi.rank" + group_extra;
    auto per_rank = run_query(q1, profile);
    // stage B: distribution across ranks
    std::string q2 = "SELECT ";
    if (*group_extra)
        q2 += std::string(group_extra + 1) + ", "; // strip leading comma
    q2 += "min(t) AS \"min (us)\", avg(t) AS \"avg (us)\", max(t) AS \"max (us)\" ";
    if (*group_extra)
        q2 += std::string("GROUP BY ") + (group_extra + 1) + " ORDER BY \"max (us)\" DESC LIMIT 4";
    run_query(q2, per_rank, std::cout);
}

} // namespace

int main() {
    BenchSetup setup;
    setup.ranks = env_int("CALIB_BENCH_RANKS", 6); // paper Fig. 7: 18 ranks

    std::printf("# Figure 7: time distribution across MPI ranks\n");
    std::printf("# %dx%d, %d steps, %d ranks\n", setup.app.nx, setup.app.ny,
                setup.app.steps, setup.ranks);

    const RunResult run =
        run_clever(setup,
                   "services.enable=event,timer,aggregate\n"
                   "aggregate.query=AGGREGATE sum(time.duration) "
                   "GROUP BY kernel, mpi.function, mpi.rank\n",
                   /*keep_records=*/true);

    report("total computation time per rank", "not(mpi.function)", "", run.records);
    report("total MPI time per rank", "mpi.function", "", run.records);
    report("top kernels: distribution across ranks", "kernel", ",kernel",
           run.records);
    report("top MPI functions: distribution across ranks", "mpi.function",
           ",mpi.function", run.records);

    std::printf("\n# paper: small computation imbalance echoed in MPI time;\n"
                "# top-2 kernels explain <half of it; advec-mom balanced\n");
    return 0;
}
