// Offline record pipeline throughput: records/sec of the single-thread
// read -> LET/WHERE -> aggregate path, comparing
//
//   name path  — legacy per-record resolution: the reader emits name-based
//                RecordMaps and the processor resolves every attribute of
//                every record against the registry (process_offline shim);
//   id path    — resolve-once pipeline: the reader resolves each attribute
//                name once at its definition line and streams id-based
//                records straight into the aggregation database.
//
// Both paths run the same query over the same generated ParaDiS-sim
// dataset and must render byte-identical output. Emits the measurement as
// JSON to stdout and to BENCH_record_pipeline.json (perf trajectory).
//
// Environment knobs:
//   CALIB_BENCH_RP_FILES   input files            (default 4)
//   CALIB_BENCH_RP_REPS    repetitions per path   (default 3; best is kept)
#include "apps/paradis/generator.hpp"
#include "bench_common.hpp"
#include "io/calireader.hpp"
#include "obs/metrics.hpp"
#include "query/calql.hpp"
#include "query/processor.hpp"
#include "runtime/clock.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace calib;
using namespace calib::bench;

namespace {

struct Measurement {
    double wall_s = 0;
    std::uint64_t records = 0;
    std::string output;
};

Measurement run_name_path(const QuerySpec& spec,
                          const std::vector<std::string>& files) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    QueryProcessor proc(spec);
    for (const std::string& file : files)
        CaliReader::read_file(file,
                              [&proc](RecordMap&& r) { proc.add(r); });
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

Measurement run_id_path(const QuerySpec& spec,
                        const std::vector<std::string>& files) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    QueryProcessor proc(spec);
    for (const std::string& file : files)
        CaliReader::read_file(file, *proc.registry(),
                              [&proc](IdRecord&& r) { proc.add(std::move(r)); });
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

template <typename Fn> Measurement best_of(int reps, Fn&& run) {
    Measurement best;
    for (int i = 0; i < reps; ++i) {
        Measurement m = run();
        if (i == 0 || m.wall_s < best.wall_s)
            best.wall_s = m.wall_s;
        if (i == 0) {
            best.records = m.records;
            best.output  = std::move(m.output);
        }
    }
    return best;
}

} // namespace

int main() {
    const int nfiles = env_int("CALIB_BENCH_RP_FILES", 4);
    const int reps   = env_int("CALIB_BENCH_RP_REPS", 3);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-rp-data").string();

    paradis::ParadisConfig dataset_config;
    std::printf("# record pipeline: generating %d files x %d records...\n",
                nfiles, dataset_config.records_per_file);
    const std::vector<std::string> files =
        paradis::generate_dataset(dir, nfiles, dataset_config);

    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration),count GROUP BY kernel,mpi.function");

    const Measurement name_path =
        best_of(reps, [&] { return run_name_path(spec, files); });

    // resolve-once accounting comes from the "reader.*" metrics; enabling
    // them costs one relaxed fetch_add per event, negligible vs. parsing
    calib::obs::set_enabled(true);
    const auto& mreg = calib::obs::MetricsRegistry::instance();
    const std::int64_t res0     = mreg.value("reader.name_resolutions");
    const std::int64_t entries0 = mreg.value("reader.entries");
    const Measurement id_path =
        best_of(reps, [&] { return run_id_path(spec, files); });
    // accumulated over reps; the ratio below is rep-invariant
    const std::int64_t name_resolutions =
        mreg.value("reader.name_resolutions") - res0;
    const std::int64_t entries = mreg.value("reader.entries") - entries0;
    calib::obs::set_enabled(false);

    const bool identical  = name_path.output == id_path.output;
    const double name_rps = static_cast<double>(name_path.records) / name_path.wall_s;
    const double id_rps   = static_cast<double>(id_path.records) / id_path.wall_s;
    const double speedup  = name_path.wall_s / id_path.wall_s;
    // resolutions per entry on the id path (resolve-once contract: ≪ 1)
    const double res_per_entry =
        static_cast<double>(name_resolutions) / static_cast<double>(entries);

    std::printf("%12s %12s %16s %10s\n", "path", "wall (s)", "records/sec",
                "speedup");
    std::printf("%12s %12.5f %16.0f %10s\n", "name", name_path.wall_s, name_rps, "1.00");
    std::printf("%12s %12.5f %16.0f %10.2f\n", "id", id_path.wall_s, id_rps, speedup);
    std::printf("# identical output: %s\n", identical ? "yes" : "NO");
    std::printf("# reader: %llu records, %lld entries, %lld name resolutions "
                "(%.6f per entry)\n",
                static_cast<unsigned long long>(id_path.records),
                static_cast<long long>(entries),
                static_cast<long long>(name_resolutions), res_per_entry);

    std::ostringstream json;
    json << "{\n  \"bench\": \"record_pipeline\",\n"
         << "  \"files\": " << nfiles << ",\n"
         << "  \"records\": " << id_path.records << ",\n  \"results\": [\n"
         << "    {\"path\": \"name\", \"wall_s\": " << name_path.wall_s
         << ", \"records_per_sec\": " << name_rps << ", \"speedup\": 1.0},\n"
         << "    {\"path\": \"id\", \"wall_s\": " << id_path.wall_s
         << ", \"records_per_sec\": " << id_rps << ", \"speedup\": " << speedup
         << "}\n  ],\n"
         << "  \"identical_output\": " << (identical ? "true" : "false") << ",\n"
         << "  \"reader_name_resolutions\": " << name_resolutions << ",\n"
         << "  \"reader_entries\": " << entries << ",\n"
         << "  \"resolutions_per_entry\": " << res_per_entry << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_record_pipeline.json") << json.str();
    std::printf("# wrote BENCH_record_pipeline.json\n");

    std::filesystem::remove_all(dir);
    return identical ? 0 : 1;
}
