// Offline record pipeline throughput: records/sec of the single-thread
// read -> LET/WHERE -> aggregate path, comparing
//
//   name path  — legacy per-record resolution: the reader emits name-based
//                RecordMaps and the processor resolves every attribute of
//                every record against the registry (process_offline shim);
//   id path    — resolve-once pipeline: the reader resolves each attribute
//                name once at its definition line and streams id-based
//                records straight into the aggregation database.
//
// Both paths run the same query over the same generated ParaDiS-sim
// dataset and must render byte-identical output. Emits the measurement as
// JSON to stdout and to BENCH_record_pipeline.json (perf trajectory).
//
// A second section measures raw .cali ingest on one large file — getline
// (istream) vs the zero-copy mmap buffer vs the read() fallback, plus the
// parallel engine at t1/t2/t4 over byte-range morsels — and writes
// BENCH_io.json.
//
// Environment knobs:
//   CALIB_BENCH_RP_FILES    input files                  (default 4)
//   CALIB_BENCH_RP_REPS     repetitions per path         (default 3; best kept)
//   CALIB_BENCH_IO_RECORDS  records in the big io file   (default 200000)
#include "apps/paradis/generator.hpp"
#include "bench_common.hpp"
#include "engine/parallel_processor.hpp"
#include "io/calireader.hpp"
#include "io/filebuffer.hpp"
#include "obs/metrics.hpp"
#include "query/calql.hpp"
#include "query/processor.hpp"
#include "runtime/clock.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace calib;
using namespace calib::bench;

namespace {

struct Measurement {
    double wall_s = 0;
    std::uint64_t records = 0;
    std::string output;
};

Measurement run_name_path(const QuerySpec& spec,
                          const std::vector<std::string>& files) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    QueryProcessor proc(spec);
    for (const std::string& file : files)
        CaliReader::read_file(file,
                              [&proc](RecordMap&& r) { proc.add(r); });
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

Measurement run_id_path(const QuerySpec& spec,
                        const std::vector<std::string>& files) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    QueryProcessor proc(spec);
    for (const std::string& file : files)
        CaliReader::read_file(file, *proc.registry(),
                              [&proc](IdRecord&& r) { proc.add(std::move(r)); });
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

/// Columnar path: the reader fills RecordBatches and the processor runs
/// the batched LET -> filter -> probe pipeline. With \a budget != 0 the
/// aggregation spills sorted runs beyond the memory budget.
Measurement run_batched_path(const QuerySpec& spec,
                             const std::vector<std::string>& files,
                             std::size_t batch_size, std::size_t budget) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    QueryProcessor proc(spec);
    if (budget != 0)
        proc.set_aggregation_memory_budget(budget);
    for (const std::string& file : files)
        CaliReader::read_file_batches(file, *proc.registry(), batch_size,
                                      [&proc](RecordBatch& b) { proc.add_batch(b); });
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

template <typename Fn> Measurement best_of(int reps, Fn&& run) {
    Measurement best;
    for (int i = 0; i < reps; ++i) {
        Measurement m = run();
        if (i == 0 || m.wall_s < best.wall_s)
            best.wall_s = m.wall_s;
        if (i == 0) {
            best.records = m.records;
            best.output  = std::move(m.output);
        }
    }
    return best;
}

// ------------------------------------------------------------ io section

/// Pure ingest: parse every record of \a file into a counting sink.
Measurement run_ingest_getline(const std::string& file) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    AttributeRegistry registry;
    std::uint64_t n = 0;
    std::ifstream is(file);
    CaliReader::read(is, registry, [&n](IdRecord&&) { ++n; });
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = n;
    return m;
}

Measurement run_ingest_buffer(const std::string& file) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    AttributeRegistry registry;
    std::uint64_t n = 0;
    CaliReader::read_file(file, registry, [&n](IdRecord&&) { ++n; });
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = n;
    return m;
}

/// Full query over one large file at \a threads workers (byte-range
/// morsels for threads > 1).
Measurement run_engine(const QuerySpec& spec, const std::string& file,
                       std::size_t threads) {
    Measurement m;
    const std::uint64_t t0 = now_ns();
    engine::EngineOptions opts;
    opts.threads = threads;
    engine::ParallelQueryProcessor eng(spec, opts);
    QueryProcessor& proc = eng.run({file});
    std::ostringstream os;
    proc.write(os);
    m.wall_s  = static_cast<double>(now_ns() - t0) * 1e-9;
    m.records = proc.num_records_in();
    m.output  = os.str();
    return m;
}

int run_io_bench(const QuerySpec& spec, int reps) {
    const int io_records = env_int("CALIB_BENCH_IO_RECORDS", 200000);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-io-data").string();

    paradis::ParadisConfig config;
    config.records_per_file = io_records;
    std::printf("\n# io ingest: generating 1 file x %d records...\n", io_records);
    const std::string file = paradis::generate_dataset(dir, 1, config).front();
    const double file_bytes =
        static_cast<double>(std::filesystem::file_size(file));

    const Measurement getline_m =
        best_of(reps, [&] { return run_ingest_getline(file); });
    const Measurement mmap_m =
        best_of(reps, [&] { return run_ingest_buffer(file); });
    FileBuffer::set_mmap_enabled(false);
    const Measurement buffer_m =
        best_of(reps, [&] { return run_ingest_buffer(file); });
    FileBuffer::set_mmap_enabled(true);

    const double mmap_speedup = getline_m.wall_s / mmap_m.wall_s;
    std::printf("%12s %12s %16s %16s %10s\n", "ingest", "wall (s)",
                "records/sec", "MB/sec", "speedup");
    const auto print_ingest = [&](const char* name, const Measurement& m) {
        std::printf("%12s %12.5f %16.0f %16.1f %10.2f\n", name, m.wall_s,
                    static_cast<double>(m.records) / m.wall_s,
                    file_bytes / m.wall_s * 1e-6, getline_m.wall_s / m.wall_s);
    };
    print_ingest("getline", getline_m);
    print_ingest("mmap", mmap_m);
    print_ingest("buffer", buffer_m);

    Measurement engine_m[3];
    const std::size_t thread_counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i)
        engine_m[i] = best_of(
            reps, [&] { return run_engine(spec, file, thread_counts[i]); });
    const double t4_speedup  = engine_m[0].wall_s / engine_m[2].wall_s;
    const bool identical     = engine_m[0].output == engine_m[1].output &&
                               engine_m[0].output == engine_m[2].output;

    std::printf("%12s %12s %16s %16s %10s\n", "engine", "wall (s)",
                "records/sec", "MB/sec", "speedup");
    for (int i = 0; i < 3; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "t%zu", thread_counts[i]);
        std::printf("%12s %12.5f %16.0f %16.1f %10.2f\n", name,
                    engine_m[i].wall_s,
                    static_cast<double>(engine_m[i].records) / engine_m[i].wall_s,
                    file_bytes / engine_m[i].wall_s * 1e-6,
                    engine_m[0].wall_s / engine_m[i].wall_s);
    }
    std::printf("# identical output across thread counts: %s\n",
                identical ? "yes" : "NO");

    std::ostringstream json;
    json << "{\n  \"bench\": \"io\",\n  " << meta_json() << ",\n"
         << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
         << ",\n  \"file_bytes\": " << static_cast<std::uint64_t>(file_bytes)
         << ",\n  \"records\": " << mmap_m.records << ",\n  \"ingest\": [\n";
    const auto ingest_json = [&](const char* name, const Measurement& m,
                                 bool last) {
        json << "    {\"path\": \"" << name << "\", \"wall_s\": " << m.wall_s
             << ", \"records_per_sec\": "
             << static_cast<double>(m.records) / m.wall_s
             << ", \"bytes_per_sec\": " << file_bytes / m.wall_s << "}"
             << (last ? "\n" : ",\n");
    };
    ingest_json("getline", getline_m, false);
    ingest_json("mmap", mmap_m, false);
    ingest_json("buffer", buffer_m, true);
    json << "  ],\n  \"mmap_vs_getline_speedup\": " << mmap_speedup
         << ",\n  \"engine\": [\n";
    for (int i = 0; i < 3; ++i)
        json << "    {\"threads\": " << thread_counts[i]
             << ", \"wall_s\": " << engine_m[i].wall_s
             << ", \"records_per_sec\": "
             << static_cast<double>(engine_m[i].records) / engine_m[i].wall_s
             << ", \"bytes_per_sec\": " << file_bytes / engine_m[i].wall_s
             << ", \"speedup\": " << engine_m[0].wall_s / engine_m[i].wall_s
             << "}" << (i == 2 ? "\n" : ",\n");
    json << "  ],\n  \"t4_vs_t1_speedup\": " << t4_speedup
         << ",\n  \"identical_output\": " << (identical ? "true" : "false")
         << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_io.json") << json.str();
    std::printf("# wrote BENCH_io.json\n");

    std::filesystem::remove_all(dir);
    return identical ? 0 : 1;
}

} // namespace

int main() {
    const int nfiles = env_int("CALIB_BENCH_RP_FILES", 4);
    const int reps   = env_int("CALIB_BENCH_RP_REPS", 3);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "calib-bench-rp-data").string();

    paradis::ParadisConfig dataset_config;
    std::printf("# record pipeline: generating %d files x %d records...\n",
                nfiles, dataset_config.records_per_file);
    const std::vector<std::string> files =
        paradis::generate_dataset(dir, nfiles, dataset_config);

    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration),count GROUP BY kernel,mpi.function");

    const Measurement name_path =
        best_of(reps, [&] { return run_name_path(spec, files); });

    // resolve-once accounting comes from the "reader.*" metrics; enabling
    // them costs one relaxed fetch_add per event, negligible vs. parsing
    calib::obs::set_enabled(true);
    const auto& mreg = calib::obs::MetricsRegistry::instance();
    const std::int64_t res0     = mreg.value("reader.name_resolutions");
    const std::int64_t entries0 = mreg.value("reader.entries");
    const Measurement id_path =
        best_of(reps, [&] { return run_id_path(spec, files); });
    // accumulated over reps; the ratio below is rep-invariant
    const std::int64_t name_resolutions =
        mreg.value("reader.name_resolutions") - res0;
    const std::int64_t entries = mreg.value("reader.entries") - entries0;
    calib::obs::set_enabled(false);

    // columnar batch path (PR 7): same query, same files, RecordBatch
    // morsels through the vectorized probe; must stay byte-identical
    const Measurement batched_path =
        best_of(reps, [&] { return run_batched_path(spec, files, 1024, 0); });

    // sort-spill: high-cardinality GROUP BY * under a 64 KiB budget vs
    // unbounded (spill overhead series; group set exceeds the budget)
    const QuerySpec star_spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration),count GROUP BY *");
    const Measurement inmem_path =
        best_of(reps, [&] { return run_batched_path(star_spec, files, 1024, 0); });
    const Measurement spill_path = best_of(
        reps, [&] { return run_batched_path(star_spec, files, 1024, 64 * 1024); });

    const bool identical  = name_path.output == id_path.output &&
                            id_path.output == batched_path.output;
    const double name_rps = static_cast<double>(name_path.records) / name_path.wall_s;
    const double id_rps   = static_cast<double>(id_path.records) / id_path.wall_s;
    const double batched_rps =
        static_cast<double>(batched_path.records) / batched_path.wall_s;
    const double speedup         = name_path.wall_s / id_path.wall_s;
    const double batched_speedup = name_path.wall_s / batched_path.wall_s;
    const double spill_overhead  = spill_path.wall_s / inmem_path.wall_s;
    // resolutions per entry on the id path (resolve-once contract: ≪ 1)
    const double res_per_entry =
        static_cast<double>(name_resolutions) / static_cast<double>(entries);

    std::printf("%12s %12s %16s %10s\n", "path", "wall (s)", "records/sec",
                "speedup");
    std::printf("%12s %12.5f %16.0f %10s\n", "name", name_path.wall_s, name_rps, "1.00");
    std::printf("%12s %12.5f %16.0f %10.2f\n", "id", id_path.wall_s, id_rps, speedup);
    std::printf("%12s %12.5f %16.0f %10.2f\n", "batched", batched_path.wall_s,
                batched_rps, batched_speedup);
    std::printf("# identical output: %s\n", identical ? "yes" : "NO");
    std::printf("# spill (GROUP BY *, 64 KiB budget): in-memory %.5fs, "
                "spilled %.5fs (%.2fx overhead)\n",
                inmem_path.wall_s, spill_path.wall_s, spill_overhead);
    std::printf("# reader: %llu records, %lld entries, %lld name resolutions "
                "(%.6f per entry)\n",
                static_cast<unsigned long long>(id_path.records),
                static_cast<long long>(entries),
                static_cast<long long>(name_resolutions), res_per_entry);

    std::ostringstream json;
    json << "{\n  \"bench\": \"record_pipeline\",\n  " << meta_json()
         << ",\n"
         << "  \"files\": " << nfiles << ",\n"
         << "  \"records\": " << id_path.records << ",\n  \"results\": [\n"
         << "    {\"path\": \"name\", \"wall_s\": " << name_path.wall_s
         << ", \"records_per_sec\": " << name_rps << ", \"speedup\": 1.0},\n"
         << "    {\"path\": \"id\", \"wall_s\": " << id_path.wall_s
         << ", \"records_per_sec\": " << id_rps << ", \"speedup\": " << speedup
         << "},\n"
         << "    {\"path\": \"batched\", \"wall_s\": " << batched_path.wall_s
         << ", \"records_per_sec\": " << batched_rps
         << ", \"speedup\": " << batched_speedup << "}\n  ],\n"
         << "  \"spill\": {\"inmem_wall_s\": " << inmem_path.wall_s
         << ", \"spill_wall_s\": " << spill_path.wall_s
         << ", \"overhead\": " << spill_overhead << "},\n"
         << "  \"identical_output\": " << (identical ? "true" : "false") << ",\n"
         << "  \"reader_name_resolutions\": " << name_resolutions << ",\n"
         << "  \"reader_entries\": " << entries << ",\n"
         << "  \"resolutions_per_entry\": " << res_per_entry << "\n}\n";

    std::printf("\n%s", json.str().c_str());
    std::ofstream("BENCH_record_pipeline.json") << json.str();
    std::printf("# wrote BENCH_record_pipeline.json\n");

    std::filesystem::remove_all(dir);

    const int io_rc = run_io_bench(spec, reps);
    return identical ? io_rc : 1;
}
