// Table I reproduction: number of snapshots and output records
// (aggregation results) per process, for tracing and aggregation schemes
// A/B/C in sampled and event-based collection modes.
//
// Expected shape (paper §V-B): tracing's output equals its snapshot count;
// scheme B produces the fewest records; scheme C (per-iteration keys)
// produces far more records than A, yet remains ~32x smaller than the
// event-mode trace.
#include "bench_common.hpp"

using namespace calib::bench;

int main() {
    BenchSetup setup;

    struct Config {
        const char* name;
        char scheme;
        bool event;
    };
    const Config configs[] = {
        {"Trace    (sample)", 'T', false}, {"Scheme A (sample)", 'A', false},
        {"Scheme B (sample)", 'B', false}, {"Scheme C (sample)", 'C', false},
        {"Trace    (event)", 'T', true},   {"Scheme A (event)", 'A', true},
        {"Scheme B (event)", 'B', true},   {"Scheme C (event)", 'C', true},
    };

    std::printf("# Table I: snapshots and output records per process\n");
    std::printf("# CleverLeaf-sim %dx%d, %d steps, %d ranks\n", setup.app.nx,
                setup.app.ny, setup.app.steps, setup.ranks);
    std::printf("%-20s %14s %16s %10s\n", "Config", "Snapshots", "Output records",
                "ratio");

    double trace_event_records = 0, scheme_c_event_records = 0;
    for (const Config& config : configs) {
        const RunResult r =
            run_clever(setup, scheme_profile(config.scheme, config.event));
        const double snaps_per_proc =
            static_cast<double>(r.snapshots) / setup.ranks;
        const double recs_per_proc =
            static_cast<double>(r.output_records) / setup.ranks;
        std::printf("%-20s %14.0f %16.0f %9.1f%%\n", config.name, snaps_per_proc,
                    recs_per_proc, 100.0 * recs_per_proc / snaps_per_proc);
        if (config.event && config.scheme == 'T')
            trace_event_records = recs_per_proc;
        if (config.event && config.scheme == 'C')
            scheme_c_event_records = recs_per_proc;
    }

    if (scheme_c_event_records > 0)
        std::printf("\n# event trace / scheme C size ratio: %.1fx (paper: ~32x)\n",
                    trace_event_records / scheme_c_event_records);
    return 0;
}
