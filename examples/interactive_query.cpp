// Interactive analytical aggregation (paper §II-C): a small REPL over a
// .cali dataset. Generates a demo dataset if none is given.
//
//   ./examples/interactive_query [file.cali ...]
//
// then type CalQL queries, e.g.:
//   AGGREGATE sum(count) GROUP BY kernel ORDER BY sum#count DESC LIMIT 5
//   AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) GROUP BY mpi.rank
//   help | quit
#include "apps/paradis/generator.hpp"
#include "calib.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    std::vector<calib::RecordMap> records;

    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            calib::CaliReader::read_file(argv[i], [&records](calib::RecordMap&& r) {
                records.push_back(std::move(r));
            });
        std::printf("loaded %zu records from %d file(s)\n", records.size(),
                    argc - 1);
    } else {
        std::puts("no input files: generating a demo dataset (4 ranks of the "
                  "ParaDiS-sim profile)");
        calib::paradis::ParadisConfig cfg;
        auto paths = calib::paradis::generate_dataset("/tmp/calib-demo", 4, cfg);
        for (const auto& p : paths)
            calib::CaliReader::read_file(p, [&records](calib::RecordMap&& r) {
                records.push_back(std::move(r));
            });
        std::printf("loaded %zu records\n", records.size());
    }

    std::puts("enter CalQL queries ('help' for syntax, 'quit' to exit):");
    std::string line;
    while (std::printf("calql> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
        if (line == "quit" || line == "exit")
            break;
        if (line.empty())
            continue;
        if (line == "help") {
            std::puts("clauses: SELECT cols | AGGREGATE op(attr),... | "
                      "GROUP BY attrs|* | WHERE conds |\n"
                      "         LET x=scale|truncate|ratio|first(...) | "
                      "ORDER BY attr [DESC] |\n"
                      "         FORMAT table|csv|json|expand|tree | LIMIT n\n"
                      "ops: count sum min max avg variance histogram "
                      "percent_total");
            continue;
        }
        try {
            calib::run_query(line, records, std::cout);
        } catch (const calib::CalQLError& e) {
            std::printf("query error at position %zu: %s\n", e.position(), e.what());
        } catch (const std::exception& e) {
            std::printf("error: %s\n", e.what());
        }
    }
    return 0;
}
