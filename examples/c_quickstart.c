/* C-API quickstart: instrument a plain C program with calib annotations
 * (the paper's Listing 1 in C), aggregate online, and write a report at
 * channel close via the report service.
 *
 * Build & run:  ./examples/c_quickstart
 */
#include "capi/calib_c.h"

#include <stdio.h>

static volatile double sink = 0;

static void spin(int units) {
    for (int i = 0; i < units * 20000; ++i)
        sink += i;
}

static void foo(int i) {
    calib_begin_string("function", "foo");
    spin(i);
    calib_end("function");
}

static void bar(int i) {
    calib_begin_string("function", "bar");
    spin(i);
    calib_end("function");
}

int main(void) {
    printf("calib %s — C API quickstart\n\n", calib_version());

    int channel = calib_channel_create(
        "c-quickstart",
        "services.enable=event,timer,aggregate,report\n"
        "aggregate.query=AGGREGATE count, sum(time.duration) "
        "GROUP BY function, loop.iteration\n"
        "report.query=SELECT function, sum(count) AS count, "
        "sum(sum#time.duration) AS \"time (us)\" GROUP BY function "
        "ORDER BY function\n"
        "report.filename=stdout\n");
    if (channel < 0) {
        fprintf(stderr, "channel creation failed\n");
        return 1;
    }

    for (int i = 0; i < 4; ++i) {
        calib_begin_int("loop.iteration", i);
        foo(1);
        foo(2);
        bar(1);
        calib_end("loop.iteration");
    }

    /* the report service prints the cross-iteration profile on close */
    calib_channel_close(channel);
    return 0;
}
