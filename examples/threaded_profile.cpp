// Multithreaded profiling: per-thread aggregation databases (paper §IV-B)
// plus the two ways to combine them — per-thread rows (include a thread id
// in the key) and the in-memory cross-thread merge (flush_cross_thread,
// addressing the paper's "aggregation across threads requires a
// post-processing step" limitation).
//
// Build & run:  ./examples/threaded_profile
#include "calib.hpp"
#include "runtime/services/aggregate_config.hpp"

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

namespace {

void worker(int tid, int items) {
    calib::Annotation thread_id("thread.id", calib::prop::as_value);
    calib::Annotation phase("phase");
    thread_id.set(calib::Variant(tid));

    volatile double sink = 0;
    for (int i = 0; i < items; ++i) {
        phase.begin(calib::Variant(i % 2 ? "transform" : "load"));
        for (int k = 0; k < 20000 * (tid + 1); ++k)
            sink = sink + k;
        phase.end();
    }
}

} // namespace

int main() {
    calib::Caliper& c = calib::Caliper::instance();
    calib::Channel* channel = c.create_channel(
        "threads", calib::RuntimeConfig{
                       {"services.enable", "event,timer,aggregate"},
                       {"aggregate.key", "phase,thread.id"},
                       {"aggregate.ops", "count,sum(time.duration)"},
                   });

    constexpr int n_threads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back(worker, t, 8);
    for (auto& t : threads)
        t.join();

    // view 1: per-(phase, thread) rows — each thread's database flushed
    std::vector<calib::RecordMap> per_thread;
    c.flush_all(channel, [&per_thread](calib::RecordMap&& r) {
        per_thread.push_back(std::move(r));
    });
    std::puts("== Per-thread profile (thread.id in the aggregation key) ==\n");
    calib::run_query("SELECT phase, thread.id, count, "
                     "sum#time.duration AS \"time (us)\" "
                     "WHERE phase ORDER BY phase, thread.id",
                     per_thread, std::cout);

    // view 2: one row per phase, all threads merged in memory
    std::vector<calib::RecordMap> merged;
    calib::flush_cross_thread(c, channel, [&merged](calib::RecordMap&& r) {
        merged.push_back(std::move(r));
    });
    std::puts("\n== Cross-thread merge + per-phase totals ==\n");
    calib::run_query("SELECT phase, sum(count) AS count, "
                     "sum(sum#time.duration) AS \"time (us)\" "
                     "WHERE phase GROUP BY phase ORDER BY phase",
                     merged, std::cout);

    c.close_channel(channel);
    std::puts("\nThe merged 'count' is the sum of the per-thread counts; no\n"
              "intermediate files or post-processing step involved.");
    return 0;
}
