// Quickstart: the paper's Listing 1, end to end.
//
// Annotate a program with mark_begin/mark_end, configure an online
// aggregation scheme, and print the resulting time-series function profile
// (§III-B's example table), plus the compact variant without the
// loop-iteration key.
//
// Build & run:  ./examples/quickstart
#include "calib.hpp"

#include <cstdio>
#include <iostream>

namespace {

// --- the annotated example program of Listing 1 ------------------------------

void spin(int units) {
    volatile double x = 0;
    for (int i = 0; i < units * 20000; ++i)
        x = x + i;
}

void foo(int i) {
    calib::mark_begin("function", "foo");
    spin(i);
    calib::mark_end("function", "foo");
}

void bar(int i) {
    calib::mark_begin("function", "bar");
    spin(i);
    calib::mark_end("function", "bar");
}

void annotated_program() {
    for (int i = 0; i < 4; ++i) {
        calib::mark_begin("loop.iteration", i);
        foo(1);
        foo(2);
        bar(1);
        calib::mark_end("loop.iteration", i);
    }
}

} // namespace

int main() {
    calib::Caliper& c = calib::Caliper::instance();

    // Configure the measurement: snapshot on every annotation event, add
    // time measurements, aggregate online. The aggregation scheme is the
    // paper's: AGGREGATE count, sum(time) GROUP BY function, loop.iteration
    calib::Channel* channel = c.create_channel(
        "quickstart",
        calib::RuntimeConfig{
            {"services.enable", "event,timer,aggregate"},
            {"aggregate.query", "AGGREGATE count, sum(time.duration) "
                                "GROUP BY function, loop.iteration"},
        });

    annotated_program();

    // Flush this thread's aggregation database into offline records.
    std::vector<calib::RecordMap> profile;
    c.flush_thread(channel, [&profile](calib::RecordMap&& r) {
        profile.push_back(std::move(r));
    });
    c.close_channel(channel);

    std::puts("== Time-series function profile "
              "(AGGREGATE count, sum(time.duration) "
              "GROUP BY function, loop.iteration) ==\n");
    calib::run_query("SELECT function, loop.iteration, count, sum#time.duration "
                     "ORDER BY loop.iteration, function",
                     profile, std::cout);

    std::puts("\n== Compact profile (GROUP BY function) — second-stage "
              "aggregation of the profile above ==\n");
    calib::run_query("AGGREGATE sum(count), sum(sum#time.duration) "
                     "GROUP BY function ORDER BY function",
                     profile, std::cout);

    std::puts("\nNote the rows with an empty 'function' column: they hold the\n"
              "events where no function was active (paper, Section III-B).");
    return 0;
}
