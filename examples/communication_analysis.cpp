// Communication-overhead analysis (paper §VI-C and §VI-D):
// run the CleverLeaf-sim mini-app on several simmpi ranks with MPI
// interception, then analyze (a) the per-MPI-function time profile and
// (b) the load balance across ranks — two different questions answered
// from the same run by changing only the aggregation scheme.
//
// Build & run:  ./examples/communication_analysis
#include "apps/cleverleaf/driver.hpp"
#include "calib.hpp"
#include "mpisim/runtime.hpp"

#include <cstdio>
#include <iostream>
#include <mutex>

int main() {
    calib::Caliper& c = calib::Caliper::instance();

    // one online aggregation channel; the key keeps function/kernel/rank
    // dimensions so several offline questions can be asked later
    calib::Channel* channel = c.create_channel(
        "comm-analysis",
        calib::RuntimeConfig{
            {"services.enable", "event,timer,aggregate"},
            {"aggregate.key", "kernel,mpi.function,mpi.rank"},
            {"aggregate.ops", "count,sum(time.duration)"},
        });

    calib::clever::CleverConfig config;
    config.nx    = 128;
    config.ny    = 64;
    config.steps = 12;

    std::mutex mutex;
    std::vector<calib::RecordMap> profile;
    calib::simmpi::run(4, [&](calib::simmpi::Comm& comm) {
        calib::clever::run_rank(comm, config);
        std::vector<calib::RecordMap> mine;
        c.flush_thread(channel, [&mine](calib::RecordMap&& r) {
            mine.push_back(std::move(r));
        });
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& r : mine)
            profile.push_back(std::move(r));
    });
    c.close_channel(channel);

    std::puts("== MPI function profile (paper Fig. 6):\n"
              "   AGGREGATE count, time.duration GROUP BY mpi.function ==\n");
    calib::run_query("AGGREGATE sum(count) AS count, "
                     "sum(sum#time.duration) AS \"time (us)\" "
                     "WHERE mpi.function GROUP BY mpi.function "
                     "ORDER BY \"time (us)\" DESC",
                     profile, std::cout);

    std::puts("\n== Load balance (paper Fig. 7): time per rank, computation "
              "vs MPI ==\n");
    calib::run_query("AGGREGATE sum(sum#time.duration) AS \"compute (us)\" "
                     "WHERE not(mpi.function) GROUP BY mpi.rank "
                     "ORDER BY mpi.rank",
                     profile, std::cout);
    std::puts("");
    calib::run_query("AGGREGATE sum(sum#time.duration) AS \"mpi (us)\" "
                     "WHERE mpi.function GROUP BY mpi.rank ORDER BY mpi.rank",
                     profile, std::cout);

    std::puts("\n== Per-kernel imbalance: min/max across ranks ==\n");
    // second-stage aggregation over the per-rank profile
    auto per_rank = calib::run_query(
        "AGGREGATE sum(sum#time.duration) AS t GROUP BY kernel,mpi.rank "
        "WHERE kernel",
        profile);
    calib::run_query("AGGREGATE min(t),max(t),avg(t) GROUP BY kernel "
                     "ORDER BY max#t DESC",
                     per_rank, std::cout);
    return 0;
}
