// Call-path profiling: the classic profile type of traditional HPC tools
// (paper §VII), expressed in calib's flexible model — the path service
// exports the function nesting stack as a '/'-joined attribute, GROUP BY
// that attribute yields the call-path profile, and FORMAT tree renders it.
//
// Build & run:  ./examples/callpath_profile
#include "calib.hpp"

#include <cstdio>
#include <iostream>

namespace {

volatile double sink = 0;

void spin(int units) {
    for (int i = 0; i < units * 30000; ++i)
        sink = sink + i;
}

calib::Annotation fn("function");

struct Fn {
    explicit Fn(const char* name) { fn.begin(calib::Variant(name)); }
    ~Fn() { fn.end(); }
};

void smooth() {
    Fn f("smooth");
    spin(1);
}

void residual() {
    Fn f("residual");
    spin(2);
}

void v_cycle(int depth) {
    Fn f("v_cycle");
    smooth();
    residual();
    if (depth > 0)
        v_cycle(depth - 1); // recursion: distinct call paths per depth
    smooth();
}

void solve() {
    Fn f("solve");
    for (int i = 0; i < 3; ++i)
        v_cycle(2);
}

} // namespace

int main() {
    calib::Caliper& c = calib::Caliper::instance();
    calib::Channel* channel = c.create_channel(
        "callpath", calib::RuntimeConfig{
                        {"services.enable", "path,event,timer,aggregate"},
                        {"path.attributes", "function"},
                        {"aggregate.key", "function.path"},
                        {"aggregate.ops", "count,sum(time.duration)"},
                    });

    {
        Fn f("main");
        solve();
    }

    std::vector<calib::RecordMap> profile;
    c.flush_thread(channel, [&profile](calib::RecordMap&& r) {
        profile.push_back(std::move(r));
    });
    c.close_channel(channel);

    std::puts("== Call-path profile (GROUP BY function.path, FORMAT tree) ==\n");
    calib::run_query("SELECT function.path, count, "
                     "sum(sum#time.duration) AS \"time (us)\" "
                     "WHERE function.path GROUP BY function.path FORMAT tree",
                     profile, std::cout);

    std::puts("\nRecursive v_cycle calls produce distinct paths — per-path\n"
              "counts and times, exactly like a traditional call-path\n"
              "profiler, but via the generic key:value aggregation model.");
    return 0;
}
