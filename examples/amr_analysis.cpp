// Application-specific aggregation (paper §VI-E): include the AMR mesh
// refinement level — an application-defined data dimension — in the
// aggregation key, then study where the simulation spends its time as the
// adaptive mesh evolves. This is the paper's headline capability:
// traditional profilers cannot group by application-specific dimensions.
//
// Build & run:  ./examples/amr_analysis
#include "apps/cleverleaf/driver.hpp"
#include "calib.hpp"
#include "mpisim/runtime.hpp"

#include <cstdio>
#include <iostream>
#include <mutex>

int main() {
    calib::Caliper& c = calib::Caliper::instance();

    // scheme C of the paper: group by *everything*, including the main
    // loop iteration and the AMR level
    calib::Channel* channel = c.create_channel(
        "amr-analysis", calib::RuntimeConfig{
                            {"services.enable", "event,timer,aggregate"},
                            {"aggregate.key", "*"},
                            {"aggregate.ops", "count,sum(time.duration)"},
                        });

    calib::clever::CleverConfig config;
    config.nx    = 160;
    config.ny    = 64;
    config.steps = 24;
    config.regrid_interval = 4;

    std::mutex mutex;
    std::vector<calib::RecordMap> profile;
    calib::simmpi::run(2, [&](calib::simmpi::Comm& comm) {
        calib::clever::run_rank(comm, config);
        std::vector<calib::RecordMap> mine;
        c.flush_thread(channel, [&mine](calib::RecordMap&& r) {
            mine.push_back(std::move(r));
        });
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& r : mine)
            profile.push_back(std::move(r));
    });
    c.close_channel(channel);

    std::printf("collected %zu profile records\n\n", profile.size());

    std::puts("== Runtime per AMR level per timestep (paper Fig. 8):\n"
              "   AGGREGATE sum(time.duration) WHERE not(mpi.function)\n"
              "   GROUP BY amr.level, iteration#mainloop ==\n");
    calib::run_query(
        "SELECT iteration#mainloop, amr.level, sum(sum#time.duration) AS us "
        "WHERE not(mpi.function), amr.level "
        "GROUP BY amr.level,iteration#mainloop "
        "ORDER BY iteration#mainloop, amr.level LIMIT 30",
        profile, std::cout);

    std::puts("\n== Runtime per AMR level per rank (paper Fig. 9) ==\n");
    calib::run_query("SELECT mpi.rank, amr.level, sum(sum#time.duration) AS us "
                     "WHERE not(mpi.function), amr.level "
                     "GROUP BY amr.level,mpi.rank ORDER BY mpi.rank, amr.level",
                     profile, std::cout);

    std::puts("\nLevel 2 (the finest mesh) grows over time as the shock\n"
              "develops, while level 0 stays constant — the Fig. 8 shape.");
    return 0;
}
