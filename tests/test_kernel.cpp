// Unit tests for the streaming aggregation kernels: update, merge, result,
// and serialization of every operator.
#include "aggregate/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

using namespace calib;
using namespace calib::kernel;

namespace {

/// Managed kernel state buffer.
struct State {
    explicit State(AggOp op) : op(op), buf(state_size(op) / 8 + 1, 0) {
        state_init(op, buf.data());
    }
    void update(const Variant& v) { state_update(op, buf.data(), v); }
    void merge(const State& o) { state_merge(op, buf.data(), o.buf.data()); }
    RecordMap result(const AggOpConfig& cfg, double denom = 0.0) const {
        RecordMap out;
        state_result(op, buf.data(), cfg, out, denom);
        return out;
    }
    std::vector<std::byte> serialize() const {
        std::vector<std::byte> bytes;
        ByteWriter w(bytes);
        state_serialize(op, buf.data(), w);
        return bytes;
    }
    void deserialize(const std::vector<std::byte>& bytes) {
        ByteReader r(bytes);
        state_deserialize(op, buf.data(), r);
    }

    AggOp op;
    std::vector<std::uint64_t> buf;
};

} // namespace

TEST(CountKernel, CountsEveryUpdate) {
    State s(AggOp::Count);
    for (int i = 0; i < 5; ++i)
        s.update(Variant());
    RecordMap r = s.result({AggOp::Count, "", ""});
    EXPECT_EQ(r.get("count"), Variant(5ull));
}

TEST(CountKernel, MergeAdds) {
    State a(AggOp::Count), b(AggOp::Count);
    a.update(Variant());
    b.update(Variant());
    b.update(Variant());
    a.merge(b);
    EXPECT_EQ(a.result({AggOp::Count, "", ""}).get("count"), Variant(3ull));
}

TEST(SumKernel, IntegerStaysExact) {
    State s(AggOp::Sum);
    s.update(Variant(1));
    s.update(Variant(2));
    s.update(Variant(3));
    RecordMap r = s.result({AggOp::Sum, "x", ""});
    const Variant v = r.get("sum#x");
    EXPECT_EQ(v.type(), Variant::Type::Int);
    EXPECT_EQ(v.as_int(), 6);
}

TEST(SumKernel, SwitchesToDoubleOnFloatInput) {
    State s(AggOp::Sum);
    s.update(Variant(1));
    s.update(Variant(0.5));
    const Variant v = s.result({AggOp::Sum, "x", ""}).get("sum#x");
    EXPECT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
}

TEST(SumKernel, NoInputEmitsNothing) {
    State s(AggOp::Sum);
    EXPECT_TRUE(s.result({AggOp::Sum, "x", ""}).empty());
}

TEST(SumKernel, IgnoresNonNumeric) {
    State s(AggOp::Sum);
    s.update(Variant("not a number"));
    s.update(Variant(4));
    EXPECT_EQ(s.result({AggOp::Sum, "x", ""}).get("sum#x").as_int(), 4);
}

TEST(SumKernel, MergeMixedKinds) {
    State a(AggOp::Sum), b(AggOp::Sum);
    a.update(Variant(10));
    b.update(Variant(2.5));
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.result({AggOp::Sum, "x", ""}).get("sum#x").as_double(), 12.5);
    // other direction: double absorbs int merge
    State c(AggOp::Sum), d(AggOp::Sum);
    c.update(Variant(2.5));
    d.update(Variant(10));
    c.merge(d);
    EXPECT_DOUBLE_EQ(c.result({AggOp::Sum, "x", ""}).get("sum#x").as_double(), 12.5);
}

TEST(SumKernel, NegativeValues) {
    State s(AggOp::Sum);
    s.update(Variant(-7));
    s.update(Variant(3));
    EXPECT_EQ(s.result({AggOp::Sum, "x", ""}).get("sum#x").as_int(), -4);
}

TEST(MinMaxKernel, TracksExtremes) {
    State mn(AggOp::Min), mx(AggOp::Max);
    for (int v : {5, 3, 9, 3, 7}) {
        mn.update(Variant(v));
        mx.update(Variant(v));
    }
    EXPECT_EQ(mn.result({AggOp::Min, "x", ""}).get("min#x").as_int(), 3);
    EXPECT_EQ(mx.result({AggOp::Max, "x", ""}).get("max#x").as_int(), 9);
}

TEST(MinMaxKernel, WorksOnStrings) {
    State mn(AggOp::Min);
    mn.update(Variant("pear"));
    mn.update(Variant("apple"));
    mn.update(Variant("orange"));
    EXPECT_EQ(mn.result({AggOp::Min, "x", ""}).get("min#x").as_string(), "apple");
}

TEST(MinMaxKernel, MergeRespectsEmptySides) {
    State a(AggOp::Min), b(AggOp::Min);
    b.update(Variant(4));
    a.merge(b); // empty <- non-empty
    EXPECT_EQ(a.result({AggOp::Min, "x", ""}).get("min#x").as_int(), 4);
    State c(AggOp::Min), d(AggOp::Min);
    c.update(Variant(2));
    c.merge(d); // non-empty <- empty
    EXPECT_EQ(c.result({AggOp::Min, "x", ""}).get("min#x").as_int(), 2);
}

TEST(AvgKernel, ComputesMean) {
    State s(AggOp::Avg);
    for (int v : {2, 4, 6})
        s.update(Variant(v));
    EXPECT_DOUBLE_EQ(s.result({AggOp::Avg, "x", ""}).get("avg#x").as_double(), 4.0);
}

TEST(AvgKernel, MergeIsWeighted) {
    State a(AggOp::Avg), b(AggOp::Avg);
    a.update(Variant(1.0)); // n=1, mean 1
    b.update(Variant(4.0));
    b.update(Variant(6.0)); // n=2, mean 5
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.result({AggOp::Avg, "x", ""}).get("avg#x").as_double(),
                     11.0 / 3.0);
}

TEST(VarianceKernel, MatchesDirectFormula) {
    std::mt19937_64 rng(7);
    std::vector<double> xs;
    State s(AggOp::Variance);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        const double x = static_cast<double>(rng() % 1000) / 10.0;
        xs.push_back(x);
        sum += x;
        s.update(Variant(x));
    }
    const double mean = sum / xs.size();
    double m2         = 0;
    for (double x : xs)
        m2 += (x - mean) * (x - mean);
    const double expected = m2 / xs.size();
    EXPECT_NEAR(s.result({AggOp::Variance, "x", ""}).get("variance#x").as_double(),
                expected, 1e-6 * expected);
}

TEST(VarianceKernel, MergeEqualsSingleStream) {
    std::mt19937_64 rng(11);
    State whole(AggOp::Variance), a(AggOp::Variance), b(AggOp::Variance);
    for (int i = 0; i < 500; ++i) {
        const double x = static_cast<double>(rng() % 997);
        whole.update(Variant(x));
        (i % 2 ? a : b).update(Variant(x));
    }
    a.merge(b);
    EXPECT_NEAR(
        a.result({AggOp::Variance, "x", ""}).get("variance#x").as_double(),
        whole.result({AggOp::Variance, "x", ""}).get("variance#x").as_double(), 1e-6);
}

TEST(HistogramKernel, BinIndexing) {
    EXPECT_EQ(histogram_bin_index(0.0), 0);
    EXPECT_EQ(histogram_bin_index(-5.0), 0);
    EXPECT_EQ(histogram_bin_index(0.999), 0);
    EXPECT_EQ(histogram_bin_index(1.0), 1);
    EXPECT_EQ(histogram_bin_index(2.0), 2);
    EXPECT_EQ(histogram_bin_index(3.9), 2);
    EXPECT_EQ(histogram_bin_index(4.0), 3);
    EXPECT_EQ(histogram_bin_index(1e30), histogram_bins - 1); // clamped
    EXPECT_EQ(histogram_bin_index(std::nan("")), 0);
}

TEST(HistogramKernel, RendersPopulatedRange) {
    State s(AggOp::Histogram);
    s.update(Variant(1.5)); // bin 1
    s.update(Variant(1.7)); // bin 1
    s.update(Variant(5.0)); // bin 3
    RecordMap r = s.result({AggOp::Histogram, "x", ""});
    EXPECT_EQ(r.get("histogram#x").as_string(), "1..3:2|0|1");
}

TEST(HistogramKernel, MergeAddsBins) {
    State a(AggOp::Histogram), b(AggOp::Histogram);
    a.update(Variant(2.0));
    b.update(Variant(2.5));
    a.merge(b);
    EXPECT_EQ(a.result({AggOp::Histogram, "x", ""}).get("histogram#x").as_string(),
              "2..2:2");
}

TEST(PercentTotalKernel, NormalizesAgainstDenominator) {
    State s(AggOp::PercentTotal);
    s.update(Variant(25.0));
    RecordMap r = s.result({AggOp::PercentTotal, "x", ""}, 100.0);
    EXPECT_DOUBLE_EQ(r.get("percent_total#x").as_double(), 25.0);
}

TEST(AllKernels, SerializeRoundTrip) {
    const AggOp ops[] = {AggOp::Count, AggOp::Sum,       AggOp::Min,
                         AggOp::Max,   AggOp::Avg,       AggOp::Variance,
                         AggOp::Histogram, AggOp::PercentTotal};
    for (AggOp op : ops) {
        State s(op);
        s.update(Variant(3.5));
        s.update(Variant(7));
        s.update(Variant(1.25));

        State restored(op);
        restored.deserialize(s.serialize());

        const AggOpConfig cfg{op, "x", ""};
        EXPECT_EQ(restored.result(cfg, 100.0), s.result(cfg, 100.0))
            << "op: " << agg_op_name(op);
    }
}

TEST(AllKernels, SerializedStringValuesSurvive) {
    State s(AggOp::Max);
    s.update(Variant("zebra"));
    State restored(AggOp::Max);
    restored.deserialize(s.serialize());
    EXPECT_EQ(restored.result({AggOp::Max, "x", ""}).get("max#x").as_string(), "zebra");
}

TEST(OpsConfig, ResultLabels) {
    EXPECT_EQ((AggOpConfig{AggOp::Count, "", ""}).result_label(), "count");
    EXPECT_EQ((AggOpConfig{AggOp::Sum, "time.duration", ""}).result_label(),
              "sum#time.duration");
    EXPECT_EQ((AggOpConfig{AggOp::Sum, "x", "total"}).result_label(), "total");
}

TEST(OpsConfig, ParseNames) {
    EXPECT_EQ(agg_op_from_name("SUM"), AggOp::Sum);
    EXPECT_EQ(agg_op_from_name("percent_total"), AggOp::PercentTotal);
    EXPECT_EQ(agg_op_from_name("mean"), AggOp::Avg);
    EXPECT_FALSE(agg_op_from_name("bogus").has_value());
}

TEST(OpsConfig, AggregationConfigParse) {
    AggregationConfig cfg =
        AggregationConfig::parse("count, sum(time.duration), min(x)", "function, loop");
    ASSERT_EQ(cfg.ops.size(), 3u);
    EXPECT_EQ(cfg.ops[0].op, AggOp::Count);
    EXPECT_EQ(cfg.ops[1].op, AggOp::Sum);
    EXPECT_EQ(cfg.ops[1].attribute, "time.duration");
    EXPECT_EQ(cfg.ops[2].op, AggOp::Min);
    EXPECT_EQ(cfg.key.attributes, (std::vector<std::string>{"function", "loop"}));
    EXPECT_FALSE(cfg.key.all);
}

TEST(OpsConfig, ParseStarKey) {
    AggregationConfig cfg = AggregationConfig::parse("count", "*");
    EXPECT_TRUE(cfg.key.all);
}

TEST(OpsConfig, BareAttributeDefaultsToSum) {
    AggregationConfig cfg = AggregationConfig::parse("count, time.duration", "a");
    ASSERT_EQ(cfg.ops.size(), 2u);
    EXPECT_EQ(cfg.ops[1].op, AggOp::Sum);
    EXPECT_EQ(cfg.ops[1].attribute, "time.duration");
}

// ---- numeric-correctness hardening regressions (differential fuzzing) ----

TEST(SumKernel, WidensOnInt64Overflow) {
    State s(AggOp::Sum);
    s.update(Variant(9223372036854775807ll));
    s.update(Variant(1ll));
    const Variant v = s.result({AggOp::Sum, "x", ""}).get("sum#x");
    ASSERT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), 9.223372036854775808e18);
}

TEST(SumKernel, WidensOnInt64Underflow) {
    State s(AggOp::Sum);
    s.update(Variant(-9223372036854775807ll));
    s.update(Variant(-2ll));
    const Variant v = s.result({AggOp::Sum, "x", ""}).get("sum#x");
    ASSERT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), -9.223372036854775809e18);
}

TEST(SumKernel, WidensOnUIntAboveInt64Max) {
    State s(AggOp::Sum);
    s.update(Variant(18446744073709551615ull));
    const Variant v = s.result({AggOp::Sum, "x", ""}).get("sum#x");
    ASSERT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), 1.8446744073709551616e19);
}

TEST(SumKernel, MergeWidensOnOverflow) {
    State a(AggOp::Sum), b(AggOp::Sum);
    a.update(Variant(9223372036854775807ll));
    b.update(Variant(9223372036854775807ll));
    a.merge(b);
    const Variant v = a.result({AggOp::Sum, "x", ""}).get("sum#x");
    ASSERT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), 2.0 * 9.223372036854775807e18);
}

TEST(SumKernel, IgnoresNaN) {
    State s(AggOp::Sum);
    s.update(Variant(std::nan("")));
    s.update(Variant(2.0));
    const Variant v = s.result({AggOp::Sum, "x", ""}).get("sum#x");
    EXPECT_DOUBLE_EQ(v.as_double(), 2.0);
}

TEST(MinMaxKernel, IgnoreNaN) {
    State lo(AggOp::Min), hi(AggOp::Max);
    for (State* s : {&lo, &hi}) {
        s->update(Variant(std::nan("")));
        s->update(Variant(3.0));
        s->update(Variant(std::nan("")));
        s->update(Variant(1.0));
    }
    EXPECT_DOUBLE_EQ(lo.result({AggOp::Min, "x", ""}).get("min#x").as_double(), 1.0);
    EXPECT_DOUBLE_EQ(hi.result({AggOp::Max, "x", ""}).get("max#x").as_double(), 3.0);
}

TEST(MinMaxKernel, AllNaNEmitsNothing) {
    State s(AggOp::Min);
    s.update(Variant(std::nan("")));
    EXPECT_TRUE(s.result({AggOp::Min, "x", ""}).empty());
}

TEST(AvgVarianceKernel, IgnoreNaN) {
    State avg(AggOp::Avg), var(AggOp::Variance);
    for (State* s : {&avg, &var}) {
        s->update(Variant(2.0));
        s->update(Variant(std::nan("")));
        s->update(Variant(4.0));
    }
    EXPECT_DOUBLE_EQ(avg.result({AggOp::Avg, "x", ""}).get("avg#x").as_double(), 3.0);
    // two samples 2 and 4: population variance 1
    EXPECT_DOUBLE_EQ(var.result({AggOp::Variance, "x", ""}).get("variance#x").as_double(),
                     1.0);
}

TEST(HistogramKernel, PinsNaNAndInfinities) {
    EXPECT_EQ(histogram_bin_index(std::nan("")), 0);
    EXPECT_EQ(histogram_bin_index(-std::numeric_limits<double>::infinity()), 0);
    EXPECT_EQ(histogram_bin_index(std::numeric_limits<double>::infinity()),
              histogram_bins - 1);
    EXPECT_EQ(histogram_bin_index(std::numeric_limits<double>::max()),
              histogram_bins - 1);
    EXPECT_EQ(histogram_bin_index(5e-324), 0); // subnormals land in bin 0
}

// The init-merge lemma: merging any organically-built state into a freshly
// initialized one reproduces the source bitwise. The radix merge strategy
// depends on this to assemble partition tables from verbatim state copies
// (docs/ENGINE.md); every kernel must uphold it, including signed-zero and
// kind-tag corners of the sum state.
TEST(AllKernels, MergeIntoFreshStateIsBitwiseIdentity) {
    const AggOp ops[] = {AggOp::Count,    AggOp::Sum,       AggOp::Min,
                         AggOp::Max,      AggOp::Avg,       AggOp::Variance,
                         AggOp::Histogram, AggOp::PercentTotal};
    const Variant inputs[] = {Variant(3ll),   Variant(-7ll), Variant(2.5),
                              Variant(-0.25), Variant(0ll),  Variant(1e12)};
    for (AggOp op : ops) {
        for (std::size_t n = 0; n <= std::size(inputs); ++n) {
            State src(op); // n = 0 covers the fresh-into-fresh corner
            for (std::size_t i = 0; i < n; ++i)
                src.update(inputs[i]);
            State dst(op);
            dst.merge(src);
            EXPECT_EQ(std::memcmp(dst.buf.data(), src.buf.data(),
                                  state_size(op)),
                      0)
                << agg_op_name(op) << " after " << n << " updates";
        }
    }
    // the -0.0 corner explicitly: a merge must not turn +0.0 into -0.0 or
    // drop the float kind tag
    State neg(AggOp::Sum);
    neg.update(Variant(-0.0));
    State fresh(AggOp::Sum);
    fresh.merge(neg);
    EXPECT_EQ(std::memcmp(fresh.buf.data(), neg.buf.data(),
                          state_size(AggOp::Sum)),
              0);
}
