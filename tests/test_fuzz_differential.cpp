// Differential fuzz harness smoke tests: the generators are deterministic,
// the oracle agrees with the engine on a seed sweep, and — just as
// important — the comparator actually has teeth (a tampered result is
// rejected, so a green sweep means something).
#include "../fuzz/corpus.hpp"
#include "../fuzz/differential.hpp"
#include "../fuzz/oracle.hpp"
#include "../fuzz/querygen.hpp"

#include "../src/query/calql.hpp"
#include "../src/query/processor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace cf = calib::fuzz;
using calib::RecordMap;
using calib::Variant;

TEST(FuzzGenerators, CorpusIsDeterministic) {
    for (std::uint64_t seed : {0ULL, 1ULL, 7ULL, 42ULL, 12345ULL}) {
        const cf::Corpus a = cf::generate_corpus(seed);
        const cf::Corpus b = cf::generate_corpus(seed);
        EXPECT_EQ(a.cali_text, b.cali_text) << "seed " << seed;
        EXPECT_EQ(a.well_formed, b.well_formed) << "seed " << seed;
        EXPECT_EQ(a.records.size(), b.records.size()) << "seed " << seed;
    }
}

TEST(FuzzGenerators, QueryIsDeterministicAndParses) {
    const cf::Corpus corpus = cf::generate_corpus(3);
    ASSERT_TRUE(corpus.well_formed);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const std::string a = cf::generate_query(seed, corpus);
        const std::string b = cf::generate_query(seed, corpus);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_NO_THROW(calib::parse_calql(a)) << a;
    }
}

TEST(FuzzGenerators, CorpusCoversAdversarialValues) {
    // across a seed sweep the corpora must actually contain the edge
    // values the harness exists for — guard against the generator
    // silently degenerating into benign data
    bool saw_nan = false, saw_inf = false, saw_int64_min = false,
         saw_big_uint = false, saw_empty_string = false;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const cf::Corpus c = cf::generate_corpus(seed);
        for (const RecordMap& r : c.records) {
            for (const auto& [name, v] : r) {
                if (v.type() == Variant::Type::Double) {
                    if (std::isnan(v.as_double())) saw_nan = true;
                    if (std::isinf(v.as_double())) saw_inf = true;
                }
                if (v.type() == Variant::Type::Int &&
                    v.as_int() == INT64_MIN)
                    saw_int64_min = true;
                if (v.type() == Variant::Type::UInt &&
                    v.as_uint() > static_cast<std::uint64_t>(INT64_MAX))
                    saw_big_uint = true;
                if (v.is_string() && v.to_string().empty())
                    saw_empty_string = true;
            }
        }
    }
    EXPECT_TRUE(saw_nan);
    EXPECT_TRUE(saw_inf);
    EXPECT_TRUE(saw_int64_min);
    EXPECT_TRUE(saw_big_uint);
    EXPECT_TRUE(saw_empty_string);
}

TEST(FuzzOracle, AgreesWithEngineOnSimpleInput) {
    std::vector<RecordMap> records;
    for (int i = 1; i <= 4; ++i) {
        RecordMap r;
        r.append("region", Variant(std::string(i % 2 ? "a" : "b")));
        r.append("time", Variant(static_cast<std::int64_t>(i)));
        records.push_back(std::move(r));
    }
    const calib::QuerySpec spec =
        calib::parse_calql("AGGREGATE sum(time),count GROUP BY region");
    const cf::OracleResult oracle = cf::oracle_run(spec, records);
    const std::vector<RecordMap> rows =
        calib::run_query("AGGREGATE sum(time),count GROUP BY region", records);
    EXPECT_TRUE(cf::oracle_compare(spec, oracle, rows).empty());
}

TEST(FuzzOracle, RejectsTamperedResult) {
    std::vector<RecordMap> records;
    for (int i = 1; i <= 4; ++i) {
        RecordMap r;
        r.append("time", Variant(static_cast<std::int64_t>(i)));
        records.push_back(std::move(r));
    }
    const calib::QuerySpec spec = calib::parse_calql("AGGREGATE sum(time)");
    const cf::OracleResult oracle = cf::oracle_run(spec, records);

    std::vector<RecordMap> rows =
        calib::run_query("AGGREGATE sum(time)", records);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(cf::oracle_compare(spec, oracle, rows).empty());

    // an off-by-one sum must be flagged
    rows[0].set("sum#time", Variant(static_cast<std::int64_t>(11)));
    EXPECT_FALSE(cf::oracle_compare(spec, oracle, rows).empty());

    // ...and so must a dropped row
    rows.clear();
    EXPECT_FALSE(cf::oracle_compare(spec, oracle, rows).empty());
}

TEST(FuzzDifferential, CheckCaseFlagsNothingOnCleanPair) {
    const cf::Corpus corpus = cf::generate_corpus(11);
    ASSERT_TRUE(corpus.well_formed);
    const std::string query = cf::generate_query(11, corpus);
    cf::DiffOptions opts;
    opts.work_dir = ::testing::TempDir();
    const std::vector<std::string> failures =
        cf::check_case(corpus, query, 11, opts);
    for (const std::string& f : failures)
        ADD_FAILURE() << f;
}

TEST(FuzzDifferential, SeedSweepIsClean) {
    // a compressed version of the CI fuzz-smoke job; the full sweep is
    // `calib-fuzz --seed-range 0:1000`
    cf::DiffOptions opts;
    opts.work_dir         = ::testing::TempDir();
    opts.queries_per_seed = 2;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        const cf::SeedOutcome outcome = cf::run_seed(seed, opts);
        for (const std::string& f : outcome.failures)
            ADD_FAILURE() << "seed " << seed << ": " << f;
    }
}

TEST(FuzzGenerators, QuerySweepEmitsWindowClauses) {
    // the windowed family must actually appear in the generated stream —
    // guard against the WINDOW branch silently rotting away
    const cf::Corpus corpus = cf::generate_corpus(3);
    bool saw_window = false, saw_slide = false, saw_by = false;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const std::string q = cf::generate_query(seed, corpus);
        if (q.find("WINDOW ") == std::string::npos)
            continue;
        saw_window = true;
        if (q.find("SLIDE ") != std::string::npos)
            saw_slide = true;
        if (q.find(" BY ", q.find("WINDOW ")) != std::string::npos)
            saw_by = true;
        EXPECT_NO_THROW(calib::parse_calql(q)) << q;
    }
    EXPECT_TRUE(saw_window);
    EXPECT_TRUE(saw_slide);
    EXPECT_TRUE(saw_by);
}

TEST(FuzzOracle, WindowRestrictsToTrailingPanes) {
    // pinned windowed case: times 0..90 in steps of 10, WINDOW 40 SLIDE 20
    // -> watermark pane 4, live panes {3, 4} = times [60, 90]
    std::vector<RecordMap> records;
    for (int i = 0; i < 10; ++i) {
        RecordMap r;
        r.append("region", Variant(std::string(i % 2 ? "a" : "b")));
        r.append("t", Variant(static_cast<double>(i * 10)));
        records.push_back(std::move(r));
    }
    { // a record without the time attribute drops
        RecordMap r;
        r.append("region", Variant(std::string("a")));
        records.push_back(std::move(r));
    }
    const std::string query =
        "AGGREGATE count GROUP BY region WINDOW 40 BY t SLIDE 20";
    const calib::QuerySpec spec  = calib::parse_calql(query);
    const cf::OracleResult oracle = cf::oracle_run(spec, records);
    std::uint64_t total = 0;
    for (const cf::OracleGroup& g : oracle.groups)
        total += g.ops[0].exact.to_uint();
    EXPECT_EQ(total, 4u); // times 60, 70, 80, 90

    const std::vector<RecordMap> rows = calib::run_query(query, records);
    EXPECT_TRUE(cf::oracle_compare(spec, oracle, rows).empty());

    // the comparator still has teeth on the windowed path
    std::vector<RecordMap> tampered = rows;
    ASSERT_FALSE(tampered.empty());
    tampered[0].set("count", Variant(static_cast<unsigned long long>(99)));
    EXPECT_FALSE(cf::oracle_compare(spec, oracle, tampered).empty());
}
