// C API + cross-thread merged flush tests.
#include "capi/calib_c.h"

#include "calib.hpp"
#include "runtime/services/aggregate_config.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <thread>

using namespace calib;
using calib::test::find_record;

TEST(CApi, VersionString) {
    EXPECT_STREQ(calib_version(), "1.0.0");
}

TEST(CApi, AnnotationsFlowThroughChannels) {
    const int id = calib_channel_create("capi-test",
                                        "services.enable=event,aggregate\n"
                                        "aggregate.key=capi.fn,capi.iter\n"
                                        "aggregate.ops=count,sum(capi.metric)\n");
    ASSERT_GE(id, 0);

    for (int i = 0; i < 3; ++i) {
        calib_set_int("capi.iter", i);
        calib_begin_string("capi.fn", "c_function");
        calib_set_double("capi.metric", 1.5);
        calib_end("capi.fn");
    }

    // fetch the records through the C++ side before closing
    Caliper& c       = Caliper::instance();
    Channel* channel = c.find_channel("capi-test");
    ASSERT_NE(channel, nullptr);
    std::vector<RecordMap> out;
    c.flush_thread(channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    EXPECT_EQ(calib_channel_close(id), 0);

    double fn_count = 0;
    for (const RecordMap& r : out)
        if (r.get("capi.fn") == Variant("c_function"))
            fn_count += r.get("count").to_double();
    EXPECT_EQ(fn_count, 6.0) << "set(metric) + end events inside the region, x3";
}

TEST(CApi, IntRegionsAndExplicitSnapshot) {
    const int id = calib_channel_create("capi-snap",
                                        "services.enable=trace\n");
    ASSERT_GE(id, 0);
    calib_begin_int("capi.phase", 7);
    calib_snapshot(); // trace has no event service: only explicit snapshots
    calib_end("capi.phase");

    Caliper& c       = Caliper::instance();
    Channel* channel = c.find_channel("capi-snap");
    std::vector<RecordMap> out;
    c.flush_thread(channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    calib_channel_close(id);

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("capi.phase").to_int(), 7);
}

TEST(CApi, InvalidInputsAreSafe) {
    EXPECT_EQ(calib_channel_create("bad", "not a config"), -1);
    EXPECT_EQ(calib_channel_flush(-1), -1);
    EXPECT_EQ(calib_channel_flush(9999), -1);
    EXPECT_EQ(calib_channel_close(9999), -1);
    calib_end("never.begun"); // must not crash
}

TEST(CApi, ThreadLabel) {
    calib_set_thread_label("c-thread");
    EXPECT_EQ(Caliper::instance().thread_data().label, "c-thread");
}

TEST(CrossThreadFlush, MergesAllThreadDatabases) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "xthread", RuntimeConfig{{"services.enable", "event,aggregate"},
                                 {"aggregate.key", "xt.fn"},
                                 {"aggregate.ops", "count"}});

    constexpr int n_threads = 4;
    constexpr int n_events  = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([] {
            Annotation fn("xt.fn");
            for (int i = 0; i < n_events; ++i) {
                fn.begin(Variant("shared-region"));
                fn.end();
            }
        });
    for (auto& t : threads)
        t.join();

    std::vector<RecordMap> merged;
    const std::size_t entries = flush_cross_thread(
        c, channel, [&merged](RecordMap&& r) { merged.push_back(std::move(r)); });
    c.close_channel(channel);

    // cross-thread merge: ONE row per key, with the grand total —
    // unlike flush_all, which emits one row per (key, thread)
    EXPECT_EQ(entries, merged.size());
    const RecordMap row = find_record(merged, "xt.fn", Variant("shared-region"));
    ASSERT_FALSE(row.empty());
    EXPECT_EQ(row.get("count").to_uint(),
              static_cast<std::uint64_t>(n_threads) * n_events);
}
