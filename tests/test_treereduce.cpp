// Cross-process aggregation tests (paper §IV-C): the parallel tree-reduced
// query must equal the serial query for any rank count, and the modeled
// (discrete-event) mode must produce the same aggregation result.
#include "mpisim/treereduce.hpp"

#include "apps/paradis/generator.hpp"
#include "io/caliwriter.hpp"
#include "io/calireader.hpp"
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <fstream>

using namespace calib;
using namespace calib::simmpi;
using calib::test::find_record;

namespace {

/// Write small deterministic per-rank files and return their paths.
std::vector<std::string> make_files(const test::TempDir& dir, int nfiles) {
    std::vector<std::string> paths;
    for (int f = 0; f < nfiles; ++f) {
        const std::string path = dir.file("in-" + std::to_string(f) + ".cali");
        std::ofstream os(path);
        CaliWriter writer(os);
        for (int i = 0; i < 50; ++i) {
            RecordMap r;
            r.append("kernel", Variant("k-" + std::to_string(i % 7)));
            r.append("file", Variant(f));
            r.append("t", Variant(static_cast<double>((f * 50 + i) % 13)));
            writer.write_record(r);
        }
        paths.push_back(path);
    }
    return paths;
}

std::vector<RecordMap> serial_reference(const QuerySpec& spec,
                                        const std::vector<std::string>& files) {
    QueryProcessor proc(spec);
    for (const std::string& f : files)
        CaliReader::read_file(f, [&proc](RecordMap&& r) { proc.add(r); });
    return proc.result();
}

bool same_records(std::vector<RecordMap> a, std::vector<RecordMap> b) {
    if (a.size() != b.size())
        return false;
    for (const RecordMap& r : a) {
        auto it = std::find(b.begin(), b.end(), r);
        if (it == b.end())
            return false;
        b.erase(it);
    }
    return true;
}

} // namespace

class TreeReduceRanks : public ::testing::TestWithParam<int> {};

TEST_P(TreeReduceRanks, ParallelEqualsSerial) {
    const int nprocs = GetParam();
    test::TempDir dir("treereduce");
    const auto files = make_files(dir, 12);
    const QuerySpec spec =
        parse_calql("AGGREGATE count,sum(t),min(t),max(t) GROUP BY kernel");

    std::vector<RecordMap> parallel_result;
    const QueryTimes times = parallel_query(spec, files, nprocs, &parallel_result);

    EXPECT_TRUE(same_records(serial_reference(spec, files), parallel_result));
    EXPECT_EQ(times.input_records, 12u * 50u);
    EXPECT_EQ(times.output_records, 7u);
    EXPECT_GT(times.total_s, 0.0);
    EXPECT_GE(times.total_s, times.reduce_s);
}

TEST_P(TreeReduceRanks, ParallelQueryWithFilters) {
    const int nprocs = GetParam();
    test::TempDir dir("treereduce-f");
    const auto files = make_files(dir, 6);
    const QuerySpec spec =
        parse_calql("AGGREGATE sum(t) WHERE kernel=k-1 GROUP BY file");

    std::vector<RecordMap> result;
    parallel_query(spec, files, nprocs, &result);
    EXPECT_TRUE(same_records(serial_reference(spec, files), result));
    EXPECT_EQ(result.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TreeReduceRanks,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

TEST(TreeReduce, MoreRanksThanFiles) {
    test::TempDir dir("treereduce-mr");
    const auto files = make_files(dir, 3);
    const QuerySpec spec = parse_calql("AGGREGATE count GROUP BY kernel");
    std::vector<RecordMap> result;
    parallel_query(spec, files, 8, &result);
    EXPECT_TRUE(same_records(serial_reference(spec, files), result));
}

TEST(TreeReduce, BytesMoveUpTheTree) {
    test::TempDir dir("treereduce-b");
    const auto files = make_files(dir, 8);
    const QuerySpec spec = parse_calql("AGGREGATE count GROUP BY kernel");
    const QueryTimes times = parallel_query(spec, files, 8, nullptr);
    EXPECT_GT(times.bytes_reduced, 0u);
    EXPECT_EQ(times.nprocs, 8);
}

TEST(ModeledQuery, MatchesParallelAggregationTotals) {
    test::TempDir dir("modeled");
    paradis::ParadisConfig cfg;
    cfg.records_per_file = 340; // 4 iterations x 85 keys
    const auto paths = paradis::generate_dataset(dir.str(), 1, cfg);

    const QuerySpec spec = parse_calql(
        "AGGREGATE sum(time.inclusive.duration),sum(count) GROUP BY kernel,mpi.function");

    constexpr int P = 16;
    std::vector<RecordMap> modeled;
    const QueryTimes times = modeled_query(spec, paths[0], P, NetModel{}, 1, &modeled);

    // weak-scaling model: every rank holds a copy of the same file, so the
    // modeled result equals the serial result of P copies of that file
    std::vector<std::string> copies(P, paths[0]);
    const auto reference = serial_reference(spec, copies);

    ASSERT_EQ(modeled.size(), reference.size());
    for (const RecordMap& r : reference) {
        RecordMap m = find_record(modeled, "kernel", r.get("kernel"));
        if (m.empty())
            m = find_record(modeled, "mpi.function", r.get("mpi.function"));
        if (m.empty())
            continue;
        EXPECT_NEAR(m.get("sum#count").to_double(), r.get("sum#count").to_double(),
                    1e-9);
    }
    EXPECT_EQ(times.input_records, 340u * P);
    EXPECT_GT(times.reduce_s, 0.0);
    EXPECT_GT(times.local_s, 0.0);
}

TEST(ModeledQuery, ReductionGrowsLogarithmically) {
    test::TempDir dir("modeled-log");
    paradis::ParadisConfig cfg;
    cfg.records_per_file = 170;
    const auto paths = paradis::generate_dataset(dir.str(), 1, cfg);
    const QuerySpec spec = parse_calql("AGGREGATE sum(count) GROUP BY kernel");

    NetModel slow_net;
    slow_net.latency_us = 1000.0; // make the per-hop cost dominate

    const double r16 = modeled_query(spec, paths[0], 16, slow_net).reduce_s;
    const double r256 = modeled_query(spec, paths[0], 256, slow_net).reduce_s;
    const double r4096 = modeled_query(spec, paths[0], 4096, slow_net).reduce_s;

    // binomial tree: levels = log2(P); with per-hop latency dominating,
    // reduce time grows by the same increment per 16x rank increase
    const double d1 = r256 - r16;
    const double d2 = r4096 - r256;
    EXPECT_GT(d1, 0.0);
    EXPECT_GT(d2, 0.0);
    EXPECT_NEAR(d2 / d1, 1.0, 0.35) << "logarithmic, not linear, growth";
    EXPECT_LT(r4096, 16.0 * r16) << "far below linear scaling";
}

TEST(ModeledQuery, SingleRankHasNoReduction) {
    test::TempDir dir("modeled-1");
    paradis::ParadisConfig cfg;
    cfg.records_per_file = 85;
    const auto paths = paradis::generate_dataset(dir.str(), 1, cfg);
    const QuerySpec spec = parse_calql("AGGREGATE count GROUP BY kernel");
    const QueryTimes times = modeled_query(spec, paths[0], 1, NetModel{});
    EXPECT_EQ(times.reduce_s, 0.0);
    EXPECT_EQ(times.bytes_reduced, 0u);
}

TEST(ModeledQueryKary, SameResultAnyFanout) {
    test::TempDir dir("modeled-kary");
    paradis::ParadisConfig cfg;
    cfg.records_per_file = 170;
    const auto paths     = paradis::generate_dataset(dir.str(), 1, cfg);
    const QuerySpec spec = parse_calql("AGGREGATE sum(count) GROUP BY kernel");

    // all fan-outs must reduce the same number of contributions; with
    // P = fanout^levels exactly, totals match the binary tree's
    std::vector<RecordMap> binary, kary;
    modeled_query(spec, paths[0], 64, NetModel{}, 1, &binary);
    modeled_query_kary(spec, paths[0], 64, NetModel{}, 4, &kary);
    ASSERT_EQ(binary.size(), kary.size());
    for (const RecordMap& b : binary) {
        const RecordMap k = find_record(kary, "kernel", b.get("kernel"));
        EXPECT_EQ(k.get("sum#count").to_uint(), b.get("sum#count").to_uint());
    }
}

TEST(ModeledQueryKary, HigherFanoutFewerLevelsMoreMerges) {
    test::TempDir dir("modeled-kary2");
    paradis::ParadisConfig cfg;
    cfg.records_per_file = 170;
    const auto paths     = paradis::generate_dataset(dir.str(), 1, cfg);
    const QuerySpec spec = parse_calql("AGGREGATE sum(count) GROUP BY kernel");

    const auto t2  = modeled_query_kary(spec, paths[0], 4096, NetModel{}, 2);
    const auto t64 = modeled_query_kary(spec, paths[0], 4096, NetModel{}, 64);
    // 64-ary: 2 levels x 63 merges = 126 sequential merges at the root
    // path vs binary's 12 — more bytes move through each inner node
    EXPECT_GT(t64.bytes_reduced, t2.bytes_reduced);
    EXPECT_GT(t2.reduce_s, 0.0);
    EXPECT_GT(t64.reduce_s, 0.0);
}
