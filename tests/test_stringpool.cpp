#include "common/stringpool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using calib::StringPool;

TEST(StringPool, InternReturnsStablePointer) {
    StringPool pool;
    const char* a = pool.intern("hello");
    const char* b = pool.intern("hello");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "hello");
}

TEST(StringPool, DistinctStringsDistinctPointers) {
    StringPool pool;
    EXPECT_NE(pool.intern("a"), pool.intern("b"));
    EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPool, EmptyString) {
    StringPool pool;
    const char* e = pool.intern("");
    EXPECT_STREQ(e, "");
    EXPECT_EQ(StringPool::length(e), 0u);
    EXPECT_EQ(pool.intern(""), e);
}

TEST(StringPool, LengthAndHashHeaders) {
    StringPool pool;
    const char* s = pool.intern("abcdef");
    EXPECT_EQ(StringPool::length(s), 6u);
    EXPECT_EQ(StringPool::hash(s), calib::fnv1a("abcdef"));
}

TEST(StringPool, EmbeddedNulAndBinary) {
    StringPool pool;
    const std::string with_nul("ab\0cd", 5);
    const char* s = pool.intern(with_nul);
    EXPECT_EQ(StringPool::length(s), 5u);
    EXPECT_EQ(std::string_view(s, 5), with_nul);
    // a different string with the same prefix must not collide
    const char* t = pool.intern("ab");
    EXPECT_NE(s, t);
}

TEST(StringPool, LargeStringBeyondBlockSize) {
    StringPool pool;
    const std::string big(100000, 'x');
    const char* s = pool.intern(big);
    EXPECT_EQ(StringPool::length(s), big.size());
    EXPECT_EQ(pool.intern(big), s);
}

TEST(StringPool, ManyStringsAcrossBlocks) {
    StringPool pool;
    std::vector<const char*> ptrs;
    for (int i = 0; i < 10000; ++i)
        ptrs.push_back(pool.intern("string-" + std::to_string(i)));
    EXPECT_EQ(pool.size(), 10000u);
    // all pointers stay valid and distinct
    std::set<const void*> unique(ptrs.begin(), ptrs.end());
    EXPECT_EQ(unique.size(), 10000u);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(pool.intern("string-" + std::to_string(i)), ptrs[i]);
}

TEST(StringPool, PayloadBytesAccumulates) {
    StringPool pool;
    pool.intern("abc");
    pool.intern("defgh");
    pool.intern("abc"); // duplicate: no growth
    EXPECT_EQ(pool.payload_bytes(), 8u);
}

TEST(StringPool, ConcurrentInterningIsConsistent) {
    StringPool pool;
    constexpr int n_threads = 8;
    constexpr int n_strings = 500;
    std::vector<std::vector<const char*>> results(n_threads);

    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([&pool, &results, t] {
            for (int i = 0; i < n_strings; ++i)
                results[t].push_back(pool.intern("shared-" + std::to_string(i)));
        });
    for (auto& t : threads)
        t.join();

    // every thread observed the same pointer for the same string
    for (int i = 0; i < n_strings; ++i)
        for (int t = 1; t < n_threads; ++t)
            EXPECT_EQ(results[t][i], results[0][i]);
    EXPECT_EQ(pool.size(), static_cast<std::size_t>(n_strings));
}

TEST(StringPool, GlobalPoolIsSingleton) {
    EXPECT_EQ(&StringPool::global(), &StringPool::global());
    const char* a = calib::intern("global-test");
    EXPECT_EQ(calib::intern("global-test"), a);
}
