#include "runtime/config.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

using calib::RuntimeConfig;

TEST(RuntimeConfig, FromStringParsesLines) {
    RuntimeConfig cfg = RuntimeConfig::from_string(
        "services.enable = event,timer\n"
        "# a comment\n"
        "\n"
        "aggregate.key=function,loop\n");
    EXPECT_EQ(cfg.get("services.enable"), "event,timer");
    EXPECT_EQ(cfg.get("aggregate.key"), "function,loop");
}

TEST(RuntimeConfig, FromStringRejectsMalformed) {
    EXPECT_THROW(RuntimeConfig::from_string("not a key value pair\n"),
                 std::runtime_error);
}

TEST(RuntimeConfig, GetWithFallback) {
    RuntimeConfig cfg;
    EXPECT_EQ(cfg.get("missing", "fallback"), "fallback");
    cfg.set("present", "value");
    EXPECT_EQ(cfg.get("present", "fallback"), "value");
}

TEST(RuntimeConfig, TypedGetters) {
    RuntimeConfig cfg = RuntimeConfig::from_string(
        "int=42\ndouble=2.5\nbool1=true\nbool2=off\nbad=xyz\n");
    EXPECT_EQ(cfg.get_int("int", 0), 42);
    EXPECT_EQ(cfg.get_int("missing", 7), 7);
    EXPECT_EQ(cfg.get_int("bad", 7), 7);
    EXPECT_DOUBLE_EQ(cfg.get_double("double", 0), 2.5);
    EXPECT_TRUE(cfg.get_bool("bool1", false));
    EXPECT_FALSE(cfg.get_bool("bool2", true));
    EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(RuntimeConfig, FindAndContains) {
    RuntimeConfig cfg{{"a", "1"}};
    EXPECT_TRUE(cfg.contains("a"));
    EXPECT_FALSE(cfg.contains("b"));
    EXPECT_EQ(cfg.find("a").value(), "1");
    EXPECT_FALSE(cfg.find("b").has_value());
}

TEST(RuntimeConfig, MergedWithOverlays) {
    RuntimeConfig base{{"a", "1"}, {"b", "2"}};
    RuntimeConfig over{{"b", "20"}, {"c", "30"}};
    RuntimeConfig merged = base.merged_with(over);
    EXPECT_EQ(merged.get("a"), "1");
    EXPECT_EQ(merged.get("b"), "20");
    EXPECT_EQ(merged.get("c"), "30");
}

TEST(RuntimeConfig, FromEnvMapsUnderscoreToDot) {
    ::setenv("CALIXX_SERVICES_ENABLE", "event,trace", 1);
    ::setenv("CALIXX_AGGREGATE_KEY", "*", 1);
    RuntimeConfig cfg = RuntimeConfig::from_env("CALIXX_");
    EXPECT_EQ(cfg.get("services.enable"), "event,trace");
    EXPECT_EQ(cfg.get("aggregate.key"), "*");
    ::unsetenv("CALIXX_SERVICES_ENABLE");
    ::unsetenv("CALIXX_AGGREGATE_KEY");
}

TEST(RuntimeConfig, FromFile) {
    calib::test::TempDir dir("config");
    const std::string path = dir.file("profile.conf");
    {
        std::ofstream os(path);
        os << "recorder.filename=out-%r.cali\n";
    }
    RuntimeConfig cfg = RuntimeConfig::from_file(path);
    EXPECT_EQ(cfg.get("recorder.filename"), "out-%r.cali");
    EXPECT_THROW(RuntimeConfig::from_file("/nonexistent.conf"), std::runtime_error);
}
