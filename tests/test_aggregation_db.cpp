// AggregationDB unit tests, including the paper's §III-B Listing-1
// example (time-series function profile).
#include "aggregate/aggregation_db.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

using namespace calib;
using calib::test::find_record;

namespace {

/// Helper fixture: registry + convenience snapshot builder.
class AggDbTest : public ::testing::Test {
protected:
    Attribute attr(const char* name, Variant::Type type,
                   std::uint32_t props = prop::none) {
        return registry.create(name, type, props);
    }

    SnapshotRecord snap(std::initializer_list<std::pair<const char*, Variant>> kv) {
        SnapshotRecord rec;
        for (const auto& [name, value] : kv)
            rec.append(registry.create(name, value.type()).id(), value);
        return rec;
    }

    AttributeRegistry registry;
};

} // namespace

TEST_F(AggDbTest, CountGroupedBySingleAttribute) {
    AggregationDB db(AggregationConfig::parse("count", "function"), &registry);
    db.process(snap({{"function", Variant("foo")}}));
    db.process(snap({{"function", Variant("foo")}}));
    db.process(snap({{"function", Variant("bar")}}));

    auto out = db.flush();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(find_record(out, "function", Variant("foo")).get("count"), Variant(2ull));
    EXPECT_EQ(find_record(out, "function", Variant("bar")).get("count"), Variant(1ull));
    EXPECT_EQ(db.num_processed(), 3u);
}

TEST_F(AggDbTest, PaperListing1Example) {
    // §III-B: AGGREGATE count, sum(time) GROUP BY function, loop.iteration.
    // Simulates the annotated program of Listing 1 for two loop iterations:
    // each iteration calls foo twice (10 units each) and bar once (10).
    AggregationDB db(
        AggregationConfig::parse("count,sum(time)", "function,loop.iteration"),
        &registry);

    for (int iter = 0; iter < 2; ++iter) {
        // loop-begin event: no function active yet
        db.process(snap({{"loop.iteration", Variant(iter)}, {"time", Variant(10)}}));
        // foo(1), foo(2): two events inside foo each (begin+end segments
        // folded into one record of 10 for simplicity, plus one extra
        // segment between calls attributed to foo)
        db.process(snap({{"function", Variant("foo")},
                         {"loop.iteration", Variant(iter)},
                         {"time", Variant(10)}}));
        db.process(snap({{"function", Variant("foo")},
                         {"loop.iteration", Variant(iter)},
                         {"time", Variant(10)}}));
        db.process(snap({{"function", Variant("bar")},
                         {"loop.iteration", Variant(iter)},
                         {"time", Variant(10)}}));
        // two more out-of-function segments in this iteration
        db.process(snap({{"loop.iteration", Variant(iter)}, {"time", Variant(10)}}));
        db.process(snap({{"loop.iteration", Variant(iter)}, {"time", Variant(10)}}));
    }

    auto out = db.flush();
    // per iteration: (none), foo, bar -> 3 unique keys; 2 iterations = 6
    ASSERT_EQ(out.size(), 6u);

    // check the paper's table shape for iteration 0
    int none_rows = 0;
    for (const RecordMap& r : out) {
        if (r.get("loop.iteration") != Variant(0))
            continue;
        if (r.get("function") == Variant("foo")) {
            EXPECT_EQ(r.get("count"), Variant(2ull));
            EXPECT_EQ(r.get("sum#time"), Variant(20LL));
        } else if (r.get("function") == Variant("bar")) {
            EXPECT_EQ(r.get("count"), Variant(1ull));
            EXPECT_EQ(r.get("sum#time"), Variant(10LL));
        } else {
            EXPECT_FALSE(r.contains("function"))
                << "entries with no function value keep the column empty";
            EXPECT_EQ(r.get("count"), Variant(3ull));
            EXPECT_EQ(r.get("sum#time"), Variant(30LL));
            ++none_rows;
        }
    }
    EXPECT_EQ(none_rows, 1);
}

TEST_F(AggDbTest, RemovingKeyAttributeCompactsResult) {
    // §III-B: dropping loop.iteration from the key merges iterations.
    AggregationDB by_both(
        AggregationConfig::parse("count,sum(time)", "function,loop.iteration"),
        &registry);
    AggregationDB by_function(AggregationConfig::parse("count,sum(time)", "function"),
                              &registry);

    for (int iter = 0; iter < 4; ++iter)
        for (const char* fn : {"foo", "foo", "bar"}) {
            auto rec = snap({{"function", Variant(fn)},
                             {"loop.iteration", Variant(iter)},
                             {"time", Variant(5)}});
            by_both.process(rec);
            by_function.process(rec);
        }

    EXPECT_EQ(by_both.flush().size(), 8u); // 2 functions x 4 iterations
    auto compact = by_function.flush();
    ASSERT_EQ(compact.size(), 2u);
    EXPECT_EQ(find_record(compact, "function", Variant("foo")).get("sum#time"),
              Variant(40LL));
}

TEST_F(AggDbTest, MissingKeyAttributeGroupsConsistently) {
    // records processed before/after the key attribute exists must land in
    // the same "attribute absent" group
    AggregationDB db(AggregationConfig::parse("count", "kernel"), &registry);
    db.process(snap({{"other", Variant(1)}}));   // "kernel" not defined yet
    attr("kernel", Variant::Type::String);       // now it exists
    db.process(snap({{"other", Variant(2)}}));   // still absent from record
    db.process(snap({{"kernel", Variant("k")}}));

    auto out = db.flush();
    ASSERT_EQ(out.size(), 2u);
    RecordMap none = find_record(out, "count", Variant(2ull));
    EXPECT_FALSE(none.contains("kernel"));
}

TEST_F(AggDbTest, ImplicitKeyGroupsByEverything) {
    attr("time", Variant::Type::Int, prop::as_value | prop::aggregatable);
    AggregationDB db(AggregationConfig::parse("count,sum(time)", "*"), &registry);

    db.process(snap({{"a", Variant(1)}, {"b", Variant("x")}, {"time", Variant(3)}}));
    db.process(snap({{"b", Variant("x")}, {"a", Variant(1)}, {"time", Variant(4)}}));
    db.process(snap({{"a", Variant(2)}, {"b", Variant("x")}, {"time", Variant(5)}}));

    auto out = db.flush();
    ASSERT_EQ(out.size(), 2u) << "entry order must not matter, values must";
    RecordMap first = find_record(out, "a", Variant(1));
    EXPECT_EQ(first.get("count"), Variant(2ull));
    EXPECT_EQ(first.get("sum#time"), Variant(7LL));
}

TEST_F(AggDbTest, ImplicitKeySkipsAggregationTargets) {
    attr("time", Variant::Type::Int, prop::as_value | prop::aggregatable);
    AggregationDB db(AggregationConfig::parse("sum(time)", "*"), &registry);
    db.process(snap({{"a", Variant(1)}, {"time", Variant(10)}}));
    db.process(snap({{"a", Variant(1)}, {"time", Variant(32)}}));
    auto out = db.flush();
    ASSERT_EQ(out.size(), 1u) << "different metric values must not split groups";
    EXPECT_EQ(out[0].get("sum#time"), Variant(42LL));
}

TEST_F(AggDbTest, ImplicitKeySkipsHiddenAttributes) {
    attr("internal", Variant::Type::Int, prop::hidden);
    AggregationDB db(AggregationConfig::parse("count", "*"), &registry);
    db.process(snap({{"a", Variant(1)}, {"internal", Variant(1)}}));
    db.process(snap({{"a", Variant(1)}, {"internal", Variant(2)}}));
    EXPECT_EQ(db.flush().size(), 1u);
}

TEST_F(AggDbTest, MergeCombinesEntries) {
    const AggregationConfig cfg = AggregationConfig::parse("count,sum(t)", "k");
    AggregationDB a(cfg, &registry), b(cfg, &registry);
    a.process(snap({{"k", Variant("x")}, {"t", Variant(1)}}));
    b.process(snap({{"k", Variant("x")}, {"t", Variant(2)}}));
    b.process(snap({{"k", Variant("y")}, {"t", Variant(5)}}));
    a.merge(b);

    auto out = a.flush();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(find_record(out, "k", Variant("x")).get("sum#t"), Variant(3LL));
    EXPECT_EQ(find_record(out, "k", Variant("x")).get("count"), Variant(2ull));
    EXPECT_EQ(a.num_processed(), 3u);
}

TEST_F(AggDbTest, SerializeMergeRoundTrip) {
    const AggregationConfig cfg =
        AggregationConfig::parse("count,sum(t),min(t),max(t)", "k");
    AggregationDB src(cfg, &registry);
    for (int i = 0; i < 10; ++i)
        src.process(snap({{"k", Variant(i % 3)}, {"t", Variant(i)}}));

    // merge into a database with a *different* registry: labels transfer
    AttributeRegistry other_registry;
    AggregationDB dst(cfg, &other_registry);
    dst.merge_serialized(src.serialize());

    auto a = src.flush();
    auto b = dst.flush();
    ASSERT_EQ(a.size(), b.size());
    for (const RecordMap& r : a) {
        RecordMap match = find_record(b, "k", r.get("k"));
        EXPECT_EQ(match, r);
    }
    EXPECT_EQ(dst.num_processed(), 10u);
}

TEST_F(AggDbTest, MergeSerializedRejectsGarbage) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    std::vector<std::byte> garbage(16, std::byte{0x5a});
    EXPECT_THROW(db.merge_serialized(garbage), std::runtime_error);
}

TEST_F(AggDbTest, MergeSerializedRejectsOpMismatch) {
    AggregationDB a(AggregationConfig::parse("count", "k"), &registry);
    AggregationDB b(AggregationConfig::parse("count,sum(t)", "k"), &registry);
    a.process(snap({{"k", Variant(1)}}));
    EXPECT_THROW(b.merge_serialized(a.serialize()), std::runtime_error);
}

TEST_F(AggDbTest, ReaggregationFallbackTargets) {
    // second-stage aggregation: sum(t) accepts a "sum#t" input column
    // (paper §VI-B: AGGREGATE sum(aggregate.count) over flushed profiles)
    AggregationDB db(AggregationConfig::parse("sum(t)", "k"), &registry);
    RecordMap flushed;
    flushed.append("k", Variant("x"));
    flushed.append("sum#t", Variant(21LL));
    db.process_offline(flushed);
    db.process_offline(flushed);
    EXPECT_EQ(db.flush()[0].get("sum#t"), Variant(42LL));
}

TEST_F(AggDbTest, ManyGroupsForceTableGrowth) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    constexpr int n = 5000;
    for (int i = 0; i < n; ++i)
        db.process(snap({{"k", Variant(i)}}));
    for (int i = 0; i < n; ++i)
        db.process(snap({{"k", Variant(i)}}));
    EXPECT_EQ(db.size(), static_cast<std::size_t>(n));
    auto out = db.flush();
    for (const RecordMap& r : out)
        EXPECT_EQ(r.get("count"), Variant(2ull));
}

TEST_F(AggDbTest, ClearResetsEverything) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process(snap({{"k", Variant(1)}}));
    db.clear();
    EXPECT_EQ(db.size(), 0u);
    EXPECT_EQ(db.num_processed(), 0u);
    EXPECT_TRUE(db.flush().empty());
    db.process(snap({{"k", Variant(1)}}));
    EXPECT_EQ(db.size(), 1u);
}

TEST_F(AggDbTest, StatsTrackLookups) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process(snap({{"k", Variant(1)}}));
    db.process(snap({{"k", Variant(1)}}));
    db.process(snap({{"k", Variant(2)}}));
    EXPECT_EQ(db.stats().lookups, 3u);
    EXPECT_EQ(db.stats().inserts, 2u);
}

TEST_F(AggDbTest, FlushIsIdempotentAndInsertionOrdered) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process(snap({{"k", Variant("b")}}));
    db.process(snap({{"k", Variant("a")}}));
    auto out1 = db.flush();
    auto out2 = db.flush();
    ASSERT_EQ(out1.size(), 2u);
    EXPECT_EQ(out1[0].get("k"), Variant("b")) << "insertion order preserved";
    EXPECT_EQ(out1.size(), out2.size());
}

TEST_F(AggDbTest, MixedTypeKeyValuesStayDistinct) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process(snap({{"k", Variant(1)}}));
    db.process(snap({{"k", Variant("1")}}));
    db.process(snap({{"k", Variant(1.0)}}));
    EXPECT_EQ(db.size(), 3u) << "int 1, string \"1\", double 1.0 are distinct keys";
}

TEST_F(AggDbTest, PercentTotalSumsToHundred) {
    AggregationDB db(AggregationConfig::parse("percent_total(t),sum(t)", "k"),
                     &registry);
    db.process(snap({{"k", Variant("a")}, {"t", Variant(25.0)}}));
    db.process(snap({{"k", Variant("b")}, {"t", Variant(50.0)}}));
    db.process(snap({{"k", Variant("c")}, {"t", Variant(25.0)}}));

    auto out     = db.flush();
    double total = 0;
    for (const RecordMap& r : out)
        total += r.get("percent_total#t").to_double();
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_NEAR(find_record(out, "k", Variant("b")).get("percent_total#t").to_double(),
                50.0, 1e-9);
}

TEST_F(AggDbTest, PercentTotalSurvivesMerge) {
    const AggregationConfig cfg = AggregationConfig::parse("percent_total(t)", "k");
    AggregationDB a(cfg, &registry), b(cfg, &registry);
    a.process(snap({{"k", Variant("x")}, {"t", Variant(30.0)}}));
    b.process(snap({{"k", Variant("y")}, {"t", Variant(70.0)}}));
    a.merge(b);
    auto out = a.flush();
    EXPECT_NEAR(find_record(out, "k", Variant("y")).get("percent_total#t").to_double(),
                70.0, 1e-9);
}

TEST_F(AggDbTest, HistogramAggregationPerGroup) {
    AggregationDB db(AggregationConfig::parse("histogram(t)", "k"), &registry);
    for (int i = 0; i < 8; ++i)
        db.process(snap({{"k", Variant("g")}, {"t", Variant(1.5)}})); // bin 1
    db.process(snap({{"k", Variant("g")}, {"t", Variant(100.0)}}));   // bin 7
    auto out = db.flush();
    EXPECT_EQ(find_record(out, "k", Variant("g")).get("histogram#t").as_string(),
              "1..7:8|0|0|0|0|0|1");
}

TEST_F(AggDbTest, BytesAndReserveAccounting) {
    AggregationDB db(AggregationConfig::parse("count,sum(t)", "k"), &registry);
    const std::size_t before = db.bytes();
    db.reserve(4096);
    EXPECT_GT(db.bytes(), before) << "reserve preallocates arena capacity";
    for (int i = 0; i < 1000; ++i)
        db.process(snap({{"k", Variant(i)}, {"t", Variant(1)}}));
    EXPECT_EQ(db.size(), 1000u);
    EXPECT_EQ(db.stats().inserts, 1000u);
}

TEST_F(AggDbTest, MoveConstructionPreservesState) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process(snap({{"k", Variant("m")}}));
    AggregationDB moved(std::move(db));
    auto out = moved.flush();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("count").to_uint(), 1u);
}

// -- columnar batch path -------------------------------------------------------

namespace {

/// Build a RecordBatch holding \a snaps in order, plus the all-rows
/// selection vector.
RecordBatch batch_of(const std::vector<SnapshotRecord>& snaps,
                     std::vector<std::uint32_t>& sel) {
    RecordBatch b;
    sel.clear();
    for (const SnapshotRecord& s : snaps) {
        b.begin_row();
        for (const Entry& e : s)
            b.append(e.attribute, e.value);
        b.end_row();
        sel.push_back(static_cast<std::uint32_t>(b.rows() - 1));
    }
    return b;
}

} // namespace

TEST_F(AggDbTest, ProcessBatchMatchesRecordPath) {
    const auto config = [&] {
        return AggregationConfig::parse("count,sum(time),min(time)", "function");
    };
    std::vector<SnapshotRecord> snaps;
    for (int i = 0; i < 100; ++i)
        snaps.push_back(snap({{"function", Variant(i % 7)},
                              {"time", Variant(1.5 + i)}}));

    AggregationDB rec_db(config(), &registry);
    for (const SnapshotRecord& s : snaps)
        rec_db.process(s);

    AggregationDB batch_db(config(), &registry);
    std::vector<std::uint32_t> sel;
    const RecordBatch b = batch_of(snaps, sel);
    batch_db.process_batch(b, sel);

    const auto a = rec_db.flush();
    const auto c = batch_db.flush();
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], c[i]) << "group " << i << " differs";
    EXPECT_EQ(rec_db.num_processed(), batch_db.num_processed());
    EXPECT_EQ(rec_db.stats().lookups, batch_db.stats().lookups);
}

TEST_F(AggDbTest, ProcessBatchHonorsSelectionVector) {
    std::vector<SnapshotRecord> snaps;
    for (int i = 0; i < 10; ++i)
        snaps.push_back(snap({{"k", Variant(i)}, {"time", Variant(1)}}));
    std::vector<std::uint32_t> all;
    const RecordBatch b = batch_of(snaps, all);
    const std::vector<std::uint32_t> odd = {1, 3, 5, 7, 9};

    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.process_batch(b, odd);
    EXPECT_EQ(db.size(), 5u);
    EXPECT_EQ(db.num_processed(), 5u);
}

// -- sort-spill under a memory budget ------------------------------------------

TEST_F(AggDbTest, SpillMatchesInMemoryGroups) {
    // integer metric: sums are exact, so spilled output must match the
    // unbounded run value-for-value
    const auto config = [] {
        return AggregationConfig::parse("count,sum(bytes)", "k");
    };
    AggregationDB unbounded(config(), &registry);
    AggregationDB spilled(config(), &registry);
    spilled.set_memory_budget(1); // clamps to the 16-entry floor
    EXPECT_EQ(spilled.memory_budget(), 1u);

    for (int i = 0; i < 200; ++i) {
        const auto s =
            snap({{"k", Variant(i % 50)}, {"bytes", Variant(i)}});
        unbounded.process(s);
        spilled.process(s);
    }
    EXPECT_FALSE(unbounded.spilled());
    EXPECT_TRUE(spilled.spilled());
    EXPECT_GT(spilled.stats().spill_runs, 0u);
    EXPECT_GT(spilled.stats().spill_bytes, 0u);

    const auto a = unbounded.flush();
    const auto b = spilled.flush();
    ASSERT_EQ(a.size(), b.size());
    for (const RecordMap& row : a) {
        const RecordMap match = find_record(b, "k", row.get("k"));
        EXPECT_EQ(match.get("count"), row.get("count"));
        EXPECT_EQ(match.get("sum#bytes"), row.get("sum#bytes"));
    }
    EXPECT_EQ(spilled.num_processed(), 200u);
}

TEST_F(AggDbTest, SpillIsByteIdenticalAcrossRecordAndBatchPaths) {
    const auto config = [] {
        return AggregationConfig::parse("count,sum(time)", "k");
    };
    std::vector<SnapshotRecord> snaps;
    for (int i = 0; i < 120; ++i)
        snaps.push_back(snap({{"k", Variant(i % 40)}, {"time", Variant(0.25 * i)}}));

    AggregationDB rec_db(config(), &registry);
    rec_db.set_memory_budget(1);
    for (const SnapshotRecord& s : snaps)
        rec_db.process(s);

    AggregationDB batch_db(config(), &registry);
    batch_db.set_memory_budget(1);
    std::vector<std::uint32_t> sel;
    const RecordBatch b = batch_of(snaps, sel);
    batch_db.process_batch(b, sel);

    EXPECT_TRUE(rec_db.spilled());
    EXPECT_TRUE(batch_db.spilled());
    const auto a = rec_db.flush();
    const auto c = batch_db.flush();
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], c[i]) << "spilled group " << i << " differs";
}

TEST_F(AggDbTest, SpillHandlesEmptyImplicitKey) {
    // regression: a zero-length GROUP BY * key (empty record) sorts first
    // in the spill run; the merge must not treat it as end-of-input
    AggregationDB db(AggregationConfig::parse("count", "*"), &registry);
    db.set_memory_budget(1);
    db.process(SnapshotRecord()); // empty record -> empty key
    for (int i = 0; i < 30; ++i)
        db.process(snap({{"k", Variant(i)}}));
    EXPECT_TRUE(db.spilled());
    const auto out = db.flush();
    EXPECT_EQ(out.size(), 31u);
    int empties = 0;
    for (const RecordMap& row : out)
        if (!row.find("k"))
            ++empties;
    EXPECT_EQ(empties, 1) << "the empty-key group survives the spill merge";
}

TEST_F(AggDbTest, SpilledSerializeMergesIntoFreshDb) {
    const auto config = [] {
        return AggregationConfig::parse("count,sum(bytes)", "k");
    };
    AggregationDB spilled(config(), &registry);
    spilled.set_memory_budget(1);
    for (int i = 0; i < 100; ++i)
        spilled.process(snap({{"k", Variant(i % 25)}, {"bytes", Variant(2)}}));
    ASSERT_TRUE(spilled.spilled());

    AggregationDB merged(config(), &registry);
    merged.merge_serialized(spilled.serialize());
    EXPECT_EQ(merged.num_processed(), 100u);
    const auto out = merged.flush();
    ASSERT_EQ(out.size(), 25u);
    for (const RecordMap& row : out) {
        EXPECT_EQ(row.get("count").to_uint(), 4u);
        EXPECT_EQ(row.get("sum#bytes").to_int(), 8);
    }
}

TEST_F(AggDbTest, ClearDropsSpillState) {
    AggregationDB db(AggregationConfig::parse("count", "k"), &registry);
    db.set_memory_budget(1);
    for (int i = 0; i < 40; ++i)
        db.process(snap({{"k", Variant(i)}}));
    ASSERT_TRUE(db.spilled());
    db.clear();
    EXPECT_FALSE(db.spilled());
    EXPECT_EQ(db.size(), 0u);
    db.process(snap({{"k", Variant(1)}}));
    EXPECT_EQ(db.flush().size(), 1u);
}
