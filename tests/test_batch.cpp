// RecordBatch unit tests: columnar layout, overflow demotion, append
// targets, and exact entry-order reconstruction (the byte-identity
// contract with the record-at-a-time pipeline).
#include "common/recordbatch.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace calib;

namespace {

/// Collect a materialized row as (attribute, value) pairs.
std::vector<std::pair<id_t, Variant>> entries_of(const RecordBatch& batch,
                                                 std::size_t row) {
    IdRecord rec;
    batch.materialize(row, rec);
    std::vector<std::pair<id_t, Variant>> out;
    for (const Entry& e : rec)
        out.emplace_back(e.attribute, e.value);
    return out;
}

} // namespace

TEST(RecordBatch, ConformingRowsFillColumns) {
    RecordBatch b;
    b.begin_row();
    b.append(1, Variant("foo"));
    b.append(2, Variant(std::int64_t(42)));
    EXPECT_EQ(b.end_row(), 2u);
    b.begin_row();
    b.append(1, Variant("bar"));
    EXPECT_EQ(b.end_row(), 1u);

    ASSERT_EQ(b.rows(), 2u);
    ASSERT_EQ(b.num_columns(), 2u);
    const std::int32_t c1 = b.column_index(1);
    const std::int32_t c2 = b.column_index(2);
    ASSERT_GE(c1, 0);
    ASSERT_GE(c2, 0);
    EXPECT_EQ(b.column_at(static_cast<std::size_t>(c1)).values[0], Variant("foo"));
    EXPECT_EQ(b.column_at(static_cast<std::size_t>(c1)).values[1], Variant("bar"));
    EXPECT_EQ(b.column_at(static_cast<std::size_t>(c2)).valid[0], 1);
    EXPECT_EQ(b.column_at(static_cast<std::size_t>(c2)).valid[1], 0);
    EXPECT_EQ(b.column_index(99), -1);
    EXPECT_FALSE(b.is_overflow(0));
    EXPECT_FALSE(b.is_overflow(1));
}

TEST(RecordBatch, MaterializePreservesEntryOrder) {
    RecordBatch b;
    // the first row defines column-creation order: 7 before 3 conforms
    b.begin_row();
    b.append(7, Variant("x"));
    b.append(3, Variant(std::int64_t(1)));
    b.end_row();
    // same order again: conforming
    b.begin_row();
    b.append(7, Variant("y"));
    b.append(9, Variant(2.5));
    b.end_row();
    // the established order reversed: not representable columnar
    b.begin_row();
    b.append(3, Variant(std::int64_t(2)));
    b.append(7, Variant("z"));
    b.end_row();

    EXPECT_FALSE(b.is_overflow(0));
    EXPECT_FALSE(b.is_overflow(1));
    EXPECT_TRUE(b.is_overflow(2));
    const auto r0 = entries_of(b, 0);
    ASSERT_EQ(r0.size(), 2u);
    EXPECT_EQ(r0[0].first, 7u);
    EXPECT_EQ(r0[0].second, Variant("x"));
    EXPECT_EQ(r0[1].first, 3u);
    const auto r1 = entries_of(b, 1);
    ASSERT_EQ(r1.size(), 2u);
    EXPECT_EQ(r1[0].first, 7u);
    EXPECT_EQ(r1[1].first, 9u);
    const auto r2 = entries_of(b, 2);
    ASSERT_EQ(r2.size(), 2u);
    EXPECT_EQ(r2[0].first, 3u); // original entry order, not column order
    EXPECT_EQ(r2[1].first, 7u);
    EXPECT_EQ(r2[1].second, Variant("z"));
}

TEST(RecordBatch, DuplicateAttributeDemotesToOverflow) {
    RecordBatch b;
    b.begin_row();
    b.append(1, Variant("a"));
    b.append(1, Variant("b")); // duplicate: record semantics keep both
    b.end_row();

    ASSERT_TRUE(b.is_overflow(0));
    const auto r = entries_of(b, 0);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].second, Variant("a"));
    EXPECT_EQ(r[1].second, Variant("b"));
}

TEST(RecordBatch, OutOfRangeAttributeDemotesToOverflow) {
    RecordBatch b;
    b.begin_row();
    b.append(RecordBatch::max_column_attr + 10, Variant(std::int64_t(5)));
    b.end_row();

    ASSERT_TRUE(b.is_overflow(0));
    EXPECT_EQ(b.overflow_record(0).size(), 1u);
    // no column was created for the huge id
    EXPECT_EQ(b.column_index(RecordBatch::max_column_attr + 10), -1);
}

// Regression: an overflow row must still pad every column, or every
// subsequent row's values land one slot early with misaligned validity
// (found by the fuzz differential runner).
TEST(RecordBatch, RowsAfterOverflowStayAligned) {
    RecordBatch b;
    b.begin_row();
    b.append(1, Variant("r0"));
    b.append(2, Variant(std::int64_t(10)));
    b.end_row();
    b.begin_row();
    b.append(2, Variant(std::int64_t(20))); // reversed order
    b.append(1, Variant("r1"));             // -> overflow
    b.end_row();
    b.begin_row();
    b.append(1, Variant("r2"));
    b.append(2, Variant(std::int64_t(30)));
    b.end_row();

    ASSERT_TRUE(b.is_overflow(1));
    const std::size_t c1 = static_cast<std::size_t>(b.column_index(1));
    const std::size_t c2 = static_cast<std::size_t>(b.column_index(2));
    ASSERT_EQ(b.column_at(c1).values.size(), 3u);
    ASSERT_EQ(b.column_at(c1).valid.size(), 3u);
    EXPECT_EQ(b.column_at(c1).valid[1], 0); // overflow row: not in columns
    EXPECT_EQ(b.column_at(c1).values[2], Variant("r2"));
    EXPECT_EQ(b.column_at(c2).values[2], Variant(std::int64_t(30)));
    const auto r2 = entries_of(b, 2);
    ASSERT_EQ(r2.size(), 2u);
    EXPECT_EQ(r2[0].second, Variant("r2"));
    EXPECT_EQ(r2[1].second, Variant(std::int64_t(30)));
}

TEST(RecordBatch, AppendTargetAppendsAtEndOfRecord) {
    RecordBatch b;
    b.begin_row();
    b.append(5, Variant("k"));
    b.append(8, Variant(std::int64_t(1)));
    b.end_row();
    b.begin_row();
    b.append(5, Variant("k"));
    b.append(8, Variant(std::int64_t(2)));
    b.append(12, Variant(std::int64_t(99))); // already has the target field
    b.end_row();

    const std::size_t tgt = b.append_target(12);
    // row 0 lacks attribute 12 -> logically appended last
    b.set_row_value(tgt, 0, Variant(std::int64_t(7)));
    // row 1 already carries it -> overwritten in place, order unchanged
    b.set_row_value(tgt, 1, Variant(std::int64_t(8)));

    const auto r0 = entries_of(b, 0);
    ASSERT_EQ(r0.size(), 3u);
    EXPECT_EQ(r0[2].first, 12u);
    EXPECT_EQ(r0[2].second, Variant(std::int64_t(7)));
    EXPECT_EQ(b.entries_in_row(0), 3u);

    const auto r1 = entries_of(b, 1);
    ASSERT_EQ(r1.size(), 3u);
    EXPECT_EQ(r1[2].first, 12u); // stream order already had it last
    EXPECT_EQ(r1[2].second, Variant(std::int64_t(8)));
    EXPECT_EQ(b.entries_in_row(1), 3u);
}

TEST(RecordBatch, ClearKeepsSchemaForReuse) {
    RecordBatch b;
    b.begin_row();
    b.append(1, Variant("v"));
    b.end_row();
    const std::size_t tgt = b.append_target(4);
    b.set_row_value(tgt, 0, Variant(std::int64_t(1)));

    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.rows(), 0u);
    // columns survive (same stream schema), values and targets reset
    EXPECT_GE(b.column_index(1), 0);
    EXPECT_FALSE(b.column_at(static_cast<std::size_t>(b.column_index(4)))
                     .is_append_target);

    b.begin_row();
    b.append(1, Variant("w"));
    b.append(4, Variant(std::int64_t(3)));
    b.end_row();
    const auto r = entries_of(b, 0);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].second, Variant("w"));
    EXPECT_EQ(r[1].second, Variant(std::int64_t(3)));
}

TEST(RecordBatch, AppendRecordCompatibilityPath) {
    IdRecord rec;
    rec.append(2, Variant("hello"));
    rec.append(6, Variant(1.5));
    RecordBatch b;
    b.append_record(rec);
    ASSERT_EQ(b.rows(), 1u);
    EXPECT_FALSE(b.is_overflow(0));
    const auto r = entries_of(b, 0);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].second, Variant("hello"));
    EXPECT_EQ(r[1].second, Variant(1.5));
}

TEST(RecordBatch, EmptyRowIsLegal) {
    RecordBatch b;
    b.begin_row();
    EXPECT_EQ(b.end_row(), 0u);
    EXPECT_EQ(b.rows(), 1u);
    EXPECT_FALSE(b.is_overflow(0));
    IdRecord rec;
    b.materialize(0, rec);
    EXPECT_EQ(rec.size(), 0u);
}
