#include "query/calql.hpp"
#include "query/formatter.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <sstream>

using namespace calib;
using calib::test::record;

namespace {

std::vector<RecordMap> sample_records() {
    return {
        record({{"function", Variant("foo")}, {"count", Variant(3ull)},
                {"sum#time", Variant(40LL)}}),
        record({{"function", Variant("bar")}, {"count", Variant(1ull)},
                {"sum#time", Variant(10LL)}}),
        record({{"count", Variant(2ull)}, {"sum#time", Variant(20LL)}}),
    };
}

std::string render(const char* query, const std::vector<RecordMap>& records) {
    std::ostringstream os;
    format_records(os, records, parse_calql(query));
    return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

} // namespace

TEST(OutputColumns, SelectListWins) {
    QuerySpec spec = parse_calql("SELECT count,function");
    auto cols      = output_columns(sample_records(), spec);
    EXPECT_EQ(cols, (std::vector<std::string>{"count", "function"}));
}

TEST(OutputColumns, KeyThenResultsThenExtras) {
    QuerySpec spec = parse_calql("AGGREGATE count,sum(time) GROUP BY function");
    auto records   = sample_records();
    records[0].append("extra", Variant(1));
    auto cols = output_columns(records, spec);
    EXPECT_EQ(cols, (std::vector<std::string>{"function", "count", "sum#time",
                                              "extra"}));
}

TEST(OutputColumns, DropsAllEmptyColumns) {
    QuerySpec spec = parse_calql("AGGREGATE count,sum(missing) GROUP BY function");
    auto cols      = output_columns(sample_records(), spec);
    EXPECT_EQ(std::count(cols.begin(), cols.end(), "sum#missing"), 0);
}

TEST(TableFormat, AlignsAndOrders) {
    const std::string out =
        render("AGGREGATE count,sum(time) GROUP BY function", sample_records());
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 4u);
    // header names all present
    EXPECT_NE(lines[0].find("function"), std::string::npos);
    EXPECT_NE(lines[0].find("count"), std::string::npos);
    EXPECT_NE(lines[0].find("sum#time"), std::string::npos);
    // numeric columns right-aligned: the '3' of count lines up under header end
    const std::size_t count_end = lines[0].find("count") + 5;
    EXPECT_EQ(lines[1][count_end - 1], '3');
    // record with no function value renders an empty cell
    EXPECT_EQ(lines[3].find("foo"), std::string::npos);
}

TEST(TableFormat, AliasChangesHeader) {
    const std::string out = render(
        "SELECT function AS Name, count AS Hits GROUP BY function", sample_records());
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("Hits"), std::string::npos);
    EXPECT_EQ(out.find("function"), std::string::npos);
}

TEST(CsvFormat, EscapesAndQuotes) {
    auto records = std::vector<RecordMap>{
        record({{"name", Variant("has,comma")}, {"v", Variant(1)}}),
        record({{"name", Variant("has\"quote")}, {"v", Variant(2)}}),
    };
    const std::string out = render("SELECT name,v FORMAT csv", records);
    const auto lines      = lines_of(out);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "name,v");
    EXPECT_EQ(lines[1], "\"has,comma\",1");
    EXPECT_EQ(lines[2], "\"has\"\"quote\",2");
}

TEST(JsonFormat, TypedValuesAndEscapes) {
    auto records = std::vector<RecordMap>{
        record({{"s", Variant("a\"b")}, {"i", Variant(42)}, {"d", Variant(1.5)}})};
    const std::string out = render("FORMAT json", records);
    EXPECT_NE(out.find("\"s\": \"a\\\"b\""), std::string::npos);
    EXPECT_NE(out.find("\"i\": 42"), std::string::npos);
    EXPECT_NE(out.find("\"d\": 1.5"), std::string::npos);
    EXPECT_EQ(out.front(), '[');
}

TEST(JsonFormat, OmitsAbsentAttributes) {
    const std::string out = render("FORMAT json", sample_records());
    // the third record has no "function" key at all
    const auto lines = lines_of(out);
    EXPECT_EQ(lines[3].find("function"), std::string::npos);
}

TEST(ExpandFormat, KeyValueLines) {
    const std::string out =
        render("SELECT function,count FORMAT expand", sample_records());
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "function=foo,count=3");
    EXPECT_EQ(lines[2], "count=2") << "absent attributes omitted";
}

TEST(TreeFormat, IndentsByPathDepth) {
    auto records = std::vector<RecordMap>{
        record({{"path", Variant("main")}, {"t", Variant(100)}}),
        record({{"path", Variant("main/foo")}, {"t", Variant(60)}}),
        record({{"path", Variant("main/foo/bar")}, {"t", Variant(20)}}),
        record({{"path", Variant("main/baz")}, {"t", Variant(15)}}),
    };
    const std::string out = render("SELECT path,t FORMAT tree", records);
    const auto lines      = lines_of(out);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[1].find("main"), 0u);
    EXPECT_EQ(lines[2].find("  baz"), 0u) << "children indented and sorted";
    EXPECT_EQ(lines[3].find("  foo"), 0u);
    EXPECT_EQ(lines[4].find("    bar"), 0u);
}

TEST(FormatDispatch, TableIsDefault) {
    std::ostringstream os;
    QuerySpec spec;
    format_records(os, sample_records(), spec);
    EXPECT_FALSE(os.str().empty());
}

TEST(FormatDispatch, EmptyRecordSetProducesHeaderOnlyOrNothing) {
    std::ostringstream os;
    format_records(os, {}, parse_calql("AGGREGATE count GROUP BY k"));
    EXPECT_TRUE(os.str().empty()) << "no columns appear in any record";
    std::ostringstream os2;
    format_records(os2, {}, parse_calql("SELECT a,b FORMAT csv"));
    EXPECT_EQ(os2.str(), "a,b\n") << "explicit SELECT keeps the header";
}
