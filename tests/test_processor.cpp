// End-to-end query pipeline tests: filter -> aggregate -> sort -> limit,
// plus cross-processor merge (the local stage of §IV-C).
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <sstream>

using namespace calib;
using calib::test::find_record;
using calib::test::record;

namespace {

std::vector<RecordMap> event_stream() {
    std::vector<RecordMap> out;
    for (int iter = 0; iter < 3; ++iter) {
        for (int call = 0; call < 2; ++call)
            out.push_back(record({{"function", Variant("foo")},
                                  {"loop.iteration", Variant(iter)},
                                  {"time", Variant(10)}}));
        out.push_back(record({{"function", Variant("bar")},
                              {"loop.iteration", Variant(iter)},
                              {"time", Variant(5)}}));
        out.push_back(record({{"mpi.function", Variant("MPI_Barrier")},
                              {"loop.iteration", Variant(iter)},
                              {"time", Variant(7)}}));
    }
    return out;
}

} // namespace

TEST(QueryProcessor, BasicAggregation) {
    auto out = run_query("AGGREGATE count,sum(time) GROUP BY function",
                         event_stream());
    ASSERT_EQ(out.size(), 3u); // foo, bar, (none)
    EXPECT_EQ(find_record(out, "function", Variant("foo")).get("sum#time"),
              Variant(60LL));
    EXPECT_EQ(find_record(out, "function", Variant("bar")).get("count"),
              Variant(3ull));
}

TEST(QueryProcessor, WhereFiltersBeforeAggregation) {
    auto out = run_query(
        "AGGREGATE sum(time) WHERE not(mpi.function) GROUP BY loop.iteration",
        event_stream());
    ASSERT_EQ(out.size(), 3u);
    for (const RecordMap& r : out)
        EXPECT_EQ(r.get("sum#time"), Variant(25LL))
            << "barrier time excluded from every iteration";
}

TEST(QueryProcessor, WhereEqualityOnIteration) {
    auto out = run_query("AGGREGATE count WHERE loop.iteration=1 GROUP BY function",
                         event_stream());
    double total = 0;
    for (const RecordMap& r : out)
        total += r.get("count").to_double();
    EXPECT_EQ(total, 4.0);
}

TEST(QueryProcessor, OrderByDescending) {
    auto out = run_query(
        "AGGREGATE sum(time) GROUP BY function ORDER BY sum#time DESC",
        event_stream());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].get("function"), Variant("foo"));
    EXPECT_GE(out[0].get("sum#time").to_double(), out[1].get("sum#time").to_double());
    EXPECT_GE(out[1].get("sum#time").to_double(), out[2].get("sum#time").to_double());
}

TEST(QueryProcessor, OrderByMultipleKeys) {
    auto out = run_query(
        "AGGREGATE count GROUP BY function,loop.iteration "
        "ORDER BY function,loop.iteration DESC",
        event_stream());
    ASSERT_EQ(out.size(), 9u);
    // within equal function, iterations descend
    for (std::size_t i = 1; i < out.size(); ++i) {
        if (out[i].get("function") == out[i - 1].get("function")) {
            EXPECT_LT(out[i].get("loop.iteration").to_int(),
                      out[i - 1].get("loop.iteration").to_int());
        }
    }
}

TEST(QueryProcessor, LimitTruncates) {
    auto out = run_query(
        "AGGREGATE count GROUP BY function,loop.iteration LIMIT 4", event_stream());
    EXPECT_EQ(out.size(), 4u);
}

TEST(QueryProcessor, NoAggregationPassesThrough) {
    auto out = run_query("WHERE function=foo", event_stream());
    EXPECT_EQ(out.size(), 6u);
    for (const RecordMap& r : out)
        EXPECT_EQ(r.get("function"), Variant("foo"));
}

TEST(QueryProcessor, GroupByWithoutAggregateDefaultsToCount) {
    auto out = run_query("GROUP BY function", event_stream());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(find_record(out, "function", Variant("foo")).get("count"),
              Variant(6ull));
}

TEST(QueryProcessor, InputStatistics) {
    QueryProcessor proc(parse_calql("AGGREGATE count WHERE function=foo GROUP BY *"));
    proc.add(event_stream());
    EXPECT_EQ(proc.num_records_in(), 12u);
    EXPECT_EQ(proc.num_records_kept(), 6u);
}

TEST(QueryProcessor, MergeAggregatingProcessors) {
    const auto stream = event_stream();
    QueryProcessor whole(parse_calql("AGGREGATE count,sum(time) GROUP BY function"));
    whole.add(stream);

    QueryProcessor a(parse_calql("AGGREGATE count,sum(time) GROUP BY function"));
    QueryProcessor b(parse_calql("AGGREGATE count,sum(time) GROUP BY function"));
    for (std::size_t i = 0; i < stream.size(); ++i)
        (i % 2 ? a : b).add(stream[i]);
    a.merge(b);

    auto direct = whole.result();
    auto merged = a.result();
    ASSERT_EQ(direct.size(), merged.size());
    for (const RecordMap& r : direct)
        EXPECT_EQ(find_record(merged, "function", r.get("function")), r);
}

TEST(QueryProcessor, SerializedPartialRoundTrip) {
    const auto stream = event_stream();
    QueryProcessor src(parse_calql("AGGREGATE sum(time) GROUP BY function"));
    src.add(stream);

    QueryProcessor dst(parse_calql("AGGREGATE sum(time) GROUP BY function"));
    dst.merge_serialized(src.serialize_partial());
    EXPECT_EQ(dst.result().size(), src.result().size());
}

TEST(QueryProcessor, SerializedPartialWithoutAggregation) {
    QueryProcessor src(parse_calql("WHERE function=bar"));
    src.add(event_stream());

    QueryProcessor dst(parse_calql("WHERE function=bar"));
    dst.merge_serialized(src.serialize_partial());
    EXPECT_EQ(dst.result().size(), 3u);
    EXPECT_EQ(dst.result()[0].get("function"), Variant("bar"));
}

TEST(QueryProcessor, WriteRendersWithSpecFormat) {
    QueryProcessor proc(
        parse_calql("AGGREGATE count GROUP BY function FORMAT csv ORDER BY function"));
    proc.add(event_stream());
    std::ostringstream os;
    proc.write(os);
    EXPECT_EQ(os.str().substr(0, os.str().find('\n')), "function,count");
}

TEST(QueryProcessor, TwoStageEqualsOneStage) {
    // stage 1 per-"process" profiles, stage 2 cross-process aggregation;
    // the composition equals direct aggregation (paper §VI-F)
    const auto stream = event_stream();

    QueryProcessor direct(parse_calql("AGGREGATE sum(time) GROUP BY function"));
    direct.add(stream);

    std::vector<RecordMap> stage1_out;
    for (int part = 0; part < 2; ++part) {
        QueryProcessor stage1(parse_calql("AGGREGATE sum(time) GROUP BY function"));
        for (std::size_t i = part; i < stream.size(); i += 2)
            stage1.add(stream[i]);
        for (const RecordMap& r : stage1.result())
            stage1_out.push_back(r);
    }
    QueryProcessor stage2(parse_calql("AGGREGATE sum(time) GROUP BY function"));
    stage2.add(stage1_out);

    auto a = direct.result();
    auto b = stage2.result();
    ASSERT_EQ(a.size(), b.size());
    for (const RecordMap& r : a)
        EXPECT_EQ(find_record(b, "function", r.get("function")).get("sum#time"),
                  r.get("sum#time"));
}
