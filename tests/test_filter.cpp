#include "query/filter.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

using namespace calib;
using calib::test::record;

TEST(Filter, ExistAndNotExist) {
    const RecordMap r = record({{"kernel", Variant("adv")}, {"t", Variant(1)}});
    EXPECT_TRUE(filter_matches({"kernel", FilterSpec::Op::Exist, {}}, r));
    EXPECT_FALSE(filter_matches({"missing", FilterSpec::Op::Exist, {}}, r));
    EXPECT_TRUE(filter_matches({"missing", FilterSpec::Op::NotExist, {}}, r));
    EXPECT_FALSE(filter_matches({"kernel", FilterSpec::Op::NotExist, {}}, r));
}

TEST(Filter, EqualityWithTypeCoercion) {
    const RecordMap r = record({{"iter", Variant(4)}, {"name", Variant("x")}});
    EXPECT_TRUE(filter_matches({"iter", FilterSpec::Op::Eq, Variant(4)}, r));
    EXPECT_TRUE(filter_matches({"iter", FilterSpec::Op::Eq, Variant(4.0)}, r));
    EXPECT_TRUE(filter_matches({"iter", FilterSpec::Op::Eq, Variant("4")}, r))
        << "string \"4\" matches numeric 4 via textual coercion";
    EXPECT_FALSE(filter_matches({"iter", FilterSpec::Op::Eq, Variant(5)}, r));
    EXPECT_TRUE(filter_matches({"name", FilterSpec::Op::Eq, Variant("x")}, r));
}

TEST(Filter, OrderingComparisons) {
    const RecordMap r = record({{"t", Variant(10.0)}});
    EXPECT_TRUE(filter_matches({"t", FilterSpec::Op::Lt, Variant(11)}, r));
    EXPECT_FALSE(filter_matches({"t", FilterSpec::Op::Lt, Variant(10)}, r));
    EXPECT_TRUE(filter_matches({"t", FilterSpec::Op::Le, Variant(10)}, r));
    EXPECT_TRUE(filter_matches({"t", FilterSpec::Op::Gt, Variant(9.5)}, r));
    EXPECT_TRUE(filter_matches({"t", FilterSpec::Op::Ge, Variant(10)}, r));
    EXPECT_TRUE(filter_matches({"t", FilterSpec::Op::Ne, Variant(3)}, r));
}

TEST(Filter, ComparisonOnMissingAttributeFails) {
    const RecordMap r = record({{"a", Variant(1)}});
    EXPECT_FALSE(filter_matches({"b", FilterSpec::Op::Eq, Variant(1)}, r));
    EXPECT_FALSE(filter_matches({"b", FilterSpec::Op::Ne, Variant(1)}, r))
        << "comparisons never match absent attributes (not-exists is explicit)";
}

TEST(Filter, ConjunctionSemantics) {
    const RecordMap r = record({{"a", Variant(1)}, {"b", Variant(2)}});
    std::vector<FilterSpec> both = {{"a", FilterSpec::Op::Eq, Variant(1)},
                                    {"b", FilterSpec::Op::Eq, Variant(2)}};
    EXPECT_TRUE(filters_match(both, r));
    both[1].value = Variant(3);
    EXPECT_FALSE(filters_match(both, r));
    EXPECT_TRUE(filters_match({}, r)) << "empty filter list matches everything";
}

TEST(SnapshotFilter, MatchesResolvedAttributes) {
    AttributeRegistry registry;
    const Attribute kernel = registry.create("kernel", Variant::Type::String);
    const Attribute mpifn  = registry.create("mpi.function", Variant::Type::String);

    SnapshotFilter filter({{"mpi.function", FilterSpec::Op::NotExist, {}}}, &registry);

    SnapshotRecord with_mpi;
    with_mpi.append(kernel.id(), Variant("k"));
    with_mpi.append(mpifn.id(), Variant("MPI_Barrier"));
    SnapshotRecord without_mpi;
    without_mpi.append(kernel.id(), Variant("k"));

    EXPECT_FALSE(filter.matches(with_mpi));
    EXPECT_TRUE(filter.matches(without_mpi));
}

TEST(SnapshotFilter, LazyResolutionAcrossAttributeCreation) {
    AttributeRegistry registry;
    SnapshotFilter filter({{"late", FilterSpec::Op::Eq, Variant(7)}}, &registry);

    SnapshotRecord empty;
    EXPECT_FALSE(filter.matches(empty)) << "attribute doesn't exist yet";

    const Attribute late = registry.create("late", Variant::Type::Int);
    SnapshotRecord rec;
    rec.append(late.id(), Variant(7));
    EXPECT_TRUE(filter.matches(rec)) << "resolution picks up the new attribute";
}

TEST(SnapshotFilter, EmptyFilterMatchesAll) {
    AttributeRegistry registry;
    SnapshotFilter filter({}, &registry);
    SnapshotRecord rec;
    EXPECT_TRUE(filter.empty());
    EXPECT_TRUE(filter.matches(rec));
}
