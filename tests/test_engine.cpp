// Tests for the parallel query engine: thread pool semantics, morsel
// splitting, and — most importantly — byte-identity of the parallel and
// serial paths for every output format and thread count.
#include "engine/morsel.hpp"
#include "engine/parallel_processor.hpp"
#include "engine/thread_pool.hpp"

#include "io/calireader.hpp"
#include "io/caliwriter.hpp"
#include "io/filebuffer.hpp"
#include "obs/metrics.hpp"
#include "query/calql.hpp"

#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace calib;
using namespace calib::engine;
using calib::test::TempDir;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ExecutesSubmittedTasks) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    wait_all(futures);
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
    ThreadPool pool(2);
    std::future<void> ok   = pool.submit([] {});
    std::future<void> boom = pool.submit([] {
        throw std::runtime_error("task failed");
    });
    EXPECT_NO_THROW(ok.get());
    EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, WaitAllRethrowsFirstFailureAfterAllComplete) {
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("boom");
            ++completed;
        }));
    EXPECT_THROW(wait_all(futures), std::runtime_error);
    // every non-throwing task still ran to completion
    EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        // no explicit wait: the destructor must run every queued task
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
    EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, OccupancyGaugesAndWaitIdle) {
    calib::obs::set_enabled(true);
    auto& mreg                = calib::obs::MetricsRegistry::instance();
    const std::int64_t tasks0 = mreg.value("pool.tasks");

    {
        ThreadPool pool(2);

        // park both workers on a gate so occupancy is deterministic
        // (condition checks, not sleeps)
        std::promise<void> release;
        std::shared_future<void> gate(release.get_future());
        std::atomic<int> started{0};
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 2; ++i)
            futures.push_back(pool.submit([&started, gate] {
                ++started;
                gate.wait();
            }));
        while (started.load() < 2)
            std::this_thread::yield();
        EXPECT_EQ(pool.active_workers(), 2u);
        EXPECT_EQ(mreg.value("pool.active_workers"), 2);

        // with every worker parked, further submissions must queue up
        for (int i = 0; i < 3; ++i)
            futures.push_back(pool.submit([] {}));
        EXPECT_EQ(pool.queue_depth(), 3u);
        EXPECT_EQ(mreg.value("pool.queue_depth"), 3);

        release.set_value();
        pool.wait_idle();
        EXPECT_EQ(pool.queue_depth(), 0u);
        EXPECT_EQ(pool.active_workers(), 0u);
        EXPECT_EQ(mreg.value("pool.queue_depth"), 0);
        EXPECT_EQ(mreg.value("pool.active_workers"), 0);
        EXPECT_EQ(mreg.value("pool.tasks") - tasks0, 5);
        wait_all(futures);
    }
    calib::obs::set_enabled(false);
}

TEST(ThreadPool, WaitIdleReturnsImmediatelyWhenIdle) {
    ThreadPool pool(2);
    pool.wait_idle(); // nothing submitted: must not block
    EXPECT_EQ(pool.queue_depth(), 0u);
    EXPECT_EQ(pool.active_workers(), 0u);
}

// ------------------------------------------------------------------- Morsels

namespace {

/// Write a .cali file with \a nrecords records over four kernels, an
/// integer metric, and a unique per-record id.
void write_cali(const std::string& path, int nrecords, int offset = 0,
                const char* rank = nullptr) {
    static const char* kernels[] = {"advec", "pdv", "accel", "flux"};
    std::ofstream os(path);
    CaliWriter w(os);
    if (rank)
        w.write_global("mpi.rank", Variant(rank));
    for (int i = 0; i < nrecords; ++i) {
        RecordMap r;
        r.append("kernel", Variant(kernels[i % 4]));
        r.append("count", Variant(static_cast<long long>(i % 7 + 1)));
        r.append("id", Variant(static_cast<long long>(offset + i)));
        w.write_record(r);
    }
}

std::string run_engine(const std::string& query,
                       const std::vector<std::string>& files, EngineOptions opts,
                       EngineStats* stats = nullptr) {
    ParallelQueryProcessor eng(parse_calql(query), opts);
    std::ostringstream os;
    eng.run(files).write(os);
    if (stats)
        *stats = eng.stats();
    return os.str();
}

} // namespace

TEST(Morsel, OneMorselPerFileForMultiFileInput) {
    TempDir dir("morsel-multi");
    write_cali(dir.file("a.cali"), 10);
    write_cali(dir.file("b.cali"), 10);

    auto morsels = make_morsels({dir.file("a.cali"), dir.file("b.cali")}, {});
    ASSERT_EQ(morsels.size(), 2u);
    EXPECT_EQ(morsels[0].kind, Morsel::Kind::CaliFile);
    EXPECT_EQ(morsels[0].path, dir.file("a.cali"));
    EXPECT_EQ(morsels[1].path, dir.file("b.cali"));
}

TEST(Morsel, SingleLargeFileSplitsIntoByteRanges) {
    TempDir dir("morsel-range");
    write_cali(dir.file("big.cali"), 1000);

    MorselOptions opts;
    opts.bytes_per_morsel = 4096;
    auto morsels          = make_morsels({dir.file("big.cali")}, opts);
    ASSERT_GE(morsels.size(), 2u);
    std::uint64_t records = 0;
    for (std::size_t i = 0; i < morsels.size(); ++i) {
        const Morsel& m = morsels[i];
        EXPECT_EQ(m.kind, Morsel::Kind::CaliBytes);
        EXPECT_EQ(m.chunk, i);
        ASSERT_TRUE(m.source);
        // all chunk morsels share one mapped source
        EXPECT_EQ(m.source.get(), morsels[0].source.get());
        records += m.source->chunks()[i].records;
    }
    EXPECT_EQ(records, 1000u);
    EXPECT_EQ(morsels[0].source->num_records(), 1000u);

    // chunks tile the file with line-aligned splits
    const auto& chunks = morsels[0].source->chunks();
    EXPECT_EQ(chunks.front().begin, 0u);
    EXPECT_EQ(chunks.back().end, morsels[0].source->size_bytes());
    for (std::size_t i = 1; i < chunks.size(); ++i)
        EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
}

TEST(Morsel, SmallSingleFileStaysWhole) {
    TempDir dir("morsel-small");
    write_cali(dir.file("small.cali"), 10);
    auto morsels = make_morsels({dir.file("small.cali")}, {});
    ASSERT_EQ(morsels.size(), 1u);
    EXPECT_EQ(morsels[0].kind, Morsel::Kind::CaliFile);
}

TEST(Morsel, CountRecords) {
    TempDir dir("morsel-count");
    write_cali(dir.file("n.cali"), 137);
    EXPECT_EQ(CaliReader::count_records(dir.file("n.cali")), 137u);
}

TEST(Morsel, RangeReaderStillSeesAllGlobals) {
    TempDir dir("morsel-globals");
    write_cali(dir.file("g.cali"), 20, 0, "7");

    RecordMap globals;
    std::size_t n = 0;
    CaliReader::read_file_range(dir.file("g.cali"), 5, 10,
                                [&n](RecordMap&&) { ++n; }, &globals);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(globals.get("mpi.rank"), Variant("7"));
}

// ------------------------------------------ parallel == serial (byte-exact)

namespace {

const char* const kFormats[] = {"table", "csv", "json", "expand", "tree"};
const std::size_t kThreadCounts[] = {2, 4, 8};

/// Assert that \a query over \a files renders identically at 1/2/4/8
/// threads, and return the serial rendering.
std::string expect_identical(const std::string& query,
                             const std::vector<std::string>& files,
                             EngineOptions opts = {}) {
    opts.threads             = 1;
    const std::string serial = run_engine(query, files, opts);
    for (std::size_t t : kThreadCounts) {
        opts.threads = t;
        EXPECT_EQ(serial, run_engine(query, files, opts))
            << "output differs at " << t << " threads for: " << query;
    }
    return serial;
}

} // namespace

TEST(ParallelDifferential, AggregationAcrossFilesAllFormats) {
    TempDir dir("par-agg");
    std::vector<std::string> files;
    for (int f = 0; f < 5; ++f) {
        files.push_back(dir.file("r" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 200, f * 200);
    }
    for (const char* fmt : kFormats) {
        const std::string out = expect_identical(
            "AGGREGATE sum(count),count GROUP BY kernel FORMAT " +
                std::string(fmt),
            files);
        EXPECT_NE(out.find("advec"), std::string::npos) << fmt;
    }
}

TEST(ParallelDifferential, SingleFileByteMorselsAllFormats) {
    TempDir dir("par-range");
    write_cali(dir.file("big.cali"), 1200);

    EngineOptions opts;
    opts.bytes_per_morsel = 2048; // ~a dozen byte-range morsels
    for (const char* fmt : kFormats)
        expect_identical("AGGREGATE sum(count),min(id),max(id) GROUP BY kernel "
                         "ORDER BY kernel FORMAT " +
                             std::string(fmt),
                         {dir.file("big.cali")}, opts);
}

TEST(ParallelDifferential, EmptyInput) {
    TempDir dir("par-empty");
    write_cali(dir.file("e0.cali"), 0);
    write_cali(dir.file("e1.cali"), 0);
    for (const char* fmt : kFormats)
        expect_identical("AGGREGATE sum(count) GROUP BY kernel FORMAT " +
                             std::string(fmt),
                         {dir.file("e0.cali"), dir.file("e1.cali")});
}

TEST(ParallelDifferential, SingleRecordInput) {
    TempDir dir("par-one");
    write_cali(dir.file("one.cali"), 1);
    write_cali(dir.file("zero.cali"), 0);
    for (const char* fmt : kFormats)
        expect_identical("AGGREGATE sum(count) GROUP BY kernel FORMAT " +
                             std::string(fmt),
                         {dir.file("one.cali"), dir.file("zero.cali")});
}

TEST(ParallelDifferential, HighCardinalityGroupByStar) {
    TempDir dir("par-star");
    std::vector<std::string> files;
    for (int f = 0; f < 4; ++f) {
        files.push_back(dir.file("s" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 250, f * 250); // every record a unique group
    }
    const std::string out =
        expect_identical("AGGREGATE sum(count) GROUP BY * FORMAT csv", files);
    // 4 x 250 unique ids -> 1000 output rows + header
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 1001);
}

TEST(ParallelDifferential, PassthroughKeepsInputOrder) {
    TempDir dir("par-pass");
    std::vector<std::string> files;
    for (int f = 0; f < 4; ++f) {
        files.push_back(dir.file("p" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 50, f * 50);
    }
    // no aggregation: records must come out in input (morsel) order
    expect_identical("SELECT kernel,count,id FORMAT csv", files);
    expect_identical("SELECT kernel,id WHERE count>3 FORMAT csv", files);
}

TEST(ParallelDifferential, LetFilterOrderLimit) {
    TempDir dir("par-calql");
    std::vector<std::string> files;
    for (int f = 0; f < 3; ++f) {
        files.push_back(dir.file("q" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 120, f * 120);
    }
    expect_identical("LET c2=scale(count,2) AGGREGATE sum(c2),avg(count) "
                     "WHERE count>1 GROUP BY kernel ORDER BY kernel DESC "
                     "FORMAT csv LIMIT 3",
                     files);
}

TEST(ParallelDifferential, WithGlobalsJoin) {
    TempDir dir("par-glob");
    std::vector<std::string> files;
    for (int f = 0; f < 3; ++f) {
        files.push_back(dir.file("g" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 60, f * 60, std::to_string(f).c_str());
    }
    EngineOptions opts;
    opts.with_globals = true;
    const std::string out = expect_identical(
        "AGGREGATE sum(count) GROUP BY mpi.rank ORDER BY mpi.rank FORMAT csv",
        files, opts);
    // one group per file-global rank + header
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 4);
}

TEST(ParallelDifferential, WithGlobalsJoinSingleFileByteMorsels) {
    TempDir dir("par-glob-1f");
    write_cali(dir.file("big.cali"), 600, 0, "3");

    // byte-range workers only see their own span; the engine resolves the
    // file-scoped globals from the planning index and joins them on the fly
    EngineOptions opts;
    opts.with_globals     = true;
    opts.bytes_per_morsel = 2048;
    const std::string out = expect_identical(
        "AGGREGATE sum(count) GROUP BY mpi.rank FORMAT csv",
        {dir.file("big.cali")}, opts);
    EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 2);
    EXPECT_NE(out.find("3,"), std::string::npos);
}

TEST(ParallelDifferential, ByteMorselsFallbackBufferPath) {
    TempDir dir("par-nommap");
    write_cali(dir.file("big.cali"), 800);

    // force the read()-into-buffer fallback: results must not change
    FileBuffer::set_mmap_enabled(false);
    EngineOptions opts;
    opts.bytes_per_morsel = 2048;
    expect_identical("AGGREGATE sum(count),max(id) GROUP BY kernel "
                     "ORDER BY kernel FORMAT csv",
                     {dir.file("big.cali")}, opts);
    FileBuffer::set_mmap_enabled(true);
}

TEST(ParallelDifferential, JsonInput) {
    TempDir dir("par-json");
    std::vector<std::string> files;
    for (int f = 0; f < 2; ++f) {
        files.push_back(dir.file("j" + std::to_string(f) + ".json"));
        std::ofstream os(files.back());
        os << "[";
        for (int i = 0; i < 40; ++i)
            os << (i ? "," : "") << "{\"kernel\":\"k" << i % 3
               << "\",\"count\":" << i % 5 + 1 << "}";
        os << "]";
    }
    EngineOptions opts;
    opts.json_input = true;
    expect_identical("AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel "
                     "FORMAT csv",
                     files, opts);
}

// ---------------------------------------------------------------- early flush

TEST(EarlyFlush, BoundsPartialsWithoutChangingResults) {
    TempDir dir("early-flush");
    std::vector<std::string> files;
    for (int f = 0; f < 4; ++f) {
        files.push_back(dir.file("h" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 300, f * 300); // unique ids: high cardinality
    }
    const std::string query = "AGGREGATE sum(count) GROUP BY * FORMAT csv";

    EngineOptions plain;
    plain.threads            = 1;
    const std::string serial = run_engine(query, files, plain);

    EngineOptions flushing;
    flushing.threads             = 4;
    flushing.max_partial_entries = 16; // force many flushes
    EngineStats stats;
    const std::string flushed = run_engine(query, files, flushing, &stats);

    EXPECT_EQ(serial, flushed);
    EXPECT_GT(stats.early_flushes, 0u);
    EXPECT_GT(stats.early_flush_bytes, 0u);
}

TEST(EarlyFlush, RecordCountsSurviveFlushing) {
    TempDir dir("early-counts");
    std::vector<std::string> files;
    for (int f = 0; f < 2; ++f) {
        files.push_back(dir.file("c" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 200, f * 200);
    }
    EngineOptions opts;
    opts.threads             = 2;
    opts.max_partial_entries = 8;
    ParallelQueryProcessor eng(
        parse_calql("AGGREGATE count GROUP BY * FORMAT csv"), opts);
    QueryProcessor& proc = eng.run(files);
    EXPECT_EQ(proc.num_records_in(), 400u);
    EXPECT_EQ(proc.num_records_kept(), 400u);
    EXPECT_EQ(proc.result().size(), 400u); // unique ids -> 1 row per record
}

// ------------------------------------------------------------- engine stats

TEST(EngineStats, ReportsThreadsAndMorsels) {
    TempDir dir("stats");
    std::vector<std::string> files;
    for (int f = 0; f < 3; ++f) {
        files.push_back(dir.file("m" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 20, f * 20);
    }
    EngineOptions opts;
    opts.threads = 8;
    EngineStats stats;
    run_engine("AGGREGATE sum(count) GROUP BY kernel FORMAT csv", files, opts,
               &stats);
    EXPECT_EQ(stats.morsels, 3u);
    EXPECT_EQ(stats.threads, 3u); // clamped to the morsel count
}

TEST(EngineStats, WorkerErrorsPropagateToCaller) {
    TempDir dir("err");
    write_cali(dir.file("ok.cali"), 10);
    EngineOptions opts;
    opts.threads = 2;
    ParallelQueryProcessor eng(parse_calql("FORMAT csv"), opts);
    EXPECT_THROW(eng.run({dir.file("ok.cali"), dir.file("missing.cali")}),
                 std::runtime_error);
}

// ------------------------------------------------- batched execution + spill

TEST(BatchedExecution, RecordShimMatchesBatchedAcrossBatchSizes) {
    TempDir dir("batch");
    std::vector<std::string> files;
    for (int f = 0; f < 3; ++f) {
        files.push_back(dir.file("b" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 150, f * 150);
    }
    const std::string query =
        "LET squared=scale(count,2) AGGREGATE sum(squared),count "
        "GROUP BY kernel ORDER BY kernel FORMAT csv";

    EngineOptions opts;
    opts.threads = 1;
    opts.batched = false;
    const std::string record_out = run_engine(query, files, opts);

    opts.batched = true;
    for (std::size_t bs : {std::size_t(1), std::size_t(7), std::size_t(1024)}) {
        opts.batch_size = bs;
        EXPECT_EQ(record_out, run_engine(query, files, opts))
            << "batch size " << bs << " differs from the record shim";
    }
}

TEST(BatchedExecution, ByteMorselsBatchedMatchesRecord) {
    TempDir dir("batch-range");
    write_cali(dir.file("big.cali"), 1200);
    EngineOptions opts;
    opts.threads          = 4;
    opts.bytes_per_morsel = 2048;
    opts.batched          = false;
    const std::string record_out = run_engine(
        "AGGREGATE sum(count),max(id) GROUP BY kernel FORMAT table",
        {dir.file("big.cali")}, opts);
    opts.batched    = true;
    opts.batch_size = 7;
    EXPECT_EQ(record_out,
              run_engine("AGGREGATE sum(count),max(id) GROUP BY kernel FORMAT table",
                         {dir.file("big.cali")}, opts));
}

TEST(BatchedExecution, WithGlobalsBatchedMatchesRecord) {
    TempDir dir("batch-globals");
    std::vector<std::string> files;
    for (int f = 0; f < 2; ++f) {
        files.push_back(dir.file("r" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 40, f * 40, f == 0 ? "0" : "1");
    }
    const std::string query =
        "AGGREGATE sum(count) GROUP BY kernel,mpi.rank ORDER BY mpi.rank,kernel "
        "FORMAT csv";
    EngineOptions opts;
    opts.with_globals = true;
    opts.threads      = 1;
    opts.batched      = false;
    const std::string record_out = run_engine(query, files, opts);
    opts.batched = true;
    EXPECT_EQ(record_out, run_engine(query, files, opts));
    EXPECT_NE(record_out.find("advec"), std::string::npos);
}

TEST(BatchedExecution, DefaultBatchSizeSetter) {
    const std::size_t before = default_batch_size();
    set_default_batch_size(7);
    EXPECT_EQ(default_batch_size(), 7u);
    set_default_batch_size(std::size_t(1) << 30); // clamped to the cap
    EXPECT_EQ(default_batch_size(), std::size_t(1) << 20);
    set_default_batch_size(0); // back to env / built-in default
    EXPECT_EQ(default_batch_size(), before);
}

TEST(SpillBudget, BoundedAggregationMatchesUnbounded) {
    // integer metrics only: exact sums make spilled output byte-identical
    TempDir dir("spill");
    write_cali(dir.file("many.cali"), 500); // 500 unique ids -> 500 groups
    const std::string query =
        "AGGREGATE sum(count),count GROUP BY id ORDER BY id FORMAT csv";

    EngineOptions opts;
    opts.threads = 1;
    const std::string unbounded = run_engine(query, {dir.file("many.cali")}, opts);

    opts.agg_memory_budget = 1; // clamps to the 16-entry floor -> many runs
    const std::string spilled = run_engine(query, {dir.file("many.cali")}, opts);
    EXPECT_EQ(unbounded, spilled);

    // parallel: worker partials drain unspilled into the budgeted root
    opts.threads          = 4;
    opts.bytes_per_morsel = 2048;
    EXPECT_EQ(unbounded, run_engine(query, {dir.file("many.cali")}, opts));
}

TEST(SpillBudget, DefaultBudgetSetterAppliesToEngine) {
    TempDir dir("spill-default");
    write_cali(dir.file("many.cali"), 300);
    const std::string query = "AGGREGATE count GROUP BY id ORDER BY id FORMAT csv";

    EngineOptions opts;
    opts.threads = 1;
    const std::string unbounded = run_engine(query, {dir.file("many.cali")}, opts);

    set_default_agg_memory_budget(1);
    // sentinel options pick up the process-wide default
    const std::string spilled = run_engine(query, {dir.file("many.cali")}, opts);
    set_default_agg_memory_budget(static_cast<std::size_t>(-1)); // restore
    EXPECT_EQ(unbounded, spilled);
}

// --------------------------------------------------- phase-2 merge strategies

namespace {

const MergeStrategy kStrategies[] = {MergeStrategy::Pairwise,
                                     MergeStrategy::Tree, MergeStrategy::Radix,
                                     MergeStrategy::Adaptive};

/// High-cardinality multi-file input: 4 files x 250 unique ids, plus the
/// shared low-cardinality kernel key and fractional averages so the radix
/// partition assembly is exercised on floating-point states too.
std::vector<std::string> write_strategy_input(TempDir& dir) {
    std::vector<std::string> files;
    for (int f = 0; f < 4; ++f) {
        files.push_back(dir.file("s" + std::to_string(f) + ".cali"));
        write_cali(files.back(), 250, f * 250);
    }
    return files;
}

} // namespace

TEST(MergeStrategies, AllStrategiesByteIdenticalAcrossThreadCounts) {
    TempDir dir("merge-strat");
    const std::vector<std::string> files = write_strategy_input(dir);
    const char* const queries[]          = {
        "AGGREGATE sum(count),count GROUP BY id ORDER BY id FORMAT csv",
        "AGGREGATE avg(count),percent_total(count) GROUP BY kernel "
                 "ORDER BY kernel FORMAT csv",
        "AGGREGATE min(id),max(id) GROUP BY * FORMAT csv",
    };
    for (const char* query : queries) {
        EngineOptions base;
        base.threads             = 1;
        base.merge_strategy      = MergeStrategy::Pairwise;
        const std::string serial = run_engine(query, files, base);
        for (MergeStrategy s : kStrategies) {
            EngineOptions opts;
            opts.merge_strategy = s;
            for (std::size_t t : {std::size_t(1), std::size_t(2),
                                  std::size_t(4), std::size_t(8)}) {
                opts.threads = t;
                EXPECT_EQ(serial, run_engine(query, files, opts))
                    << merge_strategy_name(s) << " t" << t << ": " << query;
            }
        }
    }
}

TEST(MergeStrategies, EarlyFlushByteIdenticalForEveryStrategy) {
    TempDir dir("merge-flush");
    const std::vector<std::string> files = write_strategy_input(dir);
    const std::string query =
        "AGGREGATE sum(count),count GROUP BY id ORDER BY id FORMAT csv";

    EngineOptions base;
    base.threads             = 1;
    base.merge_strategy      = MergeStrategy::Pairwise;
    const std::string serial = run_engine(query, files, base);

    for (MergeStrategy s : kStrategies) {
        EngineOptions opts;
        opts.merge_strategy      = s;
        opts.max_partial_entries = 64; // force many flush buffers
        for (std::size_t t : {std::size_t(2), std::size_t(4)}) {
            opts.threads = t;
            EngineStats stats;
            EXPECT_EQ(serial, run_engine(query, files, opts, &stats))
                << merge_strategy_name(s) << " t" << t << " with early flush";
            EXPECT_GT(stats.early_flushes, 0u) << merge_strategy_name(s);
        }
    }
}

TEST(MergeStrategies, StatsReportExecutedStrategyAndPartitions) {
    TempDir dir("merge-stats");
    const std::vector<std::string> files = write_strategy_input(dir);
    const std::string query = "AGGREGATE sum(count) GROUP BY id FORMAT csv";

    EngineOptions opts;
    opts.threads = 4;
    EngineStats stats;

    opts.merge_strategy = MergeStrategy::Pairwise;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Pairwise);
    EXPECT_EQ(stats.merge_partitions, 0u);

    opts.merge_strategy = MergeStrategy::Tree;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Tree);

    opts.merge_strategy = MergeStrategy::Radix;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Radix);
    EXPECT_EQ(stats.merge_partitions, 16u); // default 4 bits
    EXPECT_GT(stats.merge_ns, 0u);

    opts.merge_radix_bits = 3;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_partitions, 8u);
}

TEST(MergeStrategies, AdaptiveSelectorPicksByCardinality) {
    TempDir dir("merge-adaptive");
    const std::vector<std::string> files = write_strategy_input(dir);
    const std::string query = "AGGREGATE sum(count) GROUP BY id FORMAT csv";

    // 1000 groups: above a tiny radix threshold -> radix
    EngineOptions opts;
    opts.threads             = 4;
    opts.merge_strategy      = MergeStrategy::Adaptive;
    opts.merge_small_entries = 16; // 1000 groups is not "small"
    opts.merge_radix_entries = 64;
    EngineStats stats;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Radix);

    // below the small-query threshold -> pairwise (4 groups << 4096)
    opts.merge_small_entries = 0; // back to default tuning
    opts.merge_radix_entries = 0;
    run_engine("AGGREGATE sum(count) GROUP BY kernel FORMAT csv", files, opts,
               &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Pairwise);

    // mid-band cardinality with raised thresholds -> tree
    opts.merge_small_entries = 16;
    opts.merge_radix_entries = 1u << 20;
    run_engine(query, files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Tree);

    // the selector observes the input set, never the thread count: the
    // choice is identical at every thread count (thread-count identity
    // depends on this when a spill budget is set)
    for (std::size_t t : kThreadCounts) {
        opts.threads = t;
        run_engine(query, files, opts, &stats);
        EXPECT_EQ(stats.merge_strategy, MergeStrategy::Tree) << "t" << t;
    }
}

TEST(MergeStrategies, NonAggregationQueriesNeverUseRadix) {
    TempDir dir("merge-passthru");
    const std::vector<std::string> files = write_strategy_input(dir);
    EngineOptions opts;
    opts.threads        = 4;
    opts.merge_strategy = MergeStrategy::Radix; // demoted: no aggregation DB
    EngineStats stats;
    const std::string out =
        run_engine("SELECT kernel,id FORMAT csv", files, opts, &stats);
    EXPECT_EQ(stats.merge_strategy, MergeStrategy::Tree);
    EXPECT_NE(out.find("advec"), std::string::npos);

    opts.merge_strategy = MergeStrategy::Pairwise;
    EXPECT_EQ(out, run_engine("SELECT kernel,id FORMAT csv", files, opts));
}

TEST(MergeStrategies, SpillBudgetStaysThreadCountDeterministic) {
    // with a budget each strategy must still be identical across thread
    // counts (strategy-to-strategy identity is not promised under spill)
    TempDir dir("merge-spill");
    const std::vector<std::string> files = write_strategy_input(dir);
    const std::string query =
        "AGGREGATE sum(count),count GROUP BY id ORDER BY id FORMAT csv";
    for (MergeStrategy s :
         {MergeStrategy::Pairwise, MergeStrategy::Tree, MergeStrategy::Radix}) {
        EngineOptions opts;
        opts.merge_strategy    = s;
        opts.agg_memory_budget = 1; // clamps to the 16-entry floor
        opts.threads           = 1;
        const std::string t1 = run_engine(query, files, opts);
        for (std::size_t t : kThreadCounts) {
            opts.threads = t;
            EXPECT_EQ(t1, run_engine(query, files, opts))
                << merge_strategy_name(s) << " t" << t << " under spill";
        }
    }
}

TEST(MergeStrategies, ParseAndDefaultRoundTrip) {
    MergeStrategy s = MergeStrategy::Default;
    EXPECT_TRUE(parse_merge_strategy("radix", s));
    EXPECT_EQ(s, MergeStrategy::Radix);
    EXPECT_TRUE(parse_merge_strategy("auto", s));
    EXPECT_EQ(s, MergeStrategy::Adaptive);
    EXPECT_TRUE(parse_merge_strategy("serial", s));
    EXPECT_EQ(s, MergeStrategy::Pairwise);
    EXPECT_FALSE(parse_merge_strategy("bogus", s));

    const MergeStrategy before = default_merge_strategy();
    set_default_merge_strategy(MergeStrategy::Tree);
    EXPECT_EQ(default_merge_strategy(), MergeStrategy::Tree);
    set_default_merge_strategy(MergeStrategy::Default); // back to env/adaptive
    EXPECT_EQ(default_merge_strategy(), before);

    EXPECT_EQ(merge_strategy_code(MergeStrategy::Default), 0);
    EXPECT_EQ(merge_strategy_code(MergeStrategy::Pairwise), 1);
    EXPECT_EQ(merge_strategy_code(MergeStrategy::Tree), 2);
    EXPECT_EQ(merge_strategy_code(MergeStrategy::Radix), 3);
}
