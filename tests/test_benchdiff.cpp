// calib-benchdiff unit tests: JSON tree parsing, bench/stats
// normalization, history append/query round-trips, and the noise-aware
// regression gate (the acceptance pair: an injected 2x slowdown is
// flagged by name, a noisy-but-flat series is not).
#include "benchdiff/analysis.hpp"
#include "benchdiff/history.hpp"
#include "benchdiff/jsonvalue.hpp"

#include "io/jsonreader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace calib;
using namespace calib::benchdiff;

namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
public:
    explicit TempFile(const char* tag) {
        path_ = testing::TempDir() + "benchdiff_" + tag + "_" +
                std::to_string(::getpid()) + ".cali";
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

RunMeta test_meta(const std::string& commit) {
    RunMeta m;
    m.commit               = commit;
    m.timestamp            = "2026-01-01T00:00:00Z";
    m.time_s               = 1767225600;
    m.host                 = "testhost";
    m.hardware_concurrency = 8;
    return m;
}

/// Append one run where every (bench, metric) series takes the given value.
void append_run(const std::string& path, std::uint64_t seq,
                const std::vector<MetricSample>& samples) {
    append_history(path, samples, test_meta("c" + std::to_string(seq)), seq);
}

const Verdict* find_verdict(const GateReport& r, const std::string& metric) {
    for (const Verdict& v : r.verdicts)
        if (v.metric == metric)
            return &v;
    return nullptr;
}

} // namespace

// ----------------------------------------------------------------- JsonValue

TEST(BenchdiffJson, ParsesNestedDocument) {
    const JsonValue doc = parse_json(
        R"({"bench": "io", "n": 3, "neg": -1.5e2, "ok": true, "nothing": null,
            "results": [{"path": "mmap", "wall_s": 1.25}, {"path": "read"}]})");
    ASSERT_TRUE(doc.is_object());
    ASSERT_NE(doc.find("bench"), nullptr);
    EXPECT_EQ(doc.find("bench")->string, "io");
    EXPECT_DOUBLE_EQ(doc.find("n")->number, 3.0);
    EXPECT_DOUBLE_EQ(doc.find("neg")->number, -150.0);
    EXPECT_TRUE(doc.find("ok")->boolean);
    EXPECT_EQ(doc.find("nothing")->type, JsonValue::Type::Null);
    const JsonValue* results = doc.find("results");
    ASSERT_TRUE(results && results->is_array());
    ASSERT_EQ(results->array.size(), 2u);
    EXPECT_DOUBLE_EQ(results->array[0].find("wall_s")->number, 1.25);
}

TEST(BenchdiffJson, DecodesStringEscapes) {
    const JsonValue v = parse_json(R"({"s": "a\"b\\c\nAé"})");
    EXPECT_EQ(v.find("s")->string, "a\"b\\c\nA\xC3\xA9");
}

TEST(BenchdiffJson, RejectsMalformedInput) {
    EXPECT_THROW(parse_json("{"), std::runtime_error);
    EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
    EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
    EXPECT_THROW(parse_json("tru"), std::runtime_error);
    EXPECT_THROW(parse_json("1.2.3"), std::runtime_error);
}

// ------------------------------------------------------------ classification

TEST(BenchdiffHistory, ClassifiesMetricDirections) {
    EXPECT_EQ(classify_metric("ingest.mmap.records_per_sec"),
              Direction::HigherBetter);
    EXPECT_EQ(classify_metric("engine.threads4.speedup"),
              Direction::HigherBetter);
    EXPECT_EQ(classify_metric("speedup"), Direction::HigherBetter);
    EXPECT_EQ(classify_metric("wall_s"), Direction::LowerBetter);
    EXPECT_EQ(classify_metric("results.enabled.ns_per_record"),
              Direction::LowerBetter);
    EXPECT_EQ(classify_metric("proxyd.batch_ns.p99"), Direction::LowerBetter);
    EXPECT_EQ(classify_metric("disabled.overhead_pct"), Direction::LowerBetter);
    EXPECT_EQ(classify_metric("records"), Direction::Untracked);
    EXPECT_EQ(classify_metric("groups"), Direction::Untracked);
}

// -------------------------------------------------------------- normalization

TEST(BenchdiffHistory, NormalizesBenchJsonWithArrayLabels) {
    RunMeta meta;
    const JsonValue doc = parse_json(
        R"({"bench": "io", "meta": {"commit": "abc123", "host": "h1",
            "hardware_concurrency": 16},
            "file_bytes": 1024, "identical_output": true,
            "ingest": [{"path": "mmap", "records_per_sec": 2e6},
                       {"path": "getline", "records_per_sec": 1e6}],
            "engine": [{"threads": 1, "wall_s": 4.0},
                       {"threads": 4, "wall_s": 1.0}]})");
    const std::vector<MetricSample> s = normalize_bench_json(doc, "", meta);

    EXPECT_EQ(meta.commit, "abc123");
    EXPECT_EQ(meta.host, "h1");
    EXPECT_EQ(meta.hardware_concurrency, 16u);

    auto value_of = [&](const std::string& metric) -> double {
        for (const MetricSample& m : s) {
            EXPECT_EQ(m.bench, "io");
            if (m.metric == metric)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << metric;
        return -1;
    };
    EXPECT_DOUBLE_EQ(value_of("file_bytes"), 1024);
    EXPECT_DOUBLE_EQ(value_of("ingest.mmap.records_per_sec"), 2e6);
    EXPECT_DOUBLE_EQ(value_of("ingest.getline.records_per_sec"), 1e6);
    EXPECT_DOUBLE_EQ(value_of("engine.threads4.wall_s"), 1.0);
    // booleans and the discriminator members are not samples
    for (const MetricSample& m : s) {
        EXPECT_EQ(m.metric.find("identical_output"), std::string::npos);
        EXPECT_EQ(m.metric.find("path"), std::string::npos);
    }
}

TEST(BenchdiffHistory, NormalizesStatsJsonRecords) {
    const std::vector<RecordMap> records = read_json_records(R"([
      {"kind": "meta", "commit": "st1", "host": "h2", "hardware_concurrency": 4},
      {"kind": "phase", "name": "process/merge", "count": 3, "total_s": 0.5},
      {"kind": "timer", "name": "reader.parse", "count": 9, "total_s": 1.25},
      {"kind": "timer", "name": "phase.process", "count": 1, "total_s": 2.0},
      {"kind": "counter", "name": "reader.records", "value": 1000},
      {"kind": "gauge", "name": "pool.queue_depth", "value": 3},
      {"kind": "histogram", "name": "batch_ns", "count": 10, "sum": 100,
       "mean": 10, "p99": 31}
    ])");
    RunMeta meta;
    const std::vector<MetricSample> s =
        normalize_stats_json(records, "stats:test", meta);

    EXPECT_EQ(meta.commit, "st1");
    EXPECT_EQ(meta.hardware_concurrency, 4u);

    std::vector<std::string> metrics;
    for (const MetricSample& m : s)
        metrics.push_back(m.metric);
    EXPECT_NE(std::find(metrics.begin(), metrics.end(),
                        "phase.process/merge.total_s"),
              metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "reader.parse.total_s"),
              metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "reader.records"),
              metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "batch_ns.mean"),
              metrics.end());
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), "batch_ns.p99"),
              metrics.end());
    // phase.* timers duplicate phase rows; gauges are instantaneous
    EXPECT_EQ(std::find(metrics.begin(), metrics.end(), "phase.process.total_s"),
              metrics.end());
    EXPECT_EQ(std::find(metrics.begin(), metrics.end(), "pool.queue_depth"),
              metrics.end());
}

// -------------------------------------------------------- history round-trip

TEST(BenchdiffHistory, AppendAndQueryRoundTrip) {
    TempFile hist("roundtrip");
    EXPECT_EQ(next_seq(hist.path()), 0u);

    append_run(hist.path(), 0, {{"b", "m1", 1.0}, {"b", "m2", 10.0}});
    EXPECT_EQ(next_seq(hist.path()), 1u);
    append_run(hist.path(), 1, {{"b", "m1", 2.0}, {"b", "m2", 20.0}});
    EXPECT_EQ(next_seq(hist.path()), 2u);

    // appended segments concatenate into one queryable stream
    const std::vector<RecordMap> rows = history_query(
        hist.path(), "AGGREGATE sum(bd.value) AS total GROUP BY bd.metric "
                     "ORDER BY bd.metric");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].get("bd.metric").to_string(), "m1");
    EXPECT_DOUBLE_EQ(rows[0].get("total").to_double(), 3.0);
    EXPECT_DOUBLE_EQ(rows[1].get("total").to_double(), 30.0);

    // stamps survive the round trip
    const std::vector<RecordMap> stamped = history_query(
        hist.path(), "AGGREGATE count GROUP BY bd.commit,bd.host,bd.hw "
                     "ORDER BY bd.commit");
    ASSERT_EQ(stamped.size(), 2u);
    EXPECT_EQ(stamped[0].get("bd.commit").to_string(), "c0");
    EXPECT_EQ(stamped[0].get("bd.host").to_string(), "testhost");
    EXPECT_EQ(stamped[0].get("bd.hw").to_uint(), 8u);
}

// ----------------------------------------------------------------- the gate

TEST(BenchdiffGate, FlagsInjectedRegressionButNotNoisyFlatSeries) {
    TempFile hist("gate");
    // quiet.wall_s: flat at 1.0 then jumps 2x on the newest run.
    // noisy.wall_s: bounces between 1.0 and 1.6 the whole time (scatter
    // far beyond 5%), ends on an ordinary bounce — must NOT be flagged.
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
        const double quiet = 1.0 + 0.001 * static_cast<double>(seq % 3);
        const double noisy = (seq % 2) ? 1.6 : 1.0;
        append_run(hist.path(), seq,
                   {{"b", "quiet.wall_s", quiet}, {"b", "noisy.wall_s", noisy}});
    }
    append_run(hist.path(), 10,
               {{"b", "quiet.wall_s", 2.0}, {"b", "noisy.wall_s", 1.6}});

    const GateReport report = run_gate(hist.path(), GateConfig{}, {});
    EXPECT_TRUE(report.failed());
    EXPECT_EQ(report.regressions, 1u);
    EXPECT_EQ(report.commit, "c10");

    const Verdict* quiet = find_verdict(report, "quiet.wall_s");
    ASSERT_NE(quiet, nullptr);
    EXPECT_EQ(quiet->status, Status::Regression);
    EXPECT_NEAR(quiet->ratio, 2.0, 0.01);

    const Verdict* noisy = find_verdict(report, "noisy.wall_s");
    ASSERT_NE(noisy, nullptr);
    EXPECT_EQ(noisy->status, Status::Ok)
        << "noisy-but-flat series must not trip the gate";

    // the JSON report names the regressed metric and is a record array
    // cali-query could consume
    std::ostringstream json;
    write_report_json(json, report);
    const std::vector<RecordMap> rows = read_json_records(json.str());
    bool found_regression = false;
    for (const RecordMap& r : rows) {
        if (r.get("kind").to_string() == "verdict" &&
            r.get("status").to_string() == "regression") {
            EXPECT_EQ(r.get("metric").to_string(), "quiet.wall_s");
            found_regression = true;
        }
        if (r.get("kind").to_string() == "summary") {
            EXPECT_EQ(r.get("regressions").to_uint(), 1u);
            EXPECT_EQ(r.get("failed").to_uint(), 1u);
        }
    }
    EXPECT_TRUE(found_regression);
}

TEST(BenchdiffGate, RespectsDirectionForThroughputMetrics) {
    TempFile hist("direction");
    for (std::uint64_t seq = 0; seq < 8; ++seq)
        append_run(hist.path(), seq, {{"b", "x.records_per_sec", 1e6}});
    // throughput *drops* 2x: regression even though the value went down
    append_run(hist.path(), 8, {{"b", "x.records_per_sec", 5e5}});

    const GateReport report = run_gate(hist.path(), GateConfig{}, {});
    const Verdict* v = find_verdict(report, "x.records_per_sec");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->status, Status::Regression);

    // and a throughput *gain* is an improvement, not a failure
    append_run(hist.path(), 9, {{"b", "x.records_per_sec", 4e6}});
    const GateReport report2 = run_gate(hist.path(), GateConfig{}, {});
    EXPECT_FALSE(report2.failed());
    EXPECT_EQ(find_verdict(report2, "x.records_per_sec")->status,
              Status::Improvement);
}

TEST(BenchdiffGate, MinimumSampleFloorReportsInsufficient) {
    TempFile hist("floor");
    append_run(hist.path(), 0, {{"b", "y.wall_s", 1.0}});
    append_run(hist.path(), 1, {{"b", "y.wall_s", 9.0}}); // would be 9x...

    const GateReport report = run_gate(hist.path(), GateConfig{}, {});
    const Verdict* v = find_verdict(report, "y.wall_s");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->status, Status::Insufficient); // ...but only 1 baseline point
    EXPECT_FALSE(report.failed());
}

TEST(BenchdiffGate, UntrackedAndStaleSeriesNeverGate) {
    TempFile hist("stale");
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
        std::vector<MetricSample> run = {{"b", "records", 100.0},
                                         {"b", "z.wall_s", 1.0}};
        if (seq < 5) // vanished series: absent from the newest run
            run.push_back({"b", "old.wall_s", seq == 4 ? 50.0 : 1.0});
        append_run(hist.path(), seq, run);
    }
    const GateReport report = run_gate(hist.path(), GateConfig{}, {});
    EXPECT_FALSE(report.failed());
    EXPECT_EQ(find_verdict(report, "records")->status, Status::Untracked);
    EXPECT_EQ(find_verdict(report, "old.wall_s")->status, Status::Stale);
}

TEST(BenchdiffGate, OverridesChangeThresholdsAndSkip) {
    TempFile hist("override");
    for (std::uint64_t seq = 0; seq < 8; ++seq)
        append_run(hist.path(), seq,
                   {{"b", "a.wall_s", 1.0}, {"b", "skipme.wall_s", 1.0}});
    append_run(hist.path(), 8,
               {{"b", "a.wall_s", 1.08}, {"b", "skipme.wall_s", 5.0}});

    // default 5% floor flags the 8% drift; a 20% floor forgives it, and
    // the skip pattern silences the genuine 5x jump
    Override widen;
    widen.pattern   = "b/a.*";
    widen.rel_floor = 0.20;
    Override skip;
    skip.pattern = "*/skipme.*";
    skip.skip    = true;

    const GateReport strict = run_gate(hist.path(), GateConfig{}, {skip});
    EXPECT_EQ(find_verdict(strict, "a.wall_s")->status, Status::Regression);
    EXPECT_EQ(find_verdict(strict, "skipme.wall_s")->status, Status::Skipped);

    const GateReport lenient =
        run_gate(hist.path(), GateConfig{}, {widen, skip});
    EXPECT_EQ(find_verdict(lenient, "a.wall_s")->status, Status::Ok);
    EXPECT_FALSE(lenient.failed());
}

TEST(BenchdiffGate, GlobMatching) {
    EXPECT_TRUE(glob_match("*", "anything/at.all"));
    EXPECT_TRUE(glob_match("io/*", "io/ingest.mmap.wall_s"));
    EXPECT_FALSE(glob_match("io/*", "proxyd/ingest.wall_s"));
    EXPECT_TRUE(glob_match("*/ingest.*.wall_s", "io/ingest.mmap.wall_s"));
    EXPECT_TRUE(glob_match("a?c", "abc"));
    EXPECT_FALSE(glob_match("a?c", "ac"));
    EXPECT_TRUE(glob_match("exact", "exact"));
    EXPECT_FALSE(glob_match("exact", "exact2"));
}

TEST(BenchdiffGate, LoadsOverrideFile) {
    TempFile file("overrides");
    {
        std::ofstream os(file.path());
        os << "# per-series gate tuning\n"
           << "io/* rel_floor=0.10 min_samples=6\n"
           << "*/groups direction=lower\n"
           << "proxyd/flaky.* skip window=5\n"
           << "\n";
    }
    const std::vector<Override> ovs = load_overrides(file.path());
    ASSERT_EQ(ovs.size(), 3u);
    EXPECT_EQ(ovs[0].pattern, "io/*");
    EXPECT_DOUBLE_EQ(*ovs[0].rel_floor, 0.10);
    EXPECT_EQ(*ovs[0].min_samples, 6u);
    EXPECT_FALSE(ovs[0].skip);
    EXPECT_EQ(*ovs[1].direction, Direction::LowerBetter);
    EXPECT_TRUE(ovs[2].skip);
    EXPECT_EQ(*ovs[2].window, 5u);

    {
        std::ofstream os(file.path());
        os << "io/* rel_floor=bogus\n";
    }
    EXPECT_THROW(load_overrides(file.path()), std::runtime_error);
}

TEST(BenchdiffGate, EmptyOrMissingHistoryYieldsEmptyReport) {
    const GateReport report =
        run_gate("/nonexistent/benchdiff-hist.cali", GateConfig{}, {});
    EXPECT_TRUE(report.verdicts.empty());
    EXPECT_FALSE(report.failed());
}
