// Edge-case and robustness tests across the stack: overflow handling,
// odd values, mid-run channel creation, parser fuzzing, and IO limits.
#include "calib.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace calib;
using calib::test::find_record;
using calib::test::record;

// --- snapshot capacity -----------------------------------------------------------

TEST(EdgeCases, BlackboardWiderThanSnapshotCapacity) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "edge-wide", RuntimeConfig{{"services.enable", "event,aggregate"},
                                   {"aggregate.key", "edge.wide.0"},
                                   {"aggregate.ops", "count"}});
    // push more distinct attributes than a snapshot can hold
    std::vector<Annotation> annotations;
    annotations.reserve(SnapshotRecord::max_entries + 8);
    for (std::size_t i = 0; i < SnapshotRecord::max_entries + 8; ++i)
        annotations.emplace_back("edge.wide." + std::to_string(i));
    for (std::size_t i = 0; i < annotations.size(); ++i)
        annotations[i].begin(Variant(static_cast<long long>(i)));
    for (auto it = annotations.rbegin(); it != annotations.rend(); ++it)
        it->end();

    // the run must complete without corruption; excess entries are dropped
    std::vector<RecordMap> out;
    c.flush_thread(channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    c.close_channel(channel);
    EXPECT_FALSE(out.empty());
}

TEST(EdgeCases, OfflineRecordWiderThanSnapshotCapacity) {
    RecordMap wide;
    for (std::size_t i = 0; i < SnapshotRecord::max_entries + 16; ++i)
        wide.append("col" + std::to_string(i), Variant(static_cast<long long>(i)));
    // must not crash; the aggregation processes the first max_entries
    auto out = run_query("AGGREGATE count GROUP BY col0", {wide});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("count").to_uint(), 1u);
}

// --- odd values --------------------------------------------------------------------

TEST(EdgeCases, NanAndInfinityThroughKernels) {
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    auto out         = run_query("AGGREGATE min(v),max(v),count GROUP BY k",
                                 {record({{"k", Variant(1)}, {"v", Variant(1.0)}}),
                                  record({{"k", Variant(1)}, {"v", Variant(nan)}}),
                                  record({{"k", Variant(1)}, {"v", Variant(inf)}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("count").to_uint(), 3u);
    EXPECT_EQ(out[0].get("min#v").to_double(), 1.0);
    EXPECT_EQ(out[0].get("max#v").to_double(), inf);
}

TEST(EdgeCases, EmptyStringKeyValueIsAGroup) {
    auto out = run_query("AGGREGATE count GROUP BY k",
                         {record({{"k", Variant("")}}),
                          record({{"k", Variant("x")}}),
                          record({{"other", Variant(1)}})});
    // "" is a value; a missing attribute is a *different* group
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(find_record(out, "k", Variant("")).get("count").to_uint(), 1u);
}

TEST(EdgeCases, UnicodeAndLongValuesThroughIO) {
    const std::string unicode = "kernel-\xE2\x88\x91\xC3\xA9\xF0\x9F\x94\xA5";
    const std::string long_value(5000, 'v');
    const std::string long_name(300, 'n');

    std::ostringstream os;
    {
        CaliWriter writer(os);
        writer.write_record(record({{unicode.c_str(), Variant(long_value)},
                                    {long_name.c_str(), Variant(unicode)}}));
    }
    std::istringstream is(os.str());
    auto records = CaliReader::read_all(is);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].get(unicode).as_string(), long_value);
    EXPECT_EQ(records[0].get(long_name).as_string(), unicode);
}

TEST(EdgeCases, DuplicateAttributeNamesInRecord) {
    RecordMap r;
    r.append("dup", Variant(1));
    r.append("dup", Variant(2));
    std::ostringstream os;
    {
        CaliWriter writer(os);
        writer.write_record(r);
    }
    std::istringstream is(os.str());
    auto records = CaliReader::read_all(is);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].size(), 2u) << "duplicates survive the round trip";
}

// --- runtime behaviour ----------------------------------------------------------------

TEST(EdgeCases, ChannelCreatedMidMeasurementSeesOnlyLaterEvents) {
    Caliper& c = Caliper::instance();
    Annotation fn("edge.mid");

    Channel* early = c.create_channel(
        "edge-early", RuntimeConfig{{"services.enable", "event,aggregate"},
                                    {"aggregate.key", "edge.mid"},
                                    {"aggregate.ops", "count"}});
    fn.begin(Variant("a"));
    fn.end();

    Channel* late = c.create_channel(
        "edge-late", RuntimeConfig{{"services.enable", "event,aggregate"},
                                   {"aggregate.key", "edge.mid"},
                                   {"aggregate.ops", "count"}});
    fn.begin(Variant("a"));
    fn.end();

    auto count_of = [&c](Channel* ch) {
        double total = 0;
        c.flush_thread(ch, [&total](RecordMap&& r) {
            total += r.get("count").to_double();
        });
        return total;
    };
    EXPECT_EQ(count_of(early), 4.0);
    EXPECT_EQ(count_of(late), 2.0) << "per-thread channel cache must refresh";
    c.close_channel(early);
    c.close_channel(late);
}

TEST(EdgeCases, ReusedChannelNamesAreDistinctChannels) {
    Caliper& c  = Caliper::instance();
    Channel* c1 = c.create_channel("edge-reuse", RuntimeConfig{});
    Channel* c2 = c.create_channel("edge-reuse", RuntimeConfig{});
    EXPECT_NE(c1, c2);
    EXPECT_NE(c1->id(), c2->id());
    c.close_channel(c1);
    c.close_channel(c2);
}

TEST(EdgeCases, DeeplyNestedRegions) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "edge-deep", RuntimeConfig{{"services.enable", "event,aggregate"},
                                   {"aggregate.key", "edge.deep"},
                                   {"aggregate.ops", "count,max(edge.depth)"}});
    Annotation fn("edge.deep");
    Annotation depth("edge.depth", prop::as_value | prop::aggregatable);
    constexpr int n = 500;
    for (int i = 0; i < n; ++i) {
        depth.set(Variant(i));
        fn.begin(Variant("level"));
    }
    for (int i = 0; i < n; ++i)
        fn.end();

    std::vector<RecordMap> out;
    c.flush_thread(channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    c.close_channel(channel);
    RecordMap level = find_record(out, "edge.deep", Variant("level"));
    EXPECT_EQ(level.get("max#edge.depth").to_int(), n - 1);
}

// --- query pipeline ---------------------------------------------------------------------

TEST(EdgeCases, LimitZeroMeansUnlimited) {
    std::vector<RecordMap> records;
    for (int i = 0; i < 10; ++i)
        records.push_back(record({{"k", Variant(i)}}));
    EXPECT_EQ(run_query("AGGREGATE count GROUP BY k LIMIT 0", records).size(), 10u);
}

TEST(EdgeCases, SortWithMissingAttributePutsEmptiesFirst) {
    auto out = run_query("ORDER BY v",
                         {record({{"v", Variant(2)}}), record({{"x", Variant(0)}}),
                          record({{"v", Variant(1)}})});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_FALSE(out[0].contains("v")) << "Empty sorts before numeric types";
    EXPECT_EQ(out[1].get("v").to_int(), 1);
    EXPECT_EQ(out[2].get("v").to_int(), 2);
}

TEST(EdgeCases, CalqlFuzzNeverCrashes) {
    // deterministic garbage: parse must either succeed or throw CalQLError
    std::mt19937_64 rng(2026);
    const std::string alphabet =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
        " \t(),=<>!*#./\"'\\-+";
    int parsed = 0, rejected = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::string query;
        const std::size_t len = rng() % 60;
        for (std::size_t i = 0; i < len; ++i)
            query += alphabet[rng() % alphabet.size()];
        try {
            (void)parse_calql(query);
            ++parsed;
        } catch (const CalQLError&) {
            ++rejected;
        }
        // any other exception type escapes and fails the test
    }
    EXPECT_GT(rejected, 0);
    EXPECT_GT(parsed, 0) << "the empty-ish inputs parse fine";
}

TEST(EdgeCases, CalqlKeywordsAsAttributeNames) {
    // quoted strings allow even clause keywords as attribute labels
    QuerySpec spec = parse_calql("AGGREGATE sum(\"select\") GROUP BY \"where\"");
    EXPECT_EQ(spec.aggregation.ops[0].attribute, "select");
    EXPECT_EQ(spec.aggregation.key.attributes[0], "where");
}

TEST(EdgeCases, AggregationOfThousandsOfGroupsThroughPipeline) {
    std::vector<RecordMap> records;
    for (int i = 0; i < 20000; ++i)
        records.push_back(
            record({{"k", Variant(i % 3000)}, {"v", Variant(1)}}));
    auto out = run_query("AGGREGATE count,sum(v) GROUP BY k", records);
    EXPECT_EQ(out.size(), 3000u);
    double total = 0;
    for (const RecordMap& r : out)
        total += r.get("sum#v").to_double();
    EXPECT_EQ(total, 20000.0);
}
