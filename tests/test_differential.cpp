// Differential oracle test: random record streams and random aggregation
// schemes, evaluated both by the production query pipeline and by an
// independent brute-force reference implementation (ordered maps, naive
// accumulators, no hashing, no streaming). Any divergence is a bug in one
// of them — the implementations share no code beyond Variant/RecordMap.
#include "io/calireader.hpp"
#include "io/caliwriter.hpp"
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <sstream>

using namespace calib;

namespace {

// --- random workload + scheme generation ----------------------------------------

struct Scheme {
    std::vector<std::string> key;
    bool with_count = false, with_sum = false, with_min = false, with_max = false;
    // optional equality filter
    bool filtered = false;
    std::string filter_attr;
    Variant filter_value;

    std::string to_query() const {
        std::string q = "AGGREGATE ";
        bool first    = true;
        auto add      = [&](const std::string& term) {
            if (!first)
                q += ',';
            first = false;
            q += term;
        };
        if (with_count)
            add("count");
        if (with_sum)
            add("sum(metric)");
        if (with_min)
            add("min(metric)");
        if (with_max)
            add("max(metric)");
        if (filtered) {
            q += " WHERE " + filter_attr + "=";
            q += filter_value.is_string() ? "\"" + filter_value.to_string() + "\""
                                          : filter_value.to_string();
        }
        q += " GROUP BY ";
        for (std::size_t i = 0; i < key.size(); ++i) {
            if (i)
                q += ',';
            q += key[i];
        }
        return q;
    }
};

const char* dim_names[] = {"function", "kernel", "rank", "iter"};

std::vector<RecordMap> random_records(std::mt19937_64& rng, int n) {
    std::vector<RecordMap> out;
    for (int i = 0; i < n; ++i) {
        RecordMap r;
        // each dimension present with probability ~7/8, small value universe
        if (rng() % 8)
            r.append("function", Variant("fn" + std::to_string(rng() % 4)));
        if (rng() % 8)
            r.append("kernel", Variant("k" + std::to_string(rng() % 3)));
        if (rng() % 8)
            r.append("rank", Variant(static_cast<long long>(rng() % 4)));
        if (rng() % 8)
            r.append("iter", Variant(static_cast<long long>(rng() % 5)));
        if (rng() % 8)
            r.append("metric",
                     Variant(static_cast<long long>(rng() % 1000) - 500));
        out.push_back(std::move(r));
    }
    return out;
}

Scheme random_scheme(std::mt19937_64& rng) {
    Scheme s;
    for (const char* dim : dim_names)
        if (rng() % 2)
            s.key.emplace_back(dim);
    if (s.key.empty())
        s.key.emplace_back(dim_names[rng() % 4]);
    s.with_count = rng() % 2;
    s.with_sum   = rng() % 2;
    s.with_min   = rng() % 2;
    s.with_max   = rng() % 2;
    if (!s.with_count && !s.with_sum && !s.with_min && !s.with_max)
        s.with_count = true;
    if (rng() % 3 == 0) {
        s.filtered    = true;
        s.filter_attr = dim_names[rng() % 4];
        if (s.filter_attr == "rank" || s.filter_attr == "iter")
            s.filter_value = Variant(static_cast<long long>(rng() % 4));
        else if (s.filter_attr == "function")
            s.filter_value = Variant("fn" + std::to_string(rng() % 4));
        else
            s.filter_value = Variant("k" + std::to_string(rng() % 3));
    }
    return s;
}

// --- brute-force reference --------------------------------------------------------

struct RefAccumulator {
    std::uint64_t count = 0;
    long long sum       = 0;
    bool has_metric     = false;
    long long min       = 0;
    long long max       = 0;

    void update(const RecordMap& r) {
        ++count;
        const Variant m = r.get("metric");
        if (m.empty())
            return;
        const long long v = m.to_int();
        if (!has_metric) {
            has_metric = true;
            sum = v;
            min = v;
            max = v;
        } else {
            sum += v;
            min = std::min(min, v);
            max = std::max(max, v);
        }
    }
};

/// Canonical key: "name=value|name=value|..." with absent dims marked.
std::string ref_key(const Scheme& s, const RecordMap& r) {
    std::string key;
    for (const std::string& dim : s.key) {
        key += dim;
        key += '=';
        key += r.contains(dim) ? r.get(dim).to_string() : std::string("<absent>");
        key += '|';
    }
    return key;
}

std::map<std::string, RefAccumulator> reference_aggregate(
    const Scheme& s, const std::vector<RecordMap>& records) {
    std::map<std::string, RefAccumulator> groups;
    for (const RecordMap& r : records) {
        if (s.filtered) {
            if (!r.contains(s.filter_attr))
                continue;
            const Variant v = r.get(s.filter_attr);
            // match the engine's coercion: numerics by value, else text
            const bool equal =
                (v.is_numeric() && s.filter_value.is_numeric())
                    ? v.compare(s.filter_value) == 0
                    : v.to_string() == s.filter_value.to_string();
            if (!equal)
                continue;
        }
        groups[ref_key(s, r)].update(r);
    }
    return groups;
}

} // namespace

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, PipelineMatchesBruteForce) {
    std::mt19937_64 rng(GetParam() * 0x9e3779b9ull + 12345);

    for (int round = 0; round < 20; ++round) {
        const auto records = random_records(rng, 300);
        const Scheme s     = random_scheme(rng);

        const auto reference = reference_aggregate(s, records);
        const auto actual    = run_query(s.to_query(), records);

        ASSERT_EQ(actual.size(), reference.size())
            << "group count mismatch for query: " << s.to_query();

        for (const RecordMap& row : actual) {
            const std::string key = ref_key(s, row);
            auto it               = reference.find(key);
            ASSERT_NE(it, reference.end())
                << "unexpected group " << key << " for " << s.to_query();
            const RefAccumulator& ref = it->second;

            if (s.with_count)
                EXPECT_EQ(row.get("count").to_uint(), ref.count)
                    << key << " | " << s.to_query();
            if (s.with_sum) {
                if (ref.has_metric)
                    EXPECT_EQ(row.get("sum#metric").to_int(), ref.sum)
                        << key << " | " << s.to_query();
                else
                    EXPECT_FALSE(row.contains("sum#metric"));
            }
            if (s.with_min && ref.has_metric)
                EXPECT_EQ(row.get("min#metric").to_int(), ref.min)
                    << key << " | " << s.to_query();
            if (s.with_max && ref.has_metric)
                EXPECT_EQ(row.get("max#metric").to_int(), ref.max)
                    << key << " | " << s.to_query();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(1, 11));

TEST(DifferentialIO, SurvivesCaliStreamRoundTrip) {
    // the differential property must also hold after writing the records
    // to the stream format and reading them back
    std::mt19937_64 rng(777);
    const auto records = random_records(rng, 200);
    const Scheme s     = random_scheme(rng);

    std::ostringstream os;
    {
        CaliWriter writer(os);
        for (const RecordMap& r : records)
            writer.write_record(r);
    }
    std::istringstream is(os.str());
    const auto restored = CaliReader::read_all(is);
    ASSERT_EQ(restored.size(), records.size());

    const auto direct    = run_query(s.to_query(), records);
    const auto roundtrip = run_query(s.to_query(), restored);
    ASSERT_EQ(direct.size(), roundtrip.size()) << s.to_query();
    for (const RecordMap& row : direct) {
        bool found = false;
        for (const RecordMap& other : roundtrip)
            if (other == row)
                found = true;
        EXPECT_TRUE(found) << s.to_query();
    }
}
