// ParaDiS-sim dataset generator tests: the published dataset statistics
// (paper §V-C) and determinism.
#include "apps/paradis/generator.hpp"

#include "io/calireader.hpp"
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

using namespace calib;
using namespace calib::paradis;

TEST(Paradis, NameListsAreUniqueAndSized) {
    auto kernels = kernel_names(60);
    auto mpis    = mpi_function_names(24);
    EXPECT_EQ(kernels.size(), 60u);
    EXPECT_EQ(mpis.size(), 24u);
    EXPECT_EQ(std::set<std::string>(kernels.begin(), kernels.end()).size(), 60u);
    EXPECT_EQ(std::set<std::string>(mpis.begin(), mpis.end()).size(), 24u);
    for (const std::string& m : mpis)
        EXPECT_EQ(m.rfind("MPI_", 0), 0u) << m;
}

TEST(Paradis, FileHasPaperRecordCount) {
    test::TempDir dir("paradis");
    ParadisConfig cfg; // defaults match the paper: 2174 records/file
    EXPECT_EQ(write_rank_file(dir.file("r0.cali"), 0, cfg), 2174u);
    auto records = CaliReader::read_file(dir.file("r0.cali"));
    EXPECT_EQ(records.size(), 2174u);
}

TEST(Paradis, EvaluationQueryYields85Records) {
    // the paper's query: total CPU time in kernels and MPI functions,
    // "producing 85 output records"
    test::TempDir dir("paradis-85");
    auto paths = generate_dataset(dir.str(), 4, ParadisConfig{});

    QueryProcessor proc(parse_calql(
        "AGGREGATE sum(time.inclusive.duration) GROUP BY kernel,mpi.function"));
    for (const auto& p : paths)
        CaliReader::read_file(p, [&proc](RecordMap&& r) { proc.add(r); });
    EXPECT_EQ(proc.result().size(), 85u);
}

TEST(Paradis, RecordsCarryTimeSeriesDimensions) {
    test::TempDir dir("paradis-dims");
    ParadisConfig cfg;
    write_rank_file(dir.file("r3.cali"), 3, cfg);
    auto records = CaliReader::read_file(dir.file("r3.cali"));

    std::set<long long> iterations;
    for (const RecordMap& r : records) {
        EXPECT_EQ(r.get("mpi.rank").to_int(), 3);
        EXPECT_TRUE(r.contains("iteration#mainloop"));
        EXPECT_TRUE(r.contains("count"));
        EXPECT_TRUE(r.contains("sum#time.duration"));
        EXPECT_GT(r.get("sum#time.inclusive.duration").to_double(), 0.0);
        EXPECT_GE(r.get("sum#time.inclusive.duration").to_double(),
                  r.get("sum#time.duration").to_double());
        iterations.insert(r.get("iteration#mainloop").to_int());
    }
    EXPECT_EQ(iterations.size(), static_cast<std::size_t>(cfg.iterations));
}

TEST(Paradis, DeterministicPerRankAndSeed) {
    test::TempDir dir("paradis-det");
    ParadisConfig cfg;
    write_rank_file(dir.file("a.cali"), 5, cfg);
    write_rank_file(dir.file("b.cali"), 5, cfg);
    std::ifstream a(dir.file("a.cali")), b(dir.file("b.cali"));
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(Paradis, DifferentRanksDiffer) {
    test::TempDir dir("paradis-ranks");
    ParadisConfig cfg;
    write_rank_file(dir.file("a.cali"), 0, cfg);
    write_rank_file(dir.file("b.cali"), 1, cfg);
    auto a = CaliReader::read_file(dir.file("a.cali"));
    auto b = CaliReader::read_file(dir.file("b.cali"));
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i]))
            any_diff = true;
    EXPECT_TRUE(any_diff) << "per-rank value streams must differ";
}

TEST(Paradis, GlobalsIdentifyRank) {
    test::TempDir dir("paradis-globals");
    ParadisConfig cfg;
    cfg.records_per_file = 85;
    write_rank_file(dir.file("r9.cali"), 9, cfg);
    RecordMap globals;
    CaliReader::read_file(dir.file("r9.cali"), [](RecordMap&&) {}, &globals);
    EXPECT_EQ(globals.get("paradis.rank").to_int(), 9);
}

TEST(Paradis, CustomDimensions) {
    test::TempDir dir("paradis-custom");
    ParadisConfig cfg;
    cfg.num_kernels       = 10;
    cfg.num_mpi_functions = 5;
    cfg.records_per_file  = 64;
    write_rank_file(dir.file("c.cali"), 0, cfg);
    auto records = CaliReader::read_file(dir.file("c.cali"));
    EXPECT_EQ(records.size(), 64u);

    QueryProcessor proc(parse_calql("AGGREGATE count GROUP BY kernel,mpi.function"));
    proc.add(records);
    EXPECT_EQ(proc.result().size(), 16u); // 10 + 5 + 1
}
