// CleverLeaf-sim tests: hydro kernel physics sanity, AMR tagging and
// clustering invariants, and the instrumented driver end-to-end.
#include "apps/cleverleaf/amr.hpp"
#include "apps/cleverleaf/driver.hpp"
#include "apps/cleverleaf/hydro.hpp"

#include "calib.hpp"
#include "mpisim/runtime.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

using namespace calib;
using namespace calib::clever;

namespace {

Patch make_patch(int nx = 32, int ny = 16) {
    Patch p(0, 0, 0, nx, ny, 7.0 / nx, 3.0 / ny);
    init_triple_point(p, 7.0, 3.0);
    kernel_ideal_gas(p);
    return p;
}

bool all_finite(const Patch& p) {
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            if (!std::isfinite(p.rho.at(i, j)) || !std::isfinite(p.energy.at(i, j)) ||
                !std::isfinite(p.mx.at(i, j)) || !std::isfinite(p.my.at(i, j)))
                return false;
    return true;
}

void step_patch(Patch& p, double dt) {
    kernel_ideal_gas(p);
    kernel_viscosity(p);
    compute_fluxes(p);
    kernel_advec_cell(p, dt);
    kernel_advec_mom(p, dt);
    kernel_reset(p);
}

} // namespace

TEST(Hydro, TriplePointInitialCondition) {
    Patch p = make_patch();
    // left driver region: high pressure
    EXPECT_DOUBLE_EQ(p.rho.at(0, 0), 1.0);
    EXPECT_GT(p.pressure.at(0, 0), 0.9);
    // bottom-right: dense, low pressure
    EXPECT_DOUBLE_EQ(p.rho.at(p.nx - 1, 0), 1.0);
    EXPECT_LT(p.pressure.at(p.nx - 1, 0), 0.2);
    // top-right: light
    EXPECT_DOUBLE_EQ(p.rho.at(p.nx - 1, p.ny - 1), 0.125);
}

TEST(Hydro, IdealGasProducesPositivePressure) {
    Patch p = make_patch();
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i) {
            EXPECT_GT(p.pressure.at(i, j), 0.0);
            EXPECT_GT(p.soundspeed.at(i, j), 0.0);
        }
}

TEST(Hydro, CalcDtPositiveAndCflBounded) {
    Patch p = make_patch();
    const double dt = kernel_calc_dt(p);
    EXPECT_GT(dt, 0.0);
    // CFL: a sound wave must not cross a full cell in one step
    const double cmax = std::sqrt(1.4 * 1.0 / 0.125); // fastest material
    EXPECT_LT(dt * cmax / p.dx, 1.0);
}

TEST(Hydro, MassIsConservedWithReflectiveBounds) {
    Patch p = make_patch();
    double mass0 = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            mass0 += p.rho.at(i, j);

    for (int s = 0; s < 20; ++s)
        step_patch(p, kernel_calc_dt(p));

    double mass1 = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            mass1 += p.rho.at(i, j);
    EXPECT_NEAR(mass1, mass0, 1e-9 * mass0)
        << "clamped-stencil boundaries are flux-reflective";
    EXPECT_TRUE(all_finite(p));
}

TEST(Hydro, ShockDevelopsMotion) {
    Patch p = make_patch(64, 32);
    for (int s = 0; s < 30; ++s)
        step_patch(p, kernel_calc_dt(p));
    double max_speed = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            max_speed = std::max(max_speed, std::abs(p.mx.at(i, j)));
    EXPECT_GT(max_speed, 1e-3) << "pressure jump must drive a shock";
}

TEST(Hydro, LongRunStaysStable) {
    Patch p = make_patch(48, 24);
    for (int s = 0; s < 200; ++s)
        step_patch(p, kernel_calc_dt(p));
    EXPECT_TRUE(all_finite(p));
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            EXPECT_GT(p.rho.at(i, j), 0.0);
}

TEST(Hydro, DiagnosticKernelsAccumulate) {
    Patch p = make_patch();
    // develop a velocity field first; at t=0 everything is at rest and
    // the PdV work is legitimately zero
    for (int s = 0; s < 5; ++s)
        step_patch(p, kernel_calc_dt(p));
    kernel_ideal_gas(p);
    kernel_pdv(p, 0.01);
    kernel_accelerate(p, 0.01);
    EXPECT_NE(p.pdv_work, 0.0);
    EXPECT_GT(p.accel_sum, 0.0);
}

TEST(Hydro, RevertRestoresDoubleBuffer) {
    Patch p = make_patch();
    kernel_revert(p);
    EXPECT_DOUBLE_EQ(p.rho_new.at(3, 3), p.rho.at(3, 3));
}

TEST(Amr, TagsFollowDensityGradients) {
    Patch p = make_patch(64, 32);
    AmrConfig cfg;
    auto tags = tag_cells(p, cfg);
    ASSERT_EQ(tags.size(), p.cells());
    // the vertical material interface at x = W/7 must be tagged
    const int interface_i = p.nx / 7;
    int tagged_near_interface = 0, tagged_far = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int di = -1; di <= 1; ++di)
            tagged_near_interface +=
                tags[static_cast<std::size_t>(j) * p.nx + interface_i + di];
    // a region away from both interfaces (x-interface at nx/7, y-interface
    // at ny/2) must be untagged at t=0
    for (int j = p.ny / 8; j < 3 * p.ny / 8; ++j)
        for (int i = 5 * p.nx / 8; i < 7 * p.nx / 8; ++i)
            tagged_far += tags[static_cast<std::size_t>(j) * p.nx + i];
    EXPECT_GT(tagged_near_interface, 0);
    EXPECT_EQ(tagged_far, 0) << "smooth regions are not tagged at t=0";
}

TEST(Amr, BufferGrowsTaggedRegion) {
    std::vector<std::uint8_t> tags(100, 0);
    tags[5 * 10 + 5] = 1;
    buffer_tags(tags, 10, 10, 2);
    int count = 0;
    for (auto t : tags)
        count += t;
    EXPECT_EQ(count, 25) << "5x5 block around the single tag";
}

TEST(Amr, ClusterBoxesCoverAllTags) {
    Patch p = make_patch(64, 32);
    AmrConfig cfg;
    auto tags = tag_cells(p, cfg);
    buffer_tags(tags, p.nx, p.ny, cfg.tag_buffer);
    auto boxes = cluster_tags(tags, p.nx, p.ny, cfg);
    ASSERT_FALSE(boxes.empty());

    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i) {
            if (!tags[static_cast<std::size_t>(j) * p.nx + i])
                continue;
            bool covered = false;
            for (const Box& b : boxes)
                if (i >= b.x0 && i < b.x1 && j >= b.y0 && j < b.y1)
                    covered = true;
            EXPECT_TRUE(covered) << "tag (" << i << "," << j << ") uncovered";
        }
    for (const Box& b : boxes) {
        EXPECT_LE(b.width(), cfg.max_patch_size);
        EXPECT_LE(b.height(), cfg.max_patch_size);
        EXPECT_FALSE(b.empty());
    }
}

TEST(Amr, ClusterOfNothingIsEmpty) {
    std::vector<std::uint8_t> tags(64, 0);
    EXPECT_TRUE(cluster_tags(tags, 8, 8, AmrConfig{}).empty());
}

TEST(Amr, HierarchyRefinesInterfaceRegion) {
    auto base = std::make_unique<Patch>(0, 0, 0, 64, 32, 7.0 / 64, 3.0 / 32);
    init_triple_point(*base, 7.0, 3.0);
    kernel_ideal_gas(*base);

    AmrConfig cfg;
    Hierarchy mesh(std::move(base), cfg);
    const std::size_t created = mesh.regrid();
    EXPECT_GT(created, 0u);
    EXPECT_EQ(mesh.num_levels(), 3);
    EXPECT_GT(mesh.cells_on_level(1), 0u);
    // refinement ratio 2: fine patches have double resolution
    const Patch& fine = *mesh.level(1)[0];
    EXPECT_DOUBLE_EQ(fine.dx * 2, mesh.level(0)[0]->dx);
    EXPECT_EQ(fine.level, 1);
    // injected values are finite and positive
    EXPECT_GT(fine.rho.at(0, 0), 0.0);
}

TEST(Driver, RunsAndConservesSanity) {
    CleverConfig config;
    config.nx       = 64;
    config.ny       = 32;
    config.steps    = 8;
    config.annotate = false; // no channel: pure physics run

    std::mutex m;
    std::vector<CleverStats> stats;
    simmpi::run(2, [&](simmpi::Comm& comm) {
        CleverStats s = run_rank(comm, config);
        std::lock_guard<std::mutex> lock(m);
        stats.push_back(s);
    });
    ASSERT_EQ(stats.size(), 2u);
    for (const CleverStats& s : stats) {
        EXPECT_EQ(s.steps, 8);
        EXPECT_GT(s.checksum, 0.0);
        EXPECT_TRUE(std::isfinite(s.checksum));
        EXPECT_GT(s.cell_updates, 0u);
        EXPECT_GT(s.sim_time, 0.0);
    }
}

TEST(Driver, ProducesAllSevenAttributes) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "clever-test", RuntimeConfig{{"services.enable", "event,timer,aggregate"},
                                     {"aggregate.key", "*"}});

    CleverConfig config;
    config.nx    = 64;
    config.ny    = 32;
    config.steps = 6;

    std::mutex m;
    std::vector<RecordMap> all;
    simmpi::run(2, [&](simmpi::Comm& comm) {
        run_rank(comm, config);
        std::vector<RecordMap> mine;
        c.flush_thread(channel,
                       [&mine](RecordMap&& r) { mine.push_back(std::move(r)); });
        std::lock_guard<std::mutex> lock(m);
        for (RecordMap& r : mine)
            all.push_back(std::move(r));
    });
    c.close_channel(channel);

    ASSERT_FALSE(all.empty());
    // the paper's seven attributes all appear in the profile
    for (const char* attr : {"function", "annotation", "kernel", "amr.level",
                             "iteration#mainloop", "mpi.rank", "mpi.function"}) {
        bool found = false;
        for (const RecordMap& r : all)
            if (r.contains(attr))
                found = true;
        EXPECT_TRUE(found) << "missing attribute: " << attr;
    }

    // expected kernels present
    for (const char* kernel : {"ideal-gas", "viscosity", "calc-dt", "advec-cell",
                               "advec-mom", "pdv", "accelerate", "reset"}) {
        bool found = false;
        for (const RecordMap& r : all)
            if (r.get("kernel") == Variant(kernel))
                found = true;
        EXPECT_TRUE(found) << "missing kernel: " << kernel;
    }

    // both ranks contributed
    bool rank0 = false, rank1 = false;
    for (const RecordMap& r : all) {
        if (r.get("mpi.rank") == Variant(0))
            rank0 = true;
        if (r.get("mpi.rank") == Variant(1))
            rank1 = true;
    }
    EXPECT_TRUE(rank0);
    EXPECT_TRUE(rank1);

    // AMR levels 0..2 all did work
    for (int level = 0; level < 3; ++level) {
        double level_count = 0;
        for (const RecordMap& r : all)
            if (r.get("amr.level") == Variant(level))
                level_count += r.get("count").to_double();
        EXPECT_GT(level_count, 0.0) << "level " << level;
    }
}

TEST(Driver, ImbalanceKnobSkewsRankZero) {
    CleverConfig config;
    config.nx        = 64;
    config.ny        = 32;
    config.steps     = 4;
    config.annotate  = false;
    config.imbalance = 3.0;
    // runs without error; the knob only adds extra work on rank 0
    simmpi::run(2, [&](simmpi::Comm& comm) { run_rank(comm, config); });
    SUCCEED();
}

TEST(Hydro, EnergyIsConservedWithReflectiveBounds) {
    Patch p = make_patch();
    double e0 = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            e0 += p.energy.at(i, j);
    for (int s = 0; s < 20; ++s)
        step_patch(p, kernel_calc_dt(p));
    double e1 = 0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            e1 += p.energy.at(i, j);
    EXPECT_NEAR(e1, e0, 1e-9 * e0) << "total energy flux through walls is zero";
}

TEST(Amr, RepeatedRegridIsStable) {
    auto base = std::make_unique<Patch>(0, 0, 0, 64, 32, 7.0 / 64, 3.0 / 32);
    init_triple_point(*base, 7.0, 3.0);
    kernel_ideal_gas(*base);
    AmrConfig cfg;
    Hierarchy mesh(std::move(base), cfg);

    // regrid repeatedly while advancing level 0: patch counts stay sane
    // and all fine patches stay finite
    for (int step = 0; step < 12; ++step) {
        Patch& l0 = *mesh.level(0)[0];
        kernel_ideal_gas(l0);
        kernel_viscosity(l0);
        compute_fluxes(l0);
        const double dt = kernel_calc_dt(l0);
        kernel_advec_cell(l0, dt);
        kernel_advec_mom(l0, dt);
        kernel_reset(l0);
        if (step % 3 == 0)
            mesh.regrid();
        for (int l = 1; l < mesh.num_levels(); ++l) {
            EXPECT_LT(mesh.level(l).size(), 200u) << "patch explosion at step " << step;
            for (const auto& patch : mesh.level(l))
                EXPECT_TRUE(std::isfinite(patch->rho.at(0, 0)));
        }
    }
    EXPECT_GT(mesh.cells_on_level(1), 0u);
}

TEST(Amr, FinePatchesStayInsideParentBounds) {
    auto base = std::make_unique<Patch>(0, 0, 16, 64, 32, 7.0 / 64, 3.0 / 32);
    init_triple_point(*base, 7.0, 3.0);
    kernel_ideal_gas(*base);
    AmrConfig cfg;
    Hierarchy mesh(std::move(base), cfg);
    mesh.regrid();

    const Patch& coarse = *mesh.level(0)[0];
    for (const auto& fine : mesh.level(1)) {
        const int r = cfg.refinement_ratio;
        EXPECT_GE(fine->x0, coarse.x0 * r);
        EXPECT_GE(fine->y0, coarse.y0 * r);
        EXPECT_LE(fine->x0 + fine->nx, (coarse.x0 + coarse.nx) * r);
        EXPECT_LE(fine->y0 + fine->ny, (coarse.y0 + coarse.ny) * r);
    }
}
