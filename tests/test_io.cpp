// calib stream format: writer/reader round trips, escaping, globals,
// snapshot writing, malformed-input errors, multi-file datasets, the
// zero-copy FileBuffer, and byte-range chunked reads (CaliFileSource).
#include "io/calireader.hpp"
#include "io/caliwriter.hpp"
#include "io/filebuffer.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace calib;
using calib::test::record;

namespace {

std::vector<RecordMap> round_trip(const std::vector<RecordMap>& records,
                                  RecordMap* globals = nullptr) {
    std::ostringstream os;
    CaliWriter writer(os);
    for (const RecordMap& r : records)
        writer.write_record(r);
    std::istringstream is(os.str());
    return CaliReader::read_all(is, globals);
}

} // namespace

TEST(CaliStream, BasicRoundTrip) {
    auto in = std::vector<RecordMap>{
        record({{"function", Variant("main")}, {"count", Variant(3ull)}}),
        record({{"function", Variant("foo")}, {"time", Variant(2.5)}}),
    };
    auto out = round_trip(in);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("function"), Variant("main"));
    EXPECT_EQ(out[0].get("count").to_uint(), 3u);
    EXPECT_DOUBLE_EQ(out[1].get("time").as_double(), 2.5);
}

TEST(CaliStream, PreservesValueTypes) {
    auto out = round_trip({record({{"i", Variant(-42)},
                                   {"u", Variant(99ull)},
                                   {"d", Variant(3.25)},
                                   {"s", Variant("text")},
                                   {"b", Variant(true)}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("i").type(), Variant::Type::Int);
    EXPECT_EQ(out[0].get("u").type(), Variant::Type::UInt);
    EXPECT_EQ(out[0].get("d").type(), Variant::Type::Double);
    EXPECT_EQ(out[0].get("s").type(), Variant::Type::String);
    EXPECT_EQ(out[0].get("b").type(), Variant::Type::Bool);
    EXPECT_EQ(out[0].get("i").as_int(), -42);
}

TEST(CaliStream, EscapesSpecialCharacters) {
    auto out = round_trip({record({{"messy", Variant("a,b=c\\d\ne")},
                                   {"attr,with=specials", Variant("v")}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("messy").as_string(), "a,b=c\\d\ne");
    EXPECT_EQ(out[0].get("attr,with=specials"), Variant("v"));
}

TEST(CaliStream, TypeDriftFallsBackGracefully) {
    // same attribute first int, later double: reader recovers the double
    auto out = round_trip({record({{"v", Variant(1)}}),
                           record({{"v", Variant(2.5)}})});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("v").to_int(), 1);
    EXPECT_DOUBLE_EQ(out[1].get("v").to_double(), 2.5);
}

TEST(CaliStream, GlobalsAreSeparate) {
    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_global("mpi.rank", Variant(7));
    writer.write_record(record({{"a", Variant(1)}}));
    EXPECT_EQ(writer.num_records(), 1u);

    RecordMap globals;
    std::istringstream is(os.str());
    auto records = CaliReader::read_all(is, &globals);
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(globals.get("mpi.rank").to_int(), 7);
}

TEST(CaliStream, WriteSnapshotResolvesNames) {
    AttributeRegistry registry;
    const Attribute fn = registry.create("function", Variant::Type::String);
    const Attribute t  = registry.create("time", Variant::Type::Double);

    SnapshotRecord snap;
    snap.append(fn.id(), Variant("kernel_a"));
    snap.append(t.id(), Variant(1.5));

    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_snapshot(registry, snap);

    std::istringstream is(os.str());
    auto out = CaliReader::read_all(is);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("function"), Variant("kernel_a"));
    EXPECT_DOUBLE_EQ(out[0].get("time").as_double(), 1.5);
}

TEST(CaliStream, EmptyStreamGivesNoRecords) {
    std::istringstream is("#calib-stream v1\n");
    EXPECT_TRUE(CaliReader::read_all(is).empty());
}

TEST(CaliStream, SkipsCommentsAndBlankLines) {
    std::istringstream is("#calib-stream v1\n\n# comment\nA,0,a,int,0\nR,0=5\n");
    auto out = CaliReader::read_all(is);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("a").to_int(), 5);
}

TEST(CaliStream, ErrorOnUndefinedAttribute) {
    std::istringstream is("R,7=5\n");
    EXPECT_THROW(CaliReader::read_all(is), std::runtime_error);
}

TEST(CaliStream, ErrorOnMalformedLines) {
    for (const char* text : {"X,0=1\n", "R;0=1\n", "A,0\n", "R,0:5\nA,0,a,int,0\n"}) {
        std::istringstream is(text);
        EXPECT_THROW(CaliReader::read_all(is), std::runtime_error) << text;
    }
}

TEST(CaliStream, ByteCountTracksOutput) {
    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_record(record({{"a", Variant(1)}}));
    EXPECT_EQ(writer.num_bytes(), os.str().size());
}

TEST(CaliFile, ReadWriteThroughFilesystem) {
    calib::test::TempDir dir("io");
    const std::string path = dir.file("test.cali");
    {
        std::ofstream os(path);
        CaliWriter writer(os);
        for (int i = 0; i < 100; ++i)
            writer.write_record(record({{"i", Variant(i)}, {"sq", Variant(i * i)}}));
    }
    auto records = CaliReader::read_file(path);
    ASSERT_EQ(records.size(), 100u);
    EXPECT_EQ(records[99].get("sq").to_int(), 99 * 99);

    // streaming variant sees the same records
    std::size_t streamed = 0;
    CaliReader::read_file(path, [&streamed](RecordMap&&) { ++streamed; });
    EXPECT_EQ(streamed, 100u);
}

TEST(CaliFile, MissingFileThrows) {
    EXPECT_THROW(CaliReader::read_file("/nonexistent/path.cali"), std::runtime_error);
}

TEST(CaliStream, CrlfLineEndingsParseIdentically) {
    const char* lf   = "A,0,a,int,0\nA,1,s,string,0\nR,0=5,1=x\nG,0=7\nR,0=6\n";
    const char* crlf = "A,0,a,int,0\r\nA,1,s,string,0\r\nR,0=5,1=x\r\nG,0=7\r\nR,0=6\r\n";

    RecordMap g_lf, g_crlf;
    std::istringstream is_lf(lf), is_crlf(crlf);
    const auto out_lf   = CaliReader::read_all(is_lf, &g_lf);
    const auto out_crlf = CaliReader::read_all(is_crlf, &g_crlf);
    ASSERT_EQ(out_crlf.size(), 2u);
    ASSERT_EQ(out_lf.size(), out_crlf.size());
    EXPECT_EQ(out_crlf[0].get("a").to_int(), 5);
    EXPECT_EQ(out_crlf[0].get("s"), Variant("x"));
    EXPECT_EQ(g_crlf.get("a").to_int(), 7);
    EXPECT_EQ(g_lf.get("a"), g_crlf.get("a"));
}

TEST(CaliFile, CrlfFileParsesIdentically) {
    calib::test::TempDir dir("io-crlf");
    const std::string path = dir.file("crlf.cali");
    {
        std::ofstream os(path, std::ios::binary);
        os << "A,0,a,int,0\r\nR,0=1\r\nR,0=2\r\n";
    }
    const auto out = CaliReader::read_file(path); // buffer line walker
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("a").to_int(), 1);
    EXPECT_EQ(out[1].get("a").to_int(), 2);
}

TEST(ReaderMetrics, BytesCountActualInputConsumed) {
    obs::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
    const auto& reg = obs::MetricsRegistry::instance();

    // no trailing newline: the final line must not be overcounted
    const std::string text = "A,0,a,int,0\nR,0=1"; // 17 bytes
    {
        std::istringstream is(text);
        CaliReader::read_all(is);
    }
    EXPECT_EQ(reg.value("reader.bytes"), static_cast<std::int64_t>(text.size()));

    // CRLF input: both bytes of each line ending count as consumed
    obs::MetricsRegistry::instance().reset();
    const std::string crlf = "A,0,a,int,0\r\nR,0=1\r\n"; // 20 bytes
    {
        std::istringstream is(crlf);
        CaliReader::read_all(is);
    }
    EXPECT_EQ(reg.value("reader.bytes"), static_cast<std::int64_t>(crlf.size()));

    // buffer path: bytes = buffer size
    obs::MetricsRegistry::instance().reset();
    AttributeRegistry registry;
    CaliReader::read_buffer(text, registry, [](IdRecord&&) {});
    EXPECT_EQ(reg.value("reader.bytes"), static_cast<std::int64_t>(text.size()));
    obs::set_enabled(false);
}

TEST(CaliFile, CountRecordsSkipsMetaLines) {
    calib::test::TempDir dir("io-count");
    const std::string path = dir.file("c.cali");
    {
        std::ofstream os(path);
        // comments, definitions, globals, an empty record, no final newline
        os << "#calib-stream v1\nA,0,a,int,0\nG,0=1\nR,0=1\nR\n\nR,0=2";
    }
    EXPECT_EQ(CaliReader::count_records(path), 3u);
}

TEST(CaliFile, ReadFileRangeNameShim) {
    calib::test::TempDir dir("io-range");
    const std::string path = dir.file("r.cali");
    {
        std::ofstream os(path);
        CaliWriter writer(os);
        for (int i = 0; i < 10; ++i)
            writer.write_record(record({{"i", Variant(i)}}));
        // globals after the requested range must still be seen
        writer.write_global("mpi.rank", Variant(3));
    }
    RecordMap globals;
    std::vector<RecordMap> out;
    CaliReader::read_file_range(path, 2, 5,
                                [&out](RecordMap&& r) { out.push_back(std::move(r)); },
                                &globals);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out.front().get("i").to_int(), 2);
    EXPECT_EQ(out.back().get("i").to_int(), 4);
    EXPECT_EQ(globals.get("mpi.rank").to_int(), 3);
}

// --------------------------------------------------- malformed-input errors

namespace {

/// The reader must reject \a text with a message carrying the 1-based line
/// number \a line and the substring \a what.
void expect_parse_error(const std::string& text, int line, const std::string& what) {
    AttributeRegistry registry;
    try {
        CaliReader::read_buffer(text, registry, [](IdRecord&&) {});
        FAIL() << "no error for: " << text;
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line " + std::to_string(line)), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(what), std::string::npos) << msg;
    }
}

} // namespace

TEST(CaliStream, ErrorOnTruncatedFinalLine) {
    // a record cut off mid-field (no '=' yet, no trailing newline)
    expect_parse_error("A,0,a,int,0\nR,0=1\nR,0", 3, "missing '='");
}

TEST(CaliStream, ErrorOnBadEscapeAtEndOfField) {
    expect_parse_error("A,0,s,string,0\nR,0=abc\\", 2, "bad escape");
    expect_parse_error("A,0,s\\", 1, "bad escape");
}

TEST(CaliStream, ErrorOnUndefinedAttributeCarriesLineNumber) {
    expect_parse_error("A,0,a,int,0\nR,0=1\nR,7=5\n", 3, "undefined attribute 7");
}

// ------------------------------------------------------------- file buffer

TEST(FileBuffer, MapsRegularFiles) {
    calib::test::TempDir dir("fb-map");
    const std::string path = dir.file("f.txt");
    {
        std::ofstream os(path);
        os << "hello\nworld\n";
    }
    obs::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
    {
        const FileBuffer buf = FileBuffer::open(path);
        EXPECT_EQ(buf.view(), "hello\nworld\n");
        if (FileBuffer::mmap_enabled()) {
            EXPECT_TRUE(buf.mapped());
            // the gauge tracks currently-mapped bytes
            EXPECT_EQ(obs::MetricsRegistry::instance().value("reader.mmap"),
                      static_cast<std::int64_t>(buf.size()));
        }
    }
    // released on destruction
    EXPECT_EQ(obs::MetricsRegistry::instance().value("reader.mmap"), 0);
    obs::set_enabled(false);
}

TEST(FileBuffer, FallbackBufferWhenMmapDisabled) {
    calib::test::TempDir dir("fb-nomap");
    const std::string path = dir.file("f.txt");
    {
        std::ofstream os(path);
        os << "payload";
    }
    FileBuffer::set_mmap_enabled(false);
    const FileBuffer buf = FileBuffer::open(path);
    FileBuffer::set_mmap_enabled(true);
    EXPECT_FALSE(buf.mapped());
    EXPECT_EQ(buf.view(), "payload");
}

TEST(FileBuffer, EmptyFileGivesEmptyView) {
    calib::test::TempDir dir("fb-empty");
    const std::string path = dir.file("empty.cali");
    { std::ofstream os(path); }
    const FileBuffer buf = FileBuffer::open(path);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_FALSE(buf.mapped()); // nothing to map
    // and an empty file is a valid (empty) stream
    EXPECT_TRUE(CaliReader::read_file(path).empty());
}

TEST(FileBuffer, MissingFileThrows) {
    EXPECT_THROW(FileBuffer::open("/nonexistent/file"), std::runtime_error);
}

TEST(FileBuffer, MoveKeepsViewValid) {
    FileBuffer a = FileBuffer::from_string("short"); // SSO: storage relocates
    FileBuffer b = std::move(a);
    EXPECT_EQ(b.view(), "short");
    FileBuffer c = FileBuffer::from_string(std::string(1024, 'x'));
    b = std::move(c);
    EXPECT_EQ(b.size(), 1024u);
    EXPECT_EQ(b.view().front(), 'x');
}

// ------------------------------------------------------ byte-range source

namespace {

/// Read every chunk of \a source in order via the name-based conversion
/// used by the tests (registry lookups), returning flattened records.
std::vector<RecordMap> read_all_chunks(const CaliFileSource& source) {
    AttributeRegistry registry;
    std::vector<RecordMap> out;
    for (std::size_t i = 0; i < source.chunks().size(); ++i)
        source.read_chunk(i, registry, [&](IdRecord&& r) {
            out.push_back(to_recordmap(r, registry));
        });
    return out;
}

} // namespace

TEST(CaliFileSource, ChunkedReadEqualsSequentialRead) {
    calib::test::TempDir dir("src-eq");
    const std::string path = dir.file("f.cali");
    {
        std::ofstream os(path);
        CaliWriter writer(os);
        for (int i = 0; i < 500; ++i)
            writer.write_record(record({{"i", Variant(i)}, {"sq", Variant(i * i)}}));
    }
    const CaliFileSource source(path, 1024);
    ASSERT_GE(source.chunks().size(), 2u);
    EXPECT_EQ(source.num_records(), 500u);

    const auto chunked    = read_all_chunks(source);
    const auto sequential = CaliReader::read_file(path);
    ASSERT_EQ(chunked.size(), sequential.size());
    for (std::size_t i = 0; i < chunked.size(); ++i) {
        EXPECT_EQ(chunked[i].get("i"), sequential[i].get("i"));
        EXPECT_EQ(chunked[i].get("sq"), sequential[i].get("sq"));
    }
}

TEST(CaliFileSource, MidFileRedefinitionReplaysInOrder) {
    calib::test::TempDir dir("src-redef");
    const std::string path = dir.file("f.cali");
    {
        std::ofstream os(path);
        // local id 0 is "x" for the first half, then redefined to "y";
        // chunk replay must apply definitions in file order (last wins)
        os << "A,0,x,int,0\n";
        for (int i = 0; i < 100; ++i)
            os << "R,0=" << i << "\n";
        os << "A,0,y,int,0\n";
        for (int i = 100; i < 200; ++i)
            os << "R,0=" << i << "\n";
    }
    const CaliFileSource source(path, 256);
    ASSERT_GE(source.chunks().size(), 3u);

    const auto chunked    = read_all_chunks(source);
    const auto sequential = CaliReader::read_file(path);
    ASSERT_EQ(chunked.size(), 200u);
    for (std::size_t i = 0; i < chunked.size(); ++i) {
        EXPECT_EQ(chunked[i].get("x"), sequential[i].get("x"));
        EXPECT_EQ(chunked[i].get("y"), sequential[i].get("y"));
    }
    EXPECT_EQ(chunked[0].get("x").to_int(), 0);
    EXPECT_TRUE(chunked[0].get("y").empty());
    EXPECT_EQ(chunked[199].get("y").to_int(), 199);
    EXPECT_TRUE(chunked[199].get("x").empty());
}

TEST(CaliFileSource, GlobalsAnywhereInFile) {
    calib::test::TempDir dir("src-glob");
    const std::string path = dir.file("f.cali");
    {
        std::ofstream os(path);
        os << "A,0,first,int,0\nG,0=1\n";
        for (int i = 0; i < 50; ++i)
            os << "R,0=" << i << "\n";
        os << "A,1,last,int,0\nG,1=2\n"; // a global at the end of the file
    }
    const CaliFileSource source(path, 128);
    ASSERT_GE(source.chunks().size(), 2u);
    EXPECT_TRUE(source.has_globals());

    AttributeRegistry registry;
    const IdRecord globals = source.read_globals(registry);
    const RecordMap named  = to_recordmap(globals, registry);
    EXPECT_EQ(named.get("first").to_int(), 1);
    EXPECT_EQ(named.get("last").to_int(), 2);
}

TEST(CaliFileSource, ChunkErrorsCarryWholeFileLineNumbers) {
    calib::test::TempDir dir("src-err");
    const std::string path = dir.file("f.cali");
    {
        std::ofstream os(path);
        os << "A,0,a,int,0\n";
        for (int i = 0; i < 100; ++i)
            os << "R,0=" << i << "\n";
        os << "R,9=1\n"; // line 102: undefined attribute, deep in the file
    }
    const CaliFileSource source(path, 256);
    ASSERT_GE(source.chunks().size(), 2u);
    AttributeRegistry registry;
    const std::size_t last = source.chunks().size() - 1;
    try {
        source.read_chunk(last, registry, [](IdRecord&&) {});
        FAIL() << "no error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 102"), std::string::npos)
            << e.what();
    }
}

TEST(Dataset, LoadsMultipleFilesWithGlobals) {
    calib::test::TempDir dir("dataset");
    std::vector<std::string> paths;
    for (int rank = 0; rank < 3; ++rank) {
        const std::string path = dir.file("rank-" + std::to_string(rank) + ".cali");
        std::ofstream os(path);
        CaliWriter writer(os);
        writer.write_global("mpi.rank", Variant(rank));
        writer.write_record(record({{"rank", Variant(rank)}}));
        writer.write_record(record({{"rank", Variant(rank)}}));
        paths.push_back(path);
    }
    Dataset ds = Dataset::load(paths);
    EXPECT_EQ(ds.records.size(), 6u);
    ASSERT_EQ(ds.globals.size(), 3u);
    EXPECT_EQ(ds.globals[1].get("mpi.rank").to_int(), 1);
    EXPECT_EQ(ds.globals[2].get("cali.file"), Variant(paths[2]));
}

// ---- numeric-correctness hardening regressions (differential fuzzing) ----

TEST(CaliStream, CarriageReturnValuesSurviveRoundTrip) {
    // a raw CR ending a line would be eaten by the reader's CRLF
    // tolerance; the writer must escape it as \r
    auto out = round_trip({record({{"s", Variant("ends with cr\r")},
                                   {"t", Variant("cr\rlf\nmix")}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("s").to_string(), "ends with cr\r");
    EXPECT_EQ(out[0].get("t").to_string(), "cr\rlf\nmix");
}

TEST(CaliStream, SubnormalDoublesSurviveRoundTrip) {
    auto out = round_trip({record({{"d", Variant(5e-324)},
                                   {"e", Variant(-5e-324)},
                                   {"z", Variant(-0.0)}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].get("d") == Variant(5e-324));
    EXPECT_TRUE(out[0].get("e") == Variant(-5e-324));
    EXPECT_TRUE(out[0].get("z") == Variant(-0.0)); // bitwise: sign survives
}

TEST(CaliStream, IntegerInDoubleColumnKeepsLowBits) {
    // a column typed double by its first record can later carry an exact
    // int64 (sum widening): the value must not round through double
    auto out = round_trip({record({{"v", Variant(0.5)}}),
                           record({{"v", Variant(9223372036854775807ll)}})});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].get("v").as_int(), 9223372036854775807ll);
}

TEST(CaliStream, EmptyStringInTypedColumnStaysString) {
    auto out = round_trip({record({{"v", Variant(1.5)}}),
                           record({{"v", Variant("")}})});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].get("v").type(), Variant::Type::String);
    EXPECT_EQ(out[1].get("v").to_string(), "");
}

TEST(CaliStream, EmptyValuesAreOmittedOnWrite) {
    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_record(record({{"a", Variant(1)}, {"b", Variant()}}));
    std::istringstream is(os.str());
    auto out = CaliReader::read_all(is);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size(), 1u); // "b" never written
    EXPECT_EQ(out[0].get("a").as_int(), 1);
}
