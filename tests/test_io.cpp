// calib stream format: writer/reader round trips, escaping, globals,
// snapshot writing, malformed-input errors, and multi-file datasets.
#include "io/calireader.hpp"
#include "io/caliwriter.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace calib;
using calib::test::record;

namespace {

std::vector<RecordMap> round_trip(const std::vector<RecordMap>& records,
                                  RecordMap* globals = nullptr) {
    std::ostringstream os;
    CaliWriter writer(os);
    for (const RecordMap& r : records)
        writer.write_record(r);
    std::istringstream is(os.str());
    return CaliReader::read_all(is, globals);
}

} // namespace

TEST(CaliStream, BasicRoundTrip) {
    auto in = std::vector<RecordMap>{
        record({{"function", Variant("main")}, {"count", Variant(3ull)}}),
        record({{"function", Variant("foo")}, {"time", Variant(2.5)}}),
    };
    auto out = round_trip(in);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("function"), Variant("main"));
    EXPECT_EQ(out[0].get("count").to_uint(), 3u);
    EXPECT_DOUBLE_EQ(out[1].get("time").as_double(), 2.5);
}

TEST(CaliStream, PreservesValueTypes) {
    auto out = round_trip({record({{"i", Variant(-42)},
                                   {"u", Variant(99ull)},
                                   {"d", Variant(3.25)},
                                   {"s", Variant("text")},
                                   {"b", Variant(true)}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("i").type(), Variant::Type::Int);
    EXPECT_EQ(out[0].get("u").type(), Variant::Type::UInt);
    EXPECT_EQ(out[0].get("d").type(), Variant::Type::Double);
    EXPECT_EQ(out[0].get("s").type(), Variant::Type::String);
    EXPECT_EQ(out[0].get("b").type(), Variant::Type::Bool);
    EXPECT_EQ(out[0].get("i").as_int(), -42);
}

TEST(CaliStream, EscapesSpecialCharacters) {
    auto out = round_trip({record({{"messy", Variant("a,b=c\\d\ne")},
                                   {"attr,with=specials", Variant("v")}})});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("messy").as_string(), "a,b=c\\d\ne");
    EXPECT_EQ(out[0].get("attr,with=specials"), Variant("v"));
}

TEST(CaliStream, TypeDriftFallsBackGracefully) {
    // same attribute first int, later double: reader recovers the double
    auto out = round_trip({record({{"v", Variant(1)}}),
                           record({{"v", Variant(2.5)}})});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("v").to_int(), 1);
    EXPECT_DOUBLE_EQ(out[1].get("v").to_double(), 2.5);
}

TEST(CaliStream, GlobalsAreSeparate) {
    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_global("mpi.rank", Variant(7));
    writer.write_record(record({{"a", Variant(1)}}));
    EXPECT_EQ(writer.num_records(), 1u);

    RecordMap globals;
    std::istringstream is(os.str());
    auto records = CaliReader::read_all(is, &globals);
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(globals.get("mpi.rank").to_int(), 7);
}

TEST(CaliStream, WriteSnapshotResolvesNames) {
    AttributeRegistry registry;
    const Attribute fn = registry.create("function", Variant::Type::String);
    const Attribute t  = registry.create("time", Variant::Type::Double);

    SnapshotRecord snap;
    snap.append(fn.id(), Variant("kernel_a"));
    snap.append(t.id(), Variant(1.5));

    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_snapshot(registry, snap);

    std::istringstream is(os.str());
    auto out = CaliReader::read_all(is);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("function"), Variant("kernel_a"));
    EXPECT_DOUBLE_EQ(out[0].get("time").as_double(), 1.5);
}

TEST(CaliStream, EmptyStreamGivesNoRecords) {
    std::istringstream is("#calib-stream v1\n");
    EXPECT_TRUE(CaliReader::read_all(is).empty());
}

TEST(CaliStream, SkipsCommentsAndBlankLines) {
    std::istringstream is("#calib-stream v1\n\n# comment\nA,0,a,int,0\nR,0=5\n");
    auto out = CaliReader::read_all(is);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("a").to_int(), 5);
}

TEST(CaliStream, ErrorOnUndefinedAttribute) {
    std::istringstream is("R,7=5\n");
    EXPECT_THROW(CaliReader::read_all(is), std::runtime_error);
}

TEST(CaliStream, ErrorOnMalformedLines) {
    for (const char* text : {"X,0=1\n", "R;0=1\n", "A,0\n", "R,0:5\nA,0,a,int,0\n"}) {
        std::istringstream is(text);
        EXPECT_THROW(CaliReader::read_all(is), std::runtime_error) << text;
    }
}

TEST(CaliStream, ByteCountTracksOutput) {
    std::ostringstream os;
    CaliWriter writer(os);
    writer.write_record(record({{"a", Variant(1)}}));
    EXPECT_EQ(writer.num_bytes(), os.str().size());
}

TEST(CaliFile, ReadWriteThroughFilesystem) {
    calib::test::TempDir dir("io");
    const std::string path = dir.file("test.cali");
    {
        std::ofstream os(path);
        CaliWriter writer(os);
        for (int i = 0; i < 100; ++i)
            writer.write_record(record({{"i", Variant(i)}, {"sq", Variant(i * i)}}));
    }
    auto records = CaliReader::read_file(path);
    ASSERT_EQ(records.size(), 100u);
    EXPECT_EQ(records[99].get("sq").to_int(), 99 * 99);

    // streaming variant sees the same records
    std::size_t streamed = 0;
    CaliReader::read_file(path, [&streamed](RecordMap&&) { ++streamed; });
    EXPECT_EQ(streamed, 100u);
}

TEST(CaliFile, MissingFileThrows) {
    EXPECT_THROW(CaliReader::read_file("/nonexistent/path.cali"), std::runtime_error);
}

TEST(Dataset, LoadsMultipleFilesWithGlobals) {
    calib::test::TempDir dir("dataset");
    std::vector<std::string> paths;
    for (int rank = 0; rank < 3; ++rank) {
        const std::string path = dir.file("rank-" + std::to_string(rank) + ".cali");
        std::ofstream os(path);
        CaliWriter writer(os);
        writer.write_global("mpi.rank", Variant(rank));
        writer.write_record(record({{"rank", Variant(rank)}}));
        writer.write_record(record({{"rank", Variant(rank)}}));
        paths.push_back(path);
    }
    Dataset ds = Dataset::load(paths);
    EXPECT_EQ(ds.records.size(), 6u);
    ASSERT_EQ(ds.globals.size(), 3u);
    EXPECT_EQ(ds.globals[1].get("mpi.rank").to_int(), 1);
    EXPECT_EQ(ds.globals[2].get("cali.file"), Variant(paths[2]));
}
