// Sampler service tests: cooperative quasi-sampling determinism and a
// signal-mode smoke test (asynchronous SIGPROF sampling, paper §IV-B:
// "Our implementation is async-signal safe").
#include "calib.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace calib;
using calib::test::find_record;

namespace {

std::vector<RecordMap> flush_calling_thread(Channel* channel) {
    std::vector<RecordMap> out;
    Caliper::instance().flush_thread(
        channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

void spin_for_ms(double ms) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(static_cast<long>(ms * 1000));
    volatile double sink = 0;
    while (std::chrono::steady_clock::now() < until)
        sink = sink + 1.0;
}

double total_count(const std::vector<RecordMap>& records) {
    double total = 0;
    for (const RecordMap& r : records)
        total += r.get("count").to_double();
    return total;
}

} // namespace

TEST(CooperativeSampler, EmitsRoughlyPeriodicSnapshots) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "coop", RuntimeConfig{{"services.enable", "sampler,aggregate"},
                              {"sampler.frequency", "1000"}, // 1 ms period
                              {"aggregate.key", "coop.state"},
                              {"aggregate.ops", "count"}});

    Annotation state("coop.state");
    state.begin(Variant("busy"));
    for (int i = 0; i < 20; ++i) {
        spin_for_ms(1.0);
        // polls happen on annotation events
        Annotation tick("coop.tick", prop::as_value);
        tick.set(Variant(i));
    }
    state.end();

    auto records       = flush_calling_thread(channel);
    const double total = total_count(records);
    // ~20 ms of work at 1 kHz: expect samples, with generous slack for CI noise
    EXPECT_GE(total, 5.0);
    EXPECT_LE(total, 2000.0);
    // samples taken while "busy" was on the blackboard dominate
    RecordMap busy = find_record(records, "coop.state", Variant("busy"));
    EXPECT_GE(busy.get("count").to_double(), 1.0);
    c.close_channel(channel);
}

TEST(CooperativeSampler, CatchUpCapBoundsBursts) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "coop-cap", RuntimeConfig{{"services.enable", "sampler,aggregate"},
                                  {"sampler.frequency", "100000"}, // 10 us period
                                  {"sampler.burst_cap", "7"},
                                  {"aggregate.key", "cap.state"},
                                  {"aggregate.ops", "count"}});
    Annotation state("cap.state");
    state.begin(Variant("s"));  // first event arms the sampler clock
    spin_for_ms(5.0);           // ~500 periods elapse
    state.end();                // single poll point: burst-capped
    auto records = flush_calling_thread(channel);
    EXPECT_LE(total_count(records), 8.0);
    c.close_channel(channel);
}

TEST(CooperativeSampler, NoEventsNoSamples) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "coop-idle", RuntimeConfig{{"services.enable", "sampler,aggregate"},
                                   {"sampler.frequency", "1000"},
                                   {"aggregate.key", "*"},
                                   {"aggregate.ops", "count"}});
    spin_for_ms(3.0); // no annotation events: no poll points
    EXPECT_TRUE(flush_calling_thread(channel).empty());
    c.close_channel(channel);
}

TEST(SignalSampler, SmokeTestCollectsSamples) {
    Caliper& c = Caliper::instance();
    c.thread_data(); // ensure this thread is registered before sampling starts
    Channel* channel = c.create_channel(
        "sig", RuntimeConfig{{"services.enable", "sampler,aggregate"},
                             {"sampler.mode", "signal"},
                             {"sampler.frequency", "200"},
                             {"aggregate.key", "sig.state"},
                             {"aggregate.ops", "count,sum(time.duration)"}});

    Annotation state("sig.state");
    state.begin(Variant("hot"));
    spin_for_ms(100.0);
    state.end();

    c.close_channel(channel); // stops the sampler thread

    auto records = flush_calling_thread(channel);
    const double total = total_count(records);
    EXPECT_GE(total, 2.0) << "expect some SIGPROF samples over 100 ms at 200 Hz";
    RecordMap hot = find_record(records, "sig.state", Variant("hot"));
    EXPECT_GE(hot.get("count").to_double(), 1.0)
        << "samples attribute to the active region";
}

TEST(SignalSampler, DropsOrTakesButNeverCorrupts) {
    // sampling during a high-frequency annotation storm: every sample is
    // either taken or counted as dropped; totals stay consistent
    Caliper& c = Caliper::instance();
    c.thread_data();
    const std::uint64_t dropped_before = c.thread_data().dropped_samples;

    Channel* channel = c.create_channel(
        "sig-storm", RuntimeConfig{{"services.enable", "sampler,aggregate"},
                                   {"sampler.mode", "signal"},
                                   {"sampler.frequency", "500"},
                                   {"aggregate.key", "sig.fn"},
                                   {"aggregate.ops", "count"}});
    Annotation fn("sig.fn");
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    while (std::chrono::steady_clock::now() < until) {
        fn.begin(Variant("a"));
        fn.end();
    }
    c.close_channel(channel);

    auto records = flush_calling_thread(channel);
    EXPECT_GE(total_count(records) + static_cast<double>(
                  c.thread_data().dropped_samples - dropped_before), 0.0);
    SUCCEED() << "no crash, no corruption";
}
