// simmpi message-passing runtime tests: point-to-point semantics,
// wildcards, barrier, and collectives, swept over rank counts including
// non-powers of two.
#include "mpisim/runtime.hpp"
#include "mpisim/wrapper.hpp"
#include "runtime/caliper.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

using namespace calib::simmpi;

namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
    return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_of(const Message& m) {
    return {reinterpret_cast<const char*>(m.payload.data()), m.payload.size()};
}

} // namespace

TEST(SimMpi, RunSpawnsCorrectRanks) {
    std::atomic<int> sum{0};
    run(5, [&sum](Comm& comm) {
        EXPECT_EQ(comm.size(), 5);
        sum += comm.rank();
    });
    EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4);
}

TEST(SimMpi, RunRejectsInvalidCounts) {
    EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(SimMpi, RankExceptionsPropagate) {
    EXPECT_THROW(run(3,
                     [](Comm& comm) {
                         if (comm.rank() == 1)
                             throw std::runtime_error("rank 1 fails");
                     }),
                 std::runtime_error);
}

TEST(SimMpi, PointToPointDelivery) {
    run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.send(1, 5, bytes_of("hello"));
        } else {
            Message m = comm.recv(0, 5);
            EXPECT_EQ(string_of(m), "hello");
            EXPECT_EQ(m.src, 0);
            EXPECT_EQ(m.tag, 5);
        }
    });
}

TEST(SimMpi, TagMatchingHoldsBackOtherTags) {
    run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.send(1, 1, bytes_of("first"));
            comm.send(1, 2, bytes_of("second"));
        } else {
            // receive tag 2 first even though tag 1 arrived earlier
            EXPECT_EQ(string_of(comm.recv(0, 2)), "second");
            EXPECT_EQ(string_of(comm.recv(0, 1)), "first");
        }
    });
}

TEST(SimMpi, WildcardSourceAndTag) {
    run(3, [](Comm& comm) {
        if (comm.rank() != 0) {
            comm.send_value(0, comm.rank(), comm.rank() * 10);
        } else {
            int sum = 0;
            for (int i = 0; i < 2; ++i)
                sum += comm.recv_value<int>(any_source, any_tag);
            EXPECT_EQ(sum, 30);
        }
    });
}

TEST(SimMpi, IprobeSeesQueuedMessages) {
    run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.send_value(1, 3, 42);
            comm.barrier();
        } else {
            comm.barrier(); // message definitely sent now
            EXPECT_TRUE(comm.iprobe(0, 3));
            EXPECT_FALSE(comm.iprobe(0, 99));
            EXPECT_EQ(comm.recv_value<int>(0, 3), 42);
            EXPECT_FALSE(comm.iprobe());
        }
    });
}

TEST(SimMpi, SendToInvalidRankThrows) {
    run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            EXPECT_THROW(comm.send_value(7, 0, 1), std::out_of_range);
        }
    });
}

TEST(SimMpi, MessageStatisticsCount) {
    run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.send(1, 0, bytes_of("abcd"));
            comm.send(1, 0, bytes_of("ef"));
            EXPECT_EQ(comm.messages_sent(), 2u);
            EXPECT_EQ(comm.bytes_sent(), 6u);
        } else {
            comm.recv();
            comm.recv();
        }
    });
}

class SimMpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(SimMpiCollectives, BarrierSynchronizesRepeatedly) {
    const int nprocs = GetParam();
    std::atomic<int> phase_sum{0};
    run(nprocs, [&phase_sum, nprocs](Comm& comm) {
        for (int phase = 0; phase < 10; ++phase) {
            phase_sum.fetch_add(1);
            comm.barrier();
            // after the barrier everyone observed all increments of this phase
            EXPECT_GE(phase_sum.load(), (phase + 1) * nprocs);
            comm.barrier();
        }
    });
    EXPECT_EQ(phase_sum.load(), 10 * nprocs);
}

TEST_P(SimMpiCollectives, BcastFromEveryRoot) {
    const int nprocs = GetParam();
    run(nprocs, [nprocs](Comm& comm) {
        for (int root = 0; root < nprocs; ++root) {
            std::vector<std::byte> data;
            if (comm.rank() == root) {
                const std::string payload = "root-" + std::to_string(root);
                data.assign(reinterpret_cast<const std::byte*>(payload.data()),
                            reinterpret_cast<const std::byte*>(payload.data()) +
                                payload.size());
            }
            comm.bcast(data, root);
            EXPECT_EQ(std::string(reinterpret_cast<const char*>(data.data()),
                                  data.size()),
                      "root-" + std::to_string(root));
            comm.barrier();
        }
    });
}

TEST_P(SimMpiCollectives, AllreduceSumMinMax) {
    const int nprocs = GetParam();
    run(nprocs, [nprocs](Comm& comm) {
        const double r = static_cast<double>(comm.rank());
        EXPECT_DOUBLE_EQ(comm.allreduce(r, Comm::ReduceOp::Sum),
                         nprocs * (nprocs - 1) / 2.0);
        EXPECT_DOUBLE_EQ(comm.allreduce(r, Comm::ReduceOp::Min), 0.0);
        EXPECT_DOUBLE_EQ(comm.allreduce(r, Comm::ReduceOp::Max),
                         static_cast<double>(nprocs - 1));
        const std::uint64_t u = comm.rank() + 1;
        EXPECT_EQ(comm.allreduce(u, Comm::ReduceOp::Sum),
                  static_cast<std::uint64_t>(nprocs) * (nprocs + 1) / 2);
    });
}

TEST_P(SimMpiCollectives, ReduceToNonZeroRoot) {
    const int nprocs = GetParam();
    if (nprocs < 2)
        GTEST_SKIP();
    run(nprocs, [nprocs](Comm& comm) {
        const double v = comm.reduce(1.0, Comm::ReduceOp::Sum, 1);
        if (comm.rank() == 1) {
            EXPECT_DOUBLE_EQ(v, static_cast<double>(nprocs));
        }
    });
}

TEST_P(SimMpiCollectives, GatherCollectsInRankOrder) {
    const int nprocs = GetParam();
    run(nprocs, [nprocs](Comm& comm) {
        const std::string payload(static_cast<std::size_t>(comm.rank()) + 1,
                                  static_cast<char>('a' + comm.rank() % 26));
        auto gathered = comm.gather(bytes_of(payload), 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(gathered.size(), static_cast<std::size_t>(nprocs));
            for (int r = 0; r < nprocs; ++r)
                EXPECT_EQ(gathered[r].size(), static_cast<std::size_t>(r) + 1);
        } else {
            EXPECT_TRUE(gathered.empty());
        }
    });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SimMpiCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST(CaliCommWrapper, AnnotatesMpiFunctions) {
    using calib::Caliper;
    using calib::RecordMap;
    using calib::RuntimeConfig;

    Caliper& c       = Caliper::instance();
    calib::Channel* channel = c.create_channel(
        "mpi-wrap", RuntimeConfig{{"services.enable", "event,aggregate"},
                                  {"aggregate.key", "mpi.function,mpi.rank"},
                                  {"aggregate.ops", "count"}});

    std::mutex mutex;
    std::vector<RecordMap> all;
    run(2, [&](Comm& raw) {
        CaliComm comm(raw);
        comm.barrier();
        comm.allreduce(1.0, Comm::ReduceOp::Sum);
        comm.barrier();
        std::vector<RecordMap> mine;
        Caliper::instance().flush_thread(channel, [&mine](RecordMap&& r) {
            mine.push_back(std::move(r));
        });
        std::lock_guard<std::mutex> lock(mutex);
        for (RecordMap& r : mine)
            all.push_back(std::move(r));
    });
    c.close_channel(channel);

    double barrier_count = 0, allreduce_count = 0;
    for (const RecordMap& r : all) {
        if (r.get("mpi.function") == calib::Variant("MPI_Barrier"))
            barrier_count += r.get("count").to_double();
        if (r.get("mpi.function") == calib::Variant("MPI_Allreduce"))
            allreduce_count += r.get("count").to_double();
    }
    EXPECT_EQ(barrier_count, 4.0) << "2 ranks x 2 barriers (end events)";
    EXPECT_EQ(allreduce_count, 2.0);
}

TEST(SimMpi, PerPairFifoOrderingUnderStorm) {
    // messages between a fixed (src, dst, tag) pair must arrive in send
    // order even under a concurrent storm from other ranks
    constexpr int n_msgs = 500;
    run(4, [](Comm& comm) {
        if (comm.rank() == 0) {
            int expected[4] = {0, 0, 0, 0};
            for (int i = 0; i < 3 * n_msgs; ++i) {
                Message m = comm.recv(any_source, 7);
                int seq;
                std::memcpy(&seq, m.payload.data(), sizeof(int));
                EXPECT_EQ(seq, expected[m.src]++)
                    << "out-of-order from rank " << m.src;
            }
        } else {
            for (int seq = 0; seq < n_msgs; ++seq)
                comm.send_value(0, 7, seq);
        }
    });
}

TEST(SimMpi, RandomizedTagMatchingStress) {
    // interleave sends with many tags; the receiver drains them in a
    // shuffled tag order and must get exactly the right payload per tag
    run(2, [](Comm& comm) {
        constexpr int n_tags = 64;
        if (comm.rank() == 0) {
            for (int t = 0; t < n_tags; ++t)
                comm.send_value(1, t, t * 1000 + 7);
        } else {
            std::mt19937 rng(99);
            std::vector<int> tags(n_tags);
            std::iota(tags.begin(), tags.end(), 0);
            std::shuffle(tags.begin(), tags.end(), rng);
            for (int t : tags)
                EXPECT_EQ(comm.recv_value<int>(0, t), t * 1000 + 7);
            EXPECT_FALSE(comm.iprobe()) << "mailbox fully drained";
        }
    });
}
