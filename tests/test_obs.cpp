// Tests for the self-profiling subsystem (src/obs): instrument semantics,
// concurrent writers, the disabled no-op guarantee, phase nesting, and the
// stats-JSON round trip through calib's own JSON reader.
//
// Instruments are process-global statics shared with the rest of the
// library, so every test snapshots values as *deltas* and restores the
// disabled state on exit.
#include "calib.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <thread>
#include <vector>

using namespace calib;

namespace {

// Enable metrics for one test and restore the default (disabled) state
// afterwards so suites running later in this process see a clean registry.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_enabled(true);
        obs::MetricsRegistry::instance().reset();
    }
    void TearDown() override {
        obs::MetricsRegistry::instance().reset();
        obs::set_enabled(false);
    }
};

// Test-local instruments. Registration is global and permanent, so these
// live at namespace scope like the library's own instruments do.
obs::Counter t_counter("test.counter");
obs::Gauge t_gauge("test.gauge");
obs::Timer t_timer("test.timer");
obs::Histogram t_histogram("test.histogram");

} // namespace

TEST_F(ObsTest, CounterCountsAndResets) {
    t_counter.add();
    t_counter.add(41);
    EXPECT_EQ(t_counter.value(), 42u);
    EXPECT_EQ(obs::MetricsRegistry::instance().value("test.counter"), 42);
    t_counter.reset();
    EXPECT_EQ(t_counter.value(), 0u);
}

TEST_F(ObsTest, ConcurrentCounterWritersSumExactly) {
    constexpr int kThreads = 8;
    constexpr int kAdds    = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([] {
            for (int i = 0; i < kAdds; ++i)
                t_counter.add();
        });
    for (auto& w : workers)
        w.join();
    EXPECT_EQ(t_counter.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, ConcurrentTimerWritersAggregate) {
    constexpr int kThreads = 4;
    constexpr int kRecords = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([t] {
            for (int i = 0; i < kRecords; ++i)
                t_timer.record(static_cast<std::uint64_t>(t + 1));
        });
    for (auto& w : workers)
        w.join();
    EXPECT_EQ(t_timer.count(), static_cast<std::uint64_t>(kThreads) * kRecords);
    // sum over threads t of kRecords * (t+1)
    EXPECT_EQ(t_timer.total_ns(), kRecords * (1ull + 2 + 3 + 4));
    EXPECT_EQ(t_timer.max_ns(), static_cast<std::uint64_t>(kThreads));
}

TEST_F(ObsTest, DisabledInstrumentsAreNoOps) {
    obs::set_enabled(false);
    t_counter.add(100);
    t_gauge.set(7);
    t_gauge.add(3);
    t_timer.record(999);
    t_histogram.record(512);
    {
        obs::Timer::Scope scope(t_timer);
        obs::Phase phase("disabled-phase");
    }
    EXPECT_EQ(t_counter.value(), 0u);
    EXPECT_EQ(t_gauge.value(), 0);
    EXPECT_EQ(t_timer.count(), 0u);
    EXPECT_EQ(t_histogram.count(), 0u);
    EXPECT_TRUE(obs::MetricsRegistry::instance().phases().empty());
}

TEST_F(ObsTest, GaugeSetAndAdd) {
    t_gauge.set(10);
    t_gauge.add(-3);
    EXPECT_EQ(t_gauge.value(), 7);
    EXPECT_EQ(obs::MetricsRegistry::instance().value("test.gauge"), 7);
}

TEST_F(ObsTest, TimerScopeRecordsElapsedTime) {
    {
        obs::Timer::Scope scope(t_timer);
        // any nonzero amount of work
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    }
    EXPECT_EQ(t_timer.count(), 1u);
    EXPECT_GT(t_timer.total_ns(), 0u);
    EXPECT_EQ(t_timer.max_ns(), t_timer.total_ns());
}

TEST_F(ObsTest, SpanTimerExcludesPausedWork) {
    const std::uint64_t wall_start = obs::now_ns();
    {
        obs::SpanTimer span(t_timer);
        span.pause();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        span.resume();
    }
    const std::uint64_t wall = obs::now_ns() - wall_start;
    ASSERT_EQ(t_timer.count(), 1u);
    // the 20ms sleep happened while paused, so the recorded exclusive
    // time must be well under the wall time of the block
    EXPECT_LT(t_timer.total_ns(), wall / 2);
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
    t_histogram.record(0);
    t_histogram.record(1);
    t_histogram.record(100);
    t_histogram.record(1000);
    EXPECT_EQ(t_histogram.count(), 4u);
    EXPECT_EQ(t_histogram.sum(), 1101u);
    EXPECT_EQ(t_histogram.max(), 1000u);
    // p50 falls in the bucket holding 1 (cumulative 2/4 >= 0.5*4)
    EXPECT_LE(t_histogram.quantile(0.5), 127u);
    // p99 falls in the bucket covering 1000: [512, 1024)
    EXPECT_GE(t_histogram.quantile(0.99), 1000u);
    EXPECT_LE(t_histogram.quantile(0.99), 1023u);
    EXPECT_EQ(t_histogram.quantile(0.0), 0u);
}

TEST_F(ObsTest, PhaseNestingBuildsPaths) {
    {
        obs::Phase outer("outer");
        { obs::Phase inner("inner"); }
        { obs::Phase inner("inner"); }
    }
    { obs::Phase flat("flat"); }
    const std::vector<obs::PhaseSample> phases =
        obs::MetricsRegistry::instance().phases();
    ASSERT_EQ(phases.size(), 3u);
    // inner scopes close (and record) before outer does
    EXPECT_EQ(phases[0].path, "outer/inner");
    EXPECT_EQ(phases[0].count, 2u);
    EXPECT_EQ(phases[1].path, "outer");
    EXPECT_EQ(phases[1].count, 1u);
    EXPECT_EQ(phases[2].path, "flat");
    EXPECT_EQ(phases[2].count, 1u);
}

TEST_F(ObsTest, RegistryFindAndMissingNames) {
    t_counter.add(5);
    const auto sample = obs::MetricsRegistry::instance().find("test.counter");
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->kind, obs::Kind::Counter);
    EXPECT_EQ(sample->value, 5);
    EXPECT_FALSE(
        obs::MetricsRegistry::instance().find("no.such.metric").has_value());
    EXPECT_EQ(obs::MetricsRegistry::instance().value("no.such.metric"), 0);
}

TEST_F(ObsTest, ResetClearsInstrumentsAndPhases) {
    t_counter.add(3);
    t_gauge.set(4);
    t_timer.record(5);
    t_histogram.record(6);
    { obs::Phase phase("reset-me"); }
    obs::MetricsRegistry::instance().reset();
    EXPECT_EQ(t_counter.value(), 0u);
    EXPECT_EQ(t_gauge.value(), 0);
    EXPECT_EQ(t_timer.count(), 0u);
    EXPECT_EQ(t_histogram.count(), 0u);
    EXPECT_TRUE(obs::MetricsRegistry::instance().phases().empty());
}

TEST_F(ObsTest, StatsJsonRoundTripsThroughJsonReader) {
    t_counter.add(42);
    t_gauge.set(-3);
    t_timer.record(1000);
    t_histogram.record(64);
    { obs::Phase phase("roundtrip"); }

    std::ostringstream os;
    obs::write_stats_json(os);
    const std::string json = os.str();

    // calib's own JSON reader parses the report (the schema is the same
    // flat record-array shape FORMAT json emits)
    const std::vector<RecordMap> records = read_json_records(json);
    ASSERT_FALSE(records.empty());

    auto find_record = [&records](const char* kind, const char* name) {
        for (const RecordMap& r : records)
            if (r.get("kind").to_string() == kind &&
                r.get("name").to_string() == name)
                return r;
        ADD_FAILURE() << "no record kind=" << kind << " name=" << name;
        return RecordMap{};
    };

    EXPECT_EQ(find_record("counter", "test.counter").get("value").to_int(), 42);
    EXPECT_EQ(find_record("gauge", "test.gauge").get("value").to_int(), -3);
    const RecordMap timer = find_record("timer", "test.timer");
    EXPECT_EQ(timer.get("count").to_int(), 1);
    EXPECT_GT(timer.get("total_s").to_double(), 0.0);
    const RecordMap hist = find_record("histogram", "test.histogram");
    EXPECT_EQ(hist.get("count").to_int(), 1);
    EXPECT_EQ(hist.get("sum").to_int(), 64);
    const RecordMap phase = find_record("phase", "roundtrip");
    EXPECT_EQ(phase.get("count").to_int(), 1);

    // and the full query pipeline can aggregate it
    const std::vector<RecordMap> out =
        run_query("SELECT name,value WHERE kind=counter,name=test.counter",
                  records);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("value").to_int(), 42);
}

TEST_F(ObsTest, StatsJsonFileWriteFailsGracefully) {
    EXPECT_FALSE(obs::write_stats_json_file("/nonexistent-dir/stats.json"));
}

TEST_F(ObsTest, ReaderInstrumentsCountRecords) {
    std::istringstream is(R"([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])");
    AttributeRegistry reg;
    std::size_t n = 0;
    auto& mreg    = obs::MetricsRegistry::instance();
    const std::int64_t records0 = mreg.value("reader.records");
    const std::int64_t entries0 = mreg.value("reader.entries");
    read_json_records(is, reg, [&n](IdRecord&&) { ++n; });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(mreg.value("reader.records") - records0, 2);
    EXPECT_EQ(mreg.value("reader.entries") - entries0, 4);
}

TEST_F(ObsTest, HistogramBinPlacementMatchesLog2Bounds) {
    // bucket 0 holds the value 0; bucket b holds [2^(b-1), 2^b)
    t_histogram.record(0);
    t_histogram.record(1);    // bucket 1
    t_histogram.record(2);    // bucket 2
    t_histogram.record(3);    // bucket 2
    t_histogram.record(4);    // bucket 3
    t_histogram.record(1023); // bucket 10
    t_histogram.record(1024); // bucket 11
    EXPECT_EQ(t_histogram.bucket_count(0), 1u);
    EXPECT_EQ(t_histogram.bucket_count(1), 1u);
    EXPECT_EQ(t_histogram.bucket_count(2), 2u);
    EXPECT_EQ(t_histogram.bucket_count(3), 1u);
    EXPECT_EQ(t_histogram.bucket_count(10), 1u);
    EXPECT_EQ(t_histogram.bucket_count(11), 1u);

    // the le bounds quantile() reports are the bucket upper bounds
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(0), 0u);
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(1), 1u);
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(2), 3u);
    EXPECT_EQ(obs::Histogram::bucket_upper_bound(10), 1023u);

    // snapshot carries cumulative (le, count) pairs up to the last
    // occupied bucket — the Prometheus exposition reads these directly
    const std::optional<obs::Sample> found =
        obs::MetricsRegistry::instance().find("test.histogram");
    ASSERT_TRUE(found.has_value());
    const obs::Sample& s = *found;
    ASSERT_FALSE(s.buckets.empty());
    EXPECT_EQ(s.buckets.front().first, 0u);
    EXPECT_EQ(s.buckets.front().second, 1u);
    EXPECT_EQ(s.buckets.back().first, 2047u);
    EXPECT_EQ(s.buckets.back().second, 7u);
    for (std::size_t i = 1; i < s.buckets.size(); ++i) {
        EXPECT_LT(s.buckets[i - 1].first, s.buckets[i].first);
        EXPECT_LE(s.buckets[i - 1].second, s.buckets[i].second);
    }
}

TEST_F(ObsTest, TimerMaxMergesAcrossShards) {
    // distinct threads land in distinct shards; the reported max must be
    // the global maximum, and count/total the exact sums
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([t] {
            t_timer.record(100 * (t + 1));
            t_timer.record(10);
        });
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(t_timer.count(), 16u);
    EXPECT_EQ(t_timer.total_ns(), 100u * 36u + 8u * 10u);
    EXPECT_EQ(t_timer.max_ns(), 800u);
}

TEST_F(ObsTest, TraceCapturesNestedSpansWithPhasePaths) {
    obs::set_trace_enabled(true);
    obs::trace_reset();
    {
        obs::Phase outer("touter");
        {
            obs::Phase inner("tinner");
            obs::SpanTimer span(t_timer); // traces under the enclosing phases
            span.stop();
        }
    }
    obs::set_trace_enabled(false);

    const std::vector<obs::TraceEvent> events = obs::trace_events();
    ASSERT_EQ(events.size(), 3u);
    // children complete before parents: span, inner, outer
    EXPECT_EQ(events[0].path, "touter/tinner/test.timer");
    EXPECT_STREQ(events[0].cat, "span");
    EXPECT_EQ(events[1].path, "touter/tinner");
    EXPECT_STREQ(events[1].cat, "phase");
    EXPECT_EQ(events[2].path, "touter");
    // a nested span starts no earlier and ends no later than its parent
    EXPECT_GE(events[1].start_ns, events[2].start_ns);
    EXPECT_LE(events[1].start_ns + events[1].dur_ns,
              events[2].start_ns + events[2].dur_ns);
    obs::trace_reset();
}

TEST_F(ObsTest, TraceWorksWithMetricsDisabled) {
    obs::set_enabled(false); // tracing is independent of the metrics switch
    obs::set_trace_enabled(true);
    obs::trace_reset();
    { obs::Phase only("tsolo"); }
    obs::set_trace_enabled(false);
    ASSERT_EQ(obs::trace_events().size(), 1u);
    EXPECT_EQ(obs::trace_events()[0].path, "tsolo");
    obs::trace_reset();
    obs::set_enabled(true); // fixture TearDown expects it on
}

TEST_F(ObsTest, TraceJsonIsAQueryableRecordArray) {
    obs::set_trace_enabled(true);
    obs::trace_reset();
    {
        obs::Phase outer("qouter");
        { obs::Phase inner("qinner"); }
    }
    obs::set_trace_enabled(false);

    std::ostringstream os;
    obs::write_trace_json(os);
    // well-formed trace_event JSON: parseable as a flat record array with
    // ph/name/ts/dur on every event, nesting recorded in "path"
    const std::vector<RecordMap> events = read_json_records(os.str());
    ASSERT_EQ(events.size(), 2u);
    for (const RecordMap& ev : events) {
        EXPECT_EQ(ev.get("ph").to_string(), "X");
        EXPECT_EQ(ev.get("cat").to_string(), "phase");
        EXPECT_FALSE(ev.get("name").to_string().empty());
        EXPECT_GE(ev.get("ts").to_double(), 0.0);
        EXPECT_GE(ev.get("dur").to_double(), 0.0);
    }
    EXPECT_EQ(events[0].get("name").to_string(), "qinner");
    EXPECT_EQ(events[0].get("path").to_string(), "qouter/qinner");
    EXPECT_EQ(events[1].get("path").to_string(), "qouter");
    obs::trace_reset();
}
