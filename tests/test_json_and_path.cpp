// Tests for the JSON record reader and the call-path export service.
#include "calib.hpp"
#include "io/jsonreader.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include <sstream>

using namespace calib;
using calib::test::find_record;

// --- JSON reader --------------------------------------------------------------

TEST(JsonReader, ParsesFlatObjects) {
    auto records = read_json_records(
        R"([{"kernel": "advec", "count": 3, "t": 1.5, "on": true}])");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].get("kernel"), Variant("advec"));
    EXPECT_EQ(records[0].get("count"), Variant(3LL));
    EXPECT_DOUBLE_EQ(records[0].get("t").as_double(), 1.5);
    EXPECT_TRUE(records[0].get("on").as_bool());
}

TEST(JsonReader, EmptyArrayAndObjects) {
    EXPECT_TRUE(read_json_records("[]").empty());
    EXPECT_TRUE(read_json_records(" [ ] ").empty());
    auto records = read_json_records("[{}, {}]");
    EXPECT_EQ(records.size(), 2u);
}

TEST(JsonReader, NullValuesAreDropped) {
    auto records = read_json_records(R"([{"a": null, "b": 1}])");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_FALSE(records[0].contains("a"));
    EXPECT_TRUE(records[0].contains("b"));
}

TEST(JsonReader, StringEscapes) {
    auto records = read_json_records(R"([{"s": "a\"b\\c\ndA"}])");
    EXPECT_EQ(records[0].get("s").as_string(), "a\"b\\c\ndA");
}

TEST(JsonReader, NegativeAndExponentNumbers) {
    auto records = read_json_records(R"([{"i": -42, "d": 2.5e3}])");
    EXPECT_EQ(records[0].get("i").as_int(), -42);
    EXPECT_DOUBLE_EQ(records[0].get("d").as_double(), 2500.0);
}

TEST(JsonReader, MalformedInputsThrow) {
    for (const char* bad :
         {"", "{", "[{\"a\" 1}]", "[{\"a\": }]", "[{\"a\": 1},]x",
          "[{\"a\": \"unterminated}]", "[1, 2]extra"}) {
        EXPECT_THROW(read_json_records(bad), std::runtime_error) << bad;
    }
}

TEST(JsonReader, RoundTripsWithJsonFormatter) {
    std::vector<RecordMap> in;
    RecordMap r1;
    r1.append("kernel", Variant("k,with\"specials"));
    r1.append("count", Variant(7LL));
    in.push_back(r1);
    RecordMap r2;
    r2.append("t", Variant(0.125));
    in.push_back(r2);

    std::ostringstream os;
    QuerySpec spec;
    spec.format = "json";
    format_records(os, in, spec);

    auto out = read_json_records(os.str());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].get("kernel"), Variant("k,with\"specials"));
    EXPECT_EQ(out[0].get("count").to_int(), 7);
    EXPECT_DOUBLE_EQ(out[1].get("t").as_double(), 0.125);
}

// --- path service ----------------------------------------------------------------

namespace {

std::vector<RecordMap> flush_records(Channel* channel) {
    std::vector<RecordMap> out;
    Caliper::instance().flush_thread(
        channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

} // namespace

TEST(PathService, ExportsNestingStackAsPath) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "path-test", RuntimeConfig{{"services.enable", "path,event,aggregate"},
                                   {"path.attributes", "pt.fn"},
                                   {"aggregate.key", "pt.fn.path"},
                                   {"aggregate.ops", "count"}});
    Annotation fn("pt.fn");
    fn.begin(Variant("main"));
    fn.begin(Variant("solve"));
    fn.begin(Variant("kernel"));
    fn.end();
    fn.end();
    fn.end();

    auto out = flush_records(channel);
    c.close_channel(channel);

    EXPECT_FALSE(
        find_record(out, "pt.fn.path", Variant("main/solve/kernel")).empty());
    EXPECT_FALSE(find_record(out, "pt.fn.path", Variant("main/solve")).empty());
    EXPECT_FALSE(find_record(out, "pt.fn.path", Variant("main")).empty());
}

TEST(PathService, CallPathProfileCounts) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "path-prof", RuntimeConfig{{"services.enable", "path,event,aggregate"},
                                   {"path.attributes", "pp.fn"},
                                   {"aggregate.key", "pp.fn.path"},
                                   {"aggregate.ops", "count"}});
    Annotation fn("pp.fn");
    fn.begin(Variant("main"));
    for (int i = 0; i < 3; ++i) {
        fn.begin(Variant("leaf"));
        fn.end();
    }
    fn.end();

    auto out = flush_records(channel);
    c.close_channel(channel);

    // each leaf call: begin event sees "main", end event sees "main/leaf"
    const RecordMap leaf = find_record(out, "pp.fn.path", Variant("main/leaf"));
    EXPECT_EQ(leaf.get("count").to_uint(), 3u);
}

TEST(PathService, MultipleSourceAttributes) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "path-multi", RuntimeConfig{{"services.enable", "path,event,trace"},
                                    {"path.attributes", "pm.a,pm.b"}});
    Annotation a("pm.a"), b("pm.b");
    a.begin(Variant("x"));
    b.begin(Variant(1));
    b.begin(Variant(2));
    b.end();
    b.end();
    a.end();

    auto out = flush_records(channel);
    c.close_channel(channel);

    bool found = false;
    for (const RecordMap& r : out)
        if (r.get("pm.a.path") == Variant("x") && r.get("pm.b.path") == Variant("1/2"))
            found = true;
    EXPECT_TRUE(found);
}

TEST(PathService, TreeFormatRendersCallPaths) {
    // end-to-end: call-path profile rendered with FORMAT tree
    std::vector<RecordMap> profile;
    for (const char* path : {"main", "main/a", "main/a/b", "main/c"}) {
        RecordMap r;
        r.append("fn.path", Variant(path));
        r.append("count", Variant(1ull));
        profile.push_back(r);
    }
    std::ostringstream os;
    run_query("SELECT fn.path,count FORMAT tree", profile, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\nmain"), std::string::npos);
    EXPECT_NE(text.find("\n  a"), std::string::npos);
    EXPECT_NE(text.find("\n    b"), std::string::npos);
}

TEST(JsonReader, LargeUnsignedIntegersStayExact) {
    // integers in (INT64_MAX, UINT64_MAX] must not round through double
    auto records = read_json_records(
        "[{\"a\": 18446744073709551615, \"b\": 9223372036854775808, "
        "\"c\": -9223372036854775808}]");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].get("a").type(), Variant::Type::UInt);
    EXPECT_EQ(records[0].get("a").as_uint(), 18446744073709551615ull);
    EXPECT_EQ(records[0].get("b").type(), Variant::Type::UInt);
    EXPECT_EQ(records[0].get("b").as_uint(), 9223372036854775808ull);
    EXPECT_EQ(records[0].get("c").as_int(), INT64_MIN);
}
