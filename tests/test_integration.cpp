// End-to-end integration tests across the whole stack:
// instrumented app -> online aggregation / tracing -> .cali files ->
// offline queries -> cross-process aggregation.
//
// Verifies the paper's central equivalence (§VI-F): online and offline
// aggregation paths yield the same results, and the work can be shifted
// between stages freely.
#include "apps/cleverleaf/driver.hpp"
#include "calib.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/treereduce.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>

using namespace calib;
using calib::test::find_record;

namespace {

clever::CleverConfig small_config() {
    clever::CleverConfig config;
    config.nx    = 64;
    config.ny    = 32;
    config.steps = 6;
    return config;
}

/// Run the mini-app on `nprocs` ranks with the given profile; the recorder
/// writes one file per rank into `dir`.
std::vector<std::string> run_app(const test::TempDir& dir, const std::string& name,
                                 const std::string& services,
                                 const std::string& extra_config, int nprocs) {
    Caliper& c = Caliper::instance();
    RuntimeConfig cfg = RuntimeConfig::from_string(
        "services.enable=" + services + "\n" +
        "recorder.filename=" + name + "-%r.cali\n" +
        "recorder.directory=" + dir.str() + "\n" + extra_config);
    Channel* channel = c.create_channel(name, cfg);

    const clever::CleverConfig app = small_config();
    simmpi::run(nprocs, [&](simmpi::Comm& comm) {
        clever::run_rank(comm, app);
        c.flush_thread(channel);
    });
    c.close_channel(channel);

    std::vector<std::string> paths;
    for (int r = 0; r < nprocs; ++r)
        paths.push_back(dir.file(name + "-" + std::to_string(r) + ".cali"));
    for (const std::string& p : paths)
        EXPECT_TRUE(std::filesystem::exists(p)) << p;
    return paths;
}

std::vector<RecordMap> query_files(const std::string& query,
                                   const std::vector<std::string>& files) {
    QueryProcessor proc(parse_calql(query));
    for (const std::string& f : files)
        CaliReader::read_file(f, [&proc](RecordMap&& r) { proc.add(r); });
    return proc.result();
}

} // namespace

TEST(Integration, ProfileRunProducesPerRankFiles) {
    test::TempDir dir("int-profile");
    auto files = run_app(dir, "prof", "event,timer,aggregate,recorder",
                         "aggregate.key=*\n", 2);
    for (const std::string& f : files) {
        auto records = CaliReader::read_file(f);
        EXPECT_GT(records.size(), 10u);
    }
}

TEST(Integration, OnlineAggregationEqualsOfflineTraceAggregation) {
    // the same run instrumented twice would be nondeterministic in timing;
    // instead run ONE configuration with trace+recorder, then compare the
    // offline aggregation of the trace against online aggregation of a
    // second channel fed by the same events in the same process run.
    test::TempDir dir("int-equiv");
    Caliper& c = Caliper::instance();

    Channel* online = c.create_channel(
        "equiv-online", RuntimeConfig{{"services.enable", "event,aggregate"},
                                      {"aggregate.key", "kernel,mpi.rank"},
                                      {"aggregate.ops", "count"}});
    Channel* tracing = c.create_channel(
        "equiv-trace", RuntimeConfig{{"services.enable", "event,trace,recorder"},
                                     {"recorder.filename", "trace-%r.cali"},
                                     {"recorder.directory", dir.str()}});

    const clever::CleverConfig app = small_config();
    std::mutex m;
    std::vector<RecordMap> online_records;
    simmpi::run(2, [&](simmpi::Comm& comm) {
        clever::run_rank(comm, app);
        c.flush_thread(tracing); // write the trace file
        std::vector<RecordMap> mine;
        c.flush_thread(online,
                       [&mine](RecordMap&& r) { mine.push_back(std::move(r)); });
        std::lock_guard<std::mutex> lock(m);
        for (RecordMap& r : mine)
            online_records.push_back(std::move(r));
    });
    c.close_channel(online);
    c.close_channel(tracing);

    // offline: aggregate the traces with the same scheme
    auto offline = query_files("AGGREGATE count GROUP BY kernel,mpi.rank",
                               {dir.file("trace-0.cali"), dir.file("trace-1.cali")});

    // compare per-(kernel, rank) counts
    for (const RecordMap& off : offline) {
        if (!off.contains("kernel"))
            continue;
        double online_count = 0;
        for (const RecordMap& on : online_records)
            if (on.get("kernel") == off.get("kernel") &&
                on.get("mpi.rank") == off.get("mpi.rank"))
                online_count += on.get("count").to_double();
        EXPECT_EQ(online_count, off.get("count").to_double())
            << "kernel " << off.get("kernel").to_string() << " rank "
            << off.get("mpi.rank").to_string();
    }
}

TEST(Integration, TwoStageAggregationMatchesParallelQuery) {
    test::TempDir dir("int-2stage");
    auto files = run_app(dir, "stage", "event,timer,aggregate,recorder",
                         "aggregate.key=*\n", 2);

    const std::string query =
        "AGGREGATE sum(count),sum(time.duration) GROUP BY kernel";
    auto serial = query_files(query, files);

    std::vector<RecordMap> parallel;
    simmpi::parallel_query(parse_calql(query), files, 2, &parallel);

    ASSERT_EQ(serial.size(), parallel.size());
    for (const RecordMap& r : serial) {
        RecordMap match = find_record(parallel, "kernel", r.get("kernel"));
        EXPECT_EQ(match.get("sum#count"), r.get("sum#count"));
        EXPECT_NEAR(match.get("sum#time.duration").to_double(),
                    r.get("sum#time.duration").to_double(), 1e-6);
    }
}

TEST(Integration, AmrLevelAnalysisExcludingMpi) {
    // the paper's §VI-E analysis: time per AMR level, excluding MPI time
    test::TempDir dir("int-amr");
    auto files = run_app(dir, "amr", "event,timer,aggregate,recorder",
                         "aggregate.key=*\n", 2);

    auto per_level = query_files("AGGREGATE sum(time.duration) "
                                 "WHERE not(mpi.function) GROUP BY amr.level "
                                 "ORDER BY amr.level",
                                 files);
    // levels 0..2 all have nonzero computation time
    int levels_seen = 0;
    for (const RecordMap& r : per_level) {
        if (!r.contains("amr.level"))
            continue;
        ++levels_seen;
        EXPECT_GT(r.get("sum#time.duration").to_double(), 0.0);
    }
    EXPECT_EQ(levels_seen, 3);

    // and the MPI exclusion matters: total with MPI >= total without
    auto with_mpi = query_files(
        "AGGREGATE sum(time.duration) GROUP BY amr.level ORDER BY amr.level", files);
    double t_without = 0, t_with = 0;
    for (const RecordMap& r : per_level)
        t_without += r.get("sum#time.duration").to_double();
    for (const RecordMap& r : with_mpi)
        t_with += r.get("sum#time.duration").to_double();
    EXPECT_GE(t_with, t_without);
}

TEST(Integration, LoadBalanceQueryHasPerRankRows) {
    test::TempDir dir("int-lb");
    auto files = run_app(dir, "lb", "event,timer,aggregate,recorder",
                         "aggregate.key=*\n", 3);
    auto rows = query_files(
        "AGGREGATE sum(time.duration) GROUP BY kernel,mpi.rank", files);
    // every rank contributes rows for the main kernels
    for (int rank = 0; rank < 3; ++rank) {
        bool found = false;
        for (const RecordMap& r : rows)
            if (r.get("mpi.rank") == Variant(rank) &&
                r.get("kernel") == Variant("advec-cell"))
                found = true;
        EXPECT_TRUE(found) << "rank " << rank;
    }
}

TEST(Integration, SchemeChoiceTradesRecordsForDetail) {
    // Table I's core relationship: |scheme B| <= |scheme A| << |scheme C|
    test::TempDir dir("int-schemes");
    Caliper& c = Caliper::instance();

    Channel* scheme_a = c.create_channel(
        "tri-a", RuntimeConfig{{"services.enable", "event,timer,aggregate"},
                               {"aggregate.key",
                                "function,annotation,kernel,amr.level,"
                                "mpi.rank,mpi.function"}});
    Channel* scheme_b = c.create_channel(
        "tri-b", RuntimeConfig{{"services.enable", "event,timer,aggregate"},
                               {"aggregate.key", "kernel,mpi.function"}});
    Channel* scheme_c = c.create_channel(
        "tri-c", RuntimeConfig{{"services.enable", "event,timer,aggregate"},
                               {"aggregate.key", "*"}});

    const clever::CleverConfig app = small_config();
    std::mutex m;
    std::size_t na = 0, nb = 0, nc = 0;
    simmpi::run(2, [&](simmpi::Comm& comm) {
        clever::run_rank(comm, app);
        std::size_t a = 0, b = 0, ccount = 0;
        c.flush_thread(scheme_a, [&a](RecordMap&&) { ++a; });
        c.flush_thread(scheme_b, [&b](RecordMap&&) { ++b; });
        c.flush_thread(scheme_c, [&ccount](RecordMap&&) { ++ccount; });
        std::lock_guard<std::mutex> lock(m);
        na += a;
        nb += b;
        nc += ccount;
    });
    c.close_channel(scheme_a);
    c.close_channel(scheme_b);
    c.close_channel(scheme_c);

    EXPECT_LE(nb, na);
    EXPECT_LT(na, nc) << "per-iteration keys (scheme C) produce far more records";
    EXPECT_GT(nc, 4 * na) << "iteration dimension multiplies the record count";
}
