#!/usr/bin/env bash
# End-to-end CLI pipeline test: run the instrumented mini-app, query the
# per-rank output files with the serial and the parallel query tool, and
# check the results are consistent.
#
# usage: cli_pipeline.sh <clever-run> <cali-query> <mpi-caliquery> <paradis-gen>
#                        <cali-stat> <calib-proxyd> <calib-push> <calib-benchdiff>
set -euo pipefail

CLEVER_RUN=$1
CALI_QUERY=$2
MPI_CALIQUERY=$3
PARADIS_GEN=$4
CALI_STAT=$5
CALIB_PROXYD=$6
CALIB_PUSH=$7
CALIB_BENCHDIFF=$8

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

echo "== clever-run: profile run, 2 ranks =="
"$CLEVER_RUN" -n 2 --steps 6 --nx 64 --ny 32 \
    -P "services.enable=event,timer,aggregate,recorder
aggregate.key=*
recorder.filename=clever-%r.cali"

test -s clever-0.cali || { echo "missing clever-0.cali"; exit 1; }
test -s clever-1.cali || { echo "missing clever-1.cali"; exit 1; }

echo "== cali-query: kernel profile =="
"$CALI_QUERY" -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
                  ORDER BY kernel FORMAT csv" clever-*.cali > serial.csv
grep -q "advec-cell" serial.csv
grep -q "calc-dt" serial.csv

echo "== mpi-caliquery: same query through the tree reduction =="
"$MPI_CALIQUERY" -n 2 -q "AGGREGATE sum(count),sum(sum#time.duration)
                          GROUP BY kernel ORDER BY kernel FORMAT csv" \
    clever-*.cali > parallel.csv

diff serial.csv parallel.csv || { echo "serial and parallel results differ"; exit 1; }

echo "== cali-query: -t 4 output is byte-identical to -t 1 =="
"$CALI_QUERY" -t 1 -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
                       ORDER BY kernel FORMAT csv" clever-*.cali > t1.csv
"$CALI_QUERY" -t 4 -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
                       ORDER BY kernel FORMAT csv" clever-*.cali > t4.csv
diff t1.csv t4.csv || { echo "-t 1 and -t 4 results differ"; exit 1; }
diff serial.csv t4.csv || { echo "default and -t 4 results differ"; exit 1; }

echo "== --merge-strategy: every strategy byte-identical at t1 and t4 =="
for strat in pairwise tree radix adaptive; do
    "$CALI_QUERY" -t 1 --merge-strategy "$strat" \
        -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
            ORDER BY kernel FORMAT csv" clever-*.cali > "ms_t1.csv"
    "$CALI_QUERY" -t 4 --merge-strategy "$strat" \
        -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
            ORDER BY kernel FORMAT csv" clever-*.cali > "ms_t4.csv"
    diff ms_t1.csv ms_t4.csv || {
        echo "--merge-strategy $strat: t1 and t4 differ"; exit 1; }
    diff t1.csv ms_t1.csv || {
        echo "--merge-strategy $strat differs from the default engine"; exit 1; }
done
CALIB_MERGE_STRATEGY=tree "$CALI_QUERY" -t 4 \
    -q "AGGREGATE sum(count),sum(sum#time.duration) GROUP BY kernel
        ORDER BY kernel FORMAT csv" clever-*.cali > ms_env.csv
diff t1.csv ms_env.csv || { echo "CALIB_MERGE_STRATEGY changed output"; exit 1; }
"$CALI_QUERY" --merge-strategy bogus -q "FORMAT csv" clever-0.cali 2>/dev/null && {
    echo "bogus --merge-strategy must fail"; exit 1; }

echo "== --merge-strategy: the engine.merge_strategy gauge reports the code =="
for pair in pairwise:1 tree:2 radix:3; do
    strat=${pair%:*}; code=${pair#*:}
    "$CALI_QUERY" -t 4 --merge-strategy "$strat" --stats-json "ms_$strat.json" \
        -q "AGGREGATE sum(count) GROUP BY kernel FORMAT csv" clever-*.cali \
        > /dev/null
    grep -q "\"name\": \"engine.merge_strategy\", \"value\": $code" \
        "ms_$strat.json" || {
        echo "engine.merge_strategy gauge: expected code $code for $strat"
        exit 1; }
done
grep -q "\"name\": \"engine.merge_partitions\", \"value\": 16" ms_radix.json || {
    echo "engine.merge_partitions gauge missing for radix"; exit 1; }

echo "== WINDOW: byte-identical across threads, strategies, batch sizes =="
# a trace-mode run (no aggregation) carries time.offset on every record
"$CLEVER_RUN" -n 1 --steps 4 --nx 32 --ny 16 \
    -P "services.enable=event,timer,trace,recorder
timer.offset=true
recorder.filename=wtrace-%r.cali"
test -s wtrace-0.cali || { echo "missing wtrace-0.cali"; exit 1; }
win_q="AGGREGATE count,sum(time.duration) GROUP BY kernel
       WINDOW 10ms SLIDE 2ms ORDER BY kernel FORMAT csv"
"$CALI_QUERY" -t 1 -q "$win_q" wtrace-0.cali > win_ref.csv
rows=$(tail -n +2 win_ref.csv | grep -c .)
test "$rows" -ge 1 || { echo "windowed query returned no rows"; exit 1; }
for threads in 1 2 4; do
    for strat in pairwise tree radix adaptive; do
        "$CALI_QUERY" -t "$threads" --merge-strategy "$strat" -q "$win_q" \
            wtrace-0.cali > win_run.csv
        diff win_ref.csv win_run.csv || {
            echo "WINDOW: -t $threads --merge-strategy $strat differs"; exit 1; }
    done
done
for bs in 1 7 4096; do
    "$CALI_QUERY" -t 4 --batch-size "$bs" -q "$win_q" wtrace-0.cali > win_run.csv
    diff win_ref.csv win_run.csv || {
        echo "WINDOW: --batch-size $bs differs"; exit 1; }
done
"$CALI_QUERY" -t 4 --no-batch -q "$win_q" wtrace-0.cali > win_run.csv
diff win_ref.csv win_run.csv || { echo "WINDOW: --no-batch differs"; exit 1; }
# a window wider than the whole trace keeps every timed record: the result
# must equal the plain (window-free) aggregation over the same file
"$CALI_QUERY" -q "AGGREGATE count GROUP BY kernel WINDOW 1h
                  ORDER BY kernel FORMAT csv" wtrace-0.cali > win_wide.csv
"$CALI_QUERY" -q "AGGREGATE count GROUP BY kernel
                  ORDER BY kernel FORMAT csv" wtrace-0.cali > win_plain.csv
diff win_wide.csv win_plain.csv || {
    echo "wide WINDOW differs from the plain aggregation"; exit 1; }
# malformed window clauses are parse errors, not silent acceptance
for bad in "WINDOW 10s SLIDE 20s" "WINDOW 0" "WINDOW 5s WINDOW 2s" \
           "SLIDE 1s" "WINDOW 5s SLIDE 0"; do
    if "$CALI_QUERY" -q "AGGREGATE count $bad" wtrace-0.cali 2>/dev/null; then
        echo "'$bad' must be rejected"; exit 1
    fi
done

echo "== cali-query: WHERE/LET clauses on the same data =="
"$CALI_QUERY" -q "LET t=scale(sum#time.duration,0.001)
                  AGGREGATE sum(t) AS ms WHERE not(mpi.function)
                  GROUP BY amr.level ORDER BY amr.level" clever-*.cali > amr.txt
lines=$(grep -c . amr.txt)
test "$lines" -ge 4 || { echo "expected >=4 lines (header + 3 levels), got $lines"; exit 1; }

echo "== cali-stat: attribute inventory =="
"$CALI_STAT" -g clever-*.cali > stat.txt
grep -q "kernel" stat.txt
grep -q "amr.level" stat.txt
grep -q "cali.channel" stat.txt

echo "== FORMAT json -> --json-input round trip =="
"$CALI_QUERY" -q "AGGREGATE sum(count) GROUP BY kernel FORMAT json" \
    clever-*.cali > kernels.json
"$CALI_QUERY" --json-input \
    -q "AGGREGATE sum(sum#count) GROUP BY kernel ORDER BY kernel FORMAT csv" \
    kernels.json > fromjson.csv
grep -q "advec-cell" fromjson.csv

echo "== --with-globals joins per-file metadata onto records =="
"$CALI_QUERY" --with-globals \
    -q "AGGREGATE count GROUP BY cali.thread ORDER BY cali.thread FORMAT csv" \
    clever-*.cali > globals.csv
# two ranks -> two groups keyed by the per-file 'cali.thread' global
groups=$(tail -n +2 globals.csv | grep -c .)
test "$groups" -eq 2 || { echo "expected 2 global-keyed groups, got $groups"; exit 1; }

echo "== paradis-gen + 85-record evaluation query =="
"$PARADIS_GEN" -n 4 -o pd >/dev/null
out=$("$MPI_CALIQUERY" -n 2 -q "AGGREGATE sum(time.inclusive.duration)
                                GROUP BY kernel,mpi.function FORMAT csv" pd/*.cali \
      | tail -n +2 | grep -c .)
test "$out" -eq 85 || { echo "expected 85 output records, got $out"; exit 1; }

echo "== --stats: self-profile goes to stderr, stdout stays identical =="
"$CALI_QUERY" --stats -q "AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel
                          FORMAT csv" clever-*.cali > stats_out.csv 2> stats_err.txt
"$CALI_QUERY" -q "AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel
                  FORMAT csv" clever-*.cali > plain_out.csv
diff plain_out.csv stats_out.csv || { echo "--stats contaminated stdout"; exit 1; }
grep -q "reader.records" stats_err.txt
grep -q "aggdb.lookups" stats_err.txt
grep -q "filter.checked" stats_err.txt
grep -q "read" stats_err.txt

echo "== --stats-json round-trips through --json-input =="
"$CALI_QUERY" --stats-json self.json -q "AGGREGATE sum(count) GROUP BY kernel
                                         FORMAT csv" clever-*.cali > /dev/null
test -s self.json || { echo "missing self.json"; exit 1; }
"$CALI_QUERY" --json-input \
    -q "SELECT name,value WHERE kind=counter ORDER BY name FORMAT csv" \
    self.json > selfq.csv
grep -q "reader.records" selfq.csv

echo "== mpi-caliquery --stats =="
"$MPI_CALIQUERY" -n 2 --stats -q "AGGREGATE sum(count) GROUP BY kernel
                                  ORDER BY kernel FORMAT csv" clever-*.cali \
    > mpistats_out.csv 2> mpistats_err.txt
diff plain_out.csv mpistats_out.csv || { echo "mpi --stats contaminated stdout"; exit 1; }
grep -q "reader.records" mpistats_err.txt

echo "== mpi-caliquery --stats-json parity with cali-query =="
"$MPI_CALIQUERY" -n 2 --stats-json mpiself.json \
    -q "AGGREGATE sum(count) GROUP BY kernel FORMAT csv" clever-*.cali \
    > /dev/null
test -s mpiself.json || { echo "missing mpiself.json"; exit 1; }
# both self-profiles expose the same record kinds and parse as records
for f in self.json mpiself.json; do
    "$CALI_QUERY" --json-input \
        -q "SELECT name,value WHERE kind=counter ORDER BY name FORMAT csv" \
        "$f" | grep -q "reader.records" || {
        echo "$f: missing reader.records counter"; exit 1; }
    "$CALI_QUERY" --json-input -q "AGGREGATE count WHERE kind=meta FORMAT csv" \
        "$f" | tail -1 | grep -qx "1" || {
        echo "$f: expected exactly one meta record"; exit 1; }
done

echo "== --trace-json: Chrome trace_event timeline, queryable =="
"$CALI_QUERY" --trace-json trace.json \
    -q "AGGREGATE sum(count) GROUP BY kernel FORMAT csv" clever-*.cali \
    > /dev/null
test -s trace.json || { echo "missing trace.json"; exit 1; }
# every event is a complete ("X") span with name/ts/dur; the phase paths
# in the timeline match the --stats phase tree (parse/process/format)
"$CALI_QUERY" --json-input \
    -q "SELECT path,cat WHERE ph=X GROUP BY path,cat AGGREGATE count
        ORDER BY path FORMAT csv" trace.json > tracephases.csv
grep -q "^parse,phase" tracephases.csv
grep -q "^process,phase" tracephases.csv
grep -q "^format,phase" tracephases.csv
grep -q ",span" tracephases.csv   # stage timers show up as span events
events=$("$CALI_QUERY" --json-input -q "AGGREGATE count FORMAT csv" trace.json | tail -1)
durs=$("$CALI_QUERY" --json-input -q "AGGREGATE count WHERE dur FORMAT csv" trace.json | tail -1)
test "$events" = "$durs" || { echo "trace events missing dur fields"; exit 1; }

echo "== calib-benchdiff: append -> CalQL round-trip -> gate =="
# seed five quiet runs from the real self-profiles, then inject a 1000x
# slowdown into a sixth and require the gate to flag it. Wall-clock
# metrics jitter from run to run, so the gate is pinned to the one
# deterministic counter via the override file (which also exercises
# glob patterns, direction=, and skip).
cat > bd_overrides.txt <<'EOF'
# pin the CI gate to the deterministic record counter
ci/reader.records direction=lower
ci/*_s     skip   # wall-clock timings jitter between runs
ci/*.mean  skip   # histogram stats are timing-derived too
ci/*.p99   skip
EOF
for i in 1 2 3 4 5; do
    CALIB_GIT_SHA="commit$i" "$CALI_QUERY" --stats-json "run$i.json" \
        -q "AGGREGATE sum(count) GROUP BY kernel FORMAT csv" clever-*.cali \
        > /dev/null
    CALIB_GIT_SHA="commit$i" "$CALIB_BENCHDIFF" append hist.cali \
        --bench ci "run$i.json" 2>> bd.log
done
# the history is an ordinary calib stream: plain cali-query reads it
"$CALI_QUERY" hist.cali \
    -q "AGGREGATE count GROUP BY bd.commit ORDER BY bd.commit FORMAT csv" \
    > hist.csv
grep -q "^commit1," hist.csv
grep -q "^commit5," hist.csv
"$CALIB_BENCHDIFF" list hist.cali | grep -q "reader.records"
# quiet history: the gate passes
"$CALIB_BENCHDIFF" check hist.cali --overrides bd_overrides.txt > check_ok.txt
grep -q ": 0 regression(s)" check_ok.txt
# inject the regression: scale the record counter 1000x in a copied
# profile (--commit overrides the copy's embedded commit5 meta stamp)
sed 's/"name": "reader.records", "value": \([0-9]*\)/"name": "reader.records", "value": \1000/' \
    run5.json > run6.json
"$CALIB_BENCHDIFF" append hist.cali --commit commitbad \
    --bench ci run6.json 2>> bd.log
if "$CALIB_BENCHDIFF" check hist.cali --overrides bd_overrides.txt \
        --json verdict.json > check_bad.txt; then
    echo "gate must fail on the injected regression"; cat check_bad.txt; exit 1
fi
grep -q "regression" check_bad.txt
grep -q "ci/reader.records" check_bad.txt
grep -q "commit commitbad" check_bad.txt   # --commit won over the file stamp
# the JSON verdict names the metric and is itself queryable
"$CALI_QUERY" --json-input \
    -q "SELECT metric WHERE status=regression FORMAT csv" verdict.json \
    | grep -q "reader.records"
# --soft reports but exits 0 (PR builds)
"$CALIB_BENCHDIFF" check hist.cali --overrides bd_overrides.txt --soft \
    > /dev/null || { echo "--soft must exit 0"; exit 1; }

echo "== CALIB_METRICS=1: runtime self-profile at channel flush =="
CALIB_METRICS=1 "$CLEVER_RUN" -n 1 --steps 2 --nx 16 --ny 16 \
    -P "services.enable=event,timer,aggregate,recorder
aggregate.key=*
recorder.filename=metrics-%r.cali" 2> runtime_err.txt
grep -q "self-profile" runtime_err.txt
grep -q "runtime.updates" runtime_err.txt

echo "== stdin input: '-' reads the stream from a pipe =="
"$CALI_QUERY" -q "AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel
                  FORMAT csv" clever-0.cali > file_in.csv
"$CALI_QUERY" -q "AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel
                  FORMAT csv" - < clever-0.cali > stdin_in.csv
diff file_in.csv stdin_in.csv || { echo "stdin and file input differ"; exit 1; }
cat clever-0.cali | "$CALI_STAT" - | grep -q "kernel"

echo "== --no-mmap / CALIB_NO_MMAP: fallback buffer path is identical =="
"$CALI_QUERY" --no-mmap -t 4 -q "AGGREGATE sum(count),sum(sum#time.duration)
                  GROUP BY kernel ORDER BY kernel FORMAT csv" clever-*.cali \
    > nommap.csv
diff t4.csv nommap.csv || { echo "--no-mmap results differ"; exit 1; }
CALIB_NO_MMAP=1 "$CALI_QUERY" -t 4 -q "AGGREGATE sum(count),sum(sum#time.duration)
                  GROUP BY kernel ORDER BY kernel FORMAT csv" clever-*.cali \
    > nommap_env.csv
diff t4.csv nommap_env.csv || { echo "CALIB_NO_MMAP results differ"; exit 1; }

echo "== --stats: per-worker reader.bytes sums to ~file size =="
filebytes=$(wc -c < pd/paradis-0.cali)
"$CALI_QUERY" --stats -t 4 -q "AGGREGATE sum(count) GROUP BY kernel FORMAT csv" \
    pd/paradis-0.cali > /dev/null 2> bytes_err.txt
readbytes=$(awk '/reader.bytes/ {print $2}' bytes_err.txt)
# a single file scanned by N workers must not count N x file size
test "$readbytes" -le "$((filebytes + 1024))" || {
    echo "reader.bytes $readbytes exceeds file size $filebytes"; exit 1; }
test "$readbytes" -ge "$((filebytes - 1024))" || {
    echo "reader.bytes $readbytes below file size $filebytes"; exit 1; }

echo "== calib-proxyd: daemon ingest, live query, scrape, graceful stop =="
"$CALIB_PROXYD" -l "$workdir/proxyd.sock" --http 127.0.0.1:0 \
    -o "daemon-%c.cali" 2> proxyd.log &
proxyd_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" proxyd.log && break
    sleep 0.1
done
grep -q "listening on" proxyd.log || {
    echo "daemon failed to start"; cat proxyd.log; exit 1; }

# 4 concurrent pushers into one shared channel; calib-push exits only
# after its records are folded, so the queries below cannot race
push_pids=()
for f in clever-0.cali clever-1.cali clever-0.cali clever-1.cali; do
    "$CALIB_PUSH" -c "$workdir/proxyd.sock" --channel clever "$f" \
        2>> push.log &
    push_pids+=($!)
done
for pid in "${push_pids[@]}"; do
    wait "$pid" || { echo "calib-push failed"; cat push.log; exit 1; }
done

# live answers must be byte-identical to offline cali-query over the
# same concatenated inputs (integer sums: order-insensitive)
daemon_q="AGGREGATE sum(count) GROUP BY kernel ORDER BY kernel FORMAT csv"
"$CALI_QUERY" -c "$workdir/proxyd.sock" --channel clever -q "$daemon_q" \
    > live.csv
"$CALI_QUERY" -q "$daemon_q" clever-0.cali clever-1.cali clever-0.cali \
    clever-1.cali > offline.csv
diff live.csv offline.csv || { echo "live and offline results differ"; exit 1; }

# Prometheus scrape over plain HTTP (bash /dev/tcp; no curl dependency)
http_addr=$(sed -n 's/.*http \([0-9.]*:[0-9]*\).*/\1/p' proxyd.log)
http_host=${http_addr%:*}
http_port=${http_addr##*:}
exec 3<>"/dev/tcp/$http_host/$http_port"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > scrape.txt
exec 3<&- 3>&-
grep -q "calib_proxyd_records_total" scrape.txt
grep -q 'calib_channel_records_total{channel="clever"}' scrape.txt

# graceful SIGTERM: drain, write the flush file, report stats
kill -TERM "$proxyd_pid"
wait "$proxyd_pid" || { echo "daemon exited non-zero"; cat proxyd.log; exit 1; }
grep -q "connections," proxyd.log
test -s daemon-clever.cali || { echo "missing daemon flush file"; exit 1; }
"$CALI_STAT" -g daemon-clever.cali | grep -q "kernel"

echo "== calib-proxyd --window: live trailing-window queries =="
# a window far wider than the test run keeps everything pushed live, so
# the windowed channel's answer must match the offline replay exactly
"$CALIB_PROXYD" -l "$workdir/proxyd-w.sock" --http 127.0.0.1:0 \
    --window 1h --slide 1m -o "daemon-w-%c.cali" 2> proxyd_w.log &
proxyd_w_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" proxyd_w.log && break
    sleep 0.1
done
grep -q "listening on" proxyd_w.log || {
    echo "windowed daemon failed to start"; cat proxyd_w.log; exit 1; }

"$CALIB_PUSH" -c "$workdir/proxyd-w.sock" --channel wclever clever-0.cali \
    2>> push.log
"$CALIB_PUSH" -c "$workdir/proxyd-w.sock" --channel wclever clever-1.cali \
    2>> push.log

"$CALI_QUERY" -c "$workdir/proxyd-w.sock" --channel wclever -q "$daemon_q" \
    > wlive.csv
"$CALI_QUERY" -q "$daemon_q" clever-0.cali clever-1.cali > woffline.csv
diff wlive.csv woffline.csv || {
    echo "windowed live and offline results differ"; exit 1; }

# the scrape exposes the per-window gauges
http_addr=$(sed -n 's/.*http \([0-9.]*:[0-9]*\).*/\1/p' proxyd_w.log)
exec 3<>"/dev/tcp/${http_addr%:*}/${http_addr##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > scrape_w.txt
exec 3<&- 3>&-
grep -q 'calib_channel_window_seconds{channel="wclever"} 3600' scrape_w.txt
grep -q 'calib_channel_window_slide_seconds{channel="wclever"} 60' scrape_w.txt
grep -q 'calib_channel_window_live_panes{channel="wclever"}' scrape_w.txt
grep -q 'calib_channel_window_retired_panes_total{channel="wclever"}' scrape_w.txt

# SIGTERM drain: the final live panes reach the flush file
kill -TERM "$proxyd_w_pid"
wait "$proxyd_w_pid" || {
    echo "windowed daemon exited non-zero"; cat proxyd_w.log; exit 1; }
test -s daemon-w-wclever.cali || {
    echo "missing windowed daemon flush file"; exit 1; }
"$CALI_STAT" -g daemon-w-wclever.cali | grep -q "kernel"

# bad window flags fail fast
if "$CALIB_PROXYD" -l "$workdir/bad.sock" --slide 5s 2>/dev/null; then
    echo "--slide without --window must fail"; exit 1
fi
if "$CALIB_PROXYD" -l "$workdir/bad.sock" -w 1s --slide 5s 2>/dev/null; then
    echo "--slide larger than --window must fail"; exit 1
fi

echo "== error handling =="
if "$CALI_QUERY" -q "THIS IS NOT CALQL" clever-0.cali 2>/dev/null; then
    echo "bad query must fail"; exit 1
fi
if "$CALI_QUERY" -q "FORMAT table" /nonexistent.cali 2>/dev/null; then
    echo "missing file must fail"; exit 1
fi

echo "cli_pipeline: all checks passed"
