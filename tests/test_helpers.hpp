// Shared helpers for the calib test suites.
#pragma once

#include "common/recordmap.hpp"
#include "common/variant.hpp"

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <initializer_list>
#include <string>
#include <vector>

namespace calib::test {

/// Build a RecordMap from (name, value) pairs.
inline RecordMap record(
    std::initializer_list<std::pair<const char*, Variant>> entries) {
    RecordMap r;
    for (const auto& [name, value] : entries)
        r.append(name, value);
    return r;
}

/// Find the single record in \a records whose \a key attribute equals
/// \a value; returns an empty RecordMap when absent or ambiguous.
inline RecordMap find_record(const std::vector<RecordMap>& records,
                             const std::string& key, const Variant& value) {
    RecordMap out;
    int hits = 0;
    for (const RecordMap& r : records)
        if (r.get(key) == value) {
            out = r;
            ++hits;
        }
    return hits == 1 ? out : RecordMap();
}

/// Temporary directory wiped on destruction.
class TempDir {
public:
    explicit TempDir(const std::string& tag) {
        path_ = std::filesystem::temp_directory_path() /
                ("calib-test-" + tag + "-" + std::to_string(::getpid()));
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }

    std::string str() const { return path_.string(); }
    std::string file(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    std::filesystem::path path_;
};

} // namespace calib::test
