// Tests for the calib-proxyd subsystem: the frame codec, the transport-
// free ingest session, channel semantics (exact vs reduced mode), and the
// daemon end-to-end over real sockets — including the differential
// contract that N concurrent clients streaming a corpus produce the same
// CalQL answers as an offline QueryProcessor over the concatenated
// corpus, graceful-shutdown draining, the HTTP scrape endpoint, and
// slow-client shedding.
#include "calib.hpp"

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "proxyd/daemon.hpp"
#include "proxyd/session.hpp"

#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace calib;

namespace {

std::string test_socket_path(const std::string& tag) {
    return "/tmp/calib-proxyd-test-" + tag + "-" + std::to_string(::getpid()) +
           ".sock";
}

/// Deterministic integer/string corpus (doubles excluded on purpose: the
/// byte-identity contract covers order-insensitive aggregation).
std::vector<RecordMap> make_corpus(std::size_t n, std::uint64_t seed) {
    std::vector<RecordMap> out;
    out.reserve(n);
    std::uint64_t x = seed;
    const auto next = [&x] {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    static const char* kKernels[] = {"advec", "diffuse", "halo", "reduce", "io"};
    for (std::size_t i = 0; i < n; ++i) {
        RecordMap r;
        r.append("kernel", Variant(std::string_view(kKernels[next() % 5])));
        r.append("rank", Variant(static_cast<long long>(next() % 8)));
        r.append("iter", Variant(static_cast<long long>(next() % 100)));
        r.append("val", Variant(static_cast<long long>(next() % 10000)));
        out.push_back(std::move(r));
    }
    return out;
}

/// Offline reference answer: the same engine cali-query uses.
std::string offline_answer(const std::vector<RecordMap>& corpus,
                           const std::string& calql) {
    QueryProcessor proc(parse_calql(calql));
    for (const RecordMap& r : corpus)
        proc.add(r);
    std::ostringstream os;
    proc.write(os);
    return os.str();
}

// ------------------------------------------------------------- frame codec

TEST(ProxydFrame, RoundTripsEveryFrameType) {
    std::vector<std::byte> wire;
    net::append_hello(wire, "client-a", "chan");
    net::append_attr(wire, 7, "kernel", Variant::Type::String, prop::nested);
    std::vector<std::pair<std::uint32_t, Variant>> globals = {
        {1, Variant(42)}, {2, Variant(std::string_view("run-1"))}};
    net::append_globals(wire, true, globals);
    net::append_query(wire, "SELECT * FORMAT csv");
    net::append_result(wire, 1, "oops");
    net::append_bye(wire);

    net::FrameDecoder dec;
    dec.feed(wire.data(), wire.size());

    net::FrameView f;
    ASSERT_TRUE(dec.next(f));
    ASSERT_EQ(f.type, net::FrameType::Hello);
    const net::HelloInfo hello = net::parse_hello(f.payload);
    EXPECT_EQ(hello.version, net::kProtocolVersion);
    EXPECT_EQ(hello.client_name, "client-a");
    EXPECT_EQ(hello.channel_name, "chan");

    ASSERT_TRUE(dec.next(f));
    ASSERT_EQ(f.type, net::FrameType::Attr);
    const net::AttrDef attr = net::parse_attr(f.payload);
    EXPECT_EQ(attr.local_id, 7u);
    EXPECT_EQ(attr.name, "kernel");
    EXPECT_EQ(attr.type, Variant::Type::String);
    EXPECT_EQ(attr.properties, prop::nested);

    ASSERT_TRUE(dec.next(f));
    ASSERT_EQ(f.type, net::FrameType::Globals);
    const net::GlobalsInfo g = net::parse_globals(f.payload);
    EXPECT_TRUE(g.join);
    ASSERT_EQ(g.entries.size(), 2u);
    EXPECT_EQ(g.entries[0].second.to_int(), 42);

    ASSERT_TRUE(dec.next(f));
    ASSERT_EQ(f.type, net::FrameType::Query);
    EXPECT_EQ(net::parse_query(f.payload), "SELECT * FORMAT csv");

    ASSERT_TRUE(dec.next(f));
    ASSERT_EQ(f.type, net::FrameType::Result);
    const net::ResultInfo res = net::parse_result(f.payload);
    EXPECT_EQ(res.status, 1);
    EXPECT_EQ(res.body, "oops");

    ASSERT_TRUE(dec.next(f));
    EXPECT_EQ(f.type, net::FrameType::Bye);
    EXPECT_FALSE(dec.next(f));
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(ProxydFrame, HelloCarriesQueryOnlyFlag) {
    {
        std::vector<std::byte> wire;
        net::append_hello(wire, "q", "chan", net::kHelloQueryOnly);
        net::FrameDecoder dec;
        dec.feed(wire.data(), wire.size());
        net::FrameView f;
        ASSERT_TRUE(dec.next(f));
        EXPECT_TRUE(net::parse_hello(f.payload).query_only);
    }
    {
        // a flag-free version-1 hello (no trailing byte) still parses
        std::vector<std::byte> payload;
        ByteWriter w(payload);
        w.put(net::kProtocolVersion);
        w.put_string("old");
        w.put_string("chan");
        std::vector<std::byte> wire;
        net::append_frame(wire, net::FrameType::Hello, payload);
        net::FrameDecoder dec;
        dec.feed(wire.data(), wire.size());
        net::FrameView f;
        ASSERT_TRUE(dec.next(f));
        const net::HelloInfo h = net::parse_hello(f.payload);
        EXPECT_EQ(h.channel_name, "chan");
        EXPECT_FALSE(h.query_only);
    }
}

TEST(ProxydFrame, DecodesByteAtATime) {
    std::vector<std::byte> wire;
    net::RecordsBuilder b;
    for (int i = 0; i < 10; ++i) {
        b.begin_record();
        b.entry(0, Variant(i));
        b.entry(1, Variant(std::string_view("x")));
        b.end_record();
    }
    b.frame(wire);
    net::append_bye(wire);

    net::FrameDecoder dec;
    std::size_t frames = 0, records = 0;
    for (const std::byte byte : wire) {
        dec.feed(&byte, 1);
        net::FrameView f;
        while (dec.next(f)) {
            ++frames;
            if (f.type == net::FrameType::Records) {
                net::RecordsParser p(f.payload);
                while (p.next([](std::uint32_t, const Variant&) {}))
                    ++records;
            }
        }
    }
    EXPECT_EQ(frames, 2u);
    EXPECT_EQ(records, 10u);
    EXPECT_EQ(dec.dropped_frames(), 0u);
}

TEST(ProxydFrame, ShedsOversizedFramesAndRecovers) {
    net::FrameDecoder dec(/*max_frame_bytes=*/64);

    std::vector<std::byte> wire;
    net::append_query(wire, std::string(1000, 'q')); // way past the bound
    net::append_bye(wire);

    // feed in chunks so the oversized payload streams through
    for (std::size_t i = 0; i < wire.size(); i += 17)
        dec.feed(wire.data() + i, std::min<std::size_t>(17, wire.size() - i));

    net::FrameView f;
    ASSERT_TRUE(dec.next(f)); // the oversized frame is gone, Bye survives
    EXPECT_EQ(f.type, net::FrameType::Bye);
    EXPECT_FALSE(dec.next(f));
    EXPECT_EQ(dec.dropped_frames(), 1u);
}

TEST(ProxydFrame, ParsersRejectTruncatedPayloads) {
    std::vector<std::byte> wire;
    net::append_hello(wire, "c", "ch");
    // truncate the payload but keep the header length honest
    std::vector<std::byte> cut(wire.begin(), wire.begin() + net::kHeaderBytes + 2);
    cut[0] = std::byte{2}; // payload_len = 2
    net::FrameDecoder dec;
    dec.feed(cut.data(), cut.size());
    net::FrameView f;
    ASSERT_TRUE(dec.next(f));
    EXPECT_THROW(net::parse_hello(f.payload), std::runtime_error);
}

// ----------------------------------------------------------- ingest session

namespace {

/// Drives an IngestSession directly (no sockets) against one channel.
struct SessionHarness {
    explicit SessionHarness(const std::string& aggregate = "")
        : channel("test", aggregate) {
        proxyd::IngestSession::Hooks hooks;
        hooks.open_channel = [this](const std::string&, bool) {
            return &channel;
        };
        hooks.on_query     = [this](std::string_view calql) {
            bool ok = false;
            responses.push_back(channel.answer(calql, &ok));
            statuses.push_back(ok ? 0 : 1);
        };
        hooks.respond = [this](std::uint8_t status, std::string_view body) {
            acks.emplace_back(status, std::string(body));
        };
        session = std::make_unique<proxyd::IngestSession>(std::move(hooks));
    }

    proxyd::IngestSession::Status feed(const std::vector<std::byte>& bytes) {
        return session->feed(bytes.data(), bytes.size());
    }

    proxyd::ProxyChannel channel;
    std::unique_ptr<proxyd::IngestSession> session;
    std::vector<std::string> responses;
    std::vector<int> statuses;
    std::vector<std::pair<int, std::string>> acks;
};

std::vector<std::byte> encode_corpus(const std::vector<RecordMap>& corpus,
                                     const std::string& channel) {
    std::vector<std::byte> wire;
    net::append_hello(wire, "enc", channel);
    // definitions first, then one batch (the client library interleaves)
    std::unordered_map<std::string, std::uint32_t> locals;
    for (const RecordMap& r : corpus)
        for (const auto& [name, value] : r) {
            auto [it, fresh] =
                locals.emplace(name, static_cast<std::uint32_t>(locals.size()));
            if (fresh)
                net::append_attr(wire, it->second, name, value.type(), prop::none);
        }
    net::RecordsBuilder batch;
    for (const RecordMap& r : corpus) {
        batch.begin_record();
        for (const auto& [name, value] : r)
            batch.entry(locals.at(name), value);
        batch.end_record();
    }
    batch.frame(wire);
    return wire;
}

} // namespace

TEST(ProxydSession, ExactModeKeepsMultiplicity) {
    SessionHarness h;
    std::vector<RecordMap> corpus;
    for (int i = 0; i < 6; ++i)
        corpus.push_back(test::record(
            {{"kernel", Variant(std::string_view(i < 4 ? "a" : "b"))},
             {"val", Variant(1)}}));

    ASSERT_EQ(h.feed(encode_corpus(corpus, "test")),
              proxyd::IngestSession::Status::Ok);
    EXPECT_EQ(h.channel.records(), 6u);
    EXPECT_EQ(h.channel.groups(), 2u); // two unique records

    std::uint64_t total = 0;
    for (const proxyd::ProxyChannel::Row& row : h.channel.rows())
        total += row.weight;
    EXPECT_EQ(total, 6u);

    bool ok = false;
    const std::string got =
        h.channel.answer("AGGREGATE count GROUP BY kernel ORDER BY kernel "
                         "FORMAT csv",
                         &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(got, offline_answer(corpus, "AGGREGATE count GROUP BY kernel "
                                          "ORDER BY kernel FORMAT csv"));
}

TEST(ProxydSession, ExactModeAnswersMatchOfflineAcrossQueries) {
    SessionHarness h;
    const std::vector<RecordMap> corpus = make_corpus(500, 1);
    ASSERT_EQ(h.feed(encode_corpus(corpus, "test")),
              proxyd::IngestSession::Status::Ok);

    const char* queries[] = {
        "AGGREGATE sum(val),count,min(val),max(val) GROUP BY kernel "
        "ORDER BY kernel FORMAT csv",
        "AGGREGATE avg(val) GROUP BY kernel,rank ORDER BY kernel,rank FORMAT csv",
        "SELECT kernel,count AGGREGATE count GROUP BY kernel ORDER BY kernel "
        "FORMAT json",
        "LET v2=scale(val,2) AGGREGATE sum(v2) WHERE rank<4 GROUP BY kernel "
        "ORDER BY kernel FORMAT table",
    };
    for (const char* q : queries) {
        bool ok = false;
        EXPECT_EQ(h.channel.answer(q, &ok), offline_answer(corpus, q)) << q;
        EXPECT_TRUE(ok) << q;
    }
}

TEST(ProxydSession, ReducedModeReAggregates) {
    SessionHarness h("AGGREGATE count,sum(val) GROUP BY kernel");
    const std::vector<RecordMap> corpus = make_corpus(200, 2);
    ASSERT_EQ(h.feed(encode_corpus(corpus, "test")),
              proxyd::IngestSession::Status::Ok);
    EXPECT_FALSE(h.channel.exact());
    EXPECT_LE(h.channel.groups(), 5u); // one group per kernel

    // two-phase semantics: querying the reduced records re-aggregates
    bool ok = false;
    const std::string got = h.channel.answer(
        "AGGREGATE sum(count),sum(sum#val) GROUP BY kernel ORDER BY kernel "
        "FORMAT csv",
        &ok);
    EXPECT_TRUE(ok);
    const std::string expect = offline_answer(
        corpus, "AGGREGATE count AS sum#count,sum(val) AS sum#sum#val "
                "GROUP BY kernel ORDER BY kernel FORMAT csv");
    EXPECT_EQ(got, expect);
}

TEST(ProxydSession, GlobalsJoinOntoRecords) {
    SessionHarness h;
    std::vector<std::byte> wire;
    net::append_hello(wire, "g", "test");
    net::append_attr(wire, 0, "kernel", Variant::Type::String, prop::none);
    net::append_attr(wire, 1, "mpi.rank", Variant::Type::Int, prop::none);
    std::vector<std::pair<std::uint32_t, Variant>> globals = {{1, Variant(3)}};
    net::append_globals(wire, true, globals);
    net::RecordsBuilder b;
    b.begin_record();
    b.entry(0, Variant(std::string_view("k")));
    b.end_record();
    b.frame(wire);
    ASSERT_EQ(h.feed(wire), proxyd::IngestSession::Status::Ok);

    const auto rows = h.channel.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].record.get("mpi.rank").to_int(), 3);
    EXPECT_EQ(rows[0].record.get("kernel").to_string(), "k");
}

TEST(ProxydSession, MalformedFramesAreProtocolErrors) {
    SessionHarness h;
    std::vector<std::byte> wire;
    net::append_hello(wire, "m", "test");
    // a Records frame with a lying entry count -> truncated payload
    {
        std::vector<std::byte> payload;
        ByteWriter w(payload);
        w.put(std::uint32_t{1});  // one record
        w.put(std::uint32_t{99}); // of 99 entries (absent)
        net::append_frame(wire, net::FrameType::Records, payload);
    }
    EXPECT_EQ(h.feed(wire), proxyd::IngestSession::Status::Error);
    EXPECT_EQ(h.session->protocol_errors(), 1u);
    ASSERT_EQ(h.acks.size(), 2u); // hello ack + error
    EXPECT_EQ(h.acks[1].first, 1);
}

TEST(ProxydSession, RejectsWrongVersionAndDuplicateHello) {
    {
        SessionHarness h;
        std::vector<std::byte> wire;
        std::vector<std::byte> payload;
        ByteWriter w(payload);
        w.put(std::uint32_t{999});
        w.put_string("old");
        w.put_string("test");
        net::append_frame(wire, net::FrameType::Hello, payload);
        EXPECT_EQ(h.feed(wire), proxyd::IngestSession::Status::Error);
    }
    {
        SessionHarness h;
        std::vector<std::byte> wire;
        net::append_hello(wire, "a", "test");
        net::append_hello(wire, "a", "test");
        EXPECT_EQ(h.feed(wire), proxyd::IngestSession::Status::Error);
    }
}

TEST(ProxydSession, UnknownLocalAttrIdsAreCountedNotFatal) {
    SessionHarness h;
    std::vector<std::byte> wire;
    net::append_hello(wire, "u", "test");
    net::append_attr(wire, 0, "kernel", Variant::Type::String, prop::none);
    net::RecordsBuilder b;
    b.begin_record();
    b.entry(0, Variant(std::string_view("k")));
    b.entry(12345, Variant(1)); // never defined
    b.end_record();
    b.frame(wire);
    ASSERT_EQ(h.feed(wire), proxyd::IngestSession::Status::Ok);
    EXPECT_EQ(h.session->unknown_attrs(), 1u);
    const auto rows = h.channel.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].record.size(), 1u); // the unknown entry was skipped
}

// ------------------------------------------------------------------- daemon

TEST(ProxydDaemon, ConcurrentClientsMatchOfflineByteForByte) {
    const std::string sock = test_socket_path("diff");
    proxyd::DaemonOptions opts;
    opts.listen = sock;
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    constexpr std::size_t kClients         = 4;
    constexpr std::size_t kRecordsPerShard = 400;
    std::vector<std::vector<RecordMap>> shards;
    std::vector<RecordMap> corpus;
    for (std::size_t c = 0; c < kClients; ++c) {
        shards.push_back(make_corpus(kRecordsPerShard, 100 + c));
        for (const RecordMap& r : shards.back())
            corpus.push_back(r);
    }

    std::vector<std::thread> pushers;
    for (std::size_t c = 0; c < kClients; ++c)
        pushers.emplace_back([&, c] {
            net::ProxyClient::Options copts;
            copts.address       = sock;
            copts.channel       = "diff";
            copts.client_name   = "pusher-" + std::to_string(c);
            copts.batch_records = 64; // force several Records frames
            net::ProxyClient client(copts);
            client.push(shards[c]);
            // a query acks only after this connection's records folded in
            client.query("AGGREGATE count FORMAT csv");
            client.close();
        });
    for (std::thread& t : pushers)
        t.join();

    const char* queries[] = {
        "AGGREGATE sum(val),count,min(val),max(val) GROUP BY kernel "
        "ORDER BY kernel FORMAT csv",
        "AGGREGATE count GROUP BY kernel,rank ORDER BY kernel,rank FORMAT json",
        "AGGREGATE avg(val) GROUP BY rank ORDER BY rank FORMAT table",
    };
    net::ProxyClient::Options qopts;
    qopts.address     = sock;
    qopts.channel     = "diff";
    qopts.client_name = "query";
    net::ProxyClient query_client(qopts);
    for (const char* q : queries)
        EXPECT_EQ(query_client.query(q), offline_answer(corpus, q)) << q;
    query_client.close();

    daemon.stop();
    loop.join();
    EXPECT_EQ(daemon.stats().records, kClients * kRecordsPerShard);
    EXPECT_EQ(daemon.stats().shed_connections, 0u);
}

TEST(ProxydDaemon, GracefulShutdownDrainsBufferedRecords) {
    const std::string sock = test_socket_path("drain");
    proxyd::DaemonOptions opts;
    opts.listen = sock;
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    const std::vector<RecordMap> corpus = make_corpus(3000, 7);
    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "drain";
        net::ProxyClient client(copts);
        client.push(corpus);
        client.close(); // flush + Bye; no ack awaited
    }
    // stop immediately: the drain must still fold everything in flight
    daemon.stop();
    loop.join();
    EXPECT_EQ(daemon.stats().records, corpus.size());

    // final flush file answers like the offline corpus (count expanded)
    test::TempDir dir("proxyd-drain");
    daemon.write_flush_files(dir.file("%c.cali"));
    AttributeRegistry reg;
    std::uint64_t total = 0;
    CaliReader::read_file(dir.file("drain.cali"), reg, [&](IdRecord&& rec) {
        const Attribute count = reg.find("count");
        ASSERT_TRUE(count.valid());
        total += rec.get(count.id()).to_uint();
    });
    EXPECT_EQ(total, corpus.size());
}

TEST(ProxydDaemon, FlushMergesExistingCountColumn) {
    // records that already carry a numeric count column (e.g. the
    // aggregate service's output) must not gain a duplicate count field
    // on flush — the multiplicity merges in multiplicatively
    proxyd::DaemonOptions opts;
    proxyd::ProxyDaemon daemon(opts);
    proxyd::ProxyChannel* ch = daemon.channel("merge");
    ASSERT_NE(ch, nullptr);

    AttributeRegistry& reg = ch->registry();
    const Attribute kernel =
        reg.create("kernel", Variant::Type::String, prop::none);
    const Attribute count = reg.create("count", Variant::Type::UInt, prop::none);
    IdRecord rec;
    rec.append(kernel.id(), Variant(std::string_view("k")));
    rec.append(count.id(), Variant(2ull));
    ch->fold(rec);
    ch->fold(rec); // identical record: multiplicity 2
    IdRecord rec2;
    rec2.append(kernel.id(), Variant(std::string_view("k2")));
    rec2.append(count.id(), Variant(3ull));
    ch->fold(rec2);

    test::TempDir dir("proxyd-merge");
    daemon.write_flush_files(dir.file("%c.cali"));

    AttributeRegistry rreg;
    std::uint64_t k_count = 0, k2_count = 0, records = 0;
    CaliReader::read_file(dir.file("merge.cali"), rreg, [&](IdRecord&& r) {
        ++records;
        const Attribute rk = rreg.find("kernel");
        const Attribute rc = rreg.find("count");
        ASSERT_TRUE(rk.valid());
        ASSERT_TRUE(rc.valid());
        (r.get(rk.id()).to_string() == "k" ? k_count : k2_count) +=
            r.get(rc.id()).to_uint();
    });
    EXPECT_EQ(records, 2u);  // one per unique record
    EXPECT_EQ(k_count, 4u);  // count 2 x multiplicity 2
    EXPECT_EQ(k2_count, 3u); // count 3 x multiplicity 1
}

TEST(ProxydDaemon, HttpScrapeServesMetricsAndHealth) {
    const std::string sock = test_socket_path("http");
    proxyd::DaemonOptions opts;
    opts.listen = sock;
    opts.http   = "127.0.0.1:0";
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    const std::string http_addr = daemon.http_address();
    ASSERT_FALSE(http_addr.empty());
    std::thread loop([&] { daemon.run(); });

    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "web";
        net::ProxyClient client(copts);
        client.push(make_corpus(50, 3));
        client.query("AGGREGATE count FORMAT csv"); // ensure folded
        client.close();
    }

    const auto http_get = [&](const std::string& path) {
        net::Socket s = net::connect_to(http_addr);
        const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
        EXPECT_TRUE(s.send_all(req.data(), req.size()));
        std::string response;
        char buf[4096];
        ssize_t n;
        while ((n = s.recv_some(buf, sizeof(buf))) > 0)
            response.append(buf, static_cast<std::size_t>(n));
        return response;
    };

    const std::string metrics = http_get("/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("calib_proxyd_records_total"), std::string::npos);
    EXPECT_NE(metrics.find("calib_channel_records_total{channel=\"web\"} 50"),
              std::string::npos);
    EXPECT_NE(metrics.find("calib_data_"), std::string::npos);

    const std::string health = http_get("/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    EXPECT_NE(http_get("/nope").find("404"), std::string::npos);

    daemon.stop();
    loop.join();
    EXPECT_GE(daemon.stats().http_requests, 3u);
}

TEST(ProxydDaemon, ShedsSlowReaders) {
    const std::string sock = test_socket_path("shed");
    proxyd::DaemonOptions opts;
    opts.listen       = sock;
    opts.max_tx_bytes = 256; // tiny outbound bound
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    bool rejected = false;
    try {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "shed";
        net::ProxyClient client(copts);
        client.push(make_corpus(2000, 5));
        // the full-table result exceeds the outbound bound: the daemon
        // sheds this connection instead of buffering it
        client.query("SELECT * FORMAT csv");
        client.close();
    } catch (const std::exception&) {
        rejected = true;
    }
    EXPECT_TRUE(rejected);

    daemon.stop();
    loop.join();
    EXPECT_EQ(daemon.stats().shed_connections, 1u);
}

TEST(ProxydDaemon, GarbageConnectionIsRejectedCleanly) {
    const std::string sock = test_socket_path("garbage");
    proxyd::DaemonOptions opts;
    opts.listen = sock;
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    {
        net::Socket s = net::connect_to(sock);
        // a 16 byte "frame" of type 0xff full of garbage
        unsigned char junk[net::kHeaderBytes + 16] = {16, 0, 0, 0, 0xff};
        std::memset(junk + net::kHeaderBytes, 0xab, 16);
        ASSERT_TRUE(s.send_all(junk, sizeof(junk)));
        char buf[512];
        while (s.recv_some(buf, sizeof(buf)) > 0)
            ; // daemon responds with an error result, then closes
    }

    // the daemon is still healthy: a well-behaved client works
    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "ok";
        net::ProxyClient client(copts);
        client.push(make_corpus(10, 9));
        EXPECT_FALSE(client.query("AGGREGATE count FORMAT csv").empty());
        client.close();
    }

    daemon.stop();
    loop.join();
}

TEST(ProxydDaemon, QueryOnlyHelloNeverCreatesChannels) {
    const std::string sock = test_socket_path("qonly");
    proxyd::DaemonOptions opts;
    opts.listen = sock;
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    const std::vector<RecordMap> corpus = make_corpus(20, 13);
    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "real";
        net::ProxyClient client(copts);
        client.push(corpus);
        client.query("AGGREGATE count FORMAT csv"); // ensure folded
        client.close();
    }

    // a typo'd channel is a handshake error, not a fresh empty channel
    bool rejected = false;
    try {
        net::ProxyClient::Options qopts;
        qopts.address    = sock;
        qopts.channel    = "reall";
        qopts.query_only = true;
        net::ProxyClient q(qopts);
    } catch (const std::exception& e) {
        rejected = true;
        EXPECT_NE(std::string(e.what()).find("no such channel"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(rejected);

    // query-only against the fed channel answers normally
    {
        net::ProxyClient::Options qopts;
        qopts.address    = sock;
        qopts.channel    = "real";
        qopts.query_only = true;
        net::ProxyClient q(qopts);
        const std::string calql = "AGGREGATE count GROUP BY kernel "
                                  "ORDER BY kernel FORMAT csv";
        EXPECT_EQ(q.query(calql), offline_answer(corpus, calql));
        q.close();
    }

    daemon.stop();
    loop.join();
    ASSERT_EQ(daemon.channels().size(), 1u);
    EXPECT_EQ(daemon.channels()[0]->name(), "real");
}

TEST(ProxydDaemon, ScrapeDisambiguatesCollidingLabelNames) {
    proxyd::DaemonOptions opts;
    proxyd::ProxyDaemon daemon(opts); // no sockets needed for scrape_text
    proxyd::ProxyChannel* ch = daemon.channel("labels");
    ASSERT_NE(ch, nullptr);

    AttributeRegistry& reg = ch->registry();
    const Attribute dotted = reg.create("a.b", Variant::Type::String, prop::none);
    const Attribute flat   = reg.create("a_b", Variant::Type::String, prop::none);
    const Attribute value  = reg.create("val", Variant::Type::Int, prop::none);
    IdRecord rec;
    rec.append(dotted.id(), Variant(std::string_view("x")));
    rec.append(flat.id(), Variant(std::string_view("y")));
    rec.append(value.id(), Variant(1));
    ch->fold(rec);

    // 'a.b' and 'a_b' both sanitize to label name a_b; the series must
    // carry two distinct label names, not a duplicate
    const std::string text = daemon.scrape_text();
    EXPECT_NE(text.find("a_b=\""), std::string::npos) << text;
    EXPECT_NE(text.find("a_b_2=\""), std::string::npos) << text;
}

TEST(ProxydDaemon, ScrapeExportsPrometheusHistogramSeries) {
    obs::set_enabled(true);
    static obs::Histogram hist("test.scrape_hist_ns");
    hist.reset();
    hist.record(0);
    hist.record(1);
    hist.record(3);
    hist.record(100);
    obs::set_enabled(false);

    proxyd::DaemonOptions opts;
    proxyd::ProxyDaemon daemon(opts); // no sockets needed for scrape_text
    const std::string text = daemon.scrape_text();

    // cumulative _bucket series with log2 le bounds, +Inf catch-all,
    // then _sum/_count — the proper Prometheus histogram shape
    const char* expected[] = {
        "# TYPE calib_test_scrape_hist_ns histogram\n",
        "calib_test_scrape_hist_ns_bucket{le=\"0\"} 1\n",    // the value 0
        "calib_test_scrape_hist_ns_bucket{le=\"1\"} 2\n",    // + value 1
        "calib_test_scrape_hist_ns_bucket{le=\"3\"} 3\n",    // + value 3
        "calib_test_scrape_hist_ns_bucket{le=\"63\"} 3\n",   // empty gap bucket
        "calib_test_scrape_hist_ns_bucket{le=\"127\"} 4\n",  // + value 100
        "calib_test_scrape_hist_ns_bucket{le=\"+Inf\"} 4\n",
        "calib_test_scrape_hist_ns_sum 104\n",
        "calib_test_scrape_hist_ns_count 4\n",
    };
    for (const char* line : expected)
        EXPECT_NE(text.find(line), std::string::npos) << line << "\n" << text;
}

TEST(ProxydDaemon, TcpIngestWorksLikeUnix) {
    proxyd::DaemonOptions opts;
    opts.listen = "127.0.0.1:0";
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    const std::string addr = daemon.ingest_address();
    ASSERT_FALSE(addr.empty());
    std::thread loop([&] { daemon.run(); });

    const std::vector<RecordMap> corpus = make_corpus(100, 11);
    net::ProxyClient::Options copts;
    copts.address = addr;
    copts.channel = "tcp";
    net::ProxyClient client(copts);
    client.push(corpus);
    const std::string q = "AGGREGATE count GROUP BY kernel ORDER BY kernel "
                          "FORMAT csv";
    EXPECT_EQ(client.query(q), offline_answer(corpus, q));
    client.close();

    daemon.stop();
    loop.join();
}

// --------------------------------------------------------- windowed channels

TEST(ProxydWindow, TrailingWindowAnswersMatchOfflineSubset) {
    // injectable clock: pane assignment is arrival time, fully test-driven
    std::uint64_t now = 0;
    WindowSpec w;
    w.duration_us = 1000; // 1ms window, 500us panes
    w.slide_us    = 500;
    proxyd::ProxyChannel ch("w", "", 64, w, [&now] { return now; });
    ASSERT_TRUE(ch.windowed());

    const std::vector<RecordMap> corpus = make_corpus(60, 3);
    AttributeRegistry& reg              = ch.registry();
    std::vector<RecordMap> live;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        now = i * 100; // one record per 100us: 5 per pane
        IdRecord rec;
        for (const auto& [name, value] : corpus[i])
            rec.append(reg.create(name, value.type()).id(), value);
        ch.fold(rec);
    }
    // arrival times 0..5900; final pane = floor(5900/500) = 11; the live
    // window covers panes {10, 11} = arrivals in [5000, 5900]
    for (std::size_t i = 0; i < corpus.size(); ++i)
        if (i * 100 >= 5000)
            live.push_back(corpus[i]);

    EXPECT_EQ(ch.records(), corpus.size());
    EXPECT_EQ(ch.live_panes(), 2u);
    EXPECT_GT(ch.retired_panes(), 0u);

    const char* q = "AGGREGATE sum(val),count GROUP BY kernel "
                    "ORDER BY kernel FORMAT csv";
    bool ok = false;
    EXPECT_EQ(ch.answer(q, &ok), offline_answer(live, q));
    EXPECT_TRUE(ok);

    std::uint64_t total = 0;
    for (const proxyd::ProxyChannel::Row& row : ch.rows())
        total += row.weight;
    EXPECT_EQ(total, live.size());
}

TEST(ProxydWindow, IdlePeriodExpiresDataWithoutTraffic) {
    std::uint64_t now = 0;
    WindowSpec w;
    w.duration_us = 1000;
    proxyd::ProxyChannel ch("w", "", 64, w, [&now] { return now; });

    AttributeRegistry& reg = ch.registry();
    IdRecord rec;
    rec.append(reg.create("kernel", Variant::Type::String).id(),
               Variant(std::string_view("k")));
    ch.fold(rec);
    EXPECT_EQ(ch.live_panes(), 1u);
    EXPECT_EQ(ch.live_records(), 1u);
    EXPECT_FALSE(ch.rows().empty());

    // idle: no folds, the clock just advances past the window. The live
    // view (anchored at now) empties immediately...
    now = 5000;
    EXPECT_EQ(ch.live_panes(), 0u);
    EXPECT_EQ(ch.live_records(), 0u);
    EXPECT_TRUE(ch.rows().empty());
    bool ok = false;
    EXPECT_EQ(ch.answer("AGGREGATE count FORMAT csv", &ok),
              offline_answer({}, "AGGREGATE count FORMAT csv"));
    EXPECT_TRUE(ok);

    // ...and retirement (the daemon's timer tick) frees the pane memory
    EXPECT_GT(ch.groups(), 0u); // pane still held before the tick
    ch.retire_expired();
    EXPECT_EQ(ch.groups(), 0u);
    EXPECT_EQ(ch.retired_panes(), 1u);
    EXPECT_EQ(ch.records(), 1u); // the lifetime counter is cumulative
}

TEST(ProxydWindow, DaemonTimerRetiresIdlePanes) {
    // real daemon, real clock: the timerfd must retire panes during an
    // idle period with no connections driving the epoll loop
    const std::string sock = test_socket_path("winretire");
    proxyd::DaemonOptions opts;
    opts.listen    = sock;
    opts.window_us = 100000; // 100ms window, 50ms panes
    opts.slide_us  = 50000;
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "win";
        net::ProxyClient client(copts);
        client.push(make_corpus(50, 9));
        client.query("AGGREGATE count FORMAT csv"); // ack: records folded
        client.close();
    }
    // idle well past the window; the timer fires every 50ms slide tick
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    daemon.stop();
    loop.join();

    proxyd::ProxyChannel* ch = daemon.channel("win", false);
    ASSERT_NE(ch, nullptr);
    EXPECT_EQ(ch->records(), 50u);       // folded...
    EXPECT_EQ(ch->groups(), 0u);         // ...but retired while idle
    EXPECT_GT(ch->retired_panes(), 0u);
    EXPECT_EQ(ch->live_panes(), 0u);
}

TEST(ProxydWindow, DrainKeepsFinalPaneFlush) {
    // SIGTERM-style drain with a window wide enough that nothing expired:
    // the flush file must carry the full live pane contents
    const std::string sock = test_socket_path("winflush");
    proxyd::DaemonOptions opts;
    opts.listen    = sock;
    opts.window_us = 10000000; // 10s: everything stays live
    proxyd::ProxyDaemon daemon(opts);
    daemon.start();
    std::thread loop([&] { daemon.run(); });

    const std::vector<RecordMap> corpus = make_corpus(300, 11);
    {
        net::ProxyClient::Options copts;
        copts.address = sock;
        copts.channel = "flush";
        net::ProxyClient client(copts);
        client.push(corpus);
        client.close(); // Bye without awaiting an ack: drain folds the rest
    }
    daemon.stop();
    loop.join();
    EXPECT_EQ(daemon.stats().records, corpus.size());

    test::TempDir dir("proxyd-winflush");
    daemon.write_flush_files(dir.file("%c.cali"));
    AttributeRegistry reg;
    std::uint64_t total = 0;
    CaliReader::read_file(dir.file("flush.cali"), reg, [&](IdRecord&& rec) {
        const Attribute count = reg.find("count");
        ASSERT_TRUE(count.valid());
        total += rec.get(count.id()).to_uint();
    });
    EXPECT_EQ(total, corpus.size());
}

TEST(ProxydWindow, ScrapeExportsWindowGauges) {
    proxyd::DaemonOptions opts;
    opts.window_us = 2000000; // 2s window, 1s panes
    opts.slide_us  = 1000000;
    proxyd::ProxyDaemon daemon(opts);
    proxyd::ProxyChannel* ch = daemon.channel("wg");
    ASSERT_NE(ch, nullptr);
    ASSERT_TRUE(ch->windowed());

    AttributeRegistry& reg = ch->registry();
    IdRecord rec;
    rec.append(reg.create("kernel", Variant::Type::String).id(),
               Variant(std::string_view("k")));
    ch->fold(rec);

    const std::string scrape = daemon.scrape_text();
    EXPECT_NE(scrape.find("calib_channel_window_seconds{channel=\"wg\"} 2"),
              std::string::npos);
    EXPECT_NE(
        scrape.find("calib_channel_window_slide_seconds{channel=\"wg\"} 1"),
        std::string::npos);
    EXPECT_NE(
        scrape.find("calib_channel_window_live_panes{channel=\"wg\"} 1"),
        std::string::npos);
    EXPECT_NE(
        scrape.find("calib_channel_window_live_records{channel=\"wg\"} 1"),
        std::string::npos);
    EXPECT_NE(scrape.find(
                  "calib_channel_window_retired_panes_total{channel=\"wg\"} 0"),
              std::string::npos);
}

TEST(ProxydWindow, DaemonRejectsBadWindowOptions) {
    {
        proxyd::DaemonOptions opts;
        opts.listen   = test_socket_path("winbad1");
        opts.slide_us = 1000; // SLIDE without WINDOW
        proxyd::ProxyDaemon daemon(opts);
        EXPECT_THROW(daemon.start(), std::runtime_error);
    }
    {
        proxyd::DaemonOptions opts;
        opts.listen    = test_socket_path("winbad2");
        opts.window_us = 1000;
        opts.slide_us  = 2000; // slide larger than the window
        proxyd::ProxyDaemon daemon(opts);
        EXPECT_THROW(daemon.start(), std::runtime_error);
    }
}

} // namespace
