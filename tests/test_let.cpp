// LET clause: derived attributes computed before filtering/aggregation.
#include "query/calql.hpp"
#include "query/let.hpp"
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

using namespace calib;
using calib::test::find_record;
using calib::test::record;

TEST(LetParse, ScaleWithParameter) {
    QuerySpec spec = parse_calql("LET ms = scale(time.duration, 0.001)");
    ASSERT_EQ(spec.lets.size(), 1u);
    EXPECT_EQ(spec.lets[0].target, "ms");
    EXPECT_EQ(spec.lets[0].fn, LetSpec::Fn::Scale);
    EXPECT_EQ(spec.lets[0].args, (std::vector<std::string>{"time.duration"}));
    EXPECT_DOUBLE_EQ(spec.lets[0].parameter, 0.001);
}

TEST(LetParse, MultipleTermsAndFunctions) {
    QuerySpec spec = parse_calql(
        "LET bucket=truncate(t,100), frac=ratio(a,b), any=first(x,y,z)");
    ASSERT_EQ(spec.lets.size(), 3u);
    EXPECT_EQ(spec.lets[0].fn, LetSpec::Fn::Truncate);
    EXPECT_EQ(spec.lets[1].fn, LetSpec::Fn::Ratio);
    EXPECT_EQ(spec.lets[2].fn, LetSpec::Fn::First);
    EXPECT_EQ(spec.lets[2].args.size(), 3u);
}

TEST(LetParse, CombinesWithOtherClauses) {
    QuerySpec spec = parse_calql("LET ms=scale(t,0.001) "
                                 "AGGREGATE sum(ms) WHERE ms>1 GROUP BY k");
    EXPECT_EQ(spec.lets.size(), 1u);
    EXPECT_EQ(spec.aggregation.ops.size(), 1u);
    EXPECT_EQ(spec.filters.size(), 1u);
}

TEST(LetParse, Errors) {
    EXPECT_THROW(parse_calql("LET x = bogus(a)"), CalQLError);
    EXPECT_THROW(parse_calql("LET x scale(a,1)"), CalQLError);
    EXPECT_THROW(parse_calql("LET x = scale(a)"), CalQLError) << "missing parameter";
    EXPECT_THROW(parse_calql("LET x = scale(2.0)"), CalQLError) << "no attribute";
}

TEST(LetParse, RoundTripsThroughToCalql) {
    const char* queries[] = {
        "LET ms=scale(t,0.001) AGGREGATE sum(ms) GROUP BY k",
        "LET b=truncate(x,50),r=ratio(a,b)",
        "LET any=first(x,y)",
    };
    for (const char* q : queries) {
        const QuerySpec a = parse_calql(q);
        const QuerySpec b = parse_calql(to_calql(a));
        EXPECT_EQ(a.lets, b.lets) << q;
    }
}

TEST(LetEval, Scale) {
    const RecordMap r = record({{"t", Variant(2500.0)}});
    LetSpec let{"ms", LetSpec::Fn::Scale, {"t"}, 0.001};
    EXPECT_DOUBLE_EQ(evaluate_let(let, r).as_double(), 2.5);
}

TEST(LetEval, ScaleMissingOrNonNumeric) {
    LetSpec let{"ms", LetSpec::Fn::Scale, {"t"}, 0.001};
    EXPECT_TRUE(evaluate_let(let, record({{"other", Variant(1)}})).empty());
    EXPECT_TRUE(evaluate_let(let, record({{"t", Variant("text")}})).empty());
}

TEST(LetEval, TruncateBuckets) {
    LetSpec let{"bucket", LetSpec::Fn::Truncate, {"t"}, 100.0};
    EXPECT_DOUBLE_EQ(evaluate_let(let, record({{"t", Variant(0)}})).as_double(), 0.0);
    EXPECT_DOUBLE_EQ(evaluate_let(let, record({{"t", Variant(99)}})).as_double(), 0.0);
    EXPECT_DOUBLE_EQ(evaluate_let(let, record({{"t", Variant(100)}})).as_double(),
                     100.0);
    EXPECT_DOUBLE_EQ(evaluate_let(let, record({{"t", Variant(257)}})).as_double(),
                     200.0);
}

TEST(LetEval, RatioGuardsDivisionByZero) {
    LetSpec let{"r", LetSpec::Fn::Ratio, {"a", "b"}, 1.0};
    EXPECT_DOUBLE_EQ(
        evaluate_let(let, record({{"a", Variant(3)}, {"b", Variant(4)}})).as_double(),
        0.75);
    EXPECT_TRUE(
        evaluate_let(let, record({{"a", Variant(3)}, {"b", Variant(0)}})).empty());
    EXPECT_TRUE(evaluate_let(let, record({{"a", Variant(3)}})).empty());
}

TEST(LetEval, FirstCoalesces) {
    LetSpec let{"any", LetSpec::Fn::First, {"x", "y", "z"}, 1.0};
    EXPECT_EQ(evaluate_let(let, record({{"y", Variant("ypsilon")}})).as_string(),
              "ypsilon");
    EXPECT_EQ(evaluate_let(let, record({{"z", Variant(1)}, {"x", Variant(2)}})),
              Variant(2));
    EXPECT_TRUE(evaluate_let(let, record({{"other", Variant(1)}})).empty());
}

TEST(LetEval, ChainedTermsSeeEarlierTargets) {
    std::vector<LetSpec> lets = {
        LetSpec{"ms", LetSpec::Fn::Scale, {"us"}, 0.001},
        LetSpec{"s", LetSpec::Fn::Scale, {"ms"}, 0.001},
    };
    RecordMap r = record({{"us", Variant(4000000.0)}});
    apply_lets(lets, r);
    EXPECT_DOUBLE_EQ(r.get("s").as_double(), 4.0);
}

TEST(LetQuery, BucketedGrouping) {
    // histogram-style grouping by value bucket through LET truncate
    std::vector<RecordMap> records;
    for (int i = 0; i < 100; ++i)
        records.push_back(record({{"t", Variant(i)}}));

    auto out = run_query("LET bucket=truncate(t,25) "
                         "AGGREGATE count GROUP BY bucket ORDER BY bucket",
                         records);
    ASSERT_EQ(out.size(), 4u);
    for (const RecordMap& r : out)
        EXPECT_EQ(r.get("count").to_uint(), 25u);
    EXPECT_DOUBLE_EQ(out[3].get("bucket").to_double(), 75.0);
}

TEST(LetQuery, FilterOnDerivedAttribute) {
    std::vector<RecordMap> records = {
        record({{"a", Variant(10.0)}, {"b", Variant(2.0)}}),
        record({{"a", Variant(1.0)}, {"b", Variant(2.0)}}),
    };
    auto out = run_query("LET r=ratio(a,b) WHERE r>1", records);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].get("r").as_double(), 5.0);
}

TEST(LetQuery, UnifiedTimeFromEitherDurationColumn) {
    // first() coalesces the online result column and the raw metric, so a
    // query can process traces and profiles uniformly
    std::vector<RecordMap> records = {
        record({{"k", Variant("x")}, {"time.duration", Variant(5.0)}}),
        record({{"k", Variant("x")}, {"sum#time.duration", Variant(7.0)}}),
    };
    auto out = run_query("LET t=first(time.duration,sum#time.duration) "
                         "AGGREGATE sum(t) GROUP BY k",
                         records);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].get("sum#t").to_double(), 12.0);
}
