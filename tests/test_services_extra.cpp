// Tests for the report, textlog, cycles, and memusage services.
#include "calib.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace calib;
using calib::test::find_record;

namespace {

std::vector<RecordMap> flush_records(Channel* channel) {
    std::vector<RecordMap> out;
    Caliper::instance().flush_thread(
        channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

std::string slurp(const std::string& path) {
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

TEST(CyclesService, CountsCpuCycles) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "cyc", RuntimeConfig{{"services.enable", "cycles,event,aggregate"},
                             {"aggregate.key", "cyc.fn"},
                             {"aggregate.ops", "count,sum(cycles.duration)"}});
    Annotation fn("cyc.fn");
    fn.begin(Variant("work"));
    volatile double x = 0;
    for (int i = 0; i < 200000; ++i)
        x = x + i;
    fn.end();

    auto out = flush_records(channel);
    c.close_channel(channel);
    RecordMap work = find_record(out, "cyc.fn", Variant("work"));
    ASSERT_FALSE(work.empty());
    // 200k additions must consume a decidedly nonzero number of cycles
    EXPECT_GT(work.get("sum#cycles.duration").to_double(), 10000.0);
}

TEST(MemusageService, ReportsHighwaterMark) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "mem", RuntimeConfig{{"services.enable", "memusage,event,aggregate"},
                             {"aggregate.key", "mem.fn"},
                             {"aggregate.ops", "max(mem.highwater.kb)"}});
    Annotation fn("mem.fn");
    fn.begin(Variant("alloc"));
    std::vector<double> ballast(4 << 20, 1.0); // ~32 MiB
    fn.end();

    auto out = flush_records(channel);
    c.close_channel(channel);
    RecordMap alloc = find_record(out, "mem.fn", Variant("alloc"));
    ASSERT_FALSE(alloc.empty());
    EXPECT_GT(alloc.get("max#mem.highwater.kb").to_double(), 1000.0)
        << "peak RSS is at least a megabyte";
    EXPECT_GT(ballast[123], 0.0);
}

TEST(TextlogService, WritesEventLines) {
    test::TempDir dir("textlog");
    const std::string path = dir.file("events.log");

    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "tlog", RuntimeConfig{{"services.enable", "event,textlog"},
                              {"textlog.filename", path}});
    c.set_thread_label("tester");
    Annotation fn("tlog.fn");
    fn.begin(Variant("logged-region"));
    fn.end();
    c.close_channel(channel);

    const std::string text = slurp(path);
    EXPECT_NE(text.find("calib[tester]"), std::string::npos);
    EXPECT_NE(text.find("tlog.fn=logged-region"), std::string::npos);
}

TEST(ReportService, PrintsQueryResultOnClose) {
    test::TempDir dir("report");
    const std::string path = dir.file("report.txt");

    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "rep", RuntimeConfig{
                   {"services.enable", "event,timer,aggregate,report"},
                   {"aggregate.key", "rep.fn"},
                   // second-stage aggregation: sum the online counts
                   {"report.query",
                    "SELECT rep.fn,sum(count) AS hits WHERE rep.fn GROUP BY rep.fn"},
                   {"report.filename", path},
               });
    Annotation fn("rep.fn");
    for (int i = 0; i < 3; ++i) {
        fn.begin(Variant("reported"));
        fn.end();
    }
    c.close_channel(channel); // triggers the report

    const std::string text = slurp(path);
    EXPECT_NE(text.find("report: channel 'rep'"), std::string::npos);
    EXPECT_NE(text.find("reported"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(ReportService, SurvivesBadQuery) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "rep-bad", RuntimeConfig{{"services.enable", "event,aggregate,report"},
                                 {"aggregate.key", "*"},
                                 {"report.query", "THIS IS NOT CALQL"},
                                 {"report.filename", "stderr"}});
    Annotation fn("repbad.fn");
    fn.begin(Variant(1));
    fn.end();
    c.close_channel(channel); // must not throw
    SUCCEED();
}

TEST(CyclesService, MonotoneAcrossSnapshots) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "cyc2", RuntimeConfig{{"services.enable", "cycles,event,trace"}});
    Annotation fn("cyc2.fn");
    for (int i = 0; i < 5; ++i) {
        fn.begin(Variant(i));
        fn.end();
    }
    auto out = flush_records(channel);
    c.close_channel(channel);
    ASSERT_EQ(out.size(), 10u);
    for (const RecordMap& r : out)
        EXPECT_GE(r.get("cycles.duration").to_double(), 0.0);
}
