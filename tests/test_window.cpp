// Windowed aggregation tests: pane arithmetic (the single shared
// pane_index), WindowedAggregator ring semantics (boundaries, out-of-order
// and late records, the missing/non-numeric timestamp policy of
// docs/CORRECTNESS.md), windowed QueryProcessor end-to-end behavior, and
// byte-identity of windowed queries across thread counts, merge
// strategies, and batch sizes.
#include "aggregate/window.hpp"
#include "aggregate/windowed_db.hpp"

#include "engine/parallel_processor.hpp"
#include "io/caliwriter.hpp"
#include "query/calql.hpp"
#include "query/processor.hpp"

#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

using namespace calib;
using calib::test::TempDir;
using calib::test::find_record;
using calib::test::record;

// ----------------------------------------------------------------- pane math

TEST(PaneIndex, FloorDivisionAndBoundary) {
    EXPECT_EQ(pane_index(0.0, 10), std::optional<std::int64_t>(0));
    EXPECT_EQ(pane_index(9.0, 10), std::optional<std::int64_t>(0));
    // a timestamp exactly on the pane edge opens the *new* pane
    EXPECT_EQ(pane_index(10.0, 10), std::optional<std::int64_t>(1));
    EXPECT_EQ(pane_index(19.999, 10), std::optional<std::int64_t>(1));
    EXPECT_EQ(pane_index(-1.0, 10), std::optional<std::int64_t>(-1));
    EXPECT_EQ(pane_index(-10.0, 10), std::optional<std::int64_t>(-1));
    EXPECT_EQ(pane_index(-10.5, 10), std::optional<std::int64_t>(-2));
}

TEST(PaneIndex, UnplaceableTimestamps) {
    EXPECT_FALSE(pane_index(1.0, 0).has_value()); // zero slide
    EXPECT_FALSE(pane_index(std::nan(""), 10).has_value());
    EXPECT_FALSE(pane_index(std::numeric_limits<double>::infinity(), 10).has_value());
    EXPECT_FALSE(pane_index(-std::numeric_limits<double>::infinity(), 10).has_value());
    EXPECT_FALSE(pane_index(1e30, 1).has_value()); // pane beyond 2^62
    EXPECT_FALSE(pane_index(-1e30, 1).has_value());
}

TEST(PaneIndex, VariantTypesAgree) {
    // Int / UInt / Double timestamps of equal value land in the same pane
    EXPECT_EQ(pane_index(Variant(static_cast<long long>(25)), 10),
              pane_index(Variant(25.0), 10));
    EXPECT_EQ(pane_index(Variant(static_cast<unsigned long long>(25)), 10),
              pane_index(Variant(25.0), 10));
    // non-numeric values have no timestamp
    EXPECT_FALSE(pane_index(Variant(), 10).has_value());
    EXPECT_FALSE(pane_index(Variant("3pm"), 10).has_value());
    EXPECT_FALSE(pane_index(Variant(true), 10).has_value());
}

// -------------------------------------------------------- WindowedAggregator

namespace {

class WindowTest : public ::testing::Test {
protected:
    WindowSpec window(std::uint64_t dur, std::uint64_t slide = 0) {
        WindowSpec w;
        w.duration_us = dur;
        w.slide_us    = slide;
        return w;
    }

    IdRecord rec(double t, const char* kernel) {
        IdRecord r;
        r.append(registry.create("time.offset", Variant::Type::Double).id(),
                 Variant(t));
        r.append(registry.create("kernel", Variant::Type::String).id(),
                 Variant(kernel));
        return r;
    }

    IdRecord rec_no_time(const char* kernel) {
        IdRecord r;
        r.append(registry.create("kernel", Variant::Type::String).id(),
                 Variant(kernel));
        return r;
    }

    AttributeRegistry registry;
};

std::uint64_t count_of(const std::vector<RecordMap>& rows, const char* kernel) {
    const RecordMap r = find_record(rows, "kernel", Variant(kernel));
    return r.get("count").to_uint();
}

} // namespace

TEST_F(WindowTest, TumblingWindowKeepsOnlyCurrentPane) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(10), &registry);
    agg.process(rec(1, "a"));
    agg.process(rec(2, "a"));
    EXPECT_EQ(agg.flush().size(), 1u);

    // crossing into pane 1 retires pane 0 (tumbling: one live pane)
    agg.process(rec(10, "b"));
    auto rows = agg.flush();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(count_of(rows, "b"), 1u);
    EXPECT_EQ(agg.pane_count(), 1u);
}

TEST_F(WindowTest, SlidingWindowFoldsLivePanes) {
    // window 30us, slide 10us -> 3 live panes
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(30, 10), &registry);
    for (int pane = 0; pane < 5; ++pane)
        agg.process(rec(pane * 10 + 1, pane % 2 ? "odd" : "even"));

    // watermark = pane 4; live = panes {2, 3, 4}
    auto rows = agg.flush();
    EXPECT_EQ(count_of(rows, "even"), 2u); // panes 2 and 4
    EXPECT_EQ(count_of(rows, "odd"), 1u);  // pane 3
    EXPECT_EQ(agg.pane_count(), 3u);
    EXPECT_EQ(agg.watermark(), std::optional<std::int64_t>(4));
}

TEST_F(WindowTest, BoundaryTimestampOpensNewPane) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(20, 10), &registry);
    agg.process(rec(9.999, "a")); // pane 0
    agg.process(rec(10, "b"));    // pane 1 — exactly on the edge
    agg.process(rec(20, "c"));    // pane 2; retires pane 0
    auto rows = agg.flush();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(count_of(rows, "b"), 1u);
    EXPECT_EQ(count_of(rows, "c"), 1u);
}

TEST_F(WindowTest, OutOfOrderWithinWindowMerges) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(30, 10), &registry);
    agg.process(rec(25, "a")); // pane 2 (watermark)
    agg.process(rec(5, "a"));  // pane 0 — older but still live
    agg.process(rec(15, "a")); // pane 1
    agg.process(rec(26, "a")); // pane 2 again (duplicate timestamp region)
    auto rows = agg.flush();
    EXPECT_EQ(count_of(rows, "a"), 4u);
    EXPECT_EQ(agg.dropped_late(), 0u);
}

TEST_F(WindowTest, LateRecordsDropDeterministically) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(20, 10), &registry);
    agg.process(rec(35, "a")); // watermark pane 3; live floor = pane 2
    agg.process(rec(5, "b"));  // pane 0: late, dropped
    agg.process(rec(19, "b")); // pane 1: late, dropped
    agg.process(rec(25, "c")); // pane 2: still live
    auto rows = agg.flush();
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_EQ(agg.dropped_late(), 2u);
    EXPECT_EQ(count_of(rows, "c"), 1u);
}

TEST_F(WindowTest, MissingAndNonNumericTimestampsDropAndCount) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(10), &registry);
    agg.process(rec(1, "a"));
    agg.process(rec_no_time("a")); // no time.offset at all
    IdRecord bad;
    bad.append(registry.create("time.offset", Variant::Type::Double).id(),
               Variant("noon")); // non-numeric timestamp
    bad.append(registry.create("kernel", Variant::Type::String).id(),
               Variant("a"));
    agg.process(bad);
    IdRecord nan_rec = rec(std::nan(""), "a");
    agg.process(nan_rec);

    auto rows = agg.flush();
    EXPECT_EQ(count_of(rows, "a"), 1u); // only the timestamped record counts
    EXPECT_EQ(agg.dropped_no_time(), 3u);
}

TEST_F(WindowTest, ClearKeepsWatermarkSoLateStaysLate) {
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(10), &registry);
    agg.process(rec(55, "a")); // watermark pane 5
    agg.clear();               // early flush drops contents, keeps watermark
    EXPECT_TRUE(agg.empty());
    EXPECT_EQ(agg.watermark(), std::optional<std::int64_t>(5));

    agg.process(rec(5, "b")); // pane 0: late relative to the kept watermark
    EXPECT_TRUE(agg.empty());
    EXPECT_EQ(agg.dropped_late(), 1u);
}

TEST_F(WindowTest, SerializeRoundTripMatchesDirect) {
    const auto cfg = AggregationConfig::parse("count,sum(v)", "kernel");
    WindowedAggregator direct(cfg, window(30, 10), &registry);
    WindowedAggregator part1(cfg, window(30, 10), &registry);
    WindowedAggregator part2(cfg, window(30, 10), &registry);

    const auto feed = [&](WindowedAggregator& a, double t, const char* k) {
        IdRecord r = rec(t, k);
        r.append(registry.create("v", Variant::Type::Int).id(),
                 Variant(static_cast<long long>(t)));
        a.process(r);
    };
    for (int i = 0; i < 20; ++i) {
        feed(direct, i * 3.0, i % 2 ? "x" : "y");
        feed(i % 2 ? part1 : part2, i * 3.0, i % 2 ? "x" : "y");
    }

    WindowedAggregator merged(cfg, window(30, 10), &registry);
    merged.merge_serialized(part1.serialize());
    merged.merge_serialized(part2.serialize());

    EXPECT_EQ(merged.watermark(), direct.watermark());
    auto a = direct.flush();
    auto b = merged.flush();
    ASSERT_EQ(a.size(), b.size());
    for (const char* k : {"x", "y"}) {
        EXPECT_EQ(find_record(a, "kernel", Variant(k)).get("count"),
                  find_record(b, "kernel", Variant(k)).get("count"));
        EXPECT_EQ(find_record(a, "kernel", Variant(k)).get("sum#v"),
                  find_record(b, "kernel", Variant(k)).get("sum#v"));
    }
}

TEST_F(WindowTest, MergeCombinesWatermarksAsMax) {
    const auto cfg = AggregationConfig::parse("count", "kernel");
    WindowedAggregator a(cfg, window(10), &registry);
    WindowedAggregator b(cfg, window(10), &registry);
    a.process(rec(5, "old"));  // watermark pane 0
    b.process(rec(95, "new")); // watermark pane 9

    a.merge(std::move(b));
    EXPECT_EQ(a.watermark(), std::optional<std::int64_t>(9));
    auto rows = a.flush();
    // pane 0 retired on merge: only the newer pane survives the tumble
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(count_of(rows, "new"), 1u);
}

TEST_F(WindowTest, SpilledPanesSurviveTheFlushFold) {
    // a 1-byte budget clamps each pane's live table to the 16-entry floor;
    // the flush fold must go through the spill-aware path or the spilled
    // runs silently vanish (regression: fuzz seed 1057)
    WindowedAggregator agg(AggregationConfig::parse("count", "kernel"),
                           window(1000), &registry);
    agg.set_memory_budget(1);
    for (int i = 0; i < 48; ++i)
        agg.process(rec(i, ("k" + std::to_string(i)).c_str()));

    const std::vector<RecordMap> rows = agg.flush();
    ASSERT_EQ(rows.size(), 48u);
    for (int i = 0; i < 48; ++i) {
        const std::string kernel = "k" + std::to_string(i);
        EXPECT_EQ(count_of(rows, kernel.c_str()), 1u) << kernel;
    }
}

// ----------------------------------------------------- QueryProcessor E2E

namespace {

std::vector<RecordMap> make_timed_records(int n) {
    static const char* kernels[] = {"advec", "pdv", "accel", "flux"};
    std::vector<RecordMap> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(record({{"kernel", Variant(kernels[i % 4])},
                              {"time.offset", Variant(static_cast<long long>(i * 10))},
                              {"v", Variant(static_cast<long long>(i % 7 + 1))}}));
    return out;
}

} // namespace

TEST(WindowQuery, TrailingWindowOverRecordStream) {
    // records at t = 0,10,...,990; WINDOW 200us -> t in (790, 990] region:
    // live panes are the trailing ceil(200/200)=1 pane of width 200 ending
    // at the watermark pane: floor(990/200)=4, so t in [800, 990]
    auto rows = run_query("AGGREGATE count WINDOW 200us GROUP BY *",
                          make_timed_records(100));
    std::uint64_t total = 0;
    for (const RecordMap& r : rows)
        total += r.get("count").to_uint();
    EXPECT_EQ(total, 20u); // t = 800..990 step 10
}

TEST(WindowQuery, SlidingWindowAndTimeAttributeOverride) {
    std::vector<RecordMap> recs;
    for (int i = 0; i < 10; ++i)
        recs.push_back(record({{"k", Variant("g")},
                               {"sim.time", Variant(static_cast<long long>(i))}}));
    // window 4us slide 2us over sim.time: watermark pane floor(9/2)=4,
    // live panes {3, 4} -> sim.time in [6, 9]
    auto rows = run_query("AGGREGATE count WINDOW 4 BY sim.time SLIDE 2 GROUP BY k",
                          recs);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].get("count").to_uint(), 4u);
}

TEST(WindowQuery, WindowedPassthroughFiltersSelectRows) {
    // no aggregation: WINDOW restricts the selected rows to the live range,
    // preserving input order
    auto rows = run_query("SELECT kernel,time.offset WINDOW 100us",
                          make_timed_records(50)); // t = 0..490
    // watermark pane floor(490/100)=4 -> live = [400, 490]
    ASSERT_EQ(rows.size(), 10u);
    EXPECT_EQ(rows.front().get("time.offset").to_int(), 400);
    EXPECT_EQ(rows.back().get("time.offset").to_int(), 490);
}

TEST(WindowQuery, RecordsWithoutTimestampAreExcluded) {
    std::vector<RecordMap> recs = make_timed_records(10); // t = 0..90
    recs.push_back(record({{"kernel", Variant("untimed")}}));
    auto rows = run_query("AGGREGATE count WINDOW 1h GROUP BY kernel", recs);
    EXPECT_TRUE(find_record(rows, "kernel", Variant("untimed")).empty());
}

// ------------------------------------------------- engine byte-identity

namespace {

void write_timed_cali(const std::string& path, int nrecords, int offset = 0) {
    static const char* kernels[] = {"advec", "pdv", "accel", "flux"};
    std::ofstream os(path);
    CaliWriter w(os);
    for (int i = 0; i < nrecords; ++i) {
        RecordMap r;
        r.append("kernel", Variant(kernels[i % 4]));
        r.append("time.offset",
                 Variant(static_cast<long long>((offset + i) * 7 % 7919)));
        r.append("v", Variant(static_cast<long long>(i % 13 + 1)));
        w.write_record(r);
    }
}

std::string run_engine(const std::string& query,
                       const std::vector<std::string>& files,
                       engine::EngineOptions opts) {
    engine::ParallelQueryProcessor eng(parse_calql(query), opts);
    std::ostringstream os;
    eng.run(files).write(os);
    return os.str();
}

} // namespace

TEST(WindowEngine, ByteIdenticalAcrossThreadsStrategiesAndBatchSizes) {
    TempDir dir("window-engine");
    std::vector<std::string> files;
    for (int f = 0; f < 4; ++f) {
        files.push_back(dir.file("t" + std::to_string(f) + ".cali"));
        write_timed_cali(files.back(), 300, f * 300);
    }
    const std::string query =
        "AGGREGATE count,sum(v),avg(v) WINDOW 3ms SLIDE 500us "
        "GROUP BY kernel FORMAT csv";

    engine::EngineOptions base;
    base.threads            = 1;
    base.merge_strategy     = engine::MergeStrategy::Pairwise;
    const std::string golden = run_engine(query, files, base);
    ASSERT_FALSE(golden.empty());

    for (const std::size_t threads : {1u, 2u, 4u}) {
        for (const engine::MergeStrategy strategy :
             {engine::MergeStrategy::Pairwise, engine::MergeStrategy::Tree,
              engine::MergeStrategy::Radix}) {
            for (const std::size_t batch : {0u, 7u, 64u}) {
                engine::EngineOptions opts;
                opts.threads        = threads;
                opts.merge_strategy = strategy;
                opts.batched        = batch != 0;
                opts.batch_size     = batch;
                EXPECT_EQ(run_engine(query, files, opts), golden)
                    << "threads=" << threads << " strategy="
                    << engine::merge_strategy_name(strategy)
                    << " batch=" << batch;
            }
        }
    }
}

TEST(WindowEngine, EarlyFlushKeepsWindowSemantics) {
    TempDir dir("window-flush");
    std::vector<std::string> files;
    for (int f = 0; f < 2; ++f) {
        files.push_back(dir.file("t" + std::to_string(f) + ".cali"));
        write_timed_cali(files.back(), 400, f * 400);
    }
    const std::string query =
        "AGGREGATE count WINDOW 2ms SLIDE 250us GROUP BY kernel FORMAT csv";

    engine::EngineOptions base;
    base.threads             = 1;
    const std::string golden = run_engine(query, files, base);

    engine::EngineOptions flushy;
    flushy.threads             = 4;
    flushy.max_partial_entries = 2; // force early flushes constantly
    EXPECT_EQ(run_engine(query, files, flushy), golden);
}

TEST(WindowEngine, MatchesPerWindowOracle) {
    // differential check against a window-stripped oracle: filter the raw
    // records to the live range with the shared pane_index, then run the
    // same query without its WINDOW clause
    TempDir dir("window-oracle");
    const std::string file = dir.file("t.cali");
    write_timed_cali(file, 500);

    const QuerySpec spec =
        parse_calql("AGGREGATE count,sum(v) WINDOW 2ms SLIDE 400us "
                    "GROUP BY kernel");
    engine::ParallelQueryProcessor eng(spec, {});
    const std::vector<RecordMap> got = eng.run({file}).result();

    // reconstruct the input and compute the oracle's live range
    std::vector<RecordMap> raw;
    for (int i = 0; i < 500; ++i) {
        RecordMap r;
        static const char* kernels[] = {"advec", "pdv", "accel", "flux"};
        r.append("kernel", Variant(kernels[i % 4]));
        r.append("time.offset", Variant(static_cast<long long>(i * 7 % 7919)));
        r.append("v", Variant(static_cast<long long>(i % 13 + 1)));
        raw.push_back(std::move(r));
    }
    const std::uint64_t slide = spec.window.slide();
    std::optional<std::int64_t> watermark;
    for (const RecordMap& r : raw)
        if (const auto p = pane_index(r.get("time.offset"), slide))
            watermark = watermark ? std::max(*watermark, *p) : *p;
    ASSERT_TRUE(watermark.has_value());
    const std::int64_t floor =
        *watermark - static_cast<std::int64_t>(spec.window.pane_count()) + 1;

    std::vector<RecordMap> live;
    for (const RecordMap& r : raw) {
        const auto p = pane_index(r.get("time.offset"), slide);
        if (p && *p >= floor)
            live.push_back(r);
    }
    const std::vector<RecordMap> want =
        run_query("AGGREGATE count,sum(v) GROUP BY kernel", live);

    ASSERT_EQ(got.size(), want.size());
    for (const char* k : {"advec", "pdv", "accel", "flux"}) {
        EXPECT_EQ(find_record(got, "kernel", Variant(k)).get("count"),
                  find_record(want, "kernel", Variant(k)).get("count"))
            << k;
        EXPECT_EQ(find_record(got, "kernel", Variant(k)).get("sum#v"),
                  find_record(want, "kernel", Variant(k)).get("sum#v"))
            << k;
    }
}
