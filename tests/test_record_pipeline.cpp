// Id-based offline pipeline: equivalence of the resolve-once id path
// (reader -> IdRecord -> AggregationDB::process) with the legacy
// name-based shim (RecordMap -> process_offline), and the reader-side
// resolve-once accounting (the "reader.*" metrics).
#include "aggregate/aggregation_db.hpp"
#include "io/calireader.hpp"
#include "io/caliwriter.hpp"
#include "io/jsonreader.hpp"
#include "obs/metrics.hpp"
#include "query/calql.hpp"
#include "query/processor.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace calib;
using calib::test::record;

namespace {

std::string to_stream(const std::vector<RecordMap>& records) {
    std::ostringstream os;
    CaliWriter w(os);
    for (const RecordMap& r : records)
        w.write_record(r);
    return os.str();
}

/// Legacy path: name-based records resolve attributes per record.
std::string run_name_path(const std::string& query,
                          const std::vector<RecordMap>& records) {
    QueryProcessor proc(parse_calql(query));
    proc.add(records);
    std::ostringstream os;
    proc.write(os);
    return os.str();
}

/// Id path: the same records round-trip through a .cali stream and enter
/// the processor as IdRecords resolved against its registry.
std::string run_id_path(const std::string& query,
                        const std::vector<RecordMap>& records) {
    std::istringstream is(to_stream(records));
    QueryProcessor proc(parse_calql(query));
    CaliReader::read(is, *proc.registry(),
                     [&proc](IdRecord&& r) { proc.add(std::move(r)); });
    std::ostringstream os;
    proc.write(os);
    return os.str();
}

void expect_paths_agree(const std::string& query,
                        const std::vector<RecordMap>& records) {
    EXPECT_EQ(run_name_path(query, records), run_id_path(query, records))
        << "query: " << query;
}

std::vector<RecordMap> sample_records() {
    std::vector<RecordMap> rs;
    const char* kernels[] = {"stress", "force", "collision", "remesh"};
    for (int i = 0; i < 64; ++i) {
        rs.push_back(record({{"kernel", Variant(kernels[i % 4])},
                             {"rank", Variant(static_cast<long long>(i % 8))},
                             {"time", Variant(0.25 + 0.5 * (i % 13))},
                             {"bytes", Variant(static_cast<long long>(100 * i))}}));
    }
    return rs;
}

} // namespace

// --- shim vs id-path equivalence over every kernel op -----------------------

TEST(RecordPipeline, AllKernelOpsAgree) {
    const auto rs = sample_records();
    expect_paths_agree("AGGREGATE count GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE sum(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE min(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE max(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE avg(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE variance(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE histogram(time) GROUP BY kernel", rs);
    expect_paths_agree("AGGREGATE percent_total(time) GROUP BY kernel", rs);
    expect_paths_agree(
        "AGGREGATE count,sum(time),min(bytes),max(bytes),avg(time),"
        "variance(time),histogram(bytes),percent_total(time) "
        "GROUP BY kernel,rank FORMAT csv ORDER BY kernel,rank",
        rs);
}

TEST(RecordPipeline, ImplicitKeyAgrees) {
    expect_paths_agree("AGGREGATE count,sum(time) GROUP BY *", sample_records());
}

TEST(RecordPipeline, PassthroughAgrees) {
    expect_paths_agree("WHERE kernel=stress FORMAT csv", sample_records());
}

// --- awkward attribute situations -------------------------------------------

TEST(RecordPipeline, UnknownOpAttributeAgrees) {
    // the aggregated attribute never appears in any record or registry
    expect_paths_agree("AGGREGATE count,sum(no.such.metric) GROUP BY kernel",
                       sample_records());
}

TEST(RecordPipeline, LateCreatedAttributeAgrees) {
    // the op target and one key attribute only appear mid-stream, after the
    // processor compiled its specs — exercises lazy id re-resolution
    std::vector<RecordMap> rs;
    for (int i = 0; i < 10; ++i)
        rs.push_back(record({{"kernel", Variant("early")}, {"time", Variant(1.0)}}));
    for (int i = 0; i < 10; ++i)
        rs.push_back(record({{"kernel", Variant("late")},
                             {"time", Variant(2.0)},
                             {"energy", Variant(0.5 * i)},
                             {"phase", Variant("extra")}}));
    expect_paths_agree("AGGREGATE count,sum(energy) GROUP BY kernel,phase", rs);
    expect_paths_agree("AGGREGATE avg(energy) GROUP BY *", rs);
}

TEST(RecordPipeline, AbsentKeyAttributeAgrees) {
    // records missing a key attribute group under the absent key
    std::vector<RecordMap> rs;
    rs.push_back(record({{"kernel", Variant("a")}, {"time", Variant(1.0)}}));
    rs.push_back(record({{"time", Variant(2.0)}}));
    rs.push_back(record({{"kernel", Variant("a")}, {"time", Variant(4.0)}}));
    rs.push_back(record({{"time", Variant(8.0)}}));
    expect_paths_agree("AGGREGATE count,sum(time) GROUP BY kernel", rs);
}

TEST(RecordPipeline, LetAndWhereAgree) {
    const auto rs = sample_records();
    expect_paths_agree("LET ms=scale(time,1000.0) "
                       "AGGREGATE sum(ms),count WHERE rank>2 GROUP BY kernel",
                       rs);
    expect_paths_agree("LET bucket=truncate(bytes,1000) "
                       "AGGREGATE count GROUP BY bucket",
                       rs);
    expect_paths_agree("LET r=ratio(bytes,time) "
                       "AGGREGATE max(r) WHERE kernel=force GROUP BY rank",
                       rs);
    expect_paths_agree("LET v=first(missing,time) "
                       "AGGREGATE sum(v) GROUP BY kernel",
                       rs);
}

// --- AggregationDB: process_offline shim vs process(IdRecord) ---------------

TEST(RecordPipeline, DbShimMatchesIdPath) {
    const auto rs = sample_records();
    const AggregationConfig cfg = AggregationConfig::parse(
        "count,sum(time),min(time),max(time),avg(time),variance(time),"
        "histogram(bytes),percent_total(time)",
        "kernel,rank");

    AttributeRegistry registry;
    AggregationDB via_shim(cfg, &registry);
    AggregationDB via_ids(cfg, &registry);

    for (const RecordMap& r : rs) {
        via_shim.process_offline(r);
        IdRecord id_rec;
        for (const auto& [name, value] : r)
            id_rec.append(registry.create(name, value.type()).id(), value);
        via_ids.process(id_rec);
    }

    const std::vector<RecordMap> a = via_shim.flush();
    const std::vector<RecordMap> b = via_ids.flush();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "entry " << i;
}

// --- resolve-once accounting -------------------------------------------------

// Read accounting lives in the global metrics registry ("reader.*"); tests
// enable metrics around the read and assert on counter deltas.
namespace {

struct ReaderCounters {
    std::int64_t records, entries, name_resolutions;

    static ReaderCounters sample() {
        const auto& reg = obs::MetricsRegistry::instance();
        return {reg.value("reader.records"), reg.value("reader.entries"),
                reg.value("reader.name_resolutions")};
    }
    ReaderCounters operator-(const ReaderCounters& o) const {
        return {records - o.records, entries - o.entries,
                name_resolutions - o.name_resolutions};
    }
};

} // namespace

TEST(RecordPipeline, CaliReaderResolvesNamesOncePerDefinition) {
    const auto rs = sample_records(); // 64 records x 4 attributes
    std::istringstream is(to_stream(rs));

    obs::set_enabled(true);
    const ReaderCounters before = ReaderCounters::sample();

    AttributeRegistry registry;
    std::uint64_t seen = 0;
    CaliReader::read(is, registry, [&seen](IdRecord&&) { ++seen; });

    const ReaderCounters delta = ReaderCounters::sample() - before;
    obs::set_enabled(false);

    EXPECT_EQ(seen, rs.size());
    EXPECT_EQ(delta.records, static_cast<std::int64_t>(rs.size()));
    EXPECT_EQ(delta.entries, static_cast<std::int64_t>(4 * rs.size()));
    // the resolve-once contract: one registry resolution per attribute
    // *definition*, strictly fewer than one per entry
    EXPECT_EQ(delta.name_resolutions, 4);
    EXPECT_LT(delta.name_resolutions, delta.entries);
}

TEST(RecordPipeline, JsonReaderResolvesKeysOncePerStream) {
    std::istringstream is(R"([
        {"kernel": "a", "time": 1.5},
        {"kernel": "b", "time": 2.5, "rank": 3},
        {"kernel": "a", "time": 4.5, "rank": 1}
    ])");

    obs::set_enabled(true);
    const ReaderCounters before = ReaderCounters::sample();

    AttributeRegistry registry;
    std::vector<IdRecord> out;
    read_json_records(is, registry,
                      [&out](IdRecord&& r) { out.push_back(std::move(r)); });

    const ReaderCounters delta = ReaderCounters::sample() - before;
    obs::set_enabled(false);

    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(delta.records, 3);
    EXPECT_EQ(delta.entries, 2 + 3 + 3);
    EXPECT_EQ(delta.name_resolutions, 3); // kernel, time, rank
    EXPECT_LT(delta.name_resolutions, delta.entries);
}

// --- id API vs name API produce identical records ---------------------------

TEST(RecordPipeline, CaliIdAndNameApisAgree) {
    const auto rs = sample_records();
    const std::string stream = to_stream(rs);

    std::istringstream is_name(stream);
    const std::vector<RecordMap> by_name = CaliReader::read_all(is_name);

    std::istringstream is_id(stream);
    AttributeRegistry registry;
    std::vector<RecordMap> by_id;
    CaliReader::read(is_id, registry, [&](IdRecord&& r) {
        by_id.push_back(to_recordmap(r, registry));
    });

    ASSERT_EQ(by_name.size(), by_id.size());
    for (std::size_t i = 0; i < by_name.size(); ++i)
        EXPECT_EQ(by_name[i], by_id[i]) << "record " << i;
}

TEST(RecordPipeline, JsonIdAndNameApisAgree) {
    const std::string text = R"([{"a": 1, "b": "x"}, {"a": 2.5, "c": true}])";

    const std::vector<RecordMap> by_name = read_json_records(text);

    std::istringstream is(text);
    AttributeRegistry registry;
    std::vector<RecordMap> by_id;
    read_json_records(is, registry, [&](IdRecord&& r) {
        by_id.push_back(to_recordmap(r, registry));
    });

    ASSERT_EQ(by_name.size(), by_id.size());
    for (std::size_t i = 0; i < by_name.size(); ++i)
        EXPECT_EQ(by_name[i], by_id[i]) << "record " << i;
}

TEST(RecordPipeline, GlobalsThroughIdApi) {
    std::ostringstream os;
    CaliWriter w(os);
    w.write_global("problem.size", Variant(4096ll));
    w.write_global("run.id", Variant("exp-17"));
    w.write_record(record({{"kernel", Variant("k")}, {"time", Variant(1.0)}}));

    std::istringstream is(os.str());
    AttributeRegistry registry;
    IdRecord globals;
    std::uint64_t records = 0;
    CaliReader::read(is, registry, [&records](IdRecord&&) { ++records; },
                     &globals);

    EXPECT_EQ(records, 1u);
    const RecordMap g = to_recordmap(globals, registry);
    EXPECT_EQ(g.get("problem.size").to_int(), 4096);
    EXPECT_EQ(g.get("run.id"), Variant("exp-17"));
}

// --- records wider than snapshot capacity -----------------------------------

TEST(RecordPipeline, WideRecordTruncationMatchesShim) {
    // both paths must agree on aggregation over records wider than
    // SnapshotRecord::max_entries (the first max_entries are processed)
    RecordMap wide;
    wide.append("kernel", Variant("w"));
    for (int i = 0; i < 80; ++i) {
        const std::string name = "attr." + std::to_string(i);
        wide.append(std::string_view(name), Variant(1.0 * i));
    }
    expect_paths_agree("AGGREGATE count,sum(attr.5) GROUP BY kernel", {wide});
}
