// CalQL parser tests: the paper's example queries, clause matrix, error
// handling, and round-tripping through to_calql().
#include "query/calql.hpp"

#include <gtest/gtest.h>

using namespace calib;

TEST(CalQL, PaperSection3Example) {
    QuerySpec spec = parse_calql("AGGREGATE count, sum(time) "
                                 "GROUP BY function, loop.iteration");
    ASSERT_EQ(spec.aggregation.ops.size(), 2u);
    EXPECT_EQ(spec.aggregation.ops[0].op, AggOp::Count);
    EXPECT_EQ(spec.aggregation.ops[1].op, AggOp::Sum);
    EXPECT_EQ(spec.aggregation.ops[1].attribute, "time");
    EXPECT_EQ(spec.aggregation.key.attributes,
              (std::vector<std::string>{"function", "loop.iteration"}));
    EXPECT_TRUE(spec.filters.empty());
}

TEST(CalQL, PaperSection6KernelProfile) {
    // §VI-B first stage: AGGREGATE count GROUP BY kernel
    QuerySpec spec = parse_calql("AGGREGATE count GROUP BY kernel");
    ASSERT_EQ(spec.aggregation.ops.size(), 1u);
    EXPECT_EQ(spec.aggregation.ops[0].op, AggOp::Count);
    EXPECT_EQ(spec.aggregation.key.attributes, (std::vector<std::string>{"kernel"}));
}

TEST(CalQL, PaperAggregateCountAlias) {
    // §VI-B second stage: sum(aggregate.count) maps to our "count" column
    QuerySpec spec = parse_calql("AGGREGATE sum(aggregate.count) GROUP BY kernel");
    ASSERT_EQ(spec.aggregation.ops.size(), 1u);
    EXPECT_EQ(spec.aggregation.ops[0].attribute, "count");
}

TEST(CalQL, PaperBareAttributeAggregate) {
    // §VI-C: AGGREGATE count, time.duration (bare attribute implies sum)
    QuerySpec spec =
        parse_calql("AGGREGATE count, time.duration GROUP BY mpi.function");
    ASSERT_EQ(spec.aggregation.ops.size(), 2u);
    EXPECT_EQ(spec.aggregation.ops[1].op, AggOp::Sum);
    EXPECT_EQ(spec.aggregation.ops[1].attribute, "time.duration");
}

TEST(CalQL, PaperWhereNotClause) {
    // §VI-E: AGGREGATE sum(time.duration) WHERE not(mpi.function)
    //        GROUP BY amr.level, iteration#mainloop
    QuerySpec spec = parse_calql("AGGREGATE sum(time.duration) "
                                 "WHERE not(mpi.function) "
                                 "GROUP BY amr.level,iteration#mainloop");
    ASSERT_EQ(spec.filters.size(), 1u);
    EXPECT_EQ(spec.filters[0].op, FilterSpec::Op::NotExist);
    EXPECT_EQ(spec.filters[0].attribute, "mpi.function");
    EXPECT_EQ(spec.aggregation.key.attributes,
              (std::vector<std::string>{"amr.level", "iteration#mainloop"}));
}

TEST(CalQL, LineContinuationBackslash) {
    // the paper's listings wrap clauses with trailing backslashes
    QuerySpec spec = parse_calql("AGGREGATE count, sum(time.duration)\n"
                                 "GROUP BY function, annotation, amr.level, \\\n"
                                 "  kernel, iteration#mainloop, \\\n"
                                 "  mpi.rank, mpi.function");
    EXPECT_EQ(spec.aggregation.key.attributes.size(), 7u);
}

TEST(CalQL, GroupByStar) {
    QuerySpec spec = parse_calql("AGGREGATE count GROUP BY *");
    EXPECT_TRUE(spec.aggregation.key.all);
}

TEST(CalQL, ClausesInAnyOrder) {
    QuerySpec spec = parse_calql(
        "FORMAT csv GROUP BY k WHERE a=1 AGGREGATE sum(t) ORDER BY k LIMIT 5");
    EXPECT_EQ(spec.format, "csv");
    EXPECT_EQ(spec.limit, 5u);
    EXPECT_EQ(spec.sort.size(), 1u);
    EXPECT_EQ(spec.filters.size(), 1u);
    EXPECT_EQ(spec.aggregation.ops.size(), 1u);
}

TEST(CalQL, KeywordsCaseInsensitive) {
    QuerySpec spec = parse_calql("aggregate COUNT group by K order BY K desc");
    EXPECT_EQ(spec.aggregation.ops[0].op, AggOp::Count);
    ASSERT_EQ(spec.sort.size(), 1u);
    EXPECT_TRUE(spec.sort[0].descending);
}

TEST(CalQL, WhereComparisons) {
    QuerySpec spec = parse_calql(
        "WHERE a=1, b!=2, c<3, d<=4, e>5, f>=6, g, not(h), s=\"hello world\"");
    ASSERT_EQ(spec.filters.size(), 9u);
    EXPECT_EQ(spec.filters[0].op, FilterSpec::Op::Eq);
    EXPECT_EQ(spec.filters[0].value, Variant(1));
    EXPECT_EQ(spec.filters[1].op, FilterSpec::Op::Ne);
    EXPECT_EQ(spec.filters[2].op, FilterSpec::Op::Lt);
    EXPECT_EQ(spec.filters[3].op, FilterSpec::Op::Le);
    EXPECT_EQ(spec.filters[4].op, FilterSpec::Op::Gt);
    EXPECT_EQ(spec.filters[5].op, FilterSpec::Op::Ge);
    EXPECT_EQ(spec.filters[6].op, FilterSpec::Op::Exist);
    EXPECT_EQ(spec.filters[7].op, FilterSpec::Op::NotExist);
    EXPECT_EQ(spec.filters[8].value, Variant("hello world"));
}

TEST(CalQL, WhereAndKeyword) {
    QuerySpec spec = parse_calql("WHERE a=1 AND b=2");
    EXPECT_EQ(spec.filters.size(), 2u);
}

TEST(CalQL, SelectWithAggregationFunction) {
    QuerySpec spec = parse_calql("SELECT kernel, sum(time) GROUP BY kernel");
    EXPECT_EQ(spec.select, (std::vector<std::string>{"kernel", "sum#time"}));
    ASSERT_EQ(spec.aggregation.ops.size(), 1u) << "SELECT sum() implies AGGREGATE";
}

TEST(CalQL, AliasWithAs) {
    QuerySpec spec =
        parse_calql("SELECT kernel AS Kernel, sum(time) AS \"Total time\" "
                    "GROUP BY kernel");
    // plain columns keep their name and gain a display alias...
    EXPECT_EQ(spec.aliases.at("kernel"), "Kernel");
    // ...while an aggregation alias *renames* the output column itself
    // (consistent with AGGREGATE ... AS)
    ASSERT_EQ(spec.aggregation.ops.size(), 1u);
    EXPECT_EQ(spec.aggregation.ops[0].alias, "Total time");
    EXPECT_EQ(spec.select, (std::vector<std::string>{"kernel", "Total time"}));
}

TEST(CalQL, AggregateAlias) {
    QuerySpec spec = parse_calql("AGGREGATE sum(x) AS total GROUP BY k");
    EXPECT_EQ(spec.aggregation.ops[0].alias, "total");
    EXPECT_EQ(spec.aggregation.ops[0].result_label(), "total");
}

TEST(CalQL, DuplicateOpsDeduplicated) {
    QuerySpec spec = parse_calql("SELECT sum(t) AGGREGATE sum(t), count");
    EXPECT_EQ(spec.aggregation.ops.size(), 2u);
}

TEST(CalQL, AttributeNamesWithSpecialCharacters) {
    QuerySpec spec = parse_calql(
        "AGGREGATE sum(sum#time.duration) GROUP BY iteration#mainloop, path/to:x");
    EXPECT_EQ(spec.aggregation.ops[0].attribute, "sum#time.duration");
    EXPECT_EQ(spec.aggregation.key.attributes[1], "path/to:x");
}

TEST(CalQL, KernelNamesWithDashes) {
    QuerySpec spec = parse_calql("WHERE kernel=advec-cell");
    EXPECT_EQ(spec.filters[0].value, Variant("advec-cell"));
}

TEST(CalQL, NegativeNumberValues) {
    QuerySpec spec = parse_calql("WHERE x>-5");
    EXPECT_EQ(spec.filters[0].value, Variant(-5));
}

TEST(CalQL, FloatValues) {
    QuerySpec spec = parse_calql("WHERE t>=2.5");
    EXPECT_EQ(spec.filters[0].value.type(), Variant::Type::Double);
}

TEST(CalQL, EmptyQueryIsValid) {
    QuerySpec spec = parse_calql("");
    EXPECT_FALSE(spec.has_aggregation());
    EXPECT_TRUE(spec.select.empty());
    EXPECT_EQ(spec.format, "table");
}

TEST(CalQL, AllFormats) {
    for (const char* fmt : {"table", "csv", "json", "expand", "tree"})
        EXPECT_EQ(parse_calql(std::string("FORMAT ") + fmt).format, fmt);
}

// --- error cases --------------------------------------------------------------

TEST(CalQLErrors, UnknownClause) {
    EXPECT_THROW(parse_calql("FROBNICATE x"), CalQLError);
}

TEST(CalQLErrors, UnknownOperator) {
    EXPECT_THROW(parse_calql("AGGREGATE median(x)"), CalQLError);
}

TEST(CalQLErrors, MissingCloseParen) {
    EXPECT_THROW(parse_calql("AGGREGATE sum(x"), CalQLError);
}

TEST(CalQLErrors, GroupWithoutBy) {
    EXPECT_THROW(parse_calql("GROUP kernel"), CalQLError);
}

TEST(CalQLErrors, OrderWithoutBy) {
    EXPECT_THROW(parse_calql("ORDER kernel"), CalQLError);
}

TEST(CalQLErrors, UnterminatedString) {
    EXPECT_THROW(parse_calql("WHERE a=\"unterminated"), CalQLError);
}

TEST(CalQLErrors, UnknownFormat) {
    EXPECT_THROW(parse_calql("FORMAT pdf"), CalQLError);
}

TEST(CalQLErrors, NegativeLimit) {
    EXPECT_THROW(parse_calql("LIMIT -3"), CalQLError);
}

TEST(CalQLErrors, StrayBang) {
    EXPECT_THROW(parse_calql("WHERE a ! b"), CalQLError);
}

TEST(CalQLErrors, PositionIsReported) {
    try {
        parse_calql("AGGREGATE count BADCLAUSE x");
        FAIL() << "expected CalQLError";
    } catch (const CalQLError& e) {
        EXPECT_EQ(e.position(), 16u);
    }
}

// --- round-trip ------------------------------------------------------------------

class CalQLRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CalQLRoundTrip, ToCalqlParsesBackEquivalently) {
    const QuerySpec a = parse_calql(GetParam());
    const QuerySpec b = parse_calql(to_calql(a));
    EXPECT_EQ(a.aggregation.ops, b.aggregation.ops);
    EXPECT_EQ(a.aggregation.key, b.aggregation.key);
    EXPECT_EQ(a.select, b.select);
    EXPECT_EQ(a.filters, b.filters);
    EXPECT_EQ(a.sort, b.sort);
    EXPECT_EQ(a.format, b.format);
    EXPECT_EQ(a.limit, b.limit);
    EXPECT_EQ(a.window, b.window);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CalQLRoundTrip,
    ::testing::Values(
        "AGGREGATE count GROUP BY kernel",
        "AGGREGATE count,sum(time.duration) GROUP BY function,loop.iteration",
        "AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY amr.level",
        "SELECT kernel,sum(t) AS total GROUP BY kernel ORDER BY total DESC LIMIT 10",
        "AGGREGATE count GROUP BY * FORMAT json",
        "WHERE a=1,b!=2,c<3,d>=4,e FORMAT csv",
        "AGGREGATE min(x),max(x),avg(x),variance(x),histogram(x) GROUP BY k",
        "AGGREGATE count GROUP BY k WINDOW 10s SLIDE 2s",
        ""));

// ---- numeric-correctness hardening regressions (differential fuzzing) ----

TEST(CalQLEdges, QuotedAttributeEscapes) {
    // quoted labels with embedded quotes, backslashes, commas, '='
    QuerySpec s = parse_calql("AGGREGATE sum(\"a,b\") GROUP BY \"q=val\" "
                              "WHERE \"odd name\"='it\\'s'");
    ASSERT_EQ(s.aggregation.ops.size(), 1u);
    EXPECT_EQ(s.aggregation.ops[0].attribute, "a,b");
    ASSERT_EQ(s.aggregation.key.attributes.size(), 1u);
    EXPECT_EQ(s.aggregation.key.attributes[0], "q=val");
    ASSERT_EQ(s.filters.size(), 1u);
    EXPECT_EQ(s.filters[0].attribute, "odd name");
    EXPECT_EQ(s.filters[0].value.to_string(), "it's");
}

TEST(CalQLEdges, ExponentLiteralsInWhere) {
    QuerySpec s = parse_calql("WHERE a>1e-3,b<-2.5E+10,c=5e-324");
    ASSERT_EQ(s.filters.size(), 3u);
    EXPECT_DOUBLE_EQ(s.filters[0].value.as_double(), 1e-3);
    EXPECT_DOUBLE_EQ(s.filters[1].value.as_double(), -2.5e10);
    EXPECT_DOUBLE_EQ(s.filters[2].value.as_double(), 5e-324);
}

TEST(CalQLEdges, GroupByDropsRepeatedAttribute) {
    QuerySpec s = parse_calql("AGGREGATE count GROUP BY k,k,j,k");
    ASSERT_EQ(s.aggregation.key.attributes.size(), 2u);
    EXPECT_EQ(s.aggregation.key.attributes[0], "k");
    EXPECT_EQ(s.aggregation.key.attributes[1], "j");
}

TEST(CalQLErrors, DuplicateSingleValueClauses) {
    for (const char* q : {"GROUP BY a GROUP BY b", "ORDER BY a ORDER BY b",
                          "FORMAT csv FORMAT json", "LIMIT 1 LIMIT 2"}) {
        try {
            parse_calql(q);
            FAIL() << "expected CalQLError for: " << q;
        } catch (const CalQLError& e) {
            // position points at the second clause keyword
            EXPECT_GT(e.position(), 0u) << q;
            EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << q;
        }
    }
}

TEST(CalQLErrors, LimitOverflowRejected) {
    EXPECT_THROW(parse_calql("LIMIT 99999999999999999999999999"), CalQLError);
}

TEST(CalQLErrors, MalformedInputsThrowNeverCrash) {
    for (const char* q :
         {"AGGREGATE", "AGGREGATE sum(", "AGGREGATE sum()", "AGGREGATE sum(x",
          "GROUP BY", "WHERE", "WHERE =", "WHERE a=", "ORDER BY", "FORMAT",
          "LIMIT", "LIMIT x", "LET", "LET x", "LET x=", "LET x=f(",
          "SELECT ,", "AGGREGATE count,,count", "((((", "\"", "'a",
          "WHERE a<=>b", "AGGREGATE nosuchop(x)"}) {
        EXPECT_THROW(parse_calql(q), CalQLError) << q;
    }
}

// ---- WINDOW / SLIDE --------------------------------------------------------

TEST(CalQLWindow, ParseTumbling) {
    QuerySpec s = parse_calql("AGGREGATE count GROUP BY k WINDOW 10s");
    EXPECT_TRUE(s.window.enabled());
    EXPECT_EQ(s.window.duration_us, 10u * 1000000u);
    EXPECT_EQ(s.window.slide_us, 0u);            // tumbling: slide == window
    EXPECT_EQ(s.window.slide(), s.window.duration_us);
    EXPECT_EQ(s.window.pane_count(), 1u);
    EXPECT_EQ(s.window.time_attribute(), "time.offset"); // the default
}

TEST(CalQLWindow, ParseSliding) {
    QuerySpec s = parse_calql("AGGREGATE sum(x) GROUP BY k WINDOW 10s SLIDE 2s");
    EXPECT_EQ(s.window.duration_us, 10u * 1000000u);
    EXPECT_EQ(s.window.slide_us, 2u * 1000000u);
    EXPECT_EQ(s.window.pane_count(), 5u);
}

TEST(CalQLWindow, PaneCountRoundsUp) {
    QuerySpec s = parse_calql("WINDOW 10s SLIDE 3s");
    EXPECT_EQ(s.window.pane_count(), 4u); // ceil(10/3)
}

TEST(CalQLWindow, ByOverridesTimeAttribute) {
    QuerySpec s = parse_calql("AGGREGATE count WINDOW 500ms BY sim.time");
    EXPECT_EQ(s.window.attribute, "sim.time");
    EXPECT_EQ(s.window.time_attribute(), "sim.time");
}

TEST(CalQLWindow, BareNumberIsMicroseconds) {
    QuerySpec s = parse_calql("WINDOW 250");
    EXPECT_EQ(s.window.duration_us, 250u);
}

TEST(CalQLWindow, AllDurationSuffixes) {
    EXPECT_EQ(parse_calql("WINDOW 5us").window.duration_us, 5u);
    EXPECT_EQ(parse_calql("WINDOW 5ms").window.duration_us, 5000u);
    EXPECT_EQ(parse_calql("WINDOW 5s").window.duration_us, 5000000u);
    EXPECT_EQ(parse_calql("WINDOW 5m").window.duration_us, 300000000u);
    EXPECT_EQ(parse_calql("WINDOW 2h").window.duration_us, 7200000000u);
}

TEST(CalQLWindow, ClauseOrderIrrelevant) {
    QuerySpec s =
        parse_calql("WINDOW 1s SLIDE 100ms AGGREGATE count GROUP BY k");
    EXPECT_EQ(s.window.duration_us, 1000000u);
    EXPECT_EQ(s.aggregation.key.attributes, (std::vector<std::string>{"k"}));
}

TEST(CalQLWindow, ToCalqlRoundTrip) {
    for (const char* q :
         {"AGGREGATE count GROUP BY k WINDOW 10s",
          "AGGREGATE count GROUP BY k WINDOW 10s SLIDE 2s",
          "AGGREGATE sum(x) WINDOW 1500ms BY sim.time SLIDE 300ms",
          "WINDOW 250"}) {
        const QuerySpec a = parse_calql(q);
        const QuerySpec b = parse_calql(to_calql(a));
        EXPECT_EQ(a.window, b.window) << q << " -> " << to_calql(a);
    }
}

TEST(CalQLWindowErrors, ZeroDurationRejected) {
    EXPECT_THROW(parse_calql("WINDOW 0"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW 0s"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW 1s SLIDE 0ms"), CalQLError);
}

TEST(CalQLWindowErrors, BadDurationRejected) {
    EXPECT_THROW(parse_calql("WINDOW banana"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW 10parsecs"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW -5s"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW 1s SLIDE"), CalQLError);
    EXPECT_THROW(parse_calql("WINDOW 99999999999999999999s"), CalQLError);
}

TEST(CalQLWindowErrors, DuplicateWindowOrSlide) {
    for (const char* q : {"WINDOW 1s WINDOW 2s", "WINDOW 1s SLIDE 1s SLIDE 2s"}) {
        try {
            parse_calql(q);
            FAIL() << "expected CalQLError for: " << q;
        } catch (const CalQLError& e) {
            EXPECT_GT(e.position(), 0u) << q;
            EXPECT_NE(std::string(e.what()).find("duplicate"),
                      std::string::npos)
                << q;
        }
    }
}

TEST(CalQLWindowErrors, SlideWithoutWindow) {
    EXPECT_THROW(parse_calql("AGGREGATE count SLIDE 1s"), CalQLError);
}

TEST(CalQLWindowErrors, SlideLargerThanWindow) {
    try {
        parse_calql("WINDOW 1s SLIDE 2s");
        FAIL() << "expected CalQLError";
    } catch (const CalQLError& e) {
        EXPECT_NE(std::string(e.what()).find("larger than"), std::string::npos);
    }
}

TEST(CalQLErrors, ConflictingSelectAliasRejected) {
    // silent last-one-wins on AS aliases was a bug: the same column aliased
    // two different ways must be a parse error, not a quiet override
    EXPECT_THROW(parse_calql("SELECT kernel AS A, kernel AS B"), CalQLError);
    // repeating the *same* alias is harmless and stays accepted
    QuerySpec s = parse_calql("SELECT kernel AS K, kernel AS K");
    EXPECT_EQ(s.aliases.at("kernel"), "K");
}
