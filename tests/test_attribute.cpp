#include "common/attribute.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace calib;

TEST(Attribute, InvalidByDefault) {
    Attribute a;
    EXPECT_FALSE(a.valid());
    EXPECT_EQ(a.id(), invalid_id);
}

TEST(AttributeRegistry, CreateAssignsDenseIds) {
    AttributeRegistry reg;
    Attribute a = reg.create("first", Variant::Type::String);
    Attribute b = reg.create("second", Variant::Type::Int);
    EXPECT_EQ(a.id(), 0u);
    EXPECT_EQ(b.id(), 1u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(AttributeRegistry, CreateIsIdempotent) {
    AttributeRegistry reg;
    Attribute a = reg.create("attr", Variant::Type::String, prop::nested);
    // re-creation with different type/properties returns the original
    Attribute b = reg.create("attr", Variant::Type::Int, prop::as_value);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(b.type(), Variant::Type::String);
    EXPECT_TRUE(b.is_nested());
    EXPECT_FALSE(b.is_value());
}

TEST(AttributeRegistry, FindByName) {
    AttributeRegistry reg;
    reg.create("present", Variant::Type::Double);
    EXPECT_TRUE(reg.find("present").valid());
    EXPECT_FALSE(reg.find("absent").valid());
}

TEST(AttributeRegistry, GetById) {
    AttributeRegistry reg;
    Attribute a = reg.create("x", Variant::Type::Int);
    EXPECT_EQ(reg.get(a.id()).name_view(), "x");
    EXPECT_FALSE(reg.get(999).valid());
}

TEST(AttributeRegistry, Properties) {
    AttributeRegistry reg;
    Attribute a = reg.create("metric", Variant::Type::Double,
                             prop::as_value | prop::aggregatable | prop::skip_key);
    EXPECT_TRUE(a.is_value());
    EXPECT_TRUE(a.is_aggregatable());
    EXPECT_TRUE(a.skip_in_key());
    EXPECT_FALSE(a.is_nested());
    EXPECT_FALSE(a.is_hidden());
}

TEST(AttributeRegistry, GenerationTracksCreation) {
    AttributeRegistry reg;
    EXPECT_EQ(reg.generation(), 0u);
    reg.create("a", Variant::Type::Int);
    EXPECT_EQ(reg.generation(), 1u);
    reg.create("a", Variant::Type::Int); // duplicate: no change
    EXPECT_EQ(reg.generation(), 1u);
    reg.create("b", Variant::Type::Int);
    EXPECT_EQ(reg.generation(), 2u);
}

TEST(AttributeRegistry, AllReturnsEverything) {
    AttributeRegistry reg;
    reg.create("a", Variant::Type::Int);
    reg.create("b", Variant::Type::String);
    auto all = reg.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].name_view(), "a");
    EXPECT_EQ(all[1].name_view(), "b");
}

TEST(AttributeRegistry, ConcurrentCreateSameName) {
    AttributeRegistry reg;
    constexpr int n_threads = 8;
    std::vector<id_t> ids(n_threads, invalid_id);
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([&reg, &ids, t] {
            for (int i = 0; i < 200; ++i)
                ids[t] = reg.create("contested-" + std::to_string(i % 10),
                                    Variant::Type::Int)
                             .id();
        });
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(reg.size(), 10u);
    // all threads converged on valid ids
    for (id_t id : ids)
        EXPECT_LT(id, 10u);
}

TEST(AttributeRegistry, InternedNamePointersStable) {
    AttributeRegistry reg;
    const char* name = reg.create("stable", Variant::Type::Int).name();
    for (int i = 0; i < 1000; ++i)
        reg.create("filler-" + std::to_string(i), Variant::Type::Int);
    EXPECT_EQ(reg.find("stable").name(), name);
}
