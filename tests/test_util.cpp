#include "common/util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace calib::util;

TEST(Split, Basic) {
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
    auto parts = split(",a,,b,", ',');
    ASSERT_EQ(parts.size(), 5u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[4], "");
}

TEST(Split, SingleField) {
    auto parts = split("solo", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "solo");
}

TEST(SplitEscaped, HonorsEscapedSeparator) {
    auto parts = split_escaped("a\\,b,c", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], "a\\,b") << "escape sequence preserved for unescape()";
    EXPECT_EQ(parts[1], "c");
}

TEST(SplitEscaped, EscapedBackslash) {
    auto parts = split_escaped("a\\\\,b", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(unescape(parts[0]), "a\\");
}

TEST(EscapeUnescape, RoundTrip) {
    const std::string cases[] = {
        "plain", "with,comma", "with=equals", "back\\slash", "new\nline",
        "",      "all,of=it\\together\nnow", "trailing\\"};
    for (const std::string& s : cases) {
        const std::string esc = escape(s, ",=");
        EXPECT_EQ(unescape(esc), s) << "case: " << s;
        // escaped form must not contain raw separators or newlines
        for (std::size_t i = 0; i < esc.size(); ++i) {
            if (esc[i] == '\\') {
                ++i;
                continue;
            }
            EXPECT_NE(esc[i], ',');
            EXPECT_NE(esc[i], '\n');
        }
    }
}

TEST(EscapeUnescape, FieldsSurviveSplitRoundTrip) {
    const std::string fields[] = {"a,b", "c\\d", "e\nf", "plain"};
    std::string joined;
    for (const std::string& f : fields) {
        if (!joined.empty())
            joined += ',';
        joined += escape(f, ",");
    }
    auto parts = split_escaped(joined, ',');
    ASSERT_EQ(parts.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(unescape(parts[i]), fields[i]);
}

TEST(Trim, Whitespace) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(IEquals, CaseInsensitive) {
    EXPECT_TRUE(iequals("GROUP", "group"));
    EXPECT_TRUE(iequals("GrOuP", "gRoUp"));
    EXPECT_FALSE(iequals("group", "groups"));
    EXPECT_TRUE(iequals("", ""));
}

TEST(ToLower, Basic) {
    EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(LooksNumeric, Recognition) {
    EXPECT_TRUE(looks_numeric("123"));
    EXPECT_TRUE(looks_numeric("-4.5"));
    EXPECT_TRUE(looks_numeric("+7"));
    EXPECT_TRUE(looks_numeric("1e9"));
    EXPECT_TRUE(looks_numeric("2.5E-3"));
    EXPECT_FALSE(looks_numeric(""));
    EXPECT_FALSE(looks_numeric("abc"));
    EXPECT_FALSE(looks_numeric("12x"));
    EXPECT_FALSE(looks_numeric("-"));
    EXPECT_FALSE(looks_numeric("1.2.3"));
}

TEST(FormatBytes, Units) {
    EXPECT_EQ(format_bytes(512), "512.0 B");
    EXPECT_EQ(format_bytes(2048), "2.0 KiB");
    EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(ParseDuration, SuffixesAndBareMicroseconds) {
    std::uint64_t us = 0;
    EXPECT_TRUE(parse_duration("250", us));
    EXPECT_EQ(us, 250u);
    EXPECT_TRUE(parse_duration("5us", us));
    EXPECT_EQ(us, 5u);
    EXPECT_TRUE(parse_duration("5ms", us));
    EXPECT_EQ(us, 5000u);
    EXPECT_TRUE(parse_duration("10s", us));
    EXPECT_EQ(us, 10000000u);
    EXPECT_TRUE(parse_duration("2m", us));
    EXPECT_EQ(us, 120000000u);
    EXPECT_TRUE(parse_duration("1h", us));
    EXPECT_EQ(us, 3600000000u);
    EXPECT_TRUE(parse_duration("5MS", us)); // suffixes are case-insensitive
    EXPECT_EQ(us, 5000u);
}

TEST(ParseDuration, RejectsGarbageAndLeavesOutputUntouched) {
    std::uint64_t us = 42;
    EXPECT_FALSE(parse_duration("", us));
    EXPECT_FALSE(parse_duration("abc", us));
    EXPECT_FALSE(parse_duration("-5s", us));
    EXPECT_FALSE(parse_duration("5 s", us));
    EXPECT_FALSE(parse_duration("5parsecs", us));
    EXPECT_FALSE(parse_duration("s", us));
    EXPECT_FALSE(parse_duration("99999999999999999999s", us)); // overflow
    EXPECT_EQ(us, 42u); // failures never clobber the output
}

TEST(FormatDuration, PicksLargestEvenUnit) {
    EXPECT_EQ(format_duration(5), "5us");
    EXPECT_EQ(format_duration(5000), "5ms");
    EXPECT_EQ(format_duration(10000000), "10s");
    EXPECT_EQ(format_duration(120000000), "2m");
    EXPECT_EQ(format_duration(3600000000ull), "1h");
    EXPECT_EQ(format_duration(1500), "1500us"); // 1.5ms does not divide evenly
}

TEST(FormatDuration, RoundTripsThroughParse) {
    for (const std::uint64_t us :
         {1ull, 250ull, 5000ull, 10000000ull, 90000000ull, 7200000000ull}) {
        std::uint64_t back = 0;
        ASSERT_TRUE(parse_duration(format_duration(us), back));
        EXPECT_EQ(back, us);
    }
}

TEST(EnvKnobs, InvalidValuesFallBackToDefault) {
    // invalid env values must not be silently swallowed: env_size warns and
    // returns the fallback (the warning path is the observable contract
    // shared with the CLI flags; here we pin the fallback behavior)
    ::setenv("CALIB_TEST_SIZE_KNOB", "not-a-size", 1);
    EXPECT_EQ(env_size("CALIB_TEST_SIZE_KNOB", 77), 77u);
    ::setenv("CALIB_TEST_SIZE_KNOB", "4K", 1);
    EXPECT_EQ(env_size("CALIB_TEST_SIZE_KNOB", 77), 4096u);
    ::unsetenv("CALIB_TEST_SIZE_KNOB");
    EXPECT_EQ(env_size("CALIB_TEST_SIZE_KNOB", 77), 77u);

    ::setenv("CALIB_TEST_DUR_KNOB", "soon", 1);
    EXPECT_EQ(env_duration("CALIB_TEST_DUR_KNOB", 123), 123u);
    ::setenv("CALIB_TEST_DUR_KNOB", "10ms", 1);
    EXPECT_EQ(env_duration("CALIB_TEST_DUR_KNOB", 123), 10000u);
    ::unsetenv("CALIB_TEST_DUR_KNOB");
}
