#include "common/util.hpp"

#include <gtest/gtest.h>

using namespace calib::util;

TEST(Split, Basic) {
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
    auto parts = split(",a,,b,", ',');
    ASSERT_EQ(parts.size(), 5u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[4], "");
}

TEST(Split, SingleField) {
    auto parts = split("solo", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "solo");
}

TEST(SplitEscaped, HonorsEscapedSeparator) {
    auto parts = split_escaped("a\\,b,c", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], "a\\,b") << "escape sequence preserved for unescape()";
    EXPECT_EQ(parts[1], "c");
}

TEST(SplitEscaped, EscapedBackslash) {
    auto parts = split_escaped("a\\\\,b", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(unescape(parts[0]), "a\\");
}

TEST(EscapeUnescape, RoundTrip) {
    const std::string cases[] = {
        "plain", "with,comma", "with=equals", "back\\slash", "new\nline",
        "",      "all,of=it\\together\nnow", "trailing\\"};
    for (const std::string& s : cases) {
        const std::string esc = escape(s, ",=");
        EXPECT_EQ(unescape(esc), s) << "case: " << s;
        // escaped form must not contain raw separators or newlines
        for (std::size_t i = 0; i < esc.size(); ++i) {
            if (esc[i] == '\\') {
                ++i;
                continue;
            }
            EXPECT_NE(esc[i], ',');
            EXPECT_NE(esc[i], '\n');
        }
    }
}

TEST(EscapeUnescape, FieldsSurviveSplitRoundTrip) {
    const std::string fields[] = {"a,b", "c\\d", "e\nf", "plain"};
    std::string joined;
    for (const std::string& f : fields) {
        if (!joined.empty())
            joined += ',';
        joined += escape(f, ",");
    }
    auto parts = split_escaped(joined, ',');
    ASSERT_EQ(parts.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(unescape(parts[i]), fields[i]);
}

TEST(Trim, Whitespace) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(IEquals, CaseInsensitive) {
    EXPECT_TRUE(iequals("GROUP", "group"));
    EXPECT_TRUE(iequals("GrOuP", "gRoUp"));
    EXPECT_FALSE(iequals("group", "groups"));
    EXPECT_TRUE(iequals("", ""));
}

TEST(ToLower, Basic) {
    EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(LooksNumeric, Recognition) {
    EXPECT_TRUE(looks_numeric("123"));
    EXPECT_TRUE(looks_numeric("-4.5"));
    EXPECT_TRUE(looks_numeric("+7"));
    EXPECT_TRUE(looks_numeric("1e9"));
    EXPECT_TRUE(looks_numeric("2.5E-3"));
    EXPECT_FALSE(looks_numeric(""));
    EXPECT_FALSE(looks_numeric("abc"));
    EXPECT_FALSE(looks_numeric("12x"));
    EXPECT_FALSE(looks_numeric("-"));
    EXPECT_FALSE(looks_numeric("1.2.3"));
}

TEST(FormatBytes, Units) {
    EXPECT_EQ(format_bytes(512), "512.0 B");
    EXPECT_EQ(format_bytes(2048), "2.0 KiB");
    EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}
