// Caliper runtime tests: blackboard semantics, snapshot contents, and the
// event/timer/aggregate/trace/recorder service stack on a single thread.
//
// All tests share the process-global Caliper instance; each test creates
// its own uniquely-named channel and closes it before returning.
#include "calib.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

using namespace calib;
using calib::test::find_record;

namespace {

/// RAII channel: closes on destruction.
struct TestChannel {
    TestChannel(const std::string& name, const RuntimeConfig& cfg)
        : channel(Caliper::instance().create_channel(name, cfg)) {}
    ~TestChannel() { Caliper::instance().close_channel(channel); }
    Channel* operator->() const { return channel; }
    Channel* get() const { return channel; }
    Channel* channel;
};

std::vector<RecordMap> flush_records(Channel* channel) {
    std::vector<RecordMap> out;
    Caliper::instance().flush_thread(
        channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

} // namespace

TEST(Blackboard, BeginEndNesting) {
    Caliper& c        = Caliper::instance();
    const Attribute a = c.create_attribute("bb.region", Variant::Type::String);

    EXPECT_TRUE(c.current(a).empty());
    c.begin(a, Variant("outer"));
    EXPECT_EQ(c.current(a), Variant("outer"));
    c.begin(a, Variant("inner"));
    EXPECT_EQ(c.current(a), Variant("inner"));
    EXPECT_EQ(c.depth(a), 2u);
    c.end(a);
    EXPECT_EQ(c.current(a), Variant("outer"));
    c.end(a);
    EXPECT_TRUE(c.current(a).empty());
    EXPECT_EQ(c.depth(a), 0u);
}

TEST(Blackboard, EndWithoutBeginIsSafe) {
    Caliper& c        = Caliper::instance();
    const Attribute a = c.create_attribute("bb.unbalanced", Variant::Type::String);
    c.end(a); // must not crash or corrupt
    EXPECT_EQ(c.depth(a), 0u);
}

TEST(Blackboard, SetOverwritesTop) {
    Caliper& c        = Caliper::instance();
    const Attribute a = c.create_attribute("bb.value", Variant::Type::Int,
                                           prop::as_value);
    c.set(a, Variant(1));
    c.set(a, Variant(2));
    EXPECT_EQ(c.current(a), Variant(2));
    EXPECT_EQ(c.depth(a), 1u);
}

TEST(Blackboard, PullSnapshotCapturesInnermostValues) {
    Caliper& c        = Caliper::instance();
    const Attribute r = c.create_attribute("bb.snap.region", Variant::Type::String);
    const Attribute i = c.create_attribute("bb.snap.iter", Variant::Type::Int,
                                           prop::as_value);
    c.begin(r, Variant("a"));
    c.begin(r, Variant("b"));
    c.set(i, Variant(17));

    SnapshotRecord snap;
    c.pull_snapshot(snap);
    EXPECT_EQ(snap.get(r.id()), Variant("b"));
    EXPECT_EQ(snap.get(i.id()), Variant(17));

    c.end(r);
    c.end(r);
}

TEST(Runtime, EventAggregationCountsAnnotationEvents) {
    TestChannel ch("evt-agg", RuntimeConfig{
                                  {"services.enable", "event,aggregate"},
                                  {"aggregate.key", "test.fn"},
                                  {"aggregate.ops", "count"},
                              });
    Annotation fn("test.fn");
    for (int i = 0; i < 3; ++i) {
        fn.begin(Variant("work"));
        fn.end();
    }

    auto out = flush_records(ch.get());
    // begin-snapshots (before push: no value) and end-snapshots (value set)
    RecordMap in_work = find_record(out, "test.fn", Variant("work"));
    EXPECT_EQ(in_work.get("count"), Variant(3ull)) << "one end event per region";
    double total = 0;
    for (const RecordMap& r : out)
        total += r.get("count").to_double();
    EXPECT_EQ(total, 6.0) << "3 begin + 3 end events";
}

TEST(Runtime, TimerProducesPlausibleDurations) {
    TestChannel ch("evt-timer", RuntimeConfig{
                                    {"services.enable", "event,timer,aggregate"},
                                    {"aggregate.key", "test.timed"},
                                    {"aggregate.ops", "count,sum(time.duration),"
                                                      "sum(time.inclusive.duration)"},
                                });
    Annotation fn("test.timed");
    fn.begin(Variant("spin"));
    // burn a little time so durations are strictly positive
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + i * 0.5;
    fn.end();

    auto out = flush_records(ch.get());
    RecordMap in_spin = find_record(out, "test.timed", Variant("spin"));
    ASSERT_FALSE(in_spin.empty());
    EXPECT_GT(in_spin.get("sum#time.duration").to_double(), 0.0);
    EXPECT_GE(in_spin.get("sum#time.inclusive.duration").to_double(),
              in_spin.get("sum#time.duration").to_double() * 0.99)
        << "inclusive time covers the exclusive segment";
}

TEST(Runtime, TraceStoresEverySnapshot) {
    TestChannel ch("evt-trace", RuntimeConfig{
                                    {"services.enable", "event,trace"},
                                });
    Annotation fn("test.traced");
    for (int i = 0; i < 5; ++i) {
        fn.begin(Variant(i));
        fn.end();
    }
    auto out = flush_records(ch.get());
    EXPECT_EQ(out.size(), 10u) << "one trace record per begin/end event";
    // end-event records carry the region value
    int with_value = 0;
    for (const RecordMap& r : out)
        if (r.contains("test.traced"))
            ++with_value;
    EXPECT_EQ(with_value, 5);
}

TEST(Runtime, SetEventsTriggerSnapshots) {
    TestChannel ch("evt-set", RuntimeConfig{
                                  {"services.enable", "event,trace"},
                              });
    Annotation iter("test.seti", prop::as_value);
    iter.set(Variant(1));
    iter.set(Variant(2));
    EXPECT_EQ(flush_records(ch.get()).size(), 2u);
}

TEST(Runtime, SetEventsCanBeDisabled) {
    TestChannel ch("evt-noset", RuntimeConfig{
                                    {"services.enable", "event,trace"},
                                    {"event.enable_set", "false"},
                                });
    Annotation iter("test.noseti", prop::as_value);
    iter.set(Variant(1));
    iter.set(Variant(2));
    EXPECT_TRUE(flush_records(ch.get()).empty());
}

TEST(Runtime, AggregateQueryConfigWithWhere) {
    TestChannel ch("evt-query",
                   RuntimeConfig{
                       {"services.enable", "event,aggregate"},
                       {"aggregate.query",
                        "AGGREGATE count WHERE not(test.excluded) GROUP BY test.kept"},
                   });
    Annotation kept("test.kept"), excluded("test.excluded");

    kept.begin(Variant("visible"));
    kept.end();
    excluded.begin(Variant("hidden"));
    kept.begin(Variant("visible")); // while excluded is on the blackboard
    kept.end();
    excluded.end();

    auto out = flush_records(ch.get());
    double total = 0;
    for (const RecordMap& r : out) {
        EXPECT_FALSE(r.contains("test.excluded"));
        total += r.get("count").to_double();
    }
    // counted: first begin, first end, and excluded.begin (whose snapshot
    // fires *before* the excluded region lands on the blackboard)
    EXPECT_EQ(total, 3.0) << "events inside the excluded region filtered out";
}

TEST(Runtime, ClosedChannelStopsProcessing) {
    auto* channel =
        Caliper::instance().create_channel("evt-closed", RuntimeConfig{
                                                             {"services.enable",
                                                              "event,trace"},
                                                         });
    Annotation fn("test.closed");
    fn.begin(Variant(1));
    fn.end();
    auto before = flush_records(channel);
    EXPECT_EQ(before.size(), 2u);

    Caliper::instance().close_channel(channel);
    fn.begin(Variant(2));
    fn.end();
    EXPECT_EQ(flush_records(channel).size(), 2u) << "no new snapshots after close";
}

TEST(Runtime, TwoChannelsIndependentSchemes) {
    TestChannel by_fn("multi-a", RuntimeConfig{
                                     {"services.enable", "event,aggregate"},
                                     {"aggregate.key", "test.multi.fn"},
                                     {"aggregate.ops", "count"},
                                 });
    TestChannel by_iter("multi-b", RuntimeConfig{
                                       {"services.enable", "event,aggregate"},
                                       {"aggregate.key", "test.multi.iter"},
                                       {"aggregate.ops", "count"},
                                   });
    Annotation fn("test.multi.fn");
    Annotation iter("test.multi.iter", prop::as_value);
    for (int i = 0; i < 2; ++i) {
        iter.set(Variant(i));
        fn.begin(Variant("f"));
        fn.end();
    }
    auto a = flush_records(by_fn.get());
    auto b = flush_records(by_iter.get());
    EXPECT_FALSE(find_record(a, "test.multi.fn", Variant("f")).empty());
    EXPECT_FALSE(find_record(b, "test.multi.iter", Variant(1)).empty());
}

TEST(Runtime, PushSnapshotWithTriggerEntries) {
    TestChannel ch("trigger", RuntimeConfig{
                                  {"services.enable", "trace"},
                              });
    Caliper& c = Caliper::instance();
    const Attribute t =
        c.create_attribute("test.trigger", Variant::Type::Int, prop::as_value);
    SnapshotRecord trigger;
    trigger.append(t.id(), Variant(99));
    c.push_snapshot(ch.get(), &trigger);

    auto out = flush_records(ch.get());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].get("test.trigger"), Variant(99));
}

TEST(Runtime, RecorderWritesPerThreadFile) {
    calib::test::TempDir dir("recorder");
    TestChannel ch("rec", RuntimeConfig{
                              {"services.enable", "event,aggregate,recorder"},
                              {"aggregate.key", "test.rec"},
                              {"aggregate.ops", "count"},
                              {"recorder.filename", "out-%r.cali"},
                              {"recorder.directory", dir.str()},
                          });
    Caliper& c = Caliper::instance();
    c.set_thread_label("main");

    Annotation fn("test.rec");
    fn.begin(Variant("r"));
    fn.end();
    c.flush_thread(ch.get()); // recorder sink path

    auto records = CaliReader::read_file(dir.file("out-main.cali"));
    EXPECT_FALSE(records.empty());
    EXPECT_FALSE(find_record(records, "test.rec", Variant("r")).empty());
}

TEST(Runtime, ServiceListAndUnknownServiceTolerated) {
    TestChannel ch("svc", RuntimeConfig{
                              {"services.enable", "event,bogus-service,trace"},
                          });
    EXPECT_EQ(ch->services(), (std::vector<std::string>{"event", "trace"}));
    EXPECT_FALSE(ServiceRegistry::instance().available().empty());
}

TEST(Runtime, FindChannelByName) {
    TestChannel ch("findable", RuntimeConfig{});
    EXPECT_EQ(Caliper::instance().find_channel("findable"), ch.get());
    EXPECT_EQ(Caliper::instance().find_channel("no-such-channel"), nullptr);
}

TEST(Runtime, EventTriggerWhitelist) {
    TestChannel ch("evt-trigger", RuntimeConfig{
                                      {"services.enable", "event,trace"},
                                      {"event.trigger", "trig.wanted"},
                                  });
    Annotation wanted("trig.wanted"), ignored("trig.ignored");
    wanted.begin(Variant(1));
    ignored.begin(Variant(2)); // not in the trigger list: no snapshot
    ignored.end();
    wanted.end();
    EXPECT_EQ(flush_records(ch.get()).size(), 2u)
        << "only trig.wanted events trigger snapshots";
}

TEST(Runtime, EventTriggerResolvesLateAttributes) {
    // the trigger attribute is created *after* the channel
    TestChannel ch("evt-trigger-late", RuntimeConfig{
                                           {"services.enable", "event,trace"},
                                           {"event.trigger", "trig.late"},
                                       });
    Annotation late("trig.late");
    late.begin(Variant("x"));
    late.end();
    EXPECT_EQ(flush_records(ch.get()).size(), 2u);
}
