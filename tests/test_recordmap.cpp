#include "common/recordmap.hpp"

#include <gtest/gtest.h>

using namespace calib;

TEST(RecordMap, AppendAndGet) {
    RecordMap r;
    r.append("function", Variant("main"));
    r.append("count", Variant(3));
    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.get("function"), Variant("main"));
    EXPECT_EQ(r.get("count"), Variant(3));
    EXPECT_TRUE(r.get("missing").empty());
}

TEST(RecordMap, SetOverwritesFirst) {
    RecordMap r;
    r.set("a", Variant(1));
    r.set("a", Variant(2));
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.get("a"), Variant(2));
}

TEST(RecordMap, Contains) {
    RecordMap r;
    r.append("x", Variant(1));
    EXPECT_TRUE(r.contains("x"));
    EXPECT_FALSE(r.contains("y"));
}

TEST(RecordMap, Remove) {
    RecordMap r;
    r.append("a", Variant(1));
    r.append("b", Variant(2));
    r.append("a", Variant(3));
    r.remove("a");
    EXPECT_EQ(r.size(), 1u);
    EXPECT_FALSE(r.contains("a"));
    EXPECT_TRUE(r.contains("b"));
}

TEST(RecordMap, EqualityIgnoresOrder) {
    RecordMap a, b;
    a.append("x", Variant(1));
    a.append("y", Variant("s"));
    b.append("y", Variant("s"));
    b.append("x", Variant(1));
    EXPECT_EQ(a, b);
    b.set("x", Variant(2));
    EXPECT_FALSE(a == b);
}

TEST(RecordMap, EqualityRequiresSameSize) {
    RecordMap a, b;
    a.append("x", Variant(1));
    b.append("x", Variant(1));
    b.append("y", Variant(2));
    EXPECT_FALSE(a == b);
}

TEST(RecordMap, InterningKeepsNamePointersShared) {
    RecordMap a, b;
    a.append("shared-name", Variant(1));
    b.append("shared-name", Variant(2));
    EXPECT_EQ(a.begin()->first, b.begin()->first);
}

TEST(RecordMap, IterationInInsertionOrder) {
    RecordMap r;
    r.append("c", Variant(1));
    r.append("a", Variant(2));
    std::vector<std::string> names;
    for (const auto& [n, v] : r)
        names.emplace_back(n);
    EXPECT_EQ(names, (std::vector<std::string>{"c", "a"}));
}

TEST(RecordMap, ClearAndReserve) {
    RecordMap r;
    r.reserve(16);
    r.append("a", Variant(1));
    r.clear();
    EXPECT_TRUE(r.empty());
}
