// Online cross-process aggregation: merging per-rank aggregation
// databases up a binomial tree in memory must equal the offline
// two-stage path (flush per rank, re-aggregate), for any rank count and
// root (paper §VI-F: multiple ways to obtain the same end result).
#include "mpisim/online_reduce.hpp"

#include "calib.hpp"
#include "mpisim/wrapper.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <mutex>

using namespace calib;
using calib::test::find_record;

namespace {

/// Deterministic per-rank annotation workload.
void workload(int rank) {
    Annotation fn("or.fn");
    Annotation metric("or.metric", prop::as_value | prop::aggregatable);
    for (int i = 0; i < 10 + rank; ++i) {
        metric.set(Variant((rank + 1) * 10));
        fn.begin(Variant("region-" + std::to_string(i % 3)));
        fn.end();
    }
}

struct ReduceResult {
    std::vector<RecordMap> online;  ///< merged at the root, in memory
    std::vector<RecordMap> offline; ///< per-rank flushes, re-aggregated
};

ReduceResult run_and_reduce(int nprocs, int root) {
    Caliper& c       = Caliper::instance();
    static int serial = 0;
    Channel* channel = c.create_channel(
        "online-reduce-" + std::to_string(serial++),
        RuntimeConfig{{"services.enable", "event,aggregate"},
                      {"aggregate.key", "or.fn"},
                      {"aggregate.ops", "count,sum(or.metric)"}});

    ReduceResult result;
    std::mutex m;
    std::vector<RecordMap> per_rank_flushes;

    simmpi::run(nprocs, [&](simmpi::Comm& comm) {
        workload(comm.rank());
        // offline path: flush this rank's profile
        std::vector<RecordMap> mine;
        c.flush_thread(channel,
                       [&mine](RecordMap&& r) { mine.push_back(std::move(r)); });
        // online path: in-memory tree reduction
        auto merged = simmpi::reduce_channel(comm, channel, root);

        std::lock_guard<std::mutex> lock(m);
        for (RecordMap& r : mine)
            per_rank_flushes.push_back(std::move(r));
        if (comm.rank() == root)
            result.online = std::move(merged);
        else
            EXPECT_TRUE(merged.empty()) << "non-root ranks return nothing";
    });
    c.close_channel(channel);

    // offline second stage over the per-rank profiles
    result.offline = run_query(
        "AGGREGATE sum(count) AS count, sum(sum#or.metric) AS \"sum#or.metric\" "
        "GROUP BY or.fn",
        per_rank_flushes);
    return result;
}

} // namespace

class OnlineReduce : public ::testing::TestWithParam<int> {};

TEST_P(OnlineReduce, EqualsOfflineTwoStage) {
    const int nprocs     = GetParam();
    const ReduceResult r = run_and_reduce(nprocs, 0);

    ASSERT_EQ(r.online.size(), r.offline.size());
    for (const RecordMap& off : r.offline) {
        const RecordMap on = find_record(r.online, "or.fn", off.get("or.fn"));
        EXPECT_EQ(on.get("count").to_uint(), off.get("count").to_uint())
            << "key " << off.get("or.fn").to_string();
        EXPECT_DOUBLE_EQ(on.get("sum#or.metric").to_double(),
                         off.get("sum#or.metric").to_double());
    }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, OnlineReduce,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(OnlineReduceRoot, NonZeroRootReceivesResult) {
    const ReduceResult r = run_and_reduce(4, 2);
    ASSERT_FALSE(r.online.empty());
    ASSERT_EQ(r.online.size(), r.offline.size());
}

TEST(OnlineReduceTotals, CountsMatchEventTotals) {
    const int nprocs     = 3;
    const ReduceResult r = run_and_reduce(nprocs, 0);
    // total events: per rank, (10 + rank) iterations x (1 set + 2 events)
    std::uint64_t expected = 0;
    for (int rank = 0; rank < nprocs; ++rank)
        expected += static_cast<std::uint64_t>(10 + rank) * 3;
    double total = 0;
    for (const RecordMap& rec : r.online)
        total += rec.get("count").to_double();
    EXPECT_EQ(total, static_cast<double>(expected));
}
