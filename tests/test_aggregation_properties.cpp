// Property-style tests of the aggregation model's algebraic invariants,
// swept with parameterized gtest over operators, key widths, group counts,
// and partition shapes:
//
//   P1  order independence: any permutation of the input stream yields the
//       same aggregation result
//   P2  merge consistency: splitting the stream into partitions, reducing
//       each, and merging equals direct aggregation (associativity +
//       commutativity of the partial states)
//   P3  key-refinement consistency: the sum over a fine grouping equals
//       the coarse grouping's sum (removing a key attribute only merges
//       rows, never changes totals)
//   P4  serialize/deserialize is lossless for whole databases
#include "aggregate/aggregation_db.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

using namespace calib;
using calib::test::find_record;

namespace {

struct Workload {
    std::vector<RecordMap> records;
};

/// Deterministic synthetic record stream.
Workload make_workload(std::uint64_t seed, int n_records, int n_functions,
                       int n_iterations) {
    std::mt19937_64 rng(seed);
    Workload w;
    for (int i = 0; i < n_records; ++i) {
        RecordMap r;
        if (rng() % 8 != 0) // sometimes the function attribute is absent
            r.append("function",
                     Variant("fn-" + std::to_string(rng() % n_functions)));
        r.append("iteration", Variant(static_cast<long long>(rng() % n_iterations)));
        r.append("rank", Variant(static_cast<long long>(rng() % 4)));
        r.append("time", Variant(static_cast<double>(rng() % 10000) / 8.0));
        w.records.push_back(std::move(r));
    }
    return w;
}

std::vector<RecordMap> aggregate_all(const AggregationConfig& cfg,
                                     const std::vector<RecordMap>& records) {
    AttributeRegistry registry;
    AggregationDB db(cfg, &registry);
    for (const RecordMap& r : records)
        db.process_offline(r);
    return db.flush();
}

/// Approximate record equality: double values compare with a relative
/// tolerance, because streaming means/variances are only associative up to
/// floating-point rounding.
bool approx_equal(const RecordMap& a, const RecordMap& b) {
    if (a.size() != b.size())
        return false;
    for (const auto& [name, va] : a) {
        if (!b.contains(name))
            return false;
        const Variant vb = b.get(name);
        if (va.type() == Variant::Type::Double || vb.type() == Variant::Type::Double) {
            const double x = va.to_double(), y = vb.to_double();
            const double scale = std::max({std::abs(x), std::abs(y), 1.0});
            if (std::abs(x - y) > 1e-9 * scale)
                return false;
        } else if (!(va == vb)) {
            return false;
        }
    }
    return true;
}

/// Order-insensitive record-set comparison (approximate on doubles).
bool same_result(std::vector<RecordMap> a, std::vector<RecordMap> b) {
    if (a.size() != b.size())
        return false;
    for (const RecordMap& r : a) {
        auto it = std::find_if(b.begin(), b.end(), [&r](const RecordMap& candidate) {
            return approx_equal(r, candidate);
        });
        if (it == b.end())
            return false;
        b.erase(it);
    }
    return true;
}

double total_of(const std::vector<RecordMap>& records, const char* column) {
    double sum = 0;
    for (const RecordMap& r : records)
        sum += r.get(column).to_double();
    return sum;
}

struct PropertyParam {
    const char* ops;
    const char* key;
    int n_records;
    std::uint64_t seed;
};

void PrintTo(const PropertyParam& p, std::ostream* os) {
    *os << "ops=" << p.ops << " key=" << p.key << " n=" << p.n_records
        << " seed=" << p.seed;
}

class AggregationProperty : public ::testing::TestWithParam<PropertyParam> {};

} // namespace

TEST_P(AggregationProperty, OrderIndependence) {
    const PropertyParam p = GetParam();
    const AggregationConfig cfg = AggregationConfig::parse(p.ops, p.key);
    Workload w = make_workload(p.seed, p.n_records, 5, 4);

    auto base = aggregate_all(cfg, w.records);

    std::mt19937_64 rng(p.seed ^ 0xfeed);
    for (int trial = 0; trial < 3; ++trial) {
        std::shuffle(w.records.begin(), w.records.end(), rng);
        EXPECT_TRUE(same_result(base, aggregate_all(cfg, w.records)))
            << "permutation trial " << trial;
    }
}

TEST_P(AggregationProperty, MergeEqualsDirect) {
    const PropertyParam p = GetParam();
    const AggregationConfig cfg = AggregationConfig::parse(p.ops, p.key);
    const Workload w = make_workload(p.seed, p.n_records, 5, 4);

    auto direct = aggregate_all(cfg, w.records);

    for (int n_parts : {2, 3, 7}) {
        AttributeRegistry registry;
        AggregationDB merged(cfg, &registry);
        for (int part = 0; part < n_parts; ++part) {
            AttributeRegistry part_registry;
            AggregationDB partial(cfg, &part_registry);
            for (std::size_t i = part; i < w.records.size();
                 i += static_cast<std::size_t>(n_parts))
                partial.process_offline(w.records[i]);
            merged.merge_serialized(partial.serialize());
        }
        EXPECT_TRUE(same_result(direct, merged.flush())) << n_parts << " partitions";
    }
}

TEST_P(AggregationProperty, SerializeRoundTripsWholeDatabase) {
    const PropertyParam p = GetParam();
    const AggregationConfig cfg = AggregationConfig::parse(p.ops, p.key);
    const Workload w = make_workload(p.seed, p.n_records, 5, 4);

    AttributeRegistry registry;
    AggregationDB db(cfg, &registry);
    for (const RecordMap& r : w.records)
        db.process_offline(r);

    AttributeRegistry registry2;
    AggregationDB restored(cfg, &registry2);
    restored.merge_serialized(db.serialize());
    EXPECT_TRUE(same_result(db.flush(), restored.flush()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationProperty,
    ::testing::Values(
        PropertyParam{"count", "function", 200, 1},
        PropertyParam{"count,sum(time)", "function", 500, 2},
        PropertyParam{"count,sum(time)", "function,iteration", 500, 3},
        PropertyParam{"count,sum(time),min(time),max(time)", "function,iteration,rank",
                      800, 4},
        PropertyParam{"count,sum(time)", "*", 400, 5},
        PropertyParam{"avg(time),variance(time)", "function", 600, 6},
        PropertyParam{"histogram(time),count", "function,rank", 600, 7},
        PropertyParam{"count", "nonexistent.attribute", 100, 8},
        PropertyParam{"sum(time)", "iteration", 1000, 9}));

TEST(AggregationRefinement, FineGroupingSumsToCoarse) {
    const Workload w = make_workload(42, 1000, 6, 5);

    const auto coarse =
        aggregate_all(AggregationConfig::parse("count,sum(time)", "function"),
                      w.records);
    const auto fine = aggregate_all(
        AggregationConfig::parse("count,sum(time)", "function,iteration,rank"),
        w.records);
    const auto total =
        aggregate_all(AggregationConfig::parse("count,sum(time)", ""), w.records);

    EXPECT_GE(fine.size(), coarse.size());
    EXPECT_EQ(total.size(), 1u);

    EXPECT_NEAR(total_of(fine, "sum#time"), total_of(coarse, "sum#time"), 1e-6);
    EXPECT_NEAR(total_of(fine, "sum#time"), total[0].get("sum#time").to_double(),
                1e-6);
    EXPECT_EQ(total_of(fine, "count"), total_of(coarse, "count"));
    EXPECT_EQ(total[0].get("count").to_uint(), 1000u);

    // per-function cross-check: fine rows of each function sum to its coarse row
    for (const RecordMap& c : coarse) {
        if (!c.contains("function"))
            continue;
        double fine_sum = 0;
        for (const RecordMap& f : fine)
            if (f.get("function") == c.get("function"))
                fine_sum += f.get("sum#time").to_double();
        EXPECT_NEAR(fine_sum, c.get("sum#time").to_double(), 1e-6);
    }
}

TEST(AggregationRefinement, MinMaxConsistentUnderRefinement) {
    const Workload w = make_workload(77, 800, 4, 6);
    const auto coarse = aggregate_all(
        AggregationConfig::parse("min(time),max(time)", "function"), w.records);
    const auto fine = aggregate_all(
        AggregationConfig::parse("min(time),max(time)", "function,iteration"),
        w.records);

    for (const RecordMap& c : coarse) {
        double fine_min = 1e300, fine_max = -1e300;
        for (const RecordMap& f : fine)
            if (f.get("function") == c.get("function")) {
                fine_min = std::min(fine_min, f.get("min#time").to_double());
                fine_max = std::max(fine_max, f.get("max#time").to_double());
            }
        EXPECT_DOUBLE_EQ(fine_min, c.get("min#time").to_double());
        EXPECT_DOUBLE_EQ(fine_max, c.get("max#time").to_double());
    }
}

TEST(AggregationIdempotence, ReaggregatingAProfileIsIdentity) {
    // aggregating an already-aggregated profile by the same key with
    // sum-compatible ops must reproduce the profile (paper §VI-F: multiple
    // ways to obtain the same end result)
    const Workload w = make_workload(99, 500, 5, 4);
    const auto stage1 = aggregate_all(
        AggregationConfig::parse("count,sum(time)", "function"), w.records);

    AttributeRegistry registry;
    AggregationDB stage2(AggregationConfig::parse("sum(count),sum(time)", "function"),
                         &registry);
    for (const RecordMap& r : stage1)
        stage2.process_offline(r);
    const auto out = stage2.flush();

    ASSERT_EQ(out.size(), stage1.size());
    for (const RecordMap& r : stage1) {
        const RecordMap m = find_record(out, "function", r.get("function"));
        EXPECT_EQ(m.get("sum#count").to_uint(), r.get("count").to_uint());
        EXPECT_NEAR(m.get("sum#time").to_double(), r.get("sum#time").to_double(),
                    1e-9);
    }
}
