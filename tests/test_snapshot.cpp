#include "common/snapshot.hpp"

#include <gtest/gtest.h>

using namespace calib;

TEST(SnapshotRecord, StartsEmpty) {
    SnapshotRecord r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.dropped(), 0u);
}

TEST(SnapshotRecord, AppendAndGet) {
    SnapshotRecord r;
    r.append(3, Variant(42));
    r.append(1, Variant("foo"));
    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.get(3), Variant(42));
    EXPECT_EQ(r.get(1), Variant("foo"));
    EXPECT_TRUE(r.get(99).empty());
}

TEST(SnapshotRecord, ContainsChecksAttribute) {
    SnapshotRecord r;
    r.append(5, Variant(1));
    EXPECT_TRUE(r.contains(5));
    EXPECT_FALSE(r.contains(6));
}

TEST(SnapshotRecord, SetOverwritesOrAppends) {
    SnapshotRecord r;
    r.set(1, Variant(10));
    r.set(1, Variant(20));
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.get(1), Variant(20));
    r.set(2, Variant(30));
    EXPECT_EQ(r.size(), 2u);
}

TEST(SnapshotRecord, OverflowDropsAndCounts) {
    SnapshotRecord r;
    for (std::size_t i = 0; i < SnapshotRecord::max_entries + 10; ++i)
        r.append(static_cast<id_t>(i), Variant(static_cast<int>(i)));
    EXPECT_EQ(r.size(), SnapshotRecord::max_entries);
    EXPECT_EQ(r.dropped(), 10u);
}

TEST(SnapshotRecord, IterationInInsertionOrder) {
    SnapshotRecord r;
    r.append(7, Variant(1));
    r.append(2, Variant(2));
    r.append(9, Variant(3));
    std::vector<id_t> ids;
    for (const Entry& e : r)
        ids.push_back(e.attribute);
    EXPECT_EQ(ids, (std::vector<id_t>{7, 2, 9}));
}

TEST(SnapshotRecord, SortOrdersById) {
    SnapshotRecord r;
    r.append(7, Variant(1));
    r.append(2, Variant(2));
    r.append(9, Variant(3));
    r.sort();
    EXPECT_EQ(r[0].attribute, 2u);
    EXPECT_EQ(r[1].attribute, 7u);
    EXPECT_EQ(r[2].attribute, 9u);
}

TEST(SnapshotRecord, ClearResets) {
    SnapshotRecord r;
    r.append(1, Variant(1));
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.dropped(), 0u);
}

TEST(SnapshotRecord, DuplicateAttributesAllowed) {
    // append (unlike set) keeps duplicates; get returns the first
    SnapshotRecord r;
    r.append(4, Variant(1));
    r.append(4, Variant(2));
    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.get(4), Variant(1));
}

TEST(Entry, Equality) {
    EXPECT_EQ(Entry(1, Variant(2)), Entry(1, Variant(2)));
    EXPECT_FALSE(Entry(1, Variant(2)) == Entry(1, Variant(3)));
    EXPECT_FALSE(Entry(1, Variant(2)) == Entry(2, Variant(2)));
}
