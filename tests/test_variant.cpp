#include "common/variant.hpp"

#include <gtest/gtest.h>

#include <cmath>

using calib::Variant;

TEST(Variant, DefaultIsEmpty) {
    Variant v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.type(), Variant::Type::Empty);
    EXPECT_FALSE(v.is_numeric());
    EXPECT_EQ(v.to_string(), "");
}

TEST(Variant, IntConstructionAndAccess) {
    Variant v(42);
    EXPECT_EQ(v.type(), Variant::Type::Int);
    EXPECT_TRUE(v.is_numeric());
    EXPECT_EQ(v.as_int(), 42);
    EXPECT_EQ(v.to_double(), 42.0);
    EXPECT_EQ(v.to_string(), "42");
}

TEST(Variant, NegativeInt) {
    Variant v(-17LL);
    EXPECT_EQ(v.as_int(), -17);
    EXPECT_EQ(v.to_uint(), 0u) << "negative clamps to 0 in unsigned conversion";
}

TEST(Variant, UIntConstruction) {
    Variant v(18446744073709551615ull);
    EXPECT_EQ(v.type(), Variant::Type::UInt);
    EXPECT_EQ(v.as_uint(), 18446744073709551615ull);
}

TEST(Variant, DoubleConstruction) {
    Variant v(2.5);
    EXPECT_EQ(v.type(), Variant::Type::Double);
    EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
    EXPECT_EQ(v.to_int(), 2);
}

TEST(Variant, BoolConstruction) {
    EXPECT_TRUE(Variant(true).as_bool());
    EXPECT_FALSE(Variant(false).as_bool());
    EXPECT_EQ(Variant(true).to_string(), "true");
    EXPECT_EQ(Variant(true).to_double(), 1.0);
}

TEST(Variant, StringInterning) {
    Variant a("hello");
    Variant b(std::string("hello"));
    EXPECT_EQ(a.type(), Variant::Type::String);
    // interned: identical strings share the pointer
    EXPECT_EQ(a.as_cstr(), b.as_cstr());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.as_string(), "hello");
}

TEST(Variant, EmptyStringIsNotEmptyVariant) {
    Variant v("");
    EXPECT_FALSE(v.empty());
    EXPECT_TRUE(v.is_string());
    EXPECT_FALSE(v.to_bool());
}

TEST(Variant, EqualityIsTypeStrict) {
    EXPECT_NE(Variant(1), Variant(1.0));
    EXPECT_NE(Variant(1), Variant("1"));
    EXPECT_EQ(Variant(1), Variant(1));
}

TEST(Variant, CompareNumericAcrossTypes) {
    EXPECT_EQ(Variant(1).compare(Variant(1.0)), 0);
    EXPECT_LT(Variant(1).compare(Variant(2u)), 0);
    EXPECT_GT(Variant(3.5).compare(Variant(3)), 0);
}

TEST(Variant, CompareStringsLexicographic) {
    EXPECT_LT(Variant("abc").compare(Variant("abd")), 0);
    EXPECT_EQ(Variant("x").compare(Variant("x")), 0);
    EXPECT_GT(Variant("zz").compare(Variant("za")), 0);
}

TEST(Variant, CompareLargeIntegersExactly) {
    // values not representable exactly in double must still compare correctly
    const long long a = (1LL << 62) + 1;
    const long long b = (1LL << 62) + 2;
    EXPECT_LT(Variant(a).compare(Variant(b)), 0);
}

TEST(Variant, ParseTyped) {
    EXPECT_EQ(Variant::parse(Variant::Type::Int, "123").as_int(), 123);
    EXPECT_EQ(Variant::parse(Variant::Type::Int, "-5").as_int(), -5);
    EXPECT_TRUE(Variant::parse(Variant::Type::Int, "12x").empty());
    EXPECT_DOUBLE_EQ(Variant::parse(Variant::Type::Double, "2.5e3").as_double(), 2500.0);
    EXPECT_TRUE(Variant::parse(Variant::Type::Double, "abc").empty());
    EXPECT_TRUE(Variant::parse(Variant::Type::Bool, "true").as_bool());
    EXPECT_FALSE(Variant::parse(Variant::Type::Bool, "0").as_bool());
    EXPECT_EQ(Variant::parse(Variant::Type::String, "abc").as_string(), "abc");
    EXPECT_EQ(Variant::parse(Variant::Type::UInt, "99").as_uint(), 99u);
    EXPECT_TRUE(Variant::parse(Variant::Type::UInt, "-1").empty());
}

TEST(Variant, ParseGuess) {
    EXPECT_EQ(Variant::parse_guess("42").type(), Variant::Type::Int);
    EXPECT_EQ(Variant::parse_guess("42.5").type(), Variant::Type::Double);
    EXPECT_EQ(Variant::parse_guess("true").type(), Variant::Type::Bool);
    EXPECT_EQ(Variant::parse_guess("foo").type(), Variant::Type::String);
    EXPECT_EQ(Variant::parse_guess("").type(), Variant::Type::String);
    EXPECT_EQ(Variant::parse_guess("1e9").type(), Variant::Type::Double);
}

TEST(Variant, ToStringRoundTripsDoubles) {
    const double values[] = {0.0, 1.5, -3.25, 1e-9, 123456.789};
    for (double d : values) {
        Variant v(d);
        Variant parsed = Variant::parse(Variant::Type::Double, v.to_string());
        EXPECT_DOUBLE_EQ(parsed.as_double(), d);
    }
}

TEST(Variant, HashDistinguishesTypesAndValues) {
    EXPECT_NE(Variant(1).hash(), Variant(2).hash());
    EXPECT_NE(Variant(1).hash(), Variant(1.0).hash());
    EXPECT_NE(Variant("a").hash(), Variant("b").hash());
    EXPECT_EQ(Variant("same").hash(), Variant("same").hash());
    EXPECT_EQ(Variant(7).hash(), Variant(7).hash());
}

TEST(Variant, TypeNames) {
    EXPECT_STREQ(Variant::type_name(Variant::Type::Int), "int");
    EXPECT_EQ(Variant::type_from_name("double"), Variant::Type::Double);
    EXPECT_EQ(Variant::type_from_name("bogus"), Variant::Type::Empty);
    // round-trip all types
    for (auto t : {Variant::Type::Bool, Variant::Type::Int, Variant::Type::UInt,
                   Variant::Type::Double, Variant::Type::String})
        EXPECT_EQ(Variant::type_from_name(Variant::type_name(t)), t);
}

TEST(Variant, TruthinessConversions) {
    EXPECT_TRUE(Variant(1).to_bool());
    EXPECT_FALSE(Variant(0).to_bool());
    EXPECT_TRUE(Variant(0.5).to_bool());
    EXPECT_TRUE(Variant("x").to_bool());
    EXPECT_FALSE(Variant().to_bool());
}

TEST(Variant, OrderingOperatorMatchesCompare) {
    EXPECT_TRUE(Variant(1) < Variant(2));
    EXPECT_FALSE(Variant(2) < Variant(1));
    EXPECT_TRUE(Variant("a") < Variant("b"));
}

// ---- numeric-correctness hardening regressions (differential fuzzing) ----

TEST(Variant, CompareIsExactAbove2To53) {
    // 2^53 and 2^53+1 collapse to the same double; exact compare must not
    const long long big = (1ll << 53);
    EXPECT_LT(Variant(big).compare(Variant(big + 1)), 0);
    EXPECT_GT(Variant(big + 1).compare(Variant(big)), 0);
    EXPECT_EQ(Variant(static_cast<double>(big)).compare(Variant(big)), 0);
    // the double one ULP above 2^53 sits strictly between 2^53+1 and 2^53+3
    const double above = std::nextafter(static_cast<double>(big), 1e300);
    EXPECT_GT(Variant(above).compare(Variant(big + 1)), 0);
    EXPECT_LT(Variant(above).compare(Variant(big + 3)), 0);
}

TEST(Variant, CompareUIntAboveInt64Max) {
    const unsigned long long huge = 0xFFFFFFFFFFFFFFFFull;
    EXPECT_GT(Variant(huge).compare(Variant(-1ll)), 0);
    EXPECT_GT(Variant(huge).compare(Variant(1.0e18)), 0);
    EXPECT_GT(Variant(huge).compare(Variant(1.0e19)), 0);
    EXPECT_LT(Variant(huge).compare(Variant(2.0e19)), 0); // 2e19 > 2^64-1
    EXPECT_GT(Variant(huge).compare(Variant(9.0e18)), 0);
}

TEST(Variant, CompareTotalOrderWithNaN) {
    const Variant nan(std::nan(""));
    // NaN sorts after every number and equals itself: a total order, so
    // sorting rows with NaN cells is deterministic
    EXPECT_GT(nan.compare(Variant(1e308)), 0);
    EXPECT_GT(nan.compare(Variant(-1e308)), 0);
    EXPECT_EQ(nan.compare(Variant(std::nan(""))), 0);
    EXPECT_LT(Variant(0).compare(nan), 0);
}

TEST(Variant, EqualityIsBitwiseForDoubles) {
    // identity semantics: == must agree with hash() for grouping keys
    EXPECT_TRUE(Variant(std::nan("")) == Variant(std::nan("")));
    EXPECT_FALSE(Variant(0.0) == Variant(-0.0));
    EXPECT_EQ(Variant(0.0).compare(Variant(-0.0)), 0); // but they order equal
}

TEST(Variant, ToReprRoundTripsEveryDouble) {
    for (double d : {5e-324, -5e-324, 1.7976931348623157e308,
                     2.2250738585072014e-308, 0.1, 1.0 / 3.0, 1e16 + 2.0,
                     -0.0, 1e300}) {
        const Variant v(d);
        const Variant back = Variant::parse(Variant::Type::Double, v.to_repr());
        ASSERT_EQ(back.type(), Variant::Type::Double) << v.to_repr();
        EXPECT_TRUE(back == v) << v.to_repr(); // bitwise, so -0.0 survives
    }
}

TEST(Variant, ParseAcceptsSubnormals) {
    // strtod flags subnormals with ERANGE although it returns the correctly
    // rounded value; parse must not reject them (found by calib-fuzz)
    const Variant v = Variant::parse(Variant::Type::Double, "5e-324");
    ASSERT_EQ(v.type(), Variant::Type::Double);
    EXPECT_EQ(v.as_double(), 5e-324);
    EXPECT_EQ(Variant::parse_guess("4.9e-324").type(), Variant::Type::Double);
    // genuine overflow still fails the typed parse
    EXPECT_TRUE(Variant::parse(Variant::Type::Double, "1e999").empty());
}

TEST(Variant, ParseGuessKeepsLargeUIntExact) {
    const Variant v = Variant::parse_guess("18446744073709551615");
    ASSERT_EQ(v.type(), Variant::Type::UInt);
    EXPECT_EQ(v.as_uint(), 0xFFFFFFFFFFFFFFFFull);
    const Variant w = Variant::parse_guess("9223372036854775808");
    ASSERT_EQ(w.type(), Variant::Type::UInt);
    EXPECT_EQ(w.as_uint(), 9223372036854775808ull);
}
