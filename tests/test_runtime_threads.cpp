// Multi-thread runtime tests: per-thread blackboards and aggregation
// databases (paper §IV-B), per-thread flushes, and an annotation storm.
#include "calib.hpp"
#include "test_helpers.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

using namespace calib;
using calib::test::find_record;

namespace {

std::vector<RecordMap> flush_calling_thread(Channel* channel) {
    std::vector<RecordMap> out;
    Caliper::instance().flush_thread(
        channel, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

} // namespace

TEST(RuntimeThreads, BlackboardsAreThreadLocal) {
    Caliper& c        = Caliper::instance();
    const Attribute a = c.create_attribute("mt.region", Variant::Type::String);

    c.begin(a, Variant("main-value"));
    Variant seen_in_thread;
    std::thread t([&] { seen_in_thread = Caliper::instance().current(a); });
    t.join();
    c.end(a);

    EXPECT_TRUE(seen_in_thread.empty())
        << "another thread must not see this thread's blackboard";
}

TEST(RuntimeThreads, PerThreadAggregationDatabases) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "mt-agg", RuntimeConfig{{"services.enable", "event,aggregate"},
                                {"aggregate.key", "mt.fn,mt.tid"},
                                {"aggregate.ops", "count"}});

    constexpr int n_threads = 4;
    constexpr int n_events  = 100;
    std::mutex mutex;
    std::vector<std::vector<RecordMap>> per_thread(n_threads);

    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([t, channel, &mutex, &per_thread] {
            Annotation fn("mt.fn");
            Annotation tid("mt.tid", prop::as_value);
            tid.set(Variant(t));
            for (int i = 0; i < n_events; ++i) {
                fn.begin(Variant("work"));
                fn.end();
            }
            auto records = flush_calling_thread(channel);
            std::lock_guard<std::mutex> lock(mutex);
            per_thread[t] = std::move(records);
        });
    for (auto& t : threads)
        t.join();

    // each thread flushed only its own events: count for (work, t) == n_events
    for (int t = 0; t < n_threads; ++t) {
        double work_count = 0;
        for (const RecordMap& r : per_thread[t]) {
            if (r.get("mt.fn") == Variant("work")) {
                EXPECT_EQ(r.get("mt.tid").to_int(), t)
                    << "thread " << t << " saw another thread's key";
                work_count += r.get("count").to_double();
            }
        }
        EXPECT_EQ(work_count, static_cast<double>(n_events));
    }
    c.close_channel(channel);
}

TEST(RuntimeThreads, FlushAllSeesEveryThread) {
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "mt-flushall", RuntimeConfig{{"services.enable", "event,aggregate"},
                                     {"aggregate.key", "mt.fa"},
                                     {"aggregate.ops", "count"}});

    constexpr int n_threads = 3;
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([] {
            Annotation fn("mt.fa");
            fn.begin(Variant("x"));
            fn.end();
        });
    for (auto& t : threads)
        t.join();

    std::vector<RecordMap> all;
    c.flush_all(channel, [&all](RecordMap&& r) { all.push_back(std::move(r)); });
    double total = 0;
    for (const RecordMap& r : all)
        if (r.get("mt.fa") == Variant("x"))
            total += r.get("count").to_double();
    EXPECT_EQ(total, static_cast<double>(n_threads));
    c.close_channel(channel);
}

TEST(RuntimeThreads, AnnotationStormIsRaceFree) {
    // concurrent attribute creation + annotation + aggregation on many
    // threads; run under TSan to check for races
    Caliper& c       = Caliper::instance();
    Channel* channel = c.create_channel(
        "mt-storm", RuntimeConfig{{"services.enable", "event,timer,aggregate"},
                                  {"aggregate.key", "*"}});

    constexpr int n_threads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < 200; ++i) {
                Annotation fn("storm.fn" + std::to_string(i % 5));
                fn.begin(Variant(t * 1000 + i));
                Annotation inner("storm.inner");
                inner.begin(Variant("deep"));
                inner.end();
                fn.end();
            }
        });
    for (auto& t : threads)
        t.join();

    std::vector<RecordMap> all;
    c.flush_all(channel, [&all](RecordMap&& r) { all.push_back(std::move(r)); });
    double total = 0;
    for (const RecordMap& r : all)
        total += r.get("count").to_double();
    EXPECT_EQ(total, n_threads * 200.0 * 4) << "4 events per iteration";
    c.close_channel(channel);
}

TEST(RuntimeThreads, ThreadLabelsIndependent) {
    Caliper& c = Caliper::instance();
    c.set_thread_label("label-main");
    std::string other_label;
    std::thread t([&other_label] {
        Caliper& c = Caliper::instance();
        c.set_thread_label("label-worker");
        other_label = c.thread_data().label;
    });
    t.join();
    EXPECT_EQ(c.thread_data().label, "label-main");
    EXPECT_EQ(other_label, "label-worker");
}

TEST(RuntimeThreads, ThreadRegistryTracksThreads) {
    Caliper& c                = Caliper::instance();
    const std::size_t before = c.threads().size();
    std::thread t([] { Caliper::instance().thread_data(); });
    t.join();
    EXPECT_EQ(c.threads().size(), before + 1);
}
