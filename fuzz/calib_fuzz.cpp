// calib-fuzz: deterministic differential fuzzer for the query pipeline.
//
// Each seed is a complete, reproducible test case: a generated corpus plus
// a batch of generated queries, checked through the full engine matrix
// against the naive oracle (see differential.hpp). A failing seed number
// IS the bug report — rerun with --seed N to replay it, and pass --out to
// dump minimized reproducers (input.cali / query.calql / failure.txt).
//
// Usage:
//   calib-fuzz [--seed-range A:B] [--seed N] [--queries N] [--out DIR] [-v]
//   calib-fuzz --frames [--seed-range A:B] [--seed N] [-v]
//
// --frames switches to the proxyd wire-protocol fuzzer (framefuzz.hpp):
// seeded frame streams — valid, directed-violation, and byte-mutated —
// fed chunk-wise into the daemon's ingest session.
//
// Defaults to --seed-range 0:200. Exits 1 when any seed fails.
#include "differential.hpp"
#include "framefuzz.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: calib-fuzz [--seed-range A:B] [--seed N] [--queries N]\n"
                 "                  [--out DIR] [--work DIR] [--frames] [-v]\n"
                 "\n"
                 "  --seed-range A:B  run seeds A (inclusive) to B (exclusive); "
                 "default 0:200\n"
                 "  --seed N          run exactly one seed\n"
                 "  --queries N       queries per seed (default 3)\n"
                 "  --out DIR         dump minimized reproducers for failures\n"
                 "  --work DIR        scratch directory for inputs (default /tmp)\n"
                 "  --frames          fuzz the proxyd frame protocol instead of\n"
                 "                    the query pipeline\n"
                 "  -v                print every seed as it runs\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
    if (!s || !*s)
        return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (*end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::uint64_t seed_begin = 0, seed_end = 200;
    bool frames = false;
    calib::fuzz::DiffOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--frames") {
            frames = true;
        } else if (arg == "--seed-range" && i + 1 < argc) {
            const std::string range = argv[++i];
            const std::size_t colon = range.find(':');
            if (colon == std::string::npos ||
                !parse_u64(range.substr(0, colon).c_str(), &seed_begin) ||
                !parse_u64(range.substr(colon + 1).c_str(), &seed_end)) {
                std::fprintf(stderr, "calib-fuzz: bad --seed-range '%s'\n",
                             range.c_str());
                return 2;
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            if (!parse_u64(argv[++i], &seed_begin)) {
                std::fprintf(stderr, "calib-fuzz: bad --seed\n");
                return 2;
            }
            seed_end = seed_begin + 1;
        } else if (arg == "--queries" && i + 1 < argc) {
            std::uint64_t n = 0;
            if (!parse_u64(argv[++i], &n) || n == 0) {
                std::fprintf(stderr, "calib-fuzz: bad --queries\n");
                return 2;
            }
            opts.queries_per_seed = static_cast<int>(n);
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out_dir = argv[++i];
        } else if (arg == "--work" && i + 1 < argc) {
            opts.work_dir = argv[++i];
        } else if (arg == "-v" || arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "calib-fuzz: unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }
    if (seed_end < seed_begin) {
        std::fprintf(stderr, "calib-fuzz: empty seed range\n");
        return 2;
    }

    std::uint64_t failed_seeds = 0, total_failures = 0;
    for (std::uint64_t seed = seed_begin; seed < seed_end; ++seed) {
        std::vector<std::string> failures;
        if (frames) {
            failures = calib::fuzz::run_frame_seed(seed, opts.verbose).failures;
        } else {
            failures = calib::fuzz::run_seed(seed, opts).failures;
        }
        const calib::fuzz::SeedOutcome outcome{seed, std::move(failures)};
        if (outcome.ok()) {
            if (opts.verbose)
                std::fprintf(stderr, "seed %llu ok\n",
                             static_cast<unsigned long long>(seed));
            continue;
        }
        ++failed_seeds;
        total_failures += outcome.failures.size();
        std::fprintf(stderr, "seed %llu FAILED (%zu checks):\n",
                     static_cast<unsigned long long>(seed),
                     outcome.failures.size());
        for (const std::string& f : outcome.failures)
            std::fprintf(stderr, "  %s\n", f.c_str());
    }

    const std::uint64_t n_seeds = seed_end - seed_begin;
    if (failed_seeds == 0) {
        std::fprintf(stderr, "calib-fuzz: %llu seeds ok\n",
                     static_cast<unsigned long long>(n_seeds));
        return 0;
    }
    std::fprintf(stderr,
                 "calib-fuzz: %llu of %llu seeds failed (%llu checks)%s\n",
                 static_cast<unsigned long long>(failed_seeds),
                 static_cast<unsigned long long>(n_seeds),
                 static_cast<unsigned long long>(total_failures),
                 opts.out_dir.empty() ? "" : "; reproducers dumped");
    return 1;
}
