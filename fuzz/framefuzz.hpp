// Seeded frame-stream fuzzer for the calib-proxyd wire protocol.
//
// Each seed deterministically produces one client byte stream: a valid
// frame sequence (Hello, Attr definitions, Records batches, Globals,
// Queries, Bye) with tracked ground truth, optionally followed by
// byte-level mutations (bit flips, truncation, length/type corruption,
// garbage insertion). The runner feeds the stream into a transport-free
// IngestSession twice with different chunk boundaries and checks:
//
//   1. no crash, hang, or unbounded allocation on any input;
//   2. chunking invariance: frame/record/error counters and query
//      responses are identical however the bytes are split across
//      feed() calls;
//   3. ground truth for well-formed streams: exact record counts,
//      expected oversized-frame drops, expected protocol errors (some
//      seeds are *directed violations* — duplicate hello, bad version,
//      frames before hello — with known error points), and successful
//      query answers.
//
// A failing seed number IS the bug report: rerun with
// `calib-fuzz --frames --seed N` to replay it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace calib::fuzz {

struct FrameStream {
    std::vector<std::byte> bytes;

    /// False when the bytes were mutated after encoding; mutated streams
    /// are only checked for no-crash + chunking invariance.
    bool well_formed = true;

    /// Frame-size bound the session must be configured with.
    std::size_t max_frame_bytes = 0;

    // Ground truth (valid for well_formed streams only):
    std::uint64_t expected_records         = 0;
    std::uint64_t expected_dropped         = 0;
    std::uint64_t expected_protocol_errors = 0;
    std::uint32_t expected_ok_queries      = 0;
    int expected_status = 0; ///< 0 = Ok (stream ended), 1 = Closed, 2 = Error
};

/// Generate the frame stream for \a seed. Deterministic: same seed,
/// same bytes, same expectations.
FrameStream generate_frame_stream(std::uint64_t seed);

struct FrameSeedOutcome {
    std::uint64_t seed = 0;
    std::vector<std::string> failures;
    bool ok() const { return failures.empty(); }
};

/// Run the full frame-fuzz check for one seed.
FrameSeedOutcome run_frame_seed(std::uint64_t seed, bool verbose);

} // namespace calib::fuzz
