// Differential runner: one seed in, a verdict out.
//
// For each seed the runner generates a corpus and a batch of queries,
// executes every query through the full engine matrix — serial
// QueryProcessor, ParallelQueryProcessor at 1/2/4 threads, mmap and
// read()-fallback I/O, with and without forced early flushes, batched
// (default plus forced tiny batch sizes 1/2/7) and record-at-a-time
// pipelines, and a forced-spill family under a 1-byte aggregation
// memory budget — and checks three independent properties:
//
//   1. engine-family determinism: every parallel configuration sharing a
//      morsel plan produces byte-identical formatted output — including
//      record-at-a-time vs any batch size (at a fixed early-flush plan;
//      flush cuts at batch granularity, so the batch-size family runs
//      with flush off); the forced-spill family is byte-compared within
//      itself (spilled merges may regroup floating-point additions, so
//      spill-on vs spill-off is checked through the tolerant oracle
//      instead);
//   2. oracle agreement: engine (unspilled and spilled) and serial
//      results match the naive exact oracle (exactly for
//      counts/min/max/histograms/integer sums, within a forward error
//      bound for floating-point reductions);
//   3. round trips: the corpus and the query results survive
//      write -> read re-parsing value-intact (.cali always, JSON when the
//      query formats to JSON).
//
// Malformed (mutated) corpora skip the oracle and only require the
// engines to agree with each other (same rejection or same output).
// Failures shrink to a minimal reproducer (record ddmin + clause
// dropping) and can be dumped to disk.
#pragma once

#include "corpus.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace calib::fuzz {

struct DiffOptions {
    /// Directory for minimized reproducers; empty disables dumping.
    std::string out_dir;
    /// Scratch directory for the generated input files.
    std::string work_dir = "/tmp";
    int queries_per_seed = 3;
    bool verbose         = false;
};

struct SeedOutcome {
    std::uint64_t seed = 0;
    /// One entry per failed check, already shrunk when possible.
    std::vector<std::string> failures;
    bool ok() const { return failures.empty(); }
};

/// Run the full differential check for one seed.
SeedOutcome run_seed(std::uint64_t seed, const DiffOptions& opts);

/// Run one explicit (corpus, query) pair; exposed for tests and for
/// replaying dumped reproducers. Returns mismatch descriptions.
std::vector<std::string> check_case(const Corpus& corpus, const std::string& query,
                                    std::uint64_t case_salt,
                                    const DiffOptions& opts);

} // namespace calib::fuzz
