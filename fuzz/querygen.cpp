#include "querygen.hpp"

#include "fuzz_rng.hpp"

#include <algorithm>
#include <cctype>

namespace calib::fuzz {

namespace {

/// Quote an attribute name for CalQL when it contains characters the
/// tokenizer would not take as one identifier.
std::string quoted(const std::string& name) {
    bool plain = !name.empty();
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.' || c == '/' || c == ':' || c == '@' || c == '-'))
            plain = false;
    }
    if (plain)
        return name;
    std::string out = "\"";
    for (char c : name) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

std::string pick_attr(Rng& rng, const Corpus& corpus, bool numeric_only) {
    const std::vector<std::string> pool =
        numeric_only ? corpus.numeric_attributes() : corpus.attribute_names();
    if (pool.empty()) // corpus without numeric columns: fall back to any
        return corpus.attributes.empty() ? std::string("x")
                                         : corpus.attributes.front().name;
    return pool[rng.below(pool.size())];
}

/// Render a WHERE comparison literal for an attribute of the given type.
std::string filter_literal(Rng& rng, Variant::Type type) {
    // mismatched-type literals exercise the mixed-coercion compare path
    if (rng.chance(20))
        type = rng.chance(50) ? Variant::Type::String : Variant::Type::Int;
    const Variant v = adversarial_value(type, rng.next());
    if (v.is_string() || v.type() == Variant::Type::Bool) {
        std::string lit = "'";
        for (char c : v.to_string()) {
            if (c == '\'' || c == '\\')
                lit += '\\';
            lit += c;
        }
        return lit + "'";
    }
    return v.to_repr();
}

} // namespace

std::string generate_query(std::uint64_t seed, const Corpus& corpus) {
    Rng rng(seed ^ 0xf00dcafe12345678ULL);
    std::string q;
    auto clause = [&q](const std::string& text) {
        if (!q.empty())
            q += ' ';
        q += text;
    };

    // LET first (sources for later clauses); the parser accepts clauses in
    // any order, so position is free coverage — vary it
    std::string let_target;
    const bool want_let = rng.chance(30) && !corpus.attributes.empty();
    std::string let_clause;
    if (want_let) {
        let_target = "derived.v";
        static const char* fns[] = {"scale", "truncate", "ratio", "first"};
        const char* fn = fns[rng.below(4)];
        std::string args;
        if (fn == std::string("ratio") || fn == std::string("first")) {
            args = quoted(pick_attr(rng, corpus, fn == std::string("ratio"))) +
                   "," + quoted(pick_attr(rng, corpus, fn == std::string("ratio")));
        } else {
            static const char* params[] = {"2", "0.5", "1e3", "0.1"};
            args = quoted(pick_attr(rng, corpus, true)) + "," + params[rng.below(4)];
        }
        let_clause = std::string("LET ") + quoted(let_target) + "=" + fn + "(" +
                     args + ")";
    }

    const bool aggregate = rng.chance(80);
    if (aggregate) {
        static const char* ops[] = {"count", "sum",      "min",       "max",
                                    "avg",   "variance", "histogram", "percent_total"};
        std::string s = "AGGREGATE ";
        const std::size_t n_ops = 1 + rng.below(3);
        for (std::size_t i = 0; i < n_ops; ++i) {
            if (i)
                s += ',';
            const char* op = ops[rng.below(8)];
            if (op == std::string("count")) {
                s += "count";
            } else {
                // min/max take any type; the value-domain ops get numeric
                // targets (plus, sometimes, a LET target or a deliberately
                // non-numeric one to hit the ignored-input path)
                const bool any_type =
                    op == std::string("min") || op == std::string("max");
                std::string target;
                if (!let_target.empty() && rng.chance(25))
                    target = let_target;
                else if (!any_type && rng.chance(15))
                    target = pick_attr(rng, corpus, false);
                else
                    target = pick_attr(rng, corpus, !any_type);
                s += std::string(op) + "(" + quoted(target) + ")";
            }
            if (rng.chance(20))
                s += " AS alias" + std::to_string(i);
        }
        clause(s);

        const std::uint64_t grouping = rng.below(10);
        if (grouping < 4) {
            std::string g = "GROUP BY ";
            const std::size_t n_keys = 1 + rng.below(2);
            for (std::size_t i = 0; i < n_keys; ++i) {
                if (i)
                    g += ',';
                g += quoted(pick_attr(rng, corpus, false));
            }
            clause(g);
        } else if (grouping < 7) {
            clause("GROUP BY *");
        } // else: one global group
    }

    if (!let_clause.empty())
        clause(let_clause);

    const std::size_t n_filters = rng.below(3);
    if (n_filters > 0 && !corpus.attributes.empty()) {
        std::string w = "WHERE ";
        for (std::size_t i = 0; i < n_filters; ++i) {
            if (i)
                w += ',';
            const CorpusAttribute& attr =
                corpus.attributes[rng.below(corpus.attributes.size())];
            switch (rng.below(9)) {
            case 0: w += quoted(attr.name); break;
            case 1: w += "not(" + quoted(attr.name) + ")"; break;
            case 2: w += quoted("no.such.attribute"); break;
            default: {
                static const char* cmps[] = {"=", "!=", "<", "<=", ">", ">="};
                w += quoted(attr.name) + cmps[rng.below(6)] +
                     filter_literal(rng, attr.type);
                break;
            }
            }
        }
        clause(w);
    }

    if (rng.chance(40)) {
        std::string o = "ORDER BY ";
        o += quoted(pick_attr(rng, corpus, false));
        if (rng.chance(40))
            o += " DESC";
        clause(o);
    }

    // WINDOW family: trailing-window restriction over a (usually numeric)
    // time attribute. Bare durations are microseconds; adversarial values
    // land in wildly distant panes, exercising retirement and the
    // out-of-range / non-numeric / NaN drop policy on both sides of the
    // differential. Omitting BY targets the default time.offset, which the
    // corpus never defines — the all-dropped path.
    if (rng.chance(35)) {
        static const std::uint64_t widths_us[] = {1, 64, 100, 1000, 5000000};
        const std::uint64_t width_us = widths_us[rng.below(5)];
        std::string w = "WINDOW " + std::to_string(width_us);
        if (rng.chance(75))
            w += " BY " + quoted(pick_attr(rng, corpus, rng.chance(80)));
        if (rng.chance(50) && width_us > 1) {
            static const std::uint64_t divisors[] = {2, 3, 4, 8};
            const std::uint64_t slide_us =
                std::max<std::uint64_t>(1, width_us / divisors[rng.below(4)]);
            w += " SLIDE " + std::to_string(slide_us);
        }
        clause(w);
    }

    static const char* formats[] = {"table", "csv", "json", "expand", "tree"};
    clause(std::string("FORMAT ") + formats[rng.below(5)]);

    if (rng.chance(25))
        clause("LIMIT " + std::to_string(1 + rng.below(10)));

    return q;
}

} // namespace calib::fuzz
