#include "oracle.hpp"

#include "../src/aggregate/window.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace calib::fuzz {

namespace {

// -- value-domain helpers (independent re-statements of the documented
// -- policy in docs/CORRECTNESS.md, not calls into the kernel) --------------

bool is_nan_value(const Variant& v) {
    return v.type() == Variant::Type::Double && std::isnan(v.as_double());
}

bool numeric_like(const Variant& v) { return v.is_numeric() || v.is_bool(); }

long double value_as_ld(const Variant& v) {
    switch (v.type()) {
    case Variant::Type::Int:    return static_cast<long double>(v.as_int());
    case Variant::Type::UInt:   return static_cast<long double>(v.as_uint());
    case Variant::Type::Double: return static_cast<long double>(v.as_double());
    case Variant::Type::Bool:   return v.as_bool() ? 1.0L : 0.0L;
    default:                    return 0.0L;
    }
}

/// True when the value feeds the exact integer sum path (Int, Bool, and
/// UInt up to INT64_MAX); doubles and larger UInts force the double path.
bool int_path_value(const Variant& v) {
    switch (v.type()) {
    case Variant::Type::Int:
    case Variant::Type::Bool:
        return true;
    case Variant::Type::UInt:
        return v.as_uint() <=
               static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    default:
        return false;
    }
}

std::int64_t int_path_addend(const Variant& v) {
    switch (v.type()) {
    case Variant::Type::Int:  return v.as_int();
    case Variant::Type::Bool: return v.as_bool() ? 1 : 0;
    default:                  return static_cast<std::int64_t>(v.as_uint());
    }
}

/// Independent restatement of the log2 histogram binning: bin 0 takes
/// v < 1 (negatives and NaN included), the top bin is open-ended.
constexpr int kHistogramBins = 36;

int oracle_bin(double v) {
    if (std::isnan(v) || v < 1.0)
        return 0;
    for (int bin = 1; bin < kHistogramBins - 1; ++bin)
        if (v < std::ldexp(1.0, bin))
            return bin;
    return kHistogramBins - 1; // includes +inf
}

/// Mirror of the WHERE coercion policy: same-kind operands compare by
/// numeric value, mixed numeric/string operands compare textually.
int oracle_coerced_compare(const Variant& record_value, const Variant& filter_value) {
    const bool rn = numeric_like(record_value);
    const bool fn = numeric_like(filter_value);
    if (rn == fn)
        return record_value.compare(filter_value);
    return record_value.to_string().compare(filter_value.to_string());
}

bool oracle_filter(const FilterSpec& f, const RecordMap& record) {
    const Variant* v = record.find(f.attribute);
    switch (f.op) {
    case FilterSpec::Op::Exist:    return v != nullptr;
    case FilterSpec::Op::NotExist: return v == nullptr;
    default: break;
    }
    if (!v)
        return false;
    const int c = oracle_coerced_compare(*v, f.value);
    switch (f.op) {
    case FilterSpec::Op::Eq: return c == 0;
    case FilterSpec::Op::Ne: return c != 0;
    case FilterSpec::Op::Lt: return c < 0;
    case FilterSpec::Op::Le: return c <= 0;
    case FilterSpec::Op::Gt: return c > 0;
    case FilterSpec::Op::Ge: return c >= 0;
    default:                 return false;
    }
}

Variant oracle_let(const LetSpec& let, const RecordMap& record) {
    auto arg = [&](std::size_t k) {
        return k < let.args.size() ? record.get(let.args[k]) : Variant();
    };
    switch (let.fn) {
    case LetSpec::Fn::Scale: {
        const Variant v = arg(0);
        return v.is_numeric() ? Variant(v.to_double() * let.parameter) : Variant();
    }
    case LetSpec::Fn::Truncate: {
        const Variant v = arg(0);
        if (!v.is_numeric() || let.parameter <= 0.0)
            return {};
        return Variant(std::floor(v.to_double() / let.parameter) * let.parameter);
    }
    case LetSpec::Fn::Ratio: {
        const Variant a = arg(0), b = arg(1);
        if (!a.is_numeric() || !b.is_numeric() || b.to_double() == 0.0)
            return {};
        return Variant(a.to_double() / b.to_double());
    }
    case LetSpec::Fn::First:
        for (std::size_t k = 0; k < let.args.size(); ++k)
            if (Variant v = arg(k); !v.empty())
                return v;
        return {};
    }
    return {};
}

// -- per-group scalar accumulators ------------------------------------------

struct NeumaierSum {
    long double sum = 0.0L, comp = 0.0L;
    void add(long double x) {
        const long double t = sum + x;
        if (std::fabs(sum) >= std::fabs(x))
            comp += (sum - t) + x;
        else
            comp += (x - t) + sum;
        sum = t;
    }
    long double value() const { return sum + comp; }
};

struct GroupAcc {
    std::vector<std::pair<std::string, Variant>> key;
    std::uint64_t records = 0;

    struct OpAcc {
        std::uint64_t n = 0; ///< accepted inputs
        // sum / percent_total / avg
        __int128 isum   = 0;
        bool all_int    = true;
        NeumaierSum lsum;
        NeumaierSum labs;
        bool saw_inf = false;
        // min / max
        bool has_minmax = false;
        Variant minmax;
        // variance (Welford in long double)
        long double mean = 0.0L, m2 = 0.0L;
        // histogram
        std::uint64_t bins[kHistogramBins] = {};
    };
    std::vector<OpAcc> ops;
};

/// The op's input value in \a record: the first entry named after the
/// target attribute. (The result-label fallback column never exists in
/// fuzz corpora — the corpus generator excludes '#' and "count" names.)
const Variant* op_input(const AggOpConfig& op, const RecordMap& record) {
    const Variant* v = record.find(op.attribute);
    return (v && !v->empty()) ? v : nullptr;
}

void update_op(AggOp kind, GroupAcc::OpAcc& acc, const Variant& v, bool is_min) {
    switch (kind) {
    case AggOp::Count:
        break; // counted per record, not per value
    case AggOp::Sum:
    case AggOp::PercentTotal:
    case AggOp::Avg: {
        if (!numeric_like(v) || is_nan_value(v))
            return;
        ++acc.n;
        if (int_path_value(v))
            acc.isum += int_path_addend(v);
        else
            acc.all_int = false;
        const long double x = value_as_ld(v);
        acc.lsum.add(x);
        acc.labs.add(std::fabs(x));
        if (std::isinf(static_cast<double>(x)))
            acc.saw_inf = true;
        break;
    }
    case AggOp::Min:
    case AggOp::Max: {
        if (is_nan_value(v))
            return;
        ++acc.n;
        if (!acc.has_minmax || (is_min ? v.compare(acc.minmax) < 0
                                       : v.compare(acc.minmax) > 0)) {
            acc.minmax    = v;
            acc.has_minmax = true;
        }
        break;
    }
    case AggOp::Variance: {
        if (!numeric_like(v))
            return;
        const long double x = value_as_ld(v);
        if (std::isnan(static_cast<double>(x)))
            return;
        ++acc.n;
        if (std::isinf(static_cast<double>(x)))
            acc.saw_inf = true;
        const long double delta = x - acc.mean;
        acc.mean += delta / static_cast<long double>(acc.n);
        acc.m2 += delta * (x - acc.mean);
        break;
    }
    case AggOp::Histogram: {
        if (!numeric_like(v))
            return;
        ++acc.n;
        const double x = static_cast<double>(value_as_ld(v));
        ++acc.bins[oracle_bin(x)];
        break;
    }
    }
}

std::string render_histogram(const GroupAcc::OpAcc& acc) {
    int lo = 0, hi = kHistogramBins - 1;
    while (lo < hi && acc.bins[lo] == 0)
        ++lo;
    while (hi > lo && acc.bins[hi] == 0)
        --hi;
    std::string text = std::to_string(lo) + ".." + std::to_string(hi) + ":";
    for (int i = lo; i <= hi; ++i) {
        if (i > lo)
            text += '|';
        text += std::to_string(acc.bins[i]);
    }
    return text;
}

constexpr long double kEps = std::numeric_limits<double>::epsilon();
/// Tiny absolute slack covering denormal-range results, where a relative
/// bound collapses to zero.
constexpr long double kTiny = 1e-290L;
/// Overflow guard: above this magnitude double arithmetic may round to
/// inf in one association order and not another.
constexpr long double kHuge = 1e306L;

/// Forward error bound for a sum of n doubles re-associated arbitrarily.
long double sum_bound(std::uint64_t n, long double abs_sum) {
    return (static_cast<long double>(n) + 8.0L) * kEps * abs_sum + kTiny;
}

/// Finalize one op's accumulator into an oracle result.
OracleOpResult finalize_op(AggOp kind, const GroupAcc& group,
                           const GroupAcc::OpAcc& acc, long double pct_denom,
                           long double pct_denom_bound) {
    OracleOpResult r;
    switch (kind) {
    case AggOp::Count:
        r.present  = true;
        r.is_exact = true;
        r.exact    = Variant(static_cast<unsigned long long>(group.records));
        break;
    case AggOp::Sum:
        if (acc.n == 0)
            break;
        r.present = true;
        if (acc.all_int) {
            // the engine may have widened to double mid-stream (overflow is
            // order-dependent), but if it reports Int the value is exact
            r.is_exact = true;
            r.exact = Variant(static_cast<long long>(acc.isum)); // may truncate;
            // compare() against the long double reference handles the
            // >int64 case via the bounded branch below
        }
        r.approx = acc.lsum.value();
        r.bound  = sum_bound(acc.n, acc.labs.value());
        r.unbounded = acc.saw_inf || acc.labs.value() > kHuge;
        break;
    case AggOp::PercentTotal: {
        if (acc.n == 0)
            break;
        r.present = true;
        if (pct_denom_bound >= kHuge)
            r.unbounded = true; // denominator may overflow double (see caller)
        const long double num       = acc.lsum.value();
        const long double num_bound = sum_bound(acc.n, acc.labs.value());
        if (pct_denom > 0.0L) {
            r.approx = 100.0L * num / pct_denom;
            r.bound  = 100.0L * (num_bound / pct_denom +
                                std::fabs(num) * pct_denom_bound /
                                    (pct_denom * pct_denom)) +
                      kTiny;
            // a denominator within rounding distance of zero may flip the
            // engine's `> 0` guard either way
            if (pct_denom <= pct_denom_bound)
                r.unbounded = true;
        } else {
            r.approx = 0.0L;
            r.bound  = kTiny;
            // a denominator rounding to <= 0 in one association order and
            // > 0 in another flips the result to 0; treat near-zero
            // denominators as unbounded
            if (std::fabs(pct_denom) <= pct_denom_bound)
                r.unbounded = true;
        }
        if (acc.saw_inf || acc.labs.value() > kHuge)
            r.unbounded = true;
        break;
    }
    case AggOp::Min:
    case AggOp::Max:
        if (!acc.has_minmax)
            break;
        r.present  = true;
        r.is_exact = true;
        r.exact    = acc.minmax;
        break;
    case AggOp::Avg: {
        if (acc.n == 0)
            break;
        r.present = true;
        const long double n = static_cast<long double>(acc.n);
        r.approx            = acc.lsum.value() / n;
        r.bound             = sum_bound(acc.n, acc.labs.value()) / n + kTiny;
        r.unbounded         = acc.saw_inf || acc.labs.value() > kHuge;
        break;
    }
    case AggOp::Variance: {
        if (acc.n == 0)
            break;
        r.present           = true;
        const long double n = static_cast<long double>(acc.n);
        r.approx            = acc.m2 / n;
        // Welford/Chan merges keep the error within a modest multiple of
        // n * eps relative to the variance's natural scale E[x^2]
        const long double scale = acc.m2 / n + acc.mean * acc.mean;
        r.bound = 64.0L * n * kEps * scale + kTiny;
        r.unbounded = acc.saw_inf || scale > kHuge;
        break;
    }
    case AggOp::Histogram:
        if (acc.n == 0)
            break;
        r.present  = true;
        r.is_exact = true;
        r.exact    = Variant(render_histogram(acc));
        break;
    }
    return r;
}

// -- key handling -----------------------------------------------------------

std::vector<std::pair<std::string, Variant>> make_key(const QuerySpec& spec,
                                                      const RecordMap& record) {
    std::vector<std::pair<std::string, Variant>> key;
    const KeySpec& ks = spec.aggregation.key;
    if (ks.all) {
        // every entry that is not an aggregation input or result column
        for (const auto& [name, value] : record) {
            bool skip = false;
            for (const AggOpConfig& op : spec.aggregation.ops) {
                if ((!op.attribute.empty() && op.attribute == name) ||
                    AggOpConfig{op.op, op.attribute, ""}.result_label() == name) {
                    skip = true;
                    break;
                }
            }
            if (!skip)
                key.emplace_back(name, value);
        }
        // canonical order for key identity: duplicates keep record order
        std::stable_sort(key.begin(), key.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
    } else {
        for (const std::string& attr : ks.attributes) {
            const Variant* v = record.find(attr);
            if (v && !v->empty())
                key.emplace_back(attr, *v);
            // absent key attributes are omitted from the output row
        }
    }
    return key;
}

bool key_equal(const std::vector<std::pair<std::string, Variant>>& a,
               const std::vector<std::pair<std::string, Variant>>& b) {
    if (a.size() != b.size())
        return false;
    // multiset equality; keys are small, quadratic matching is fine
    std::vector<bool> used(b.size(), false);
    for (const auto& [name, value] : a) {
        bool found = false;
        for (std::size_t i = 0; i < b.size(); ++i) {
            if (!used[i] && b[i].first == name && b[i].second == value) {
                used[i] = true;
                found   = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

std::string render_key(const std::vector<std::pair<std::string, Variant>>& key) {
    std::string out = "{";
    for (const auto& [name, value] : key)
        out += name + "=" + value.to_repr() + ",";
    return out + "}";
}

} // namespace

OracleResult oracle_run(const QuerySpec& spec, const std::vector<RecordMap>& input) {
    OracleResult result;
    result.aggregated = spec.has_aggregation();

    // LET -> WHERE
    std::vector<RecordMap> records;
    for (const RecordMap& original : input) {
        RecordMap record = original;
        for (const LetSpec& let : spec.lets)
            if (Variant v = oracle_let(let, record); !v.empty())
                record.set(let.target, v);
        bool pass = true;
        for (const FilterSpec& f : spec.filters)
            if (!oracle_filter(f, record)) {
                pass = false;
                break;
            }
        if (pass)
            records.push_back(std::move(record));
    }

    // WINDOW: route surviving records by the shared pane arithmetic (the
    // one declarative statement both sides use), find the watermark, and
    // keep only the trailing live range. Records without a usable pane —
    // missing time attribute, non-numeric value, NaN/inf, out-of-range —
    // drop, per docs/CORRECTNESS.md. This mirrors the engine's order of
    // operations: windowing sits after LET and WHERE.
    if (spec.window.enabled()) {
        const std::string time_attr = spec.window.time_attribute();
        std::vector<std::optional<std::int64_t>> panes;
        std::optional<std::int64_t> watermark;
        panes.reserve(records.size());
        for (const RecordMap& record : records) {
            const std::optional<std::int64_t> p =
                pane_index(record.get(time_attr), spec.window.slide());
            if (p && (!watermark || *p > *watermark))
                watermark = *p;
            panes.push_back(p);
        }
        std::vector<RecordMap> live;
        if (watermark) {
            const std::int64_t floor =
                *watermark -
                static_cast<std::int64_t>(spec.window.pane_count()) + 1;
            for (std::size_t i = 0; i < records.size(); ++i)
                if (panes[i] && *panes[i] >= floor)
                    live.push_back(std::move(records[i]));
        }
        records = std::move(live);
    }

    if (!result.aggregated) {
        result.records = std::move(records);
        return result;
    }

    const std::vector<AggOpConfig>& ops = spec.aggregation.ops;
    std::vector<GroupAcc> groups;
    for (const RecordMap& record : records) {
        auto key = make_key(spec, record);
        GroupAcc* group = nullptr;
        for (GroupAcc& g : groups)
            if (key_equal(g.key, key)) {
                group = &g;
                break;
            }
        if (!group) {
            groups.emplace_back();
            group      = &groups.back();
            group->key = std::move(key);
            group->ops.resize(ops.size());
        }
        ++group->records;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].op == AggOp::Count)
                continue;
            const Variant* v = op_input(ops[i], record);
            if (v)
                update_op(ops[i].op, group->ops[i], *v, ops[i].op == AggOp::Min);
        }
    }

    // percent_total denominators: the engine sums the per-group doubles
    std::vector<long double> denoms(ops.size(), 0.0L);
    std::vector<long double> denom_bounds(ops.size(), 0.0L);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].op != AggOp::PercentTotal)
            continue;
        NeumaierSum d, dabs;
        std::uint64_t n = 0;
        for (const GroupAcc& g : groups) {
            d.add(g.ops[i].lsum.value());
            dabs.add(std::fabs(g.ops[i].lsum.value()));
            n += g.ops[i].n;
        }
        denoms[i]       = d.value();
        denom_bounds[i] = sum_bound(n + groups.size(), dabs.value());
        // when the absolute mass exceeds double range the engine's
        // double-precision denominator can overflow to inf in some
        // association orders (making every group's percentage +/-0) even
        // though the cancelled long double total is moderate; signal
        // finalize_op with a sentinel bound
        if (dabs.value() > kHuge)
            denom_bounds[i] = kHuge;
    }

    for (const GroupAcc& g : groups) {
        OracleGroup og;
        og.key = g.key;
        for (std::size_t i = 0; i < ops.size(); ++i)
            og.ops.push_back(
                finalize_op(ops[i].op, g, g.ops[i], denoms[i], denom_bounds[i]));
        result.groups.push_back(std::move(og));
    }
    return result;
}

namespace {

/// Check one engine result cell against one oracle op result.
bool cell_matches(const OracleOpResult& expected, const Variant& actual,
                  std::string* why) {
    if (expected.unbounded)
        return true;
    if (expected.is_exact) {
        // min/max may surface any compare-equal representative (Int 1 vs
        // Double 1.0 depends on arrival order) -> compare by value
        if (actual.compare(expected.exact) == 0)
            return true;
        // an integer sum the engine widened to double mid-stream still has
        // a bounded-double fallback below
        if (expected.bound == 0.0L) {
            *why = "expected " + expected.exact.to_repr() + ", got " +
                   actual.to_repr();
            return false;
        }
    }
    if (!numeric_like(actual)) {
        *why = "expected a numeric near " + std::to_string((double)expected.approx) +
               ", got '" + actual.to_string() + "'";
        return false;
    }
    const long double got = value_as_ld(actual);
    if (std::isnan((double)got) && std::isnan((double)expected.approx))
        return true;
    const long double err = std::fabs(got - expected.approx);
    if (err <= expected.bound)
        return true;
    *why = "expected " + std::to_string((double)expected.approx) + " +/- " +
           std::to_string((double)expected.bound) + ", got " + actual.to_repr() +
           " (err " + std::to_string((double)err) + ")";
    return false;
}

} // namespace

std::vector<std::string> oracle_compare(const QuerySpec& spec,
                                        const OracleResult& oracle,
                                        const std::vector<RecordMap>& engine_rows) {
    std::vector<std::string> mismatches;
    const bool subset = spec.limit > 0;

    if (!oracle.aggregated) {
        // passthrough: multiset match of records
        if (!subset && engine_rows.size() != oracle.records.size())
            mismatches.push_back("row count: engine " +
                                 std::to_string(engine_rows.size()) + ", oracle " +
                                 std::to_string(oracle.records.size()));
        if (subset &&
            engine_rows.size() != std::min(spec.limit, oracle.records.size()))
            mismatches.push_back("limited row count: engine " +
                                 std::to_string(engine_rows.size()) + ", oracle " +
                                 std::to_string(oracle.records.size()) + " limit " +
                                 std::to_string(spec.limit));
        std::vector<bool> used(oracle.records.size(), false);
        for (const RecordMap& row : engine_rows) {
            bool found = false;
            for (std::size_t i = 0; i < oracle.records.size(); ++i) {
                if (!used[i] && oracle.records[i] == row && row == oracle.records[i]) {
                    used[i] = true;
                    found   = true;
                    break;
                }
            }
            if (!found)
                mismatches.push_back("engine row has no oracle match");
        }
        return mismatches;
    }

    const std::vector<AggOpConfig>& ops = spec.aggregation.ops;
    if (!subset && engine_rows.size() != oracle.groups.size())
        mismatches.push_back("group count: engine " +
                             std::to_string(engine_rows.size()) + ", oracle " +
                             std::to_string(oracle.groups.size()));
    if (subset && engine_rows.size() != std::min(spec.limit, oracle.groups.size()))
        mismatches.push_back("limited group count: engine " +
                             std::to_string(engine_rows.size()) + ", oracle " +
                             std::to_string(oracle.groups.size()) + " limit " +
                             std::to_string(spec.limit));

    std::vector<bool> used(oracle.groups.size(), false);
    for (const RecordMap& row : engine_rows) {
        // the row's key part: every column that is not a result label
        std::vector<std::pair<std::string, Variant>> key;
        for (const auto& [name, value] : row) {
            bool is_result = false;
            for (const AggOpConfig& op : ops)
                if (op.result_label() == name) {
                    is_result = true;
                    break;
                }
            if (!is_result)
                key.emplace_back(name, value);
        }

        const OracleGroup* match = nullptr;
        for (std::size_t i = 0; i < oracle.groups.size(); ++i) {
            if (!used[i] && key_equal(oracle.groups[i].key, key)) {
                used[i] = true;
                match   = &oracle.groups[i];
                break;
            }
        }
        if (!match) {
            mismatches.push_back("engine group " + render_key(key) +
                                 " has no oracle group");
            continue;
        }

        for (std::size_t i = 0; i < ops.size(); ++i) {
            const std::string label = ops[i].result_label();
            const Variant* cell     = row.find(label);
            const OracleOpResult& expected = match->ops[i];
            if (!expected.present) {
                if (cell && !expected.unbounded)
                    mismatches.push_back(render_key(key) + " " + label +
                                         ": engine emitted " + cell->to_repr() +
                                         ", oracle expected no value");
                continue;
            }
            if (!cell) {
                if (!expected.unbounded)
                    mismatches.push_back(render_key(key) + " " + label +
                                         ": engine emitted nothing, oracle expected a value");
                continue;
            }
            std::string why;
            if (!cell_matches(expected, *cell, &why))
                mismatches.push_back(render_key(key) + " " + label + ": " + why);
        }
    }
    return mismatches;
}

} // namespace calib::fuzz
