// Seeded adversarial corpus generator.
//
// Each seed deterministically produces one dataset: a set of typed
// attributes, a list of ground-truth records stressing the numeric and
// textual edge domains (INT64_MIN/MAX, UINT64_MAX, NaN, +/-inf, -0.0,
// denormals, empty strings, delimiter/escape characters, CRLF), and the
// .cali stream text serializing them. Well-formed seeds keep the records
// as ground truth for the oracle; mutation seeds additionally corrupt the
// stream bytes (truncation, duplicated/garbled lines) and are checked for
// engine-vs-engine agreement only.
#pragma once

#include "../src/common/recordmap.hpp"
#include "../src/common/variant.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace calib::fuzz {

struct CorpusAttribute {
    std::string name;
    Variant::Type type = Variant::Type::Int;
};

struct Corpus {
    /// Ground-truth records (what the stream means). Empty for mutated
    /// streams, which have no reliable ground truth.
    std::vector<RecordMap> records;

    /// The serialized .cali stream the engines will read.
    std::string cali_text;

    /// False when cali_text was byte-mutated after serialization; such
    /// corpora are only checked for cross-engine agreement.
    bool well_formed = true;

    std::vector<CorpusAttribute> attributes;

    /// Names of attributes whose type is Int/UInt/Double (aggregation
    /// targets for the query generator).
    std::vector<std::string> numeric_attributes() const;
    /// All attribute names (grouping/filter candidates).
    std::vector<std::string> attribute_names() const;
};

/// Generate the corpus for \a seed. Deterministic: same seed, same bytes.
/// Roughly one seed in five is a mutation seed (well_formed == false).
Corpus generate_corpus(std::uint64_t seed);

/// Generate one adversarial value of the given type (exposed for tests).
Variant adversarial_value(Variant::Type type, std::uint64_t seed);

} // namespace calib::fuzz
