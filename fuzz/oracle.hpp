// Naive reference aggregator for the differential fuzz harness.
//
// Replays a QuerySpec over ground-truth records with simple, obviously
// correct scalar code: one pass per group, exact integer sums in
// __int128, floating-point reference values in long double with Neumaier
// compensation, and a forward error bound per result so legitimate
// re-association differences (the engine reduces in a morsel tree) are
// accepted while real numeric bugs are not. Deliberately shares nothing
// with AggregationDB / kernel.cpp beyond the Variant value type.
#pragma once

#include "../src/common/recordmap.hpp"
#include "../src/query/queryspec.hpp"

#include <string>
#include <vector>

namespace calib::fuzz {

struct OracleOpResult {
    bool present = false;  ///< whether the op emits a column for this group
    /// Exact expected value (count, int sums, min/max, histogram string).
    Variant exact;
    bool is_exact = false; ///< exact comparison vs bounded comparison
    /// Bounded comparison: reference value and absolute error bound.
    long double approx = 0.0L;
    long double bound  = 0.0L;
    /// Overflow/inf domain: result value depends on association order —
    /// only cross-engine agreement is checkable.
    bool unbounded = false;
};

struct OracleGroup {
    /// Group key as (attribute name, value) pairs; absent explicit key
    /// attributes are omitted, mirroring the engine's output rows.
    std::vector<std::pair<std::string, Variant>> key;
    std::vector<OracleOpResult> ops; ///< parallel to spec.aggregation.ops
};

struct OracleResult {
    bool aggregated = false;
    std::vector<OracleGroup> groups;   ///< when aggregated
    std::vector<RecordMap> records;    ///< passthrough output otherwise
};

/// Run \a spec over \a input (LET -> WHERE -> aggregate; no sort/limit —
/// comparisons are order-insensitive).
OracleResult oracle_run(const QuerySpec& spec, const std::vector<RecordMap>& input);

/// Check the engine's result rows against the oracle. When the query has
/// a LIMIT, rows are checked as a subset (the engine's ORDER BY decides
/// which rows survive); otherwise as an exact multiset.
/// Returns human-readable mismatch descriptions; empty means agreement.
std::vector<std::string> oracle_compare(const QuerySpec& spec,
                                        const OracleResult& oracle,
                                        const std::vector<RecordMap>& engine_rows);

} // namespace calib::fuzz
