#include "corpus.hpp"

#include "fuzz_rng.hpp"

#include "../src/io/caliwriter.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace calib::fuzz {

namespace {

// Attribute-name pool. Deliberately excludes '#' and the name "count":
// those collide with aggregation result labels ("sum#x", "count"), which
// triggers the re-aggregation fallback path and would make the oracle's
// grouping model diverge from a plain first-stage query.
const std::vector<std::string>& name_pool() {
    static const std::vector<std::string> pool = {
        "region",   "time.duration", "loop.iteration", "mpi.rank",
        "site/block", "phase:init",  "mem@node",       "x",
        "a-b",      "odd name",      "q=val",          "c,d",
    };
    return pool;
}

std::int64_t adversarial_int(Rng& rng) {
    switch (rng.below(12)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return std::numeric_limits<std::int64_t>::max();
    case 4: return std::numeric_limits<std::int64_t>::min();
    case 5: return std::numeric_limits<std::int64_t>::max() - 1;
    case 6: return std::numeric_limits<std::int64_t>::min() + 1;
    case 7: return std::int64_t(1) << 53; // first integer double can't count past
    case 8: return (std::int64_t(1) << 53) + 1;
    case 9: return -(std::int64_t(1) << 62);
    case 10: return static_cast<std::int64_t>(rng.below(1000)) - 500;
    default: return rng.int64();
    }
}

std::uint64_t adversarial_uint(Rng& rng) {
    switch (rng.below(8)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return std::numeric_limits<std::uint64_t>::max();
    case 3: return std::numeric_limits<std::uint64_t>::max() - 1;
    case 4: return std::uint64_t(1) << 63; // just past INT64_MAX
    case 5: return static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max());
    case 6: return rng.below(1000);
    default: return rng.next();
    }
}

double adversarial_double(Rng& rng) {
    switch (rng.below(16)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::quiet_NaN();
    case 3: return std::numeric_limits<double>::infinity();
    case 4: return -std::numeric_limits<double>::infinity();
    case 5: return std::numeric_limits<double>::denorm_min();
    case 6: return -std::numeric_limits<double>::denorm_min();
    case 7: return std::numeric_limits<double>::max();
    case 8: return std::numeric_limits<double>::min();
    case 9: return 0.1;
    case 10: return 1.0 / 3.0;
    case 11: return 1e16 + 1.0; // not exactly representable neighborhood
    case 12: return -1e300 * rng.unit();
    case 13: return std::ldexp(rng.unit() + 1.0,
                               static_cast<int>(rng.below(600)) - 300);
    case 14: return static_cast<double>(rng.int64());
    default: return rng.unit() * 1000.0 - 500.0;
    }
}

std::string adversarial_string(Rng& rng) {
    switch (rng.below(12)) {
    case 0: return "";
    case 1: return "a,b";
    case 2: return "x=y";
    case 3: return "back\\slash";
    case 4: return "line\nbreak";
    case 5: return "crlf\r\n";
    case 6: return "ends with cr\r";
    case 7: return " padded ";
    case 8: return "\xc3\xa9\xe2\x98\x83"; // UTF-8 passes through byte-exact
    case 9: return std::string(300, 'x');
    case 10: return "123"; // numeric-looking string
    default: {
        std::string s;
        const std::size_t n = rng.below(12);
        for (std::size_t i = 0; i < n; ++i)
            s += static_cast<char>('a' + rng.below(26));
        return s;
    }
    }
}

/// Byte-level mutations for malformed-input seeds. The result has no
/// ground truth; engines are only checked for agreement on it.
void mutate(std::string& text, Rng& rng) {
    if (text.empty())
        return;
    const std::size_t n_mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < n_mutations; ++m) {
        const std::size_t pos = rng.below(text.size());
        switch (rng.below(6)) {
        case 0: // truncate (mid-line, mid-escape, mid-field...)
            text.resize(pos);
            break;
        case 1: // flip one byte to printable garbage
            text[pos] = static_cast<char>('!' + rng.below(90));
            break;
        case 2: // delete one byte
            text.erase(pos, 1);
            break;
        case 3: // insert a delimiter byte
            text.insert(pos, 1, ",=\\\n"[rng.below(4)]);
            break;
        case 4: { // duplicate a whole line (duplicate A definitions, records)
            const std::size_t ls = text.rfind('\n', pos);
            const std::size_t start = ls == std::string::npos ? 0 : ls + 1;
            std::size_t end = text.find('\n', pos);
            if (end == std::string::npos)
                end = text.size();
            const std::string line = text.substr(start, end - start);
            text.insert(start, line + "\n");
            break;
        }
        default: // reference an undefined attribute id
            text += "\nR,999999=zzz";
            break;
        }
        if (text.empty())
            return;
    }
}

} // namespace

Variant adversarial_value(Variant::Type type, std::uint64_t seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    switch (type) {
    case Variant::Type::Int:    return Variant(static_cast<long long>(adversarial_int(rng)));
    case Variant::Type::UInt:   return Variant(static_cast<unsigned long long>(adversarial_uint(rng)));
    case Variant::Type::Double: return Variant(adversarial_double(rng));
    case Variant::Type::Bool:   return Variant(rng.below(2) == 1);
    case Variant::Type::String: return Variant(adversarial_string(rng));
    default:                    return Variant();
    }
}

std::vector<std::string> Corpus::numeric_attributes() const {
    std::vector<std::string> out;
    for (const CorpusAttribute& a : attributes)
        if (a.type == Variant::Type::Int || a.type == Variant::Type::UInt ||
            a.type == Variant::Type::Double)
            out.push_back(a.name);
    return out;
}

std::vector<std::string> Corpus::attribute_names() const {
    std::vector<std::string> out;
    for (const CorpusAttribute& a : attributes)
        out.push_back(a.name);
    return out;
}

Corpus generate_corpus(std::uint64_t seed) {
    Rng rng(seed);
    Corpus corpus;

    // 2..6 attributes with stable types (attributes are typed in the
    // stream; per-record type drift is a separate, malformed-input case)
    const std::size_t n_attrs = 2 + rng.below(5);
    std::vector<std::string> names = name_pool();
    for (std::size_t i = 0; i < n_attrs && !names.empty(); ++i) {
        const std::size_t pick = rng.below(names.size());
        CorpusAttribute attr;
        attr.name = names[pick];
        names.erase(names.begin() + static_cast<std::ptrdiff_t>(pick));
        static const Variant::Type types[] = {
            Variant::Type::Int,    Variant::Type::UInt, Variant::Type::Double,
            Variant::Type::Double, Variant::Type::String, Variant::Type::Bool,
        };
        attr.type = types[rng.below(6)];
        corpus.attributes.push_back(attr);
    }

    // a small value pool per attribute keeps group cardinality low enough
    // that groups actually accumulate more than one record
    std::vector<std::vector<Variant>> pools(corpus.attributes.size());
    for (std::size_t a = 0; a < corpus.attributes.size(); ++a) {
        const std::size_t pool_size = 1 + rng.below(6);
        for (std::size_t i = 0; i < pool_size; ++i)
            pools[a].push_back(adversarial_value(corpus.attributes[a].type, rng.next()));
    }

    const std::size_t n_records = rng.below(80);
    for (std::size_t r = 0; r < n_records; ++r) {
        RecordMap record;
        for (std::size_t a = 0; a < corpus.attributes.size(); ++a) {
            if (rng.chance(75))
                record.append(corpus.attributes[a].name, rng.pick(pools[a]));
        }
        corpus.records.push_back(std::move(record));
    }

    std::ostringstream os;
    CaliWriter writer(os);
    if (rng.chance(30))
        writer.write_global("fuzz.seed", Variant(static_cast<unsigned long long>(seed)));
    for (const RecordMap& record : corpus.records)
        writer.write_record(record);
    corpus.cali_text = os.str();

    if (seed % 5 == 4) { // every fifth seed: malformed-input class
        mutate(corpus.cali_text, rng);
        corpus.records.clear();
        corpus.well_formed = false;
    }
    return corpus;
}

} // namespace calib::fuzz
