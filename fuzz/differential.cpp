#include "differential.hpp"

#include "fuzz_rng.hpp"
#include "oracle.hpp"
#include "querygen.hpp"

#include "../src/engine/parallel_processor.hpp"
#include "../src/io/calireader.hpp"
#include "../src/io/caliwriter.hpp"
#include "../src/io/filebuffer.hpp"
#include "../src/io/jsonreader.hpp"
#include "../src/query/calql.hpp"
#include "../src/query/processor.hpp"

#include <cmath>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace calib::fuzz {

namespace {

namespace fs = std::filesystem;

/// Tolerant value equality for round-trip checks: strings and bools are
/// type-strict, numerics compare by value (a serialized Double 5.0 may
/// legally come back as Int 5 through a type-drifted column).
bool value_equivalent(const Variant& a, const Variant& b) {
    const bool an = a.is_numeric() || a.is_bool();
    const bool bn = b.is_numeric() || b.is_bool();
    if (an != bn)
        return false;
    if (an)
        return a.compare(b) == 0;
    return a == b;
}

bool rows_equivalent(const RecordMap& a, const RecordMap& b) {
    if (a.size() != b.size())
        return false;
    for (const auto& [name, value] : a) {
        const Variant* other = b.find(name);
        if (!other || !value_equivalent(value, *other))
            return false;
    }
    return true;
}

/// A scratch input file that cleans up after itself.
class TempFile {
public:
    TempFile(const std::string& dir, const std::string& name,
             const std::string& content)
        : path_(dir + "/" + name) {
        std::ofstream os(path_, std::ios::binary);
        os << content;
    }
    ~TempFile() {
        std::error_code ec;
        fs::remove(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

struct EngineRun {
    std::string label;
    bool threw = false;
    std::string error;
    std::string output;
    std::vector<RecordMap> rows;
};

EngineRun run_engine(const QuerySpec& spec, const std::string& path,
                     std::size_t threads, bool use_mmap,
                     std::size_t morsel_bytes, std::size_t flush_limit,
                     bool batched, std::size_t batch_size,
                     std::size_t memory_budget,
                     engine::MergeStrategy strategy =
                         engine::MergeStrategy::Adaptive) {
    EngineRun run;
    run.label = "t" + std::to_string(threads) + (use_mmap ? "/mmap" : "/read") +
                "/m" + std::to_string(morsel_bytes) +
                (flush_limit ? "/flush" : "") +
                (batched ? "/b" + std::to_string(batch_size) : "/rec") +
                (memory_budget ? "/spill" : "");
    if (strategy != engine::MergeStrategy::Adaptive)
        run.label += std::string("/") + engine::merge_strategy_name(strategy);
    const bool mmap_before = FileBuffer::mmap_enabled();
    FileBuffer::set_mmap_enabled(use_mmap);
    try {
        engine::EngineOptions opts;
        opts.threads         = threads;
        opts.bytes_per_morsel = morsel_bytes;
        if (flush_limit)
            opts.max_partial_entries = flush_limit;
        opts.batched    = batched;
        opts.batch_size = batch_size;
        // explicit (not the SIZE_MAX sentinel), so CALIB_AGG_MEM in the
        // environment cannot perturb fuzz determinism; same for the merge
        // strategy vs CALIB_MERGE_STRATEGY
        opts.agg_memory_budget = memory_budget;
        opts.merge_strategy    = strategy;
        engine::ParallelQueryProcessor engine(spec, opts);
        QueryProcessor& proc = engine.run({path});
        std::ostringstream os;
        proc.write(os);
        run.output = os.str();
        run.rows   = proc.result();
    } catch (const std::exception& e) {
        run.threw = true;
        run.error = e.what();
    }
    FileBuffer::set_mmap_enabled(mmap_before);
    return run;
}

std::string first_difference(const std::string& a, const std::string& b) {
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    return "byte " + std::to_string(i) + " (sizes " + std::to_string(a.size()) +
           " vs " + std::to_string(b.size()) + ")";
}

void check_json_roundtrip(const QuerySpec& spec,
                          const std::vector<RecordMap>& rows,
                          const std::string& json_text,
                          std::vector<std::string>* failures) {
    std::vector<RecordMap> parsed;
    try {
        parsed = read_json_records(std::string_view(json_text));
    } catch (const std::exception& e) {
        failures->push_back(std::string("json round-trip: formatter output "
                                        "does not re-parse: ") +
                            e.what());
        return;
    }
    // expected: the result rows under their display names (JSON emits
    // aliases), minus non-finite doubles (emitted as null, which the
    // reader maps to an absent field)
    std::vector<RecordMap> expected;
    for (const RecordMap& row : rows) {
        RecordMap e;
        for (const auto& [name, value] : row) {
            if (value.type() == Variant::Type::Double &&
                !std::isfinite(value.as_double()))
                continue;
            const auto alias = spec.aliases.find(name);
            e.append(alias != spec.aliases.end() ? alias->second : name, value);
        }
        expected.push_back(std::move(e));
    }
    if (parsed.size() != expected.size()) {
        failures->push_back("json round-trip: " + std::to_string(parsed.size()) +
                            " rows re-parsed, expected " +
                            std::to_string(expected.size()));
        return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (!rows_equivalent(expected[i], parsed[i])) {
            failures->push_back("json round-trip: row " + std::to_string(i) +
                                " changed value across write -> parse");
            return;
        }
    }
}

void check_cali_roundtrip(const std::vector<RecordMap>& rows,
                          std::vector<std::string>* failures,
                          const std::string& what) {
    std::ostringstream os;
    CaliWriter writer(os);
    for (const RecordMap& row : rows)
        writer.write_record(row);
    const std::string text = os.str();
    std::vector<RecordMap> parsed;
    try {
        std::istringstream is(text);
        parsed = CaliReader::read_all(is);
    } catch (const std::exception& e) {
        failures->push_back(what + " round-trip: written stream does not "
                                   "re-parse: " +
                            e.what());
        return;
    }
    if (parsed.size() != rows.size()) {
        failures->push_back(what + " round-trip: " + std::to_string(parsed.size()) +
                            " records re-parsed, expected " +
                            std::to_string(rows.size()));
        return;
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!rows_equivalent(rows[i], parsed[i])) {
            failures->push_back(what + " round-trip: record " + std::to_string(i) +
                                " changed value across write -> parse");
            return;
        }
    }
}

/// Re-serialize a (possibly shrunk) well-formed corpus.
void rebuild_text(Corpus& corpus) {
    std::ostringstream os;
    CaliWriter writer(os);
    for (const RecordMap& record : corpus.records)
        writer.write_record(record);
    corpus.cali_text = os.str();
}

} // namespace

std::vector<std::string> check_case(const Corpus& corpus, const std::string& query,
                                    std::uint64_t case_salt,
                                    const DiffOptions& opts) {
    std::vector<std::string> failures;

    QuerySpec spec;
    try {
        spec = parse_calql(query);
    } catch (const std::exception& e) {
        failures.push_back(std::string("generated query failed to parse: ") +
                           e.what() + " [" + query + "]");
        return failures;
    }

    // per-case engine knobs, deterministic in the salt
    Rng rng(case_salt ^ 0xd1fbeefULL);
    static const std::size_t kMorselBytes[] = {0, 256, 1024, std::size_t(4) << 20};
    const std::size_t morsel_bytes = kMorselBytes[rng.below(4)];
    const std::size_t flush_limit  = rng.chance(25) ? 2 : 0;

    TempFile input(opts.work_dir,
                   "calib-fuzz-" + std::to_string(case_salt) + ".cali",
                   corpus.cali_text);

    // the engine family: 3 thread counts x 2 I/O paths, one morsel plan,
    // batched execution at the default batch size
    std::vector<EngineRun> runs;
    for (std::size_t threads : {std::size_t(1), std::size_t(2), std::size_t(4)})
        for (bool use_mmap : {true, false})
            runs.push_back(run_engine(spec, input.path(), threads, use_mmap,
                                      morsel_bytes, flush_limit,
                                      /*batched=*/true, 1024,
                                      /*memory_budget=*/0));
    // merge-strategy matrix: every phase-2 strategy must be byte-identical
    // to the adaptive head at every thread count (the strategies realize
    // the same per-key reduction DAG; only the schedule differs). Runs
    // share the case's morsel and flush plan — the flush plan fixes the
    // reduction DAG, the strategy must not.
    for (engine::MergeStrategy strategy :
         {engine::MergeStrategy::Pairwise, engine::MergeStrategy::Tree,
          engine::MergeStrategy::Radix})
        for (std::size_t threads :
             {std::size_t(1), std::size_t(2), std::size_t(4)})
            runs.push_back(run_engine(spec, input.path(), threads,
                                      /*use_mmap=*/true, morsel_bytes,
                                      flush_limit, /*batched=*/true, 1024,
                                      /*memory_budget=*/0, strategy));
    // batch-size invariance family: the record-at-a-time shim and forced
    // tiny batch sizes must be byte-identical to the batched default (the
    // columnar-pipeline claim). Early flush triggers at batch — not record —
    // granularity, so its cut points move with the batch size and regroup
    // floating-point reductions; this family therefore always runs with
    // early flush off, joining the base family directly when the case's
    // flush plan is also off (otherwise it gets its own reference head).
    std::vector<EngineRun> batch_runs;
    std::vector<EngineRun>& famB = flush_limit == 0 ? runs : batch_runs;
    if (flush_limit != 0)
        famB.push_back(run_engine(spec, input.path(), 1, true, morsel_bytes, 0,
                                  /*batched=*/true, 1024, 0));
    famB.push_back(run_engine(spec, input.path(), 1, true, morsel_bytes, 0,
                              /*batched=*/false, 0, 0));
    famB.push_back(run_engine(spec, input.path(), 2, true, morsel_bytes, 0,
                              /*batched=*/false, 0, 0));
    for (std::size_t bs : {std::size_t(1), std::size_t(2), std::size_t(7)})
        famB.push_back(run_engine(spec, input.path(), bs == 7 ? 4 : 1, true,
                                  morsel_bytes, 0, /*batched=*/true, bs, 0));

    auto compare_family = [&](const std::vector<EngineRun>& family) {
        const EngineRun& head = family.front();
        for (std::size_t i = 1; i < family.size(); ++i) {
            const EngineRun& run = family[i];
            if (run.threw != head.threw) {
                failures.push_back("engine disagreement: " + head.label +
                                   (head.threw ? " rejected (" + head.error + ")"
                                               : " accepted") +
                                   " but " + run.label +
                                   (run.threw ? " rejected (" + run.error + ")"
                                              : " accepted"));
                continue;
            }
            if (!run.threw && run.output != head.output)
                failures.push_back("output of " + run.label + " differs from " +
                                   head.label + " at " +
                                   first_difference(head.output, run.output));
        }
    };
    compare_family(runs);
    if (!batch_runs.empty())
        compare_family(batch_runs);
    const EngineRun& base = runs.front();

    // forced-spill family: a 1-byte budget clamps the live group table to
    // the 16-entry floor, so any aggregation with >16 groups spills sorted
    // runs and merges at flush. The spill trigger is deterministic, so
    // every member is byte-identical; spilled floating-point sums may
    // regroup additions, so the family is compared within itself (plus the
    // tolerant oracle below), not byte-compared against the unspilled base.
    std::vector<EngineRun> spill_runs;
    spill_runs.push_back(run_engine(spec, input.path(), 1, true, morsel_bytes, 0,
                                    /*batched=*/true, 1024,
                                    /*memory_budget=*/1));
    spill_runs.push_back(run_engine(spec, input.path(), 1, true, morsel_bytes, 0,
                                    /*batched=*/false, 0, 1));
    spill_runs.push_back(run_engine(spec, input.path(), 4, false, morsel_bytes, 0,
                                    /*batched=*/true, 7, 1));
    compare_family(spill_runs);

    // radix under spill: the spill run boundaries depend on the insertion
    // sequence, so strategies need not agree with each other here — but each
    // strategy must still be thread-count-deterministic within itself
    std::vector<EngineRun> radix_spill_runs;
    for (std::size_t threads : {std::size_t(1), std::size_t(4)})
        radix_spill_runs.push_back(
            run_engine(spec, input.path(), threads, true, morsel_bytes, 0,
                       /*batched=*/true, 1024, /*memory_budget=*/1,
                       engine::MergeStrategy::Radix));
    compare_family(radix_spill_runs);

    if (!corpus.well_formed)
        return failures; // mutated input: cross-engine agreement was the check
    if (base.threw) {
        failures.push_back("well-formed input rejected: " + base.error);
        return failures;
    }

    // oracle agreement: engine rows and serial-processor rows
    const OracleResult oracle = oracle_run(spec, corpus.records);
    for (const std::string& m : oracle_compare(spec, oracle, base.rows))
        failures.push_back("engine vs oracle: " + m);
    const std::vector<RecordMap> serial_rows = run_query(query, corpus.records);
    for (const std::string& m : oracle_compare(spec, oracle, serial_rows))
        failures.push_back("serial processor vs oracle: " + m);
    // the spilled result is checked against the oracle with numeric
    // tolerance (it need not be byte-identical to the unspilled run)
    if (!spill_runs.front().threw)
        for (const std::string& m :
             oracle_compare(spec, oracle, spill_runs.front().rows))
            failures.push_back("spilled engine vs oracle: " + m);

    // round trips
    {
        std::vector<RecordMap> reread;
        try {
            std::istringstream is(corpus.cali_text);
            reread = CaliReader::read_all(is);
        } catch (const std::exception& e) {
            failures.push_back(std::string("well-formed corpus rejected: ") +
                               e.what());
        }
        if (reread.size() != corpus.records.size()) {
            failures.push_back("corpus round-trip: " +
                               std::to_string(reread.size()) +
                               " records re-parsed, expected " +
                               std::to_string(corpus.records.size()));
        } else {
            for (std::size_t i = 0; i < reread.size(); ++i) {
                if (!rows_equivalent(corpus.records[i], reread[i])) {
                    failures.push_back("corpus round-trip: record " +
                                       std::to_string(i) + " changed value");
                    break;
                }
            }
        }
    }
    check_cali_roundtrip(base.rows, &failures, "result");
    if (spec.format == "json")
        check_json_roundtrip(spec, base.rows, base.output, &failures);

    return failures;
}

namespace {

/// Shrink a failing case: ddmin over records, then drop query clauses.
/// Returns the minimized corpus/query (the failure itself is re-derived).
void shrink(Corpus& corpus, std::string& query, std::uint64_t case_salt,
            const DiffOptions& opts) {
    if (!corpus.well_formed)
        return; // mutated byte streams shrink poorly; keep as-is

    auto still_fails = [&](const Corpus& c, const std::string& q) {
        return !check_case(c, q, case_salt, opts).empty();
    };

    // ddmin-lite over records: remove windows while the failure persists
    std::size_t window = corpus.records.size() / 2;
    while (window >= 1) {
        bool removed_any = false;
        for (std::size_t start = 0; start < corpus.records.size();) {
            Corpus candidate = corpus;
            const std::size_t end =
                std::min(start + window, candidate.records.size());
            candidate.records.erase(candidate.records.begin() +
                                        static_cast<std::ptrdiff_t>(start),
                                    candidate.records.begin() +
                                        static_cast<std::ptrdiff_t>(end));
            rebuild_text(candidate);
            if (still_fails(candidate, query)) {
                corpus      = std::move(candidate);
                removed_any = true; // same start now names the next window
            } else {
                start += window;
            }
        }
        if (window == 1 && !removed_any)
            break;
        window /= 2;
    }

    // drop whole query clauses that are not needed to reproduce
    QuerySpec spec;
    try {
        spec = parse_calql(query);
    } catch (const std::exception&) {
        return;
    }
    auto try_spec = [&](QuerySpec candidate) {
        const std::string q = to_calql(candidate);
        if (still_fails(corpus, q)) {
            spec  = std::move(candidate);
            query = q;
        }
    };
    {
        QuerySpec c = spec;
        c.sort.clear();
        try_spec(std::move(c));
    }
    {
        QuerySpec c = spec;
        c.filters.clear();
        try_spec(std::move(c));
    }
    {
        QuerySpec c = spec;
        c.lets.clear();
        try_spec(std::move(c));
    }
    {
        QuerySpec c = spec;
        c.limit = 0;
        try_spec(std::move(c));
    }
    {
        QuerySpec c = spec;
        c.select.clear();
        c.aliases.clear();
        try_spec(std::move(c));
    }
}

void dump_reproducer(const Corpus& corpus, const std::string& query,
                     const SeedOutcome& outcome, std::size_t case_index,
                     const DiffOptions& opts) {
    if (opts.out_dir.empty())
        return;
    const std::string dir = opts.out_dir + "/seed-" +
                            std::to_string(outcome.seed) + "-q" +
                            std::to_string(case_index);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return;
    std::ofstream(dir + "/input.cali", std::ios::binary) << corpus.cali_text;
    std::ofstream(dir + "/query.calql", std::ios::binary) << query << "\n";
    std::ofstream failure(dir + "/failure.txt", std::ios::binary);
    for (const std::string& f : outcome.failures)
        failure << f << "\n";
}

} // namespace

SeedOutcome run_seed(std::uint64_t seed, const DiffOptions& opts) {
    SeedOutcome outcome;
    outcome.seed = seed;

    Corpus corpus = generate_corpus(seed);
    for (int q = 0; q < opts.queries_per_seed; ++q) {
        const std::uint64_t case_salt = seed * 1000003ULL + static_cast<std::uint64_t>(q);
        std::string query = generate_query(case_salt, corpus);
        std::vector<std::string> failures =
            check_case(corpus, query, case_salt, opts);
        if (failures.empty())
            continue;

        Corpus shrunk = corpus;
        shrink(shrunk, query, case_salt, opts);
        // re-derive the failure from the minimized case (shrinking keeps
        // "some failure", not necessarily the identical message)
        std::vector<std::string> minimized =
            check_case(shrunk, query, case_salt, opts);
        if (minimized.empty())
            minimized = std::move(failures); // paranoia: shrink went flaky

        SeedOutcome case_outcome;
        case_outcome.seed     = seed;
        case_outcome.failures = minimized;
        dump_reproducer(shrunk, query, case_outcome,
                        static_cast<std::size_t>(q), opts);
        for (std::string& f : minimized)
            outcome.failures.push_back("q" + std::to_string(q) + " [" + query +
                                       "]: " + std::move(f));
    }
    return outcome;
}

} // namespace calib::fuzz
