#include "framefuzz.hpp"

#include "fuzz_rng.hpp"

#include "../src/net/frame.hpp"
#include "../src/proxyd/session.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace calib::fuzz {

namespace {

constexpr std::size_t kMaxFrame = 1u << 16; // 64 KiB: small enough that fat
                                            // batches exercise the drop path

std::string rand_name(Rng& rng, const char* prefix) {
    std::string s = prefix;
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t i = 0; i < n; ++i)
        s += static_cast<char>('a' + rng.below(26));
    return s;
}

Variant rand_value(Rng& rng, Variant::Type type) {
    switch (type) {
    case Variant::Type::Int:
        return Variant(static_cast<std::int64_t>(rng.below(100000)) - 50000);
    case Variant::Type::UInt:
        return Variant(static_cast<std::uint64_t>(rng.below(1000000)));
    case Variant::Type::Double:
        return Variant(rng.unit() * 1000.0);
    case Variant::Type::String:
    default: {
        char buf[16];
        std::snprintf(buf, sizeof buf, "s%llu",
                      static_cast<unsigned long long>(rng.below(1000)));
        return Variant(std::string_view(buf));
    }
    }
}

/// Directed protocol violations: valid frame encodings whose *sequence*
/// breaks the protocol at a known point.
enum class Violation {
    None,
    RecordsBeforeHello,
    DuplicateHello,
    WrongVersion,
    ResultFromClient,
    UnknownFrameType,
};

void apply_mutations(Rng& rng, std::vector<std::byte>& bytes) {
    const std::size_t n_mut = 1 + rng.below(4);
    for (std::size_t m = 0; m < n_mut && !bytes.empty(); ++m) {
        switch (rng.below(6)) {
        case 0: { // bit flip
            bytes[rng.below(bytes.size())] ^=
                static_cast<std::byte>(1u << rng.below(8));
            break;
        }
        case 1: { // truncate tail
            bytes.resize(rng.below(bytes.size()) + 1);
            break;
        }
        case 2: { // corrupt 4 bytes (often a length field)
            const std::size_t pos = rng.below(bytes.size());
            for (std::size_t i = 0; i < 4 && pos + i < bytes.size(); ++i)
                bytes[pos + i] = static_cast<std::byte>(rng.below(256));
            break;
        }
        case 3: { // overwrite one byte (often a frame type)
            bytes[rng.below(bytes.size())] =
                static_cast<std::byte>(rng.below(256));
            break;
        }
        case 4: { // insert garbage
            std::vector<std::byte> junk(1 + rng.below(16));
            for (std::byte& b : junk)
                b = static_cast<std::byte>(rng.below(256));
            const std::size_t pos = rng.below(bytes.size() + 1);
            bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                         junk.begin(), junk.end());
            break;
        }
        default: { // duplicate a slice
            const std::size_t from = rng.below(bytes.size());
            const std::size_t len =
                std::min(bytes.size() - from, 1 + rng.below(64));
            std::vector<std::byte> slice(bytes.begin() +
                                             static_cast<std::ptrdiff_t>(from),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(from + len));
            const std::size_t pos = rng.below(bytes.size() + 1);
            bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                         slice.begin(), slice.end());
            break;
        }
        }
    }
}

} // namespace

FrameStream generate_frame_stream(std::uint64_t seed) {
    // decouple from the corpus fuzzer's seed space
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xf7a3u);

    FrameStream s;
    s.max_frame_bytes = kMaxFrame;

    const Violation violation =
        rng.chance(15) ? static_cast<Violation>(1 + rng.below(5)) : Violation::None;

    if (violation == Violation::RecordsBeforeHello) {
        net::RecordsBuilder b;
        b.begin_record();
        b.entry(0, Variant(1));
        b.end_record();
        b.frame(s.bytes);
        s.expected_protocol_errors = 1;
        s.expected_status          = 2;
        return s;
    }

    if (violation == Violation::WrongVersion) {
        // hand-roll a Hello with a bad version: u32 version + 2 strings
        std::vector<std::byte> payload;
        ByteWriter w(payload);
        w.put(net::kProtocolVersion + 1 + static_cast<std::uint32_t>(rng.below(7)));
        w.put_string("bad-client");
        w.put_string("fuzz");
        net::append_frame(s.bytes, net::FrameType::Hello, payload);
        s.expected_protocol_errors = 1;
        s.expected_status          = 2;
        return s;
    }

    net::append_hello(s.bytes, rand_name(rng, "client-"), rand_name(rng, "ch-"));

    if (violation == Violation::DuplicateHello) {
        net::append_hello(s.bytes, "again", "fuzz");
        s.expected_protocol_errors = 1;
        s.expected_status          = 2;
        return s;
    }
    if (violation == Violation::ResultFromClient) {
        net::append_result(s.bytes, 0, "i am not a daemon");
        s.expected_protocol_errors = 1;
        s.expected_status          = 2;
        return s;
    }
    if (violation == Violation::UnknownFrameType) {
        const std::byte junk[] = {std::byte{0x01}};
        net::append_frame(s.bytes, static_cast<net::FrameType>(0xee), junk);
        s.expected_protocol_errors = 1;
        s.expected_status          = 2;
        return s;
    }

    // attribute table
    static const Variant::Type kTypes[] = {Variant::Type::Int,
                                           Variant::Type::UInt,
                                           Variant::Type::Double,
                                           Variant::Type::String};
    const std::uint32_t n_attrs = 1 + static_cast<std::uint32_t>(rng.below(6));
    std::vector<Variant::Type> types;
    for (std::uint32_t a = 0; a < n_attrs; ++a) {
        types.push_back(kTypes[rng.below(4)]);
        // unique per local id: same-name/different-type redefinitions are a
        // registry question, not a wire-protocol one
        const std::string name =
            rand_name(rng, "attr.") + "." + std::to_string(a);
        net::append_attr(s.bytes, a, name, types.back(), 0);
    }

    if (rng.chance(30)) {
        std::vector<std::pair<std::uint32_t, Variant>> globals = {
            {0, rand_value(rng, types[0])}};
        net::append_globals(s.bytes, rng.chance(50), globals);
    }

    const std::size_t n_batches = rng.below(6);
    for (std::size_t batch = 0; batch < n_batches; ++batch) {
        net::RecordsBuilder b;
        const bool fat         = rng.chance(15);
        const std::size_t recs = fat ? 40 : rng.below(50);
        for (std::size_t r = 0; r < recs; ++r) {
            b.begin_record();
            for (std::uint32_t a = 0; a < n_attrs; ++a) {
                if (rng.chance(25))
                    continue; // sparse records
                b.entry(a, rand_value(rng, types[a]));
            }
            if (fat) {
                // ~2 KiB string entries push the batch past the frame bound
                b.entry(0, Variant(std::string_view(
                               std::string(2048, static_cast<char>(
                                                     'a' + rng.below(26))))));
            }
            if (rng.chance(5))
                b.entry(n_attrs + 100, Variant(1)); // unknown local id: skipped
            b.end_record();
        }
        const bool dropped = b.payload_bytes() + 1 > kMaxFrame;
        if (dropped)
            ++s.expected_dropped;
        else
            s.expected_records += recs;
        b.frame(s.bytes); // zero-record batches are valid empty frames

        if (rng.chance(40)) {
            net::append_query(s.bytes, "AGGREGATE count FORMAT csv");
            ++s.expected_ok_queries;
        }
    }

    if (rng.chance(80)) {
        net::append_bye(s.bytes);
        s.expected_status = 1;
    }

    if (rng.chance(35)) {
        apply_mutations(rng, s.bytes);
        s.well_formed = false;
    }
    return s;
}

namespace {

struct RunResult {
    std::uint64_t frames = 0, records = 0, protocol_errors = 0,
                  unknown_attrs = 0, dropped = 0;
    std::uint64_t channel_records = 0;
    std::size_t channel_groups    = 0;
    int status                    = 0; // 0 Ok, 1 Closed, 2 Error
    std::vector<std::pair<int, std::string>> responses;

    bool operator==(const RunResult&) const = default;
};

/// Feed the stream into a fresh session/channel pair, splitting the bytes
/// into chunks drawn from \a chunk_rng. Stops feeding once the session
/// reports Closed/Error, exactly as the daemon closes the connection.
RunResult run_stream(const FrameStream& s, Rng& chunk_rng,
                     std::size_t max_chunk) {
    proxyd::ProxyChannel channel("fuzz", /*aggregate=*/"", /*prealloc=*/64);
    RunResult out;

    proxyd::IngestSession::Hooks hooks;
    hooks.open_channel = [&](const std::string&, bool) { return &channel; };
    hooks.respond = [&](std::uint8_t status, std::string_view body) {
        out.responses.emplace_back(status, std::string(body));
    };
    hooks.on_query = [&](std::string_view calql) {
        bool ok                  = true;
        const std::string answer = channel.answer(calql, &ok);
        out.responses.emplace_back(ok ? 0 : 1, answer);
    };
    proxyd::IngestSession session(hooks, s.max_frame_bytes);

    std::size_t pos = 0;
    auto status     = proxyd::IngestSession::Status::Ok;
    while (pos < s.bytes.size() &&
           status == proxyd::IngestSession::Status::Ok) {
        const std::size_t chunk =
            std::min(s.bytes.size() - pos, 1 + chunk_rng.below(max_chunk));
        status = session.feed(s.bytes.data() + pos, chunk);
        pos += chunk;
    }

    out.frames          = session.frames();
    out.records         = session.records();
    out.protocol_errors = session.protocol_errors();
    out.unknown_attrs   = session.unknown_attrs();
    out.dropped         = session.dropped_frames();
    out.channel_records = channel.records();
    out.channel_groups  = channel.groups();
    out.status          = static_cast<int>(status);
    return out;
}

} // namespace

FrameSeedOutcome run_frame_seed(std::uint64_t seed, bool verbose) {
    FrameSeedOutcome outcome;
    outcome.seed = seed;
    auto fail    = [&](const std::string& msg) {
        outcome.failures.push_back(msg);
    };

    const FrameStream s = generate_frame_stream(seed);
    if (verbose)
        std::fprintf(stderr,
                     "frames seed %llu: %zu bytes, %s, expect %llu records\n",
                     static_cast<unsigned long long>(seed), s.bytes.size(),
                     s.well_formed ? "well-formed" : "mutated",
                     static_cast<unsigned long long>(s.expected_records));

    // two independent chunkings of the same bytes must agree exactly
    Rng chunks_a(seed ^ 0xa5a5a5a5ULL);
    Rng chunks_b(seed ^ 0x5a5a5a5aULL);
    const RunResult a = run_stream(s, chunks_a, /*max_chunk=*/4096);
    const RunResult b = run_stream(s, chunks_b, /*max_chunk=*/13);

    if (!(a == b)) {
        std::ostringstream os;
        os << "chunking variance: [4096-byte chunks] frames=" << a.frames
           << " records=" << a.records << " errors=" << a.protocol_errors
           << " dropped=" << a.dropped << " status=" << a.status
           << " responses=" << a.responses.size()
           << " vs [13-byte chunks] frames=" << b.frames
           << " records=" << b.records << " errors=" << b.protocol_errors
           << " dropped=" << b.dropped << " status=" << b.status
           << " responses=" << b.responses.size();
        fail(os.str());
    }

    if (!s.well_formed)
        return outcome; // no-crash + invariance is all we can assert

    if (a.records != s.expected_records)
        fail("records: got " + std::to_string(a.records) + ", expected " +
             std::to_string(s.expected_records));
    if (a.channel_records != s.expected_records)
        fail("channel records: got " + std::to_string(a.channel_records) +
             ", expected " + std::to_string(s.expected_records));
    if (a.dropped != s.expected_dropped)
        fail("dropped frames: got " + std::to_string(a.dropped) +
             ", expected " + std::to_string(s.expected_dropped));
    if (a.protocol_errors != s.expected_protocol_errors)
        fail("protocol errors: got " + std::to_string(a.protocol_errors) +
             ", expected " + std::to_string(s.expected_protocol_errors));
    if (a.status != s.expected_status)
        fail("final status: got " + std::to_string(a.status) + ", expected " +
             std::to_string(s.expected_status));

    std::uint32_t ok_queries = 0;
    for (const auto& [status, body] : a.responses) {
        // hello ack is status 0 with the daemon banner; count query answers
        if (status == 0 && body.rfind("calib-proxyd", 0) != 0)
            ++ok_queries;
    }
    if (ok_queries != s.expected_ok_queries)
        fail("ok query responses: got " + std::to_string(ok_queries) +
             ", expected " + std::to_string(s.expected_ok_queries));

    return outcome;
}

} // namespace calib::fuzz
