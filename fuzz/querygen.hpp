// Seeded CalQL query generator.
//
// Each seed deterministically produces one query over a given corpus,
// drawing from every aggregation operator and every clause the language
// has (SELECT / AGGREGATE / GROUP BY (list and *) / WHERE / LET /
// ORDER BY / FORMAT / LIMIT), so the differential runner sweeps the full
// op x clause matrix over adversarial values.
#pragma once

#include "corpus.hpp"

#include <cstdint>
#include <string>

namespace calib::fuzz {

/// Generate one CalQL query text for \a corpus. Always parseable; the
/// malformed-query corner is covered by the parser edge-case tests.
std::string generate_query(std::uint64_t seed, const Corpus& corpus);

} // namespace calib::fuzz
