// Deterministic PRNG for the differential fuzz harness.
//
// std::mt19937 is portable, but the standard *distributions* are not —
// uniform_int_distribution may emit different sequences on different
// standard libraries. Every corpus and query a seed generates must be
// bit-identical on every platform (a failing seed number IS the bug
// report), so the harness rolls its own splitmix64 and derives values
// with explicit, fully specified arithmetic only.
#pragma once

#include <cstdint>
#include <vector>

namespace calib::fuzz {

class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next raw 64-bit value (splitmix64).
    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, n); n must be > 0. Modulo bias is irrelevant here —
    /// we need coverage and determinism, not statistical uniformity.
    std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

    /// True with probability ~percent/100.
    bool chance(unsigned percent) noexcept { return below(100) < percent; }

    std::int64_t int64() noexcept { return static_cast<std::int64_t>(next()); }

    /// Uniform double in [0, 1).
    double unit() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    template <typename T>
    const T& pick(const std::vector<T>& v) noexcept {
        return v[below(v.size())];
    }

private:
    std::uint64_t state_;
};

} // namespace calib::fuzz
