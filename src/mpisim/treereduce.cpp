#include "treereduce.hpp"

#include "../engine/parallel_processor.hpp"
#include "../io/calireader.hpp"
#include "../obs/metrics.hpp"
#include "../runtime/clock.hpp"

#include <mutex>

namespace calib::simmpi {

namespace {

obs::Counter reduce_merges("reduce.merges");
obs::Counter reduce_bytes("reduce.bytes");

constexpr int tag_partial = 0x00ca11b;

double seconds_since(std::uint64_t start_ns) {
    return static_cast<double>(now_ns() - start_ns) * 1e-9;
}
} // namespace

QueryTimes parallel_query(const QuerySpec& spec, const std::vector<std::string>& files,
                          int nprocs, std::vector<RecordMap>* result, int threads) {
    QueryTimes times;
    times.nprocs = nprocs;
    std::mutex result_mutex;

    run(nprocs, [&](Comm& comm) {
        const int rank = comm.rank();
        const int size = comm.size();

        const std::uint64_t t_start = now_ns();

        // local stage: this rank's share of the input files goes through
        // the intra-process engine (threads == 1 is the exact serial path)
        std::vector<std::string> my_files;
        for (std::size_t i = rank; i < files.size();
             i += static_cast<std::size_t>(size))
            my_files.push_back(files[i]);

        engine::EngineOptions eopts;
        eopts.threads = threads > 0 ? static_cast<std::size_t>(threads) : 1;
        engine::ParallelQueryProcessor local(spec, eopts);
        QueryProcessor& proc = local.run(my_files);

        const double local_s = seconds_since(t_start);
        comm.barrier(); // separate the local and reduction phases cleanly

        // binomial-tree reduction of serialized partial aggregation state
        const std::uint64_t t_reduce = now_ns();
        for (int step = 1; step < size; step <<= 1) {
            if (rank & step) {
                comm.send(rank - step, tag_partial, proc.serialize_partial());
                break; // this rank's partial is on its way up the tree
            }
            if (rank + step < size) {
                Message m = comm.recv(rank + step, tag_partial);
                reduce_merges.add();
                reduce_bytes.add(m.payload.size());
                proc.merge_serialized(m.payload);
            }
        }
        const double reduce_s = seconds_since(t_reduce);

        const std::uint64_t in_total =
            comm.allreduce(proc.num_records_in(), Comm::ReduceOp::Sum);
        const std::uint64_t bytes_total =
            comm.allreduce(comm.bytes_sent(), Comm::ReduceOp::Sum);

        if (rank == 0) {
            std::lock_guard<std::mutex> lock(result_mutex);
            times.local_s        = local_s;
            times.reduce_s       = reduce_s;
            times.input_records  = in_total;
            times.bytes_reduced  = bytes_total;
            times.output_records = proc.result().size();
            times.total_s        = seconds_since(t_start);
            if (result)
                *result = proc.result();
        }
    });

    return times;
}

QueryTimes modeled_query(const QuerySpec& spec, const std::string& representative_file,
                         int nprocs, const NetModel& net, int files_per_rank,
                         std::vector<RecordMap>* result) {
    QueryTimes times;
    times.nprocs = nprocs;

    // local stage, executed and timed for real (id-based record pipeline:
    // names resolve once per attribute definition, not per record)
    const std::uint64_t t_local = now_ns();
    QueryProcessor local(spec);
    for (int i = 0; i < files_per_rank; ++i)
        CaliReader::read_file(representative_file, *local.registry(),
                              [&local](IdRecord&& r) { local.add(std::move(r)); });
    times.local_s       = seconds_since(t_local);
    times.input_records = local.num_records_in() * static_cast<std::uint64_t>(nprocs);

    // Weak scaling: every rank holds (statistically) the same partial
    // result, so the root's critical path is one merge of an equal-sized
    // subtree per tree level. Execute each level's serialize + merge on
    // real databases and add modeled network hops.
    QueryProcessor subtree(spec);
    subtree.merge_serialized(local.serialize_partial());

    double reduce_s = 0.0;
    for (int step = 1; step < nprocs; step <<= 1) {
        const std::uint64_t t_level          = now_ns();
        std::vector<std::byte> buf           = subtree.serialize_partial();
        const double serialize_s             = seconds_since(t_level);
        const std::uint64_t t_merge          = now_ns();
        subtree.merge_serialized(buf); // merge the equal sibling subtree
        const double merge_s = seconds_since(t_merge);
        reduce_s += serialize_s + merge_s + net.time_us(buf.size()) * 1e-6;
        times.bytes_reduced += buf.size();
    }
    times.reduce_s       = reduce_s;
    times.total_s        = times.local_s + times.reduce_s;
    times.output_records = subtree.result().size();
    if (result)
        *result = subtree.result();
    return times;
}

QueryTimes modeled_query_kary(const QuerySpec& spec,
                              const std::string& representative_file, int nprocs,
                              const NetModel& net, int fanout,
                              std::vector<RecordMap>* result) {
    if (fanout < 2)
        fanout = 2;
    QueryTimes times;
    times.nprocs = nprocs;

    const std::uint64_t t_local = now_ns();
    QueryProcessor local(spec);
    CaliReader::read_file(representative_file, *local.registry(),
                          [&local](IdRecord&& r) { local.add(std::move(r)); });
    times.local_s       = seconds_since(t_local);
    times.input_records = local.num_records_in() * static_cast<std::uint64_t>(nprocs);

    // Weak scaling over a k-ary tree: at every level an inner node merges
    // (fanout - 1) equal sibling subtrees, received concurrently but
    // merged sequentially; subtree size multiplies by `fanout` per level.
    QueryProcessor subtree(spec);
    subtree.merge_serialized(local.serialize_partial());

    double reduce_s = 0.0;
    for (long covered = 1; covered < nprocs; covered *= fanout) {
        const std::uint64_t t_level = now_ns();
        std::vector<std::byte> buf  = subtree.serialize_partial();
        const double serialize_s    = seconds_since(t_level);

        const std::uint64_t t_merge = now_ns();
        for (int sibling = 1; sibling < fanout; ++sibling)
            subtree.merge_serialized(buf);
        const double merge_s = seconds_since(t_merge);

        // siblings arrive in parallel: one network hop per level
        reduce_s += serialize_s + merge_s + net.time_us(buf.size()) * 1e-6;
        times.bytes_reduced += buf.size() * static_cast<std::uint64_t>(fanout - 1);
    }
    times.reduce_s       = reduce_s;
    times.total_s        = times.local_s + times.reduce_s;
    times.output_records = subtree.result().size();
    if (result)
        *result = subtree.result();
    return times;
}

} // namespace calib::simmpi
