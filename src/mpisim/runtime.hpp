// simmpi: a thread-backed MPI-like message-passing runtime.
//
// Substitute for a real MPI installation (see DESIGN.md): each "rank" is a
// thread with private state; ranks communicate only through typed byte
// messages, so message-passing semantics (and the aggregation system's
// cross-process code paths) are exercised for real. The API subset mirrors
// what the paper's system needs: point-to-point send/recv, barrier, bcast,
// reduce/allreduce, gather.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace calib::simmpi {

inline constexpr int any_source = -1;
inline constexpr int any_tag    = -1;

struct Message {
    int src = any_source;
    int tag = any_tag;
    std::vector<std::byte> payload;
};

class World;

/// Communicator handle passed to each rank's function.
class Comm {
public:
    Comm(World* world, int rank) : world_(world), rank_(rank) {}

    int rank() const noexcept { return rank_; }
    int size() const noexcept;

    // -- point-to-point -------------------------------------------------------
    void send(int dest, int tag, std::span<const std::byte> payload);
    void send(int dest, int tag, std::vector<std::byte>&& payload);

    /// Blocking receive; src/tag may be any_source/any_tag wildcards.
    Message recv(int src = any_source, int tag = any_tag);

    /// Non-blocking probe: true if a matching message is queued.
    bool iprobe(int src = any_source, int tag = any_tag);

    template <typename T>
    void send_value(int dest, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dest, tag,
             std::span(reinterpret_cast<const std::byte*>(&v), sizeof(T)));
    }

    template <typename T>
    T recv_value(int src = any_source, int tag = any_tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        Message m = recv(src, tag);
        T v{};
        std::memcpy(&v, m.payload.data(),
                    m.payload.size() < sizeof(T) ? m.payload.size() : sizeof(T));
        return v;
    }

    // -- collectives (see collectives.cpp) -------------------------------------
    void barrier();
    void bcast(std::vector<std::byte>& data, int root);

    enum class ReduceOp { Sum, Min, Max };
    double reduce(double value, ReduceOp op, int root);
    double allreduce(double value, ReduceOp op);
    std::uint64_t reduce(std::uint64_t value, ReduceOp op, int root);
    std::uint64_t allreduce(std::uint64_t value, ReduceOp op);

    /// Gather byte buffers to \a root; result[r] is rank r's contribution
    /// (empty vector on non-root ranks).
    std::vector<std::vector<std::byte>> gather(std::span<const std::byte> payload,
                                               int root);

    /// Bytes sent by this rank so far (for communication statistics).
    std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
    std::uint64_t messages_sent() const noexcept { return messages_sent_; }

private:
    World* world_;
    int rank_;
    std::uint64_t bytes_sent_    = 0;
    std::uint64_t messages_sent_ = 0;
};

/// Run \a fn on \a nprocs rank-threads and join them. Exceptions thrown by
/// rank functions are captured and rethrown (first one wins).
void run(int nprocs, const std::function<void(Comm&)>& fn);

/// Internal shared state of one run.
class World {
public:
    explicit World(int size);

    int size() const noexcept { return size_; }

    void post(int dest, Message&& m);
    Message match(int rank, int src, int tag);
    bool probe(int rank, int src, int tag);
    void barrier();

private:
    struct Mailbox {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Message> queue;
    };

    int size_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;

    std::mutex barrier_mutex_;
    std::condition_variable barrier_cv_;
    int barrier_count_      = 0;
    std::uint64_t barrier_generation_ = 0;
};

} // namespace calib::simmpi
