#include "runtime.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

namespace calib::simmpi {

World::World(int size) : size_(size) {
    mailboxes_.reserve(size);
    for (int i = 0; i < size; ++i)
        mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::post(int dest, Message&& m) {
    if (dest < 0 || dest >= size_)
        throw std::out_of_range("simmpi: send to invalid rank " + std::to_string(dest));
    Mailbox& box = *mailboxes_[dest];
    {
        std::lock_guard<std::mutex> lock(box.mutex);
        box.queue.push_back(std::move(m));
    }
    box.cv.notify_all();
}

namespace {
bool matches(const Message& m, int src, int tag) {
    return (src == any_source || m.src == src) && (tag == any_tag || m.tag == tag);
}
} // namespace

Message World::match(int rank, int src, int tag) {
    Mailbox& box = *mailboxes_[rank];
    std::unique_lock<std::mutex> lock(box.mutex);
    while (true) {
        auto it = std::find_if(box.queue.begin(), box.queue.end(),
                               [&](const Message& m) { return matches(m, src, tag); });
        if (it != box.queue.end()) {
            Message m = std::move(*it);
            box.queue.erase(it);
            return m;
        }
        box.cv.wait(lock);
    }
}

bool World::probe(int rank, int src, int tag) {
    Mailbox& box = *mailboxes_[rank];
    std::lock_guard<std::mutex> lock(box.mutex);
    return std::any_of(box.queue.begin(), box.queue.end(),
                       [&](const Message& m) { return matches(m, src, tag); });
}

void World::barrier() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_count_ == size_) {
        barrier_count_ = 0;
        ++barrier_generation_;
        barrier_cv_.notify_all();
        return;
    }
    barrier_cv_.wait(lock, [this, gen] { return barrier_generation_ != gen; });
}

int Comm::size() const noexcept {
    return world_->size();
}

void Comm::send(int dest, int tag, std::span<const std::byte> payload) {
    Message m;
    m.src = rank_;
    m.tag = tag;
    m.payload.assign(payload.begin(), payload.end());
    bytes_sent_ += m.payload.size();
    ++messages_sent_;
    world_->post(dest, std::move(m));
}

void Comm::send(int dest, int tag, std::vector<std::byte>&& payload) {
    Message m;
    m.src     = rank_;
    m.tag     = tag;
    m.payload = std::move(payload);
    bytes_sent_ += m.payload.size();
    ++messages_sent_;
    world_->post(dest, std::move(m));
}

Message Comm::recv(int src, int tag) {
    return world_->match(rank_, src, tag);
}

bool Comm::iprobe(int src, int tag) {
    return world_->probe(rank_, src, tag);
}

void Comm::barrier() {
    world_->barrier();
}

void run(int nprocs, const std::function<void(Comm&)>& fn) {
    if (nprocs < 1)
        throw std::invalid_argument("simmpi::run: nprocs must be >= 1");

    World world(nprocs);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(nprocs);

    threads.reserve(nprocs);
    for (int r = 0; r < nprocs; ++r) {
        threads.emplace_back([&world, &fn, &errors, r] {
            Comm comm(&world, r);
            try {
                fn(comm);
            } catch (...) {
                errors[r] = std::current_exception();
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    for (const std::exception_ptr& e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace calib::simmpi
