#include "wrapper.hpp"

#include "../runtime/caliper.hpp"

namespace calib::simmpi {

CaliComm::CaliComm(Comm& comm) : comm_(comm) {
    Caliper& c = Caliper::instance();
    function_attr_ =
        c.create_attribute("mpi.function", Variant::Type::String, prop::nested);
    rank_attr_ = c.create_attribute("mpi.rank", Variant::Type::Int, prop::as_value);
    c.set(rank_attr_, Variant(static_cast<long long>(comm.rank())));
    c.set_thread_label(std::to_string(comm.rank()));
}

CaliComm::FunctionScope::FunctionScope(CaliComm& parent, const char* name)
    : parent_(parent) {
    Caliper::instance().begin(parent_.function_attr_, Variant(std::string_view(name)));
}

CaliComm::FunctionScope::~FunctionScope() {
    Caliper::instance().end(parent_.function_attr_);
}

void CaliComm::send(int dest, int tag, std::span<const std::byte> payload) {
    FunctionScope scope(*this, "MPI_Send");
    comm_.send(dest, tag, payload);
}

Message CaliComm::recv(int src, int tag) {
    FunctionScope scope(*this, "MPI_Recv");
    return comm_.recv(src, tag);
}

void CaliComm::sendrecv(int dest, std::span<const std::byte> sendbuf, int src,
                        std::vector<std::byte>& recvbuf, int tag) {
    FunctionScope scope(*this, "MPI_Sendrecv");
    comm_.send(dest, tag, sendbuf);
    recvbuf = comm_.recv(src, tag).payload;
}

void CaliComm::barrier() {
    FunctionScope scope(*this, "MPI_Barrier");
    comm_.barrier();
}

void CaliComm::bcast(std::vector<std::byte>& data, int root) {
    FunctionScope scope(*this, "MPI_Bcast");
    comm_.bcast(data, root);
}

double CaliComm::allreduce(double value, Comm::ReduceOp op) {
    FunctionScope scope(*this, "MPI_Allreduce");
    return comm_.allreduce(value, op);
}

std::uint64_t CaliComm::allreduce(std::uint64_t value, Comm::ReduceOp op) {
    FunctionScope scope(*this, "MPI_Allreduce");
    return comm_.allreduce(value, op);
}

double CaliComm::reduce(double value, Comm::ReduceOp op, int root) {
    FunctionScope scope(*this, "MPI_Reduce");
    return comm_.reduce(value, op, root);
}

std::vector<std::vector<std::byte>> CaliComm::gather(std::span<const std::byte> payload,
                                                     int root) {
    FunctionScope scope(*this, "MPI_Gather");
    return comm_.gather(payload, root);
}

} // namespace calib::simmpi
