// Collective operations for simmpi, built on point-to-point messages with
// binomial-tree algorithms (logarithmic depth, like the cross-process
// reduction of paper §IV-C).
#include "runtime.hpp"

#include <algorithm>
#include <cstring>

namespace calib::simmpi {

namespace {

// reserved tag space for collectives (user code should use tags < 2^24)
constexpr int tag_bcast  = 0x7f000001;
constexpr int tag_reduce = 0x7f000002;
constexpr int tag_gather = 0x7f000003;

double combine(double a, double b, Comm::ReduceOp op) {
    switch (op) {
    case Comm::ReduceOp::Sum: return a + b;
    case Comm::ReduceOp::Min: return std::min(a, b);
    case Comm::ReduceOp::Max: return std::max(a, b);
    }
    return a;
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b, Comm::ReduceOp op) {
    switch (op) {
    case Comm::ReduceOp::Sum: return a + b;
    case Comm::ReduceOp::Min: return std::min(a, b);
    case Comm::ReduceOp::Max: return std::max(a, b);
    }
    return a;
}

/// Binomial-tree reduction to rank 0 in a zero-based rank space, then an
/// optional rotation for non-zero roots. Ranks with bit k set at step k
/// send their partial value to (rank - 2^k); the others receive and fold.
template <typename T>
T binomial_reduce(Comm& comm, T value, Comm::ReduceOp op) {
    const int rank = comm.rank();
    const int size = comm.size();
    for (int step = 1; step < size; step <<= 1) {
        if (rank & step) {
            comm.send_value(rank - step, tag_reduce, value);
            return value; // partial only; callers bcast if needed
        }
        if (rank + step < size) {
            const T other = comm.template recv_value<T>(rank + step, tag_reduce);
            value         = combine(value, other, op);
        }
    }
    return value;
}

} // namespace

void Comm::bcast(std::vector<std::byte>& data, int root) {
    const int size = this->size();
    if (size == 1)
        return;
    // rotate so the root is rank 0 in the algorithm's rank space
    const int vrank = (rank_ - root + size) % size;

    if (vrank != 0) {
        Message m = recv(any_source, tag_bcast);
        data      = std::move(m.payload);
    }
    // forward to children: vrank + 2^k for 2^k > vrank
    int mask = 1;
    while (mask <= vrank)
        mask <<= 1;
    for (; mask < size; mask <<= 1) {
        const int vchild = vrank + mask;
        if (vchild < size)
            send((vchild + root) % size, tag_bcast,
                 std::span<const std::byte>(data.data(), data.size()));
    }
}

double Comm::reduce(double value, ReduceOp op, int root) {
    const double partial = binomial_reduce(*this, value, op);
    if (root == 0)
        return partial;
    // forward the final value from rank 0 to the requested root
    if (rank_ == 0)
        send_value(root, tag_reduce, partial);
    if (rank_ == root)
        return recv_value<double>(0, tag_reduce);
    return partial;
}

double Comm::allreduce(double value, ReduceOp op) {
    const double partial = binomial_reduce(*this, value, op);
    std::vector<std::byte> buf(sizeof(double));
    if (rank_ == 0)
        std::memcpy(buf.data(), &partial, sizeof(double));
    bcast(buf, 0);
    double out;
    std::memcpy(&out, buf.data(), sizeof(double));
    return out;
}

std::uint64_t Comm::reduce(std::uint64_t value, ReduceOp op, int root) {
    const std::uint64_t partial = binomial_reduce(*this, value, op);
    if (root == 0)
        return partial;
    if (rank_ == 0)
        send_value(root, tag_reduce, partial);
    if (rank_ == root)
        return recv_value<std::uint64_t>(0, tag_reduce);
    return partial;
}

std::uint64_t Comm::allreduce(std::uint64_t value, ReduceOp op) {
    const std::uint64_t partial = binomial_reduce(*this, value, op);
    std::vector<std::byte> buf(sizeof(std::uint64_t));
    if (rank_ == 0)
        std::memcpy(buf.data(), &partial, sizeof(std::uint64_t));
    bcast(buf, 0);
    std::uint64_t out;
    std::memcpy(&out, buf.data(), sizeof(std::uint64_t));
    return out;
}

std::vector<std::vector<std::byte>> Comm::gather(std::span<const std::byte> payload,
                                                 int root) {
    std::vector<std::vector<std::byte>> out;
    if (rank_ == root) {
        out.resize(size());
        out[rank_].assign(payload.begin(), payload.end());
        for (int i = 0; i < size() - 1; ++i) {
            Message m = recv(any_source, tag_gather);
            out[m.src] = std::move(m.payload);
        }
    } else {
        send(root, tag_gather, payload);
    }
    return out;
}

} // namespace calib::simmpi
