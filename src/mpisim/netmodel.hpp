// Simple latency/bandwidth network cost model, used by the discrete-event
// mode of the cross-process tree reduction to charge message costs for
// rank counts beyond what threads can honestly measure on this machine
// (see DESIGN.md substitution notes). Defaults approximate an OmniPath-
// class fabric like the paper's Quartz system.
#pragma once

#include <cstddef>

namespace calib::simmpi {

struct NetModel {
    double latency_us           = 1.5;     ///< per-message latency
    double bandwidth_bytes_per_us = 12000.0; ///< ~12 GB/s

    /// Transfer time for one message of \a bytes.
    double time_us(std::size_t bytes) const noexcept {
        return latency_us + static_cast<double>(bytes) / bandwidth_bytes_per_us;
    }
};

} // namespace calib::simmpi
