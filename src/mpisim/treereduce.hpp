// Scalable cross-process aggregation (paper §IV-C, Figure 4).
//
// The parallel query runs one QueryProcessor per rank over that rank's
// input files, then performs a binomial-tree reduction of the serialized
// partial aggregation databases: at step k, ranks with bit k set send
// their partial to (rank - 2^k), which merges it; after ceil(log2 P)
// steps the root holds the global result.
//
// Two modes:
//   parallel_query  — executes for real on simmpi rank-threads
//   modeled_query   — discrete-event mode for large P: local processing
//                     and every per-level merge are executed and *timed*
//                     for real, while message hops are charged from a
//                     NetModel; reproduces the logarithmic reduction
//                     scaling without P physical threads.
#pragma once

#include "netmodel.hpp"
#include "runtime.hpp"

#include "../query/processor.hpp"
#include "../query/queryspec.hpp"

#include <string>
#include <vector>

namespace calib::simmpi {

struct QueryTimes {
    double total_s  = 0; ///< wall-clock on rank 0, including input I/O
    double local_s  = 0; ///< reading + processing process-local input
    double reduce_s = 0; ///< cross-process tree reduction
    std::size_t output_records = 0;
    std::uint64_t input_records  = 0;
    std::uint64_t bytes_reduced  = 0; ///< total payload moved in the reduction
    int nprocs = 0;
};

/// Run \a spec over \a files distributed round-robin across \a nprocs
/// rank-threads; the root's merged result lands in \a result (optional).
/// \a threads > 1 runs each rank's local stage on the parallel query
/// engine (engine::ParallelQueryProcessor) with that many workers.
QueryTimes parallel_query(const QuerySpec& spec, const std::vector<std::string>& files,
                          int nprocs, std::vector<RecordMap>* result = nullptr,
                          int threads = 1);

/// Discrete-event weak-scaling model: every rank processes
/// `files_per_rank` copies of \a representative_file; tree merges are
/// executed on real aggregation databases and timed, network hops are
/// charged from \a net. Suitable for P up to 2^20.
QueryTimes modeled_query(const QuerySpec& spec, const std::string& representative_file,
                         int nprocs, const NetModel& net, int files_per_rank = 1,
                         std::vector<RecordMap>* result = nullptr);

/// Fan-out ablation: model the reduction over a k-ary tree instead of the
/// binomial (k=2) tree. Each inner node receives and merges (fanout-1)
/// sibling partials per level; levels = ceil(log_fanout(P)). Higher
/// fan-out means fewer levels but more sequential merges per node — the
/// classic reduction-tree tradeoff.
QueryTimes modeled_query_kary(const QuerySpec& spec,
                              const std::string& representative_file, int nprocs,
                              const NetModel& net, int fanout,
                              std::vector<RecordMap>* result = nullptr);

} // namespace calib::simmpi
