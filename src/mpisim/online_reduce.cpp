#include "online_reduce.hpp"

#include "../runtime/caliper.hpp"
#include "../runtime/services/aggregate_config.hpp"

namespace calib::simmpi {

namespace {
constexpr int tag_online_reduce = 0x0ca11b1;
} // namespace

std::vector<RecordMap> reduce_channel(Comm& comm, Channel* channel, int root) {
    Caliper& c = Caliper::instance();

    // accumulate into a fresh database (never mutate the service's own
    // state: the rank may still flush it through the recorder afterwards)
    const AggregationConfig cfg = read_aggregate_config(channel->config());
    AggregationDB accumulator(cfg, &c.registry());

    ThreadData& td = c.thread_data();
    if (channel->id() < td.channels.size() &&
        td.channels[channel->id()].aggregation)
        accumulator.merge(*td.channels[channel->id()].aggregation);

    const int rank = comm.rank();
    const int size = comm.size();
    const int vrank = (rank - root + size) % size; // rotate root to 0

    for (int step = 1; step < size; step <<= 1) {
        if (vrank & step) {
            const int vdest = vrank - step;
            comm.send((vdest + root) % size, tag_online_reduce,
                      accumulator.serialize());
            break; // this rank's partial is on its way up the tree
        }
        if (vrank + step < size) {
            Message m = comm.recv(((vrank + step + root) % size), tag_online_reduce);
            accumulator.merge_serialized(m.payload);
        }
    }

    std::vector<RecordMap> out;
    if (rank == root)
        out = accumulator.flush();
    return out;
}

} // namespace calib::simmpi
