// Online cross-process aggregation (extension; paper §II-B notes that
// on-line solutions "may use dedicated data reduction networks such as
// MRNet or CBTF" — this provides the same capability over simmpi).
//
// At the end of a run, every rank's per-thread aggregation database is
// merged up a binomial tree *in memory*, so the root obtains the global
// profile without any intermediate per-rank files. Complements the
// offline path (recorder + mpi-caliquery); both produce identical results
// (tested), letting users shift aggregation between stages (paper §VI-F).
#pragma once

#include "runtime.hpp"

#include "../common/recordmap.hpp"

#include <vector>

namespace calib {
class Channel;
}

namespace calib::simmpi {

/// Reduce the calling rank-threads' aggregation databases of \a channel
/// to \a root. Must be called collectively by every rank of \a comm, on
/// the thread that produced the rank's measurements, after measurement is
/// complete. Returns the merged, flushed records on the root rank (empty
/// vector elsewhere).
///
/// Only the aggregate service's state participates; trace buffers are not
/// reducible (use the recorder + offline query for traces).
std::vector<RecordMap> reduce_channel(Comm& comm, Channel* channel, int root = 0);

} // namespace calib::simmpi
