// Instrumented MPI wrappers (the paper's "MPI interception through the
// MPI profiling interface", §V-B): every communication call is wrapped in
// an "mpi.function" annotation, and the rank is exported as "mpi.rank".
#pragma once

#include "runtime.hpp"

#include "../common/attribute.hpp"
#include "../common/variant.hpp"

#include <span>
#include <vector>

namespace calib::simmpi {

/// Caliper-instrumented communicator. Construction exports "mpi.rank" on
/// the calling thread's blackboard and labels the thread with its rank.
class CaliComm {
public:
    explicit CaliComm(Comm& comm);

    int rank() const noexcept { return comm_.rank(); }
    int size() const noexcept { return comm_.size(); }
    Comm& raw() noexcept { return comm_; }

    void send(int dest, int tag, std::span<const std::byte> payload);
    Message recv(int src = any_source, int tag = any_tag);
    void sendrecv(int dest, std::span<const std::byte> sendbuf, int src,
                  std::vector<std::byte>& recvbuf, int tag);
    void barrier();
    void bcast(std::vector<std::byte>& data, int root);
    double allreduce(double value, Comm::ReduceOp op);
    std::uint64_t allreduce(std::uint64_t value, Comm::ReduceOp op);
    double reduce(double value, Comm::ReduceOp op, int root);
    std::vector<std::vector<std::byte>> gather(std::span<const std::byte> payload,
                                               int root);

private:
    /// RAII "mpi.function" region.
    class FunctionScope {
    public:
        FunctionScope(CaliComm& parent, const char* name);
        ~FunctionScope();

    private:
        CaliComm& parent_;
    };

    Comm& comm_;
    Attribute function_attr_;
    Attribute rank_attr_;
};

} // namespace calib::simmpi
