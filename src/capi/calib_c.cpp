#include "calib_c.h"

#include "../common/log.hpp"
#include "../runtime/annotation.hpp"
#include "../runtime/caliper.hpp"

#include <mutex>
#include <vector>

namespace {

// channel-id table for the C interface (ids are never reused)
std::mutex g_channel_mutex;
std::vector<calib::Channel*> g_channels;

calib::Channel* lookup(int id) {
    std::lock_guard<std::mutex> lock(g_channel_mutex);
    if (id < 0 || static_cast<std::size_t>(id) >= g_channels.size())
        return nullptr;
    return g_channels[id];
}

} // namespace

extern "C" {

void calib_begin_string(const char* attribute, const char* value) {
    calib::mark_begin(attribute, calib::Variant(std::string_view(value)));
}

void calib_begin_int(const char* attribute, int64_t value) {
    calib::mark_begin(attribute, calib::Variant(static_cast<long long>(value)));
}

void calib_end(const char* attribute) {
    calib::mark_end(attribute);
}

void calib_set_string(const char* attribute, const char* value) {
    calib::mark_set(attribute, calib::Variant(std::string_view(value)));
}

void calib_set_int(const char* attribute, int64_t value) {
    calib::mark_set(attribute, calib::Variant(static_cast<long long>(value)));
}

void calib_set_double(const char* attribute, double value) {
    calib::mark_set(attribute, calib::Variant(value));
}

int calib_channel_create(const char* name, const char* profile) {
    try {
        calib::RuntimeConfig cfg = calib::RuntimeConfig::from_string(profile)
                                       .merged_with(calib::RuntimeConfig::from_env());
        calib::Channel* channel =
            calib::Caliper::instance().create_channel(name, cfg);
        std::lock_guard<std::mutex> lock(g_channel_mutex);
        g_channels.push_back(channel);
        return static_cast<int>(g_channels.size()) - 1;
    } catch (const std::exception& e) {
        calib::log_error() << "calib_channel_create: " << e.what();
        return -1;
    }
}

int calib_channel_flush(int channel_id) {
    calib::Channel* channel = lookup(channel_id);
    if (!channel)
        return -1;
    calib::Caliper::instance().flush_thread(channel);
    return 0;
}

int calib_channel_close(int channel_id) {
    calib::Channel* channel = lookup(channel_id);
    if (!channel)
        return -1;
    calib::Caliper::instance().close_channel(channel);
    return 0;
}

void calib_snapshot(void) {
    calib::Caliper::instance().push_snapshot();
}

void calib_set_thread_label(const char* label) {
    calib::Caliper::instance().set_thread_label(label);
}

const char* calib_version(void) {
    return "1.0.0";
}

} // extern "C"
