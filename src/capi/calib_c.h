/* C annotation API for calib (Caliper exposes an equivalent C interface
 * so C and Fortran codes can be instrumented; paper §IV-A).
 *
 * The C API covers the instrumentation surface: attribute begin/end/set,
 * channel creation from a configuration string, explicit snapshots, and
 * flushing. Querying and analysis remain C++/CLI territory.
 */
#ifndef CALIB_C_H
#define CALIB_C_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* -- region annotations (nested begin/end semantics) ---------------------- */
void calib_begin_string(const char* attribute, const char* value);
void calib_begin_int(const char* attribute, int64_t value);
void calib_end(const char* attribute);

/* -- value attributes (set-only semantics) --------------------------------- */
void calib_set_string(const char* attribute, const char* value);
void calib_set_int(const char* attribute, int64_t value);
void calib_set_double(const char* attribute, double value);

/* -- channels --------------------------------------------------------------
 * Create a measurement channel from a profile in runtime-config syntax
 * ("key=value" lines). Returns an opaque id (>= 0), or -1 on error. */
int calib_channel_create(const char* name, const char* profile);

/* Flush the calling thread's data on the channel (recorder writes files
 * when enabled). Returns 0 on success, -1 when the id is unknown. */
int calib_channel_flush(int channel_id);

/* Close the channel: runs finish hooks (e.g. the report service) and
 * deactivates it. */
int calib_channel_close(int channel_id);

/* -- snapshots --------------------------------------------------------------
 * Trigger an explicit snapshot on all active channels. */
void calib_snapshot(void);

/* -- misc ------------------------------------------------------------------ */
void calib_set_thread_label(const char* label);

/* Library version as "major.minor.patch". */
const char* calib_version(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CALIB_C_H */
