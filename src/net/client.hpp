// ProxyClient: the client side of the calib-proxyd wire protocol.
//
// A client connects to one daemon, joins one channel, and streams records
// to it. Mirroring the resolve-once reader design, each attribute is
// defined exactly once per connection (an Attr frame mapping a
// client-local id to name/type/properties); records then travel as
// compact (local id, value) batches. Records are buffered and sent in
// batched frames — call flush() (or close()) to push out a partial batch.
//
// Two push paths:
//   - id-based:   push(registry, record) — ids resolve against the given
//     AttributeRegistry, carrying attribute types *and properties* to the
//     daemon (one registry per client; the hot path)
//   - name-based: push(record) — a RecordMap; attribute type is taken
//     from the first value seen, properties default to none
//
// query() runs a live CalQL query against the connected channel and
// returns the formatted result (the daemon evaluates it over its current
// aggregate). All methods are blocking and single-threaded; use one
// client per thread.
#pragma once

#include "frame.hpp"
#include "socket.hpp"

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordmap.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace calib::net {

class ProxyClient {
public:
    struct Options {
        std::string address;                  ///< daemon address (see socket.hpp)
        std::string client_name = "calib";    ///< reported in Hello
        std::string channel     = "default";  ///< daemon channel to join
        /// Query-only connection: the daemon looks the channel up and
        /// rejects the handshake if it does not exist, instead of
        /// find-or-creating it as for ingest connections.
        bool query_only = false;
        std::size_t batch_records = 512;      ///< records per Records frame
        std::size_t batch_bytes   = 256 * 1024; ///< payload bytes per frame
    };

    /// Connect, send Hello, and wait for the daemon's acknowledgement.
    /// Throws std::runtime_error on connection or handshake failure.
    explicit ProxyClient(Options opts);
    ~ProxyClient();

    ProxyClient(const ProxyClient&)            = delete;
    ProxyClient& operator=(const ProxyClient&) = delete;

    /// Send per-connection dataset globals. With \a join, the daemon joins
    /// them onto every subsequent record from this connection (the
    /// streaming analogue of cali-query --with-globals).
    void set_globals(const RecordMap& globals, bool join = true);

    /// Buffer one record for sending (auto-flushes full batches).
    void push(const RecordMap& record);
    void push(const std::vector<RecordMap>& records);

    /// Id-based push: \a record's attribute ids come from \a registry.
    /// All pushes on one client must use the same registry.
    void push(const AttributeRegistry& registry, const IdRecord& record);

    /// Send any buffered records now.
    void flush();

    /// Flush, run a CalQL query on the daemon, and return the formatted
    /// result. Throws std::runtime_error on transport errors or when the
    /// daemon reports a query error.
    std::string query(std::string_view calql);

    /// Flush, send Bye, and close the connection. Idempotent.
    void close();

    bool connected() const noexcept { return socket_.valid(); }

    std::uint64_t records_sent() const noexcept { return records_sent_; }
    std::uint64_t frames_sent() const noexcept { return frames_sent_; }
    std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

private:
    std::uint32_t define_name(const char* interned_name, Variant::Type type,
                              std::uint32_t properties);
    std::uint32_t define_id(const AttributeRegistry& registry, id_t attr);
    void maybe_flush_batch();
    void send_bytes(std::vector<std::byte>& bytes);
    ResultInfo read_result();

    Options opts_;
    Socket socket_;
    FrameDecoder decoder_;

    // pending output: attribute definitions must hit the wire before the
    // record batch that references them
    std::vector<std::byte> pending_attrs_;
    RecordsBuilder batch_;

    // name-based resolve-once state (interned name pointer -> local id)
    std::unordered_map<const void*, std::uint32_t> local_by_name_;
    // id-based resolve-once state (registry id -> local id + 1; 0 = unset)
    const AttributeRegistry* registry_ = nullptr;
    std::vector<std::uint32_t> local_by_attr_;

    std::uint32_t next_local_     = 0;
    std::uint64_t records_sent_   = 0;
    std::uint64_t frames_sent_    = 0;
    std::uint64_t bytes_sent_     = 0;
};

} // namespace calib::net
