// Thin RAII socket layer for the proxy daemon and its clients.
//
// Addresses are strings with two forms:
//   - unix-domain: any string containing '/' (a filesystem path), or with
//     an explicit "unix:" prefix — e.g. "/tmp/calib-proxyd.sock"
//   - TCP: "host:port" — e.g. "127.0.0.1:9090", ":9090" (all interfaces),
//     "localhost:0" (kernel-assigned port; the resolved address reports it)
//
// Blocking send/recv helpers serve the client library; the daemon puts
// sockets into non-blocking mode and drives them from its epoll loop.
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace calib::net {

class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket& operator=(Socket&& o) noexcept {
        if (this != &o) {
            close();
            fd_   = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket&)            = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const noexcept { return fd_; }
    bool valid() const noexcept { return fd_ >= 0; }

    /// Release ownership of the descriptor.
    int release() noexcept {
        const int fd = fd_;
        fd_          = -1;
        return fd;
    }

    void close() noexcept;

    /// Write the whole buffer (retrying on EINTR / short writes).
    /// Returns false on error; sets errno.
    bool send_all(const void* data, std::size_t len) const noexcept;

    /// One read; returns bytes read, 0 on EOF, -1 on error (errno set).
    ssize_t recv_some(void* buf, std::size_t len) const noexcept;

    void set_nonblocking(bool on) const noexcept;

private:
    int fd_ = -1;
};

/// True when \a address names a unix-domain socket (contains '/' or has a
/// "unix:" prefix).
bool is_unix_address(const std::string& address);

/// Strip a "unix:" prefix, if present.
std::string unix_socket_path(const std::string& address);

/// Bind + listen on \a address. For TCP with port 0 the kernel assigns a
/// port; \a resolved (if non-null) receives the final address either way.
/// A stale unix socket file (bind target exists but nothing accepts) is
/// removed and rebound. Throws std::runtime_error on failure.
Socket listen_on(const std::string& address, std::string* resolved = nullptr);

/// Connect (blocking) to \a address. Throws std::runtime_error on failure.
Socket connect_to(const std::string& address);

} // namespace calib::net
