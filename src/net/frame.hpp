// Wire protocol for calib-proxyd: length-prefixed binary frames.
//
//   frame := payload_len:u32 | type:u8 | payload[payload_len]
//
// Integers are host-endian (little-endian on every supported target);
// values use the same encoding as AggregationDB serialization
// (ByteWriter::put_variant). The frame set mirrors the resolve-once
// reader design from the offline pipeline: a client defines each
// attribute once (Attr frame, client-local id -> name/type/properties)
// and then streams compact id-based record batches (Records frames), so
// the daemon resolves every attribute name exactly once per connection.
//
//   Hello    client -> daemon   protocol version, client name, channel name
//   Attr     client -> daemon   client-local attribute definition
//   Records  client -> daemon   batch of records: entries of (local id, value)
//   Globals  client -> daemon   per-connection dataset globals; optionally
//                               joined onto every subsequent record
//   Query    client -> daemon   CalQL text; daemon replies with one Result
//   Result   daemon -> client   status byte + formatted body / error text
//   Bye      client -> daemon   orderly end of stream
//
// The decoder is incremental (feed bytes as they arrive, pop complete
// frames) and never throws: frames larger than the configured bound are
// skipped wholesale and counted, so one misbehaving client cannot make
// the daemon buffer unbounded data. Payload *parsers* throw
// std::runtime_error on truncated/malformed payloads (via ByteReader);
// callers treat that as a per-connection protocol error.
// docs/DAEMON.md describes the protocol in full.
#pragma once

#include "../common/bytebuf.hpp"
#include "../common/variant.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace calib::net {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame header: payload length (u32) + frame type (u8).
inline constexpr std::size_t kHeaderBytes = 5;

/// Default upper bound on a single frame's payload. Large enough for
/// generous record batches, small enough to bound per-connection memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : std::uint8_t {
    Hello   = 1,
    Attr    = 2,
    Records = 3,
    Globals = 4,
    Query   = 5,
    Result  = 6,
    Bye     = 7,
};

const char* frame_type_name(FrameType t) noexcept;

/// One decoded frame; the payload span aliases the decoder's buffer and
/// is valid until the next feed()/next() call.
struct FrameView {
    FrameType type = FrameType::Bye;
    std::span<const std::byte> payload;
};

/// Incremental frame decoder. Never throws, never reads past its buffer;
/// oversized frames are discarded as their bytes stream through.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
        : max_frame_(max_frame_bytes) {}

    /// Append raw bytes from the wire.
    void feed(const void* data, std::size_t len);

    /// Pop the next complete frame. Returns false when no complete frame
    /// is buffered (call feed() with more bytes).
    bool next(FrameView& out);

    /// Bytes buffered but not yet consumed by next().
    std::size_t buffered() const noexcept { return buf_.size() - pos_; }

    /// Frames discarded because their payload exceeded the bound.
    std::uint64_t dropped_frames() const noexcept { return dropped_; }

private:
    std::vector<std::byte> buf_;
    std::size_t pos_        = 0; ///< consumed prefix of buf_
    std::uint64_t skip_     = 0; ///< oversized-frame bytes still to discard
    std::size_t max_frame_;
    std::uint64_t dropped_  = 0;
};

// ------------------------------------------------------------- frame encoding

/// Append one complete frame (header + payload) to \a out.
void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::span<const std::byte> payload);

/// Hello flags (trailing u8 in the payload; absent means 0).
inline constexpr std::uint8_t kHelloQueryOnly = 1u << 0;

void append_hello(std::vector<std::byte>& out, std::string_view client_name,
                  std::string_view channel_name, std::uint8_t flags = 0);
void append_attr(std::vector<std::byte>& out, std::uint32_t local_id,
                 std::string_view name, Variant::Type type,
                 std::uint32_t properties);
void append_globals(std::vector<std::byte>& out, bool join,
                    std::span<const std::pair<std::uint32_t, Variant>> entries);
void append_query(std::vector<std::byte>& out, std::string_view calql);
void append_result(std::vector<std::byte>& out, std::uint8_t status,
                   std::string_view body);
void append_bye(std::vector<std::byte>& out);

/// Records payloads are built incrementally (one batch = one frame):
///
///   RecordsBuilder b;
///   b.begin_record(); b.entry(id, v); ... b.end_record();
///   b.frame(out);   // emits the Records frame, resets the builder
class RecordsBuilder {
public:
    RecordsBuilder() { reset(); }

    void begin_record() {
        entry_count_pos_ = payload_.size();
        ByteWriter(payload_).put(std::uint32_t{0});
    }
    void entry(std::uint32_t local_id, const Variant& value) {
        ByteWriter w(payload_);
        w.put(local_id);
        w.put_variant(value);
        ++entries_;
    }
    void end_record() {
        const std::uint32_t n = entries_;
        std::memcpy(payload_.data() + entry_count_pos_, &n, sizeof(n));
        entries_ = 0;
        ++records_;
    }

    std::uint32_t num_records() const noexcept { return records_; }
    std::size_t payload_bytes() const noexcept { return payload_.size(); }

    /// Emit the batch as one Records frame and reset for the next batch.
    void frame(std::vector<std::byte>& out);

    void reset() {
        payload_.clear();
        ByteWriter(payload_).put(std::uint32_t{0}); // record count, patched
        records_ = 0;
        entries_ = 0;
    }

private:
    std::vector<std::byte> payload_;
    std::size_t entry_count_pos_ = 0;
    std::uint32_t records_       = 0;
    std::uint32_t entries_       = 0;
};

// ------------------------------------------------------------- frame parsing
//
// All parsers throw std::runtime_error on truncated or malformed payloads.

struct HelloInfo {
    std::uint32_t version = 0;
    std::string client_name;
    std::string channel_name;
    bool query_only = false; ///< look the channel up, never create it
};
HelloInfo parse_hello(std::span<const std::byte> payload);

struct AttrDef {
    std::uint32_t local_id   = 0;
    Variant::Type type       = Variant::Type::Empty;
    std::uint32_t properties = 0;
    std::string name;
};
AttrDef parse_attr(std::span<const std::byte> payload);

struct GlobalsInfo {
    bool join = false;
    std::vector<std::pair<std::uint32_t, Variant>> entries;
};
GlobalsInfo parse_globals(std::span<const std::byte> payload);

std::string parse_query(std::span<const std::byte> payload);

struct ResultInfo {
    std::uint8_t status = 0; ///< 0 = ok, 1 = error (body holds the message)
    std::string body;
};
ResultInfo parse_result(std::span<const std::byte> payload);

/// Streaming parser for a Records payload: iterates records without
/// materializing them, handing each entry to a callback.
class RecordsParser {
public:
    explicit RecordsParser(std::span<const std::byte> payload)
        : reader_(payload) {
        count_ = reader_.get<std::uint32_t>();
    }

    std::uint32_t count() const noexcept { return count_; }

    /// Parse the next record, invoking \a entry_fn(local_id, value) per
    /// entry. Returns false when all declared records were consumed.
    template <typename F>
    bool next(F&& entry_fn) {
        if (parsed_ >= count_)
            return false;
        const auto entries = reader_.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < entries; ++i) {
            const auto id = reader_.get<std::uint32_t>();
            Variant v     = reader_.get_variant();
            entry_fn(id, v);
        }
        ++parsed_;
        return true;
    }

private:
    ByteReader reader_;
    std::uint32_t count_  = 0;
    std::uint32_t parsed_ = 0;
};

} // namespace calib::net
