#include "socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace calib::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Split "host:port"; empty host means all interfaces (listen) or
/// localhost (connect).
void split_host_port(const std::string& address, std::string& host,
                     std::string& port) {
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos)
        throw std::runtime_error("bad TCP address '" + address +
                                 "' (expected host:port)");
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
    if (port.empty())
        throw std::runtime_error("bad TCP address '" + address + "' (no port)");
}

sockaddr_un make_unix_addr(const std::string& path) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path))
        throw std::runtime_error("unix socket path too long: " + path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

std::string tcp_local_address(int fd) {
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0)
        return {};
    char host[NI_MAXHOST], port[NI_MAXSERV];
    if (getnameinfo(reinterpret_cast<sockaddr*>(&ss), len, host, sizeof(host),
                    port, sizeof(port), NI_NUMERICHOST | NI_NUMERICSERV) != 0)
        return {};
    return std::string(host) + ":" + port;
}

} // namespace

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool Socket::send_all(const void* data, std::size_t len) const noexcept {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

ssize_t Socket::recv_some(void* buf, std::size_t len) const noexcept {
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

void Socket::set_nonblocking(bool on) const noexcept {
    const int flags = fcntl(fd_, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd_, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

bool is_unix_address(const std::string& address) {
    return address.rfind("unix:", 0) == 0 ||
           address.find('/') != std::string::npos;
}

std::string unix_socket_path(const std::string& address) {
    return address.rfind("unix:", 0) == 0 ? address.substr(5) : address;
}

namespace {

Socket listen_unix(const std::string& path) {
    sockaddr_un sa = make_unix_addr(path);

    Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!s.valid())
        fail("socket(AF_UNIX)");

    if (bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        if (errno != EADDRINUSE)
            fail("bind " + path);
        // stale socket file? probe it: if nothing accepts, remove + rebind
        Socket probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (probe.valid() &&
            connect(probe.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0)
            throw std::runtime_error("address in use (daemon already running?): " +
                                     path);
        ::unlink(path.c_str());
        if (bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
            fail("bind " + path);
    }
    if (listen(s.fd(), SOMAXCONN) != 0)
        fail("listen " + path);
    return s;
}

Socket listen_tcp(const std::string& address, std::string* resolved) {
    std::string host, port;
    split_host_port(address, host, port);

    addrinfo hints{};
    hints.ai_family   = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags    = AI_PASSIVE;
    addrinfo* res     = nullptr;
    const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &res);
    if (rc != 0)
        throw std::runtime_error("resolve '" + address +
                                 "': " + gai_strerror(rc));

    Socket s;
    std::string err = "no usable address for '" + address + "'";
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
        Socket cand(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                             ai->ai_protocol));
        if (!cand.valid())
            continue;
        const int one = 1;
        setsockopt(cand.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (bind(cand.fd(), ai->ai_addr, ai->ai_addrlen) == 0 &&
            listen(cand.fd(), SOMAXCONN) == 0) {
            s = std::move(cand);
            break;
        }
        err = "bind " + address + ": " + std::strerror(errno);
    }
    freeaddrinfo(res);
    if (!s.valid())
        throw std::runtime_error(err);
    if (resolved)
        *resolved = tcp_local_address(s.fd());
    return s;
}

} // namespace

Socket listen_on(const std::string& address, std::string* resolved) {
    if (is_unix_address(address)) {
        Socket s = listen_unix(unix_socket_path(address));
        if (resolved)
            *resolved = unix_socket_path(address);
        return s;
    }
    return listen_tcp(address, resolved);
}

Socket connect_to(const std::string& address) {
    if (is_unix_address(address)) {
        const std::string path = unix_socket_path(address);
        sockaddr_un sa         = make_unix_addr(path);
        Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (!s.valid())
            fail("socket(AF_UNIX)");
        if (connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
            fail("connect " + path);
        return s;
    }

    std::string host, port;
    split_host_port(address, host, port);
    addrinfo hints{};
    hints.ai_family   = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res     = nullptr;
    const int rc = getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               port.c_str(), &hints, &res);
    if (rc != 0)
        throw std::runtime_error("resolve '" + address +
                                 "': " + gai_strerror(rc));
    Socket s;
    int saved_errno = ECONNREFUSED;
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
        Socket cand(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                             ai->ai_protocol));
        if (!cand.valid())
            continue;
        if (connect(cand.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            setsockopt(cand.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            s = std::move(cand);
            break;
        }
        saved_errno = errno;
    }
    freeaddrinfo(res);
    if (!s.valid()) {
        errno = saved_errno;
        fail("connect " + address);
    }
    return s;
}

} // namespace calib::net
