#include "client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace calib::net {

ProxyClient::ProxyClient(Options opts) : opts_(std::move(opts)) {
    socket_ = connect_to(opts_.address);

    std::vector<std::byte> hello;
    append_hello(hello, opts_.client_name, opts_.channel,
                 opts_.query_only ? kHelloQueryOnly : 0);
    send_bytes(hello);

    const ResultInfo ack = read_result();
    if (ack.status != 0)
        throw std::runtime_error("proxy handshake rejected: " + ack.body);
}

ProxyClient::~ProxyClient() {
    try {
        close();
    } catch (...) {
        // best-effort teardown
    }
}

std::uint32_t ProxyClient::define_name(const char* interned_name,
                                       Variant::Type type,
                                       std::uint32_t properties) {
    const auto it = local_by_name_.find(interned_name);
    if (it != local_by_name_.end())
        return it->second;
    const std::uint32_t local = next_local_++;
    local_by_name_.emplace(interned_name, local);
    append_attr(pending_attrs_, local, interned_name, type, properties);
    return local;
}

std::uint32_t ProxyClient::define_id(const AttributeRegistry& registry,
                                     id_t attr) {
    if (registry_ != &registry) {
        // one registry per client; switching would alias unrelated ids
        if (registry_ != nullptr)
            throw std::runtime_error(
                "proxy client: id-based pushes must use one registry");
        registry_ = &registry;
    }
    if (attr >= local_by_attr_.size())
        local_by_attr_.resize(attr + 1, 0);
    if (local_by_attr_[attr] != 0)
        return local_by_attr_[attr] - 1;

    const Attribute a = registry.get(attr);
    if (!a.valid())
        throw std::runtime_error("proxy client: unknown attribute id");
    const std::uint32_t local = next_local_++;
    local_by_attr_[attr]      = local + 1;
    append_attr(pending_attrs_, local, a.name_view(), a.type(), a.properties());
    return local;
}

void ProxyClient::set_globals(const RecordMap& globals, bool join) {
    flush(); // globals apply to records that follow, keep wire order exact
    std::vector<std::pair<std::uint32_t, Variant>> entries;
    entries.reserve(globals.size());
    for (const auto& [name, value] : globals) {
        if (value.empty())
            continue;
        entries.emplace_back(define_name(name, value.type(), prop::none), value);
    }
    std::vector<std::byte> out;
    out.swap(pending_attrs_);
    append_globals(out, join, entries);
    send_bytes(out);
}

void ProxyClient::push(const RecordMap& record) {
    batch_.begin_record();
    for (const auto& [name, value] : record) {
        if (value.empty())
            continue; // writers omit Empty; so does the wire
        batch_.entry(define_name(name, value.type(), prop::none), value);
    }
    batch_.end_record();
    ++records_sent_;
    maybe_flush_batch();
}

void ProxyClient::push(const std::vector<RecordMap>& records) {
    for (const RecordMap& r : records)
        push(r);
}

void ProxyClient::push(const AttributeRegistry& registry, const IdRecord& record) {
    batch_.begin_record();
    for (const Entry& e : record) {
        if (e.value.empty())
            continue;
        batch_.entry(define_id(registry, e.attribute), e.value);
    }
    batch_.end_record();
    ++records_sent_;
    maybe_flush_batch();
}

void ProxyClient::maybe_flush_batch() {
    if (batch_.num_records() >= opts_.batch_records ||
        batch_.payload_bytes() >= opts_.batch_bytes)
        flush();
}

void ProxyClient::flush() {
    if (batch_.num_records() == 0 && pending_attrs_.empty())
        return;
    std::vector<std::byte> out;
    out.swap(pending_attrs_);
    if (batch_.num_records() > 0) {
        batch_.frame(out);
        ++frames_sent_;
    }
    send_bytes(out);
}

std::string ProxyClient::query(std::string_view calql) {
    flush();
    std::vector<std::byte> out;
    append_query(out, calql);
    send_bytes(out);

    const ResultInfo res = read_result();
    if (res.status != 0)
        throw std::runtime_error(res.body);
    return res.body;
}

void ProxyClient::close() {
    if (!socket_.valid())
        return;
    try {
        flush();
        std::vector<std::byte> out;
        append_bye(out);
        send_bytes(out);
    } catch (...) {
        // the daemon may already be gone; an orderly Bye is best-effort
    }
    socket_.close();
}

void ProxyClient::send_bytes(std::vector<std::byte>& bytes) {
    if (bytes.empty())
        return;
    if (!socket_.valid())
        throw std::runtime_error("proxy client: connection closed");
    if (!socket_.send_all(bytes.data(), bytes.size())) {
        const int err = errno;
        socket_.close();
        throw std::runtime_error(std::string("proxy client: send failed: ") +
                                 std::strerror(err));
    }
    bytes_sent_ += bytes.size();
    bytes.clear();
}

ResultInfo ProxyClient::read_result() {
    FrameView frame;
    char buf[4096];
    for (;;) {
        while (decoder_.next(frame)) {
            if (frame.type == FrameType::Result)
                return parse_result(frame.payload);
            // ignore anything else the daemon might send
        }
        const ssize_t n = socket_.recv_some(buf, sizeof(buf));
        if (n == 0)
            throw std::runtime_error("proxy client: daemon closed the connection");
        if (n < 0)
            throw std::runtime_error(std::string("proxy client: recv failed: ") +
                                     std::strerror(errno));
        decoder_.feed(buf, static_cast<std::size_t>(n));
    }
}

} // namespace calib::net
