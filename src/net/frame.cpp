#include "frame.hpp"

#include <cstring>
#include <stdexcept>

namespace calib::net {

const char* frame_type_name(FrameType t) noexcept {
    switch (t) {
    case FrameType::Hello:
        return "hello";
    case FrameType::Attr:
        return "attr";
    case FrameType::Records:
        return "records";
    case FrameType::Globals:
        return "globals";
    case FrameType::Query:
        return "query";
    case FrameType::Result:
        return "result";
    case FrameType::Bye:
        return "bye";
    }
    return "unknown";
}

// ----------------------------------------------------------------- decoder

void FrameDecoder::feed(const void* data, std::size_t len) {
    const std::byte* p = static_cast<const std::byte*>(data);

    // discard bytes of an oversized frame without buffering them
    if (skip_ > 0) {
        const std::size_t take = len < skip_ ? len : static_cast<std::size_t>(skip_);
        p += take;
        len -= take;
        skip_ -= take;
    }
    if (len == 0)
        return;

    // compact the consumed prefix before growing
    if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), p, p + len);
}

bool FrameDecoder::next(FrameView& out) {
    for (;;) {
        if (skip_ > 0) {
            // an oversized frame is still streaming in; nothing to pop
            return false;
        }
        const std::size_t avail = buf_.size() - pos_;
        if (avail < kHeaderBytes)
            return false;

        std::uint32_t len = 0;
        std::memcpy(&len, buf_.data() + pos_, sizeof(len));
        const auto type = static_cast<FrameType>(
            std::to_integer<std::uint8_t>(buf_[pos_ + 4]));

        if (len > max_frame_) {
            // shed the whole frame: drop what is buffered, remember how
            // many payload bytes are still on the wire
            ++dropped_;
            const std::size_t have = avail - kHeaderBytes;
            if (have >= len) {
                pos_ += kHeaderBytes + len;
            } else {
                pos_  = buf_.size();
                skip_ = len - have;
            }
            continue;
        }

        if (avail < kHeaderBytes + len)
            return false;

        out.type    = type;
        out.payload = std::span<const std::byte>(buf_.data() + pos_ + kHeaderBytes,
                                                 len);
        pos_ += kHeaderBytes + len;
        return true;
    }
}

// ---------------------------------------------------------------- encoding

void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::span<const std::byte> payload) {
    ByteWriter w(out);
    w.put(static_cast<std::uint32_t>(payload.size()));
    w.put(static_cast<std::uint8_t>(type));
    w.put_bytes(payload.data(), payload.size());
}

namespace {

/// Build a payload with \a fill, then wrap it in a frame header.
template <typename F>
void with_payload(std::vector<std::byte>& out, FrameType type, F&& fill) {
    std::vector<std::byte> payload;
    ByteWriter w(payload);
    fill(w);
    append_frame(out, type, payload);
}

} // namespace

void append_hello(std::vector<std::byte>& out, std::string_view client_name,
                  std::string_view channel_name, std::uint8_t flags) {
    with_payload(out, FrameType::Hello, [&](ByteWriter& w) {
        w.put(kProtocolVersion);
        w.put_string(client_name);
        w.put_string(channel_name);
        w.put(flags);
    });
}

void append_attr(std::vector<std::byte>& out, std::uint32_t local_id,
                 std::string_view name, Variant::Type type,
                 std::uint32_t properties) {
    with_payload(out, FrameType::Attr, [&](ByteWriter& w) {
        w.put(local_id);
        w.put(static_cast<std::uint8_t>(type));
        w.put(properties);
        w.put_string(name);
    });
}

void append_globals(std::vector<std::byte>& out, bool join,
                    std::span<const std::pair<std::uint32_t, Variant>> entries) {
    with_payload(out, FrameType::Globals, [&](ByteWriter& w) {
        w.put(static_cast<std::uint8_t>(join ? 1 : 0));
        w.put(static_cast<std::uint32_t>(entries.size()));
        for (const auto& [id, value] : entries) {
            w.put(id);
            w.put_variant(value);
        }
    });
}

void append_query(std::vector<std::byte>& out, std::string_view calql) {
    with_payload(out, FrameType::Query,
                 [&](ByteWriter& w) { w.put_string(calql); });
}

void append_result(std::vector<std::byte>& out, std::uint8_t status,
                   std::string_view body) {
    with_payload(out, FrameType::Result, [&](ByteWriter& w) {
        w.put(status);
        w.put_string(body);
    });
}

void append_bye(std::vector<std::byte>& out) {
    append_frame(out, FrameType::Bye, {});
}

void RecordsBuilder::frame(std::vector<std::byte>& out) {
    const std::uint32_t n = records_;
    std::memcpy(payload_.data(), &n, sizeof(n));
    append_frame(out, FrameType::Records, payload_);
    reset();
}

// ----------------------------------------------------------------- parsing

HelloInfo parse_hello(std::span<const std::byte> payload) {
    ByteReader r(payload);
    HelloInfo h;
    h.version      = r.get<std::uint32_t>();
    h.client_name  = std::string(r.get_string());
    h.channel_name = std::string(r.get_string());
    // the flags byte is optional so flag-free version-1 hellos still parse
    if (r.remaining() > 0)
        h.query_only = (r.get<std::uint8_t>() & kHelloQueryOnly) != 0;
    return h;
}

AttrDef parse_attr(std::span<const std::byte> payload) {
    ByteReader r(payload);
    AttrDef a;
    a.local_id   = r.get<std::uint32_t>();
    a.type       = static_cast<Variant::Type>(r.get<std::uint8_t>());
    a.properties = r.get<std::uint32_t>();
    a.name       = std::string(r.get_string());
    if (a.name.empty())
        throw std::runtime_error("attr frame: empty attribute name");
    if (a.type > Variant::Type::String)
        throw std::runtime_error("attr frame: unknown value type");
    return a;
}

GlobalsInfo parse_globals(std::span<const std::byte> payload) {
    ByteReader r(payload);
    GlobalsInfo g;
    g.join       = r.get<std::uint8_t>() != 0;
    const auto n = r.get<std::uint32_t>();
    g.entries.reserve(n < 1024 ? n : 1024);
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto id = r.get<std::uint32_t>();
        g.entries.emplace_back(id, r.get_variant());
    }
    return g;
}

std::string parse_query(std::span<const std::byte> payload) {
    ByteReader r(payload);
    return std::string(r.get_string());
}

ResultInfo parse_result(std::span<const std::byte> payload) {
    ByteReader r(payload);
    ResultInfo res;
    res.status = r.get<std::uint8_t>();
    res.body   = std::string(r.get_string());
    return res;
}

} // namespace calib::net
