// Trace-timeline collection: a wall-clock span log behind the --stats
// phase tree.
//
// The metrics layer aggregates (a Phase table row is count + total); this
// layer keeps the *individual* spans so a run can be inspected as a
// timeline. When tracing is enabled, every Phase scope and every SpanTimer
// records one complete span event (path, thread, start, duration) into a
// bounded in-process buffer, and write_trace_json() renders the buffer as
// Chrome trace_event JSON — loadable in Perfetto / chrome://tracing via
// `cali-query --trace-json`.
//
// The JSON is deliberately a *flat record array* (the trace_event "JSON
// Array Format"), so calib can query its own timeline:
//
//   [ {"ph": "X", "name": "merge", "path": "process/merge", "cat": "phase",
//      "pid": 0, "tid": 0, "ts": 1042.125, "dur": 17.250,
//      "exclusive_us": 17.250}, ... ]
//
//   ph            always "X" (complete event)
//   ts, dur       microseconds; ts is relative to the first recorded span
//   name          leaf name ("merge")
//   path          full nesting path ("process/merge") — an extension key;
//                 trace viewers ignore it, tests verify nesting with it
//   cat           "phase" (Phase scope) or "span" (SpanTimer)
//   exclusive_us  for spans, the exclusive time accumulated across
//                 pause()/resume() (what the phase.* timers aggregate);
//                 equal to dur for phases
//
// Tracing is independent of the metrics enable flag (either works alone)
// and is NOT async-signal-safe: recording takes a mutex, like Phase exit
// already does. Keep it off the sampling-handler path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace calib::obs {

struct TraceEvent {
    std::string path;      ///< full nesting path, e.g. "process/merge"
    const char* cat = "";  ///< "phase" or "span"
    std::size_t tid = 0;   ///< obs thread index
    std::uint64_t start_ns     = 0; ///< monotonic clock, absolute
    std::uint64_t dur_ns       = 0; ///< wall duration of the span
    std::uint64_t exclusive_ns = 0; ///< spans: exclusive time; else dur_ns
};

/// Append one event (no-op unless tracing is enabled). The buffer is
/// bounded (trace_capacity()); events beyond it are counted as dropped.
void trace_record(TraceEvent ev);

/// Copy of the recorded events, in recording order (children of a nesting
/// scope complete — and therefore appear — before their parent).
std::vector<TraceEvent> trace_events();

/// Drop all recorded events and the dropped-count.
void trace_reset();

/// Events discarded because the buffer was full.
std::size_t trace_dropped();

/// Buffer bound (events). Generous: phases/spans are per-stage and
/// per-morsel, not per-record.
std::size_t trace_capacity() noexcept;

/// Render the buffer as Chrome trace_event JSON (schema above).
void write_trace_json(std::ostream& os);

/// Write the trace to \a path. Returns false (and logs) on open failure.
bool write_trace_json_file(const std::string& path);

} // namespace calib::obs
