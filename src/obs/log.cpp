#include "log.hpp"

#include "metrics.hpp" // obs::detail::thread_index for the [tN] tag

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace calib {

namespace {

std::atomic<int> g_verbosity{-1};
std::mutex g_output_mutex;

int parse_level(const char* text) {
    if (std::strcmp(text, "error") == 0)
        return Log::Error;
    if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "warning") == 0)
        return Log::Warn;
    if (std::strcmp(text, "info") == 0)
        return Log::Info;
    if (std::strcmp(text, "debug") == 0)
        return Log::Debug;
    char* end      = nullptr;
    const long num = std::strtol(text, &end, 10);
    if (end != text && *end == '\0')
        return static_cast<int>(num);
    return -1;
}

int init_verbosity() {
    if (const char* env = std::getenv("CALIB_LOG")) {
        const int level = parse_level(env);
        if (level >= 0)
            return level;
        std::fprintf(stderr,
                     "calib [warn]: unknown CALIB_LOG level '%s' "
                     "(use error|warn|info|debug)\n",
                     env);
    }
    if (const char* env = std::getenv("CALIB_LOG_VERBOSITY"))
        return std::atoi(env);
    return Log::Warn;
}

} // namespace

Log::~Log() {
    if (!enabled(level_))
        return;
    static const char* prefix[] = {"error", "warn", "info", "debug"};
    std::lock_guard<std::mutex> lock(g_output_mutex);
    std::fprintf(stderr, "calib [%s] [t%zu]: %s\n", prefix[level_],
                 obs::detail::thread_index(), stream_.str().c_str());
}

bool Log::enabled(Level level) {
    return static_cast<int>(level) <= verbosity();
}

void Log::set_verbosity(int level) {
    g_verbosity.store(level, std::memory_order_relaxed);
}

int Log::verbosity() {
    int v = g_verbosity.load(std::memory_order_relaxed);
    if (v < 0) {
        v = init_verbosity();
        g_verbosity.store(v, std::memory_order_relaxed);
    }
    return v;
}

} // namespace calib
