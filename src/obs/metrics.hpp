// Self-profiling instruments for the profiler itself (metrics layer).
//
// The paper's claims are about *overhead*; this subsystem makes calib's own
// behavior observable so every layer can be measured from inside the tool:
//
//   Counter    monotonically increasing event count (records read, hash
//              probes, tasks executed). Sharded per thread: each writer
//              updates its own cache line, readers sum the shards.
//   Gauge      instantaneous signed level (queue depth, active workers).
//              One atomic; writers are expected to be few.
//   Timer      duration accumulator (count / total / max). Sharded like
//              Counter; used with Timer::Scope or SpanTimer.
//   Histogram  power-of-two latency/size distribution with exact count,
//              sum, and max; quantiles are estimated from the buckets.
//   Phase      scoped wall-clock region with nesting ("process/merge"),
//              for the per-phase table behind cali-query --stats.
//
// Zero cost when disabled: every hot-path entry point is a single relaxed
// atomic load and branch (verified by bench/micro_obs). Instruments are
// process-global statics that self-register with the MetricsRegistry; the
// registry aggregates on read and never touches the write path.
//
// All write paths are lock-free and TSan-clean (relaxed atomics only), and
// safe from the sampling signal handler (no allocation, no locks).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace calib::obs {

// ---------------------------------------------------------------- enable flag

class Timer;

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_trace;
/// Small dense id for the calling thread (monotonic from 0).
std::size_t thread_index_slow() noexcept;
inline std::size_t thread_index() noexcept {
    static thread_local const std::size_t idx = thread_index_slow();
    return idx;
}
/// Record one SpanTimer span into the trace buffer (trace.cpp); the event
/// path is the current Phase path plus the timer's leaf name (a timer
/// named "phase.read" traces as "read", matching the --stats phase tree).
void trace_span(const Timer& timer, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t exclusive_ns);
} // namespace detail

/// The global metrics switch. Off by default; the relaxed load below is the
/// entire disabled-mode cost of every instrument.
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// The trace-timeline switch (see obs/trace.hpp): when on, Phase scopes
/// and SpanTimers additionally log individual span events. Independent of
/// the metrics switch — either works without the other.
inline bool trace_enabled() noexcept {
    return detail::g_trace.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept;

/// Enable metrics when CALIB_METRICS is set to anything but "0"/"" in the
/// environment. Returns the resulting enabled state.
bool init_from_env();

/// Monotonic nanoseconds; async-signal-safe (CLOCK_MONOTONIC).
inline std::uint64_t now_ns() noexcept {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

// ----------------------------------------------------------------- instruments

inline constexpr std::size_t kShards = 16; // power of two

struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
};

enum class Kind { Counter, Gauge, Timer, Histogram };

/// One aggregated instrument reading (see MetricsRegistry::snapshot()).
struct Sample {
    std::string name;
    Kind kind = Kind::Counter;
    // counter/gauge: value. timer: count,total_ns,max_ns.
    // histogram: count, total_ns(=sum), max_ns(=max), p50/p90/p99.
    std::int64_t value     = 0;
    std::uint64_t count    = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns   = 0;
    std::uint64_t p50 = 0, p90 = 0, p99 = 0;
    /// histogram only: (upper bound, cumulative count) per occupied
    /// bucket, ascending, truncated after the last non-empty bucket.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

class Counter {
public:
    explicit Counter(const char* name);

    void add(std::uint64_t n = 1) noexcept {
        if (!enabled())
            return;
        shards_[detail::thread_index() & (kShards - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept;
    const char* name() const noexcept { return name_; }
    void reset() noexcept;

private:
    Shard shards_[kShards];
    const char* name_;
};

class Gauge {
public:
    explicit Gauge(const char* name);

    void add(std::int64_t d) noexcept {
        if (!enabled())
            return;
        value_.fetch_add(d, std::memory_order_relaxed);
    }
    void set(std::int64_t v) noexcept {
        if (!enabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    const char* name() const noexcept { return name_; }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
    const char* name_;
};

class Timer {
public:
    explicit Timer(const char* name);

    /// Record one measured span of \a ns nanoseconds.
    void record(std::uint64_t ns) noexcept {
        if (!enabled())
            return;
        TimerShard& s = shards_[detail::thread_index() & (kShards - 1)];
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.total.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t prev = s.max.load(std::memory_order_relaxed);
        while (prev < ns &&
               !s.max.compare_exchange_weak(prev, ns, std::memory_order_relaxed))
            ;
    }

    /// RAII span: measures ctor-to-dtor wall time when metrics are enabled.
    class Scope {
    public:
        explicit Scope(Timer& t) noexcept
            : timer_(t), start_(enabled() ? now_ns() : 0) {}
        ~Scope() {
            if (start_)
                timer_.record(now_ns() - start_);
        }
        Scope(const Scope&)            = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Timer& timer_;
        std::uint64_t start_;
    };

    std::uint64_t count() const noexcept;
    std::uint64_t total_ns() const noexcept;
    std::uint64_t max_ns() const noexcept;
    const char* name() const noexcept { return name_; }
    void reset() noexcept;

private:
    struct alignas(64) TimerShard {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> total{0};
        std::atomic<std::uint64_t> max{0};
    };
    TimerShard shards_[kShards];
    const char* name_;
};

/// Accumulates *exclusive* time into a Timer across an interruptible span:
/// readers wrap their parse loop in a SpanTimer and pause() / resume()
/// around the downstream sink call, so "read" time never double-counts
/// filter/aggregate work. One record() lands on destruction (or stop()).
class SpanTimer {
public:
    explicit SpanTimer(Timer& t) noexcept
        : timer_(t), on_(enabled() || trace_enabled()),
          last_(on_ ? now_ns() : 0), start_(last_) {}
    ~SpanTimer() { stop(); }

    void pause() noexcept {
        if (on_) {
            acc_ += now_ns() - last_;
        }
    }
    void resume() noexcept {
        if (on_)
            last_ = now_ns();
    }
    void stop() noexcept {
        if (on_) {
            const std::uint64_t now = now_ns();
            acc_ += now - last_;
            timer_.record(acc_);
            if (trace_enabled())
                detail::trace_span(timer_, start_, now - start_, acc_);
            on_ = false;
        }
    }

private:
    Timer& timer_;
    bool on_;
    std::uint64_t last_  = 0;
    std::uint64_t acc_   = 0;
    std::uint64_t start_ = 0; ///< wall span start, for the trace timeline
};

/// Power-of-two-bucket distribution: bucket b counts values in
/// [2^(b-1), 2^b). Exact count/sum/max; p50/p90/p99 are bucket upper-bound
/// estimates. Writers are lock-free (one fetch_add per bucket + sum/count);
/// suited for per-snapshot / per-morsel rates, not per-entry hot loops.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 64;

    explicit Histogram(const char* name);

    void record(std::uint64_t v) noexcept {
        if (!enabled())
            return;
        const unsigned bucket =
            v == 0 ? 0u : static_cast<unsigned>(64 - __builtin_clzll(v));
        buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        std::uint64_t prev = max_.load(std::memory_order_relaxed);
        while (prev < v &&
               !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed))
            ;
    }

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }

    /// Upper bound of the bucket where the cumulative count crosses
    /// \a q * count (q in [0,1]); 0 when empty.
    std::uint64_t quantile(double q) const noexcept;

    /// Raw count of bucket \a b (b < kBuckets). Bucket 0 holds the value
    /// 0; bucket b holds values in [2^(b-1), 2^b).
    std::uint64_t bucket_count(std::size_t b) const noexcept {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /// Largest value bucket \a b can hold (the Prometheus `le` bound):
    /// 0 for bucket 0, else 2^b - 1.
    static constexpr std::uint64_t bucket_upper_bound(std::size_t b) noexcept {
        return b == 0 ? 0 : (std::uint64_t(1) << (b >= 64 ? 63 : b)) - 1;
    }

    const char* name() const noexcept { return name_; }
    void reset() noexcept;

private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
    const char* name_;
};

// -------------------------------------------------------------------- phases

/// Scoped wall-clock phase with nesting: a Phase opened while another is
/// active on the same thread records under "outer/inner". Recording is a
/// mutex-protected table update at scope exit — use for coarse pipeline
/// stages (parse, process, merge, format), not per-record work.
class Phase {
public:
    explicit Phase(const char* name);
    ~Phase();

    Phase(const Phase&)            = delete;
    Phase& operator=(const Phase&) = delete;

    const std::string& path() const noexcept { return path_; }

private:
    std::uint64_t start_;
    Phase* parent_;
    std::string path_; // nesting path, e.g. "process/merge"
};

struct PhaseSample {
    std::string path;
    std::uint64_t count    = 0;
    std::uint64_t total_ns = 0;
};

// ------------------------------------------------------------------ registry

/// Global instrument directory. Instruments register themselves at static
/// initialization; the registry owns no instrument storage and is only
/// consulted on the (cold) read path.
class MetricsRegistry {
public:
    static MetricsRegistry& instance();

    void add(Kind kind, const char* name, void* instrument);

    /// Aggregated reading of every registered instrument, sorted by name.
    std::vector<Sample> snapshot() const;

    /// Phase table in first-recorded order.
    std::vector<PhaseSample> phases() const;

    /// Reading of one instrument by name (tests, tools).
    std::optional<Sample> find(std::string_view name) const;

    /// Convenience: counter/gauge value by name, 0 when absent.
    std::int64_t value(std::string_view name) const;

    /// Zero every instrument and drop all recorded phases. Counters keep
    /// shard storage; this is for per-run deltas (cali-query --stats) and
    /// test isolation, not a hot-path operation.
    void reset();

    // internal: phase recording (used by Phase)
    void record_phase(const std::string& path, std::uint64_t ns);

private:
    MetricsRegistry() = default;

    struct Item {
        Kind kind;
        const char* name;
        void* instrument;
    };

    mutable std::mutex mutex_;
    std::vector<Item> items_;
    std::vector<PhaseSample> phase_table_;
};

} // namespace calib::obs
