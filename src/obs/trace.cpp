#include "trace.hpp"

#include "log.hpp"
#include "metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string_view>

namespace calib::obs {

namespace detail {
// metrics.cpp (owns the thread-local phase stack)
const std::string* current_phase_path() noexcept;
} // namespace detail

namespace {

constexpr std::size_t kTraceCapacity = 1u << 20;

struct TraceBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::size_t dropped = 0;
};

TraceBuffer& buffer() {
    static TraceBuffer b;
    return b;
}

} // namespace

void trace_record(TraceEvent ev) {
    if (!trace_enabled())
        return;
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() >= kTraceCapacity) {
        ++b.dropped;
        return;
    }
    b.events.push_back(std::move(ev));
}

namespace detail {

void trace_span(const Timer& timer, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t exclusive_ns) {
    // "phase.read" -> leaf "read", so spans line up with the phase table
    std::string_view leaf = timer.name();
    if (leaf.substr(0, 6) == "phase.")
        leaf.remove_prefix(6);

    TraceEvent ev;
    if (const std::string* parent = current_phase_path(); parent && !parent->empty()) {
        ev.path.reserve(parent->size() + 1 + leaf.size());
        ev.path.append(*parent).append(1, '/').append(leaf);
    } else {
        ev.path.assign(leaf);
    }
    ev.cat          = "span";
    ev.tid          = thread_index();
    ev.start_ns     = start_ns;
    ev.dur_ns       = dur_ns;
    ev.exclusive_ns = exclusive_ns;
    trace_record(std::move(ev));
}

} // namespace detail

std::vector<TraceEvent> trace_events() {
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    return b.events;
}

void trace_reset() {
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    b.events.clear();
    b.dropped = 0;
}

std::size_t trace_dropped() {
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    return b.dropped;
}

std::size_t trace_capacity() noexcept { return kTraceCapacity; }

void write_trace_json(std::ostream& os) {
    const std::vector<TraceEvent> events = trace_events();

    // ts is relative to the earliest span so timelines start near zero
    std::uint64_t base = 0;
    if (!events.empty()) {
        base = events.front().start_ns;
        for (const TraceEvent& ev : events)
            base = std::min(base, ev.start_ns);
    }

    char num[64];
    const auto us = [&num](std::uint64_t ns) {
        std::snprintf(num, sizeof(num), "%llu.%03llu",
                      static_cast<unsigned long long>(ns / 1000),
                      static_cast<unsigned long long>(ns % 1000));
        return std::string(num);
    };
    const auto leaf = [](const std::string& path) {
        const std::size_t slash = path.rfind('/');
        return slash == std::string::npos ? path : path.substr(slash + 1);
    };

    os << "[\n";
    bool first = true;
    for (const TraceEvent& ev : events) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"ph\": \"X\", \"name\": \"" << leaf(ev.path)
           << "\", \"path\": \"" << ev.path << "\", \"cat\": \"" << ev.cat
           << "\", \"pid\": 0, \"tid\": " << ev.tid
           << ", \"ts\": " << us(ev.start_ns - base)
           << ", \"dur\": " << us(ev.dur_ns)
           << ", \"exclusive_us\": " << us(ev.exclusive_ns) << "}";
    }
    os << "\n]\n";
}

bool write_trace_json_file(const std::string& path) {
    std::ofstream os(path);
    if (!os) {
        log_error() << "cannot open trace output file " << path;
        return false;
    }
    write_trace_json(os);
    if (const std::size_t dropped = trace_dropped())
        log_warn() << "trace buffer full: dropped " << dropped << " events";
    return true;
}

} // namespace calib::obs
