// Leveled, thread-tagged logger for the whole stack.
//
// Verbosity comes from (first match wins):
//   CALIB_LOG            error | warn | info | debug  (or a number 0..3)
//   CALIB_LOG_VERBOSITY  0=errors .. 3=debug          (legacy numeric knob)
//   default              warn
//
// Messages go to stderr as one line: "calib [level] [tN]: message", where
// N is a small dense per-thread id (the same id the metrics shards use),
// so interleaved multi-thread output stays attributable.
#pragma once

#include <sstream>
#include <string>

namespace calib {

class Log {
public:
    enum Level { Error = 0, Warn = 1, Info = 2, Debug = 3 };

    explicit Log(Level level) : level_(level) {}
    ~Log();

    template <typename T>
    Log& operator<<(const T& v) {
        if (enabled(level_))
            stream_ << v;
        return *this;
    }

    static bool enabled(Level level);
    static void set_verbosity(int level);
    static int verbosity();

private:
    Level level_;
    std::ostringstream stream_;
};

inline Log log_error() { return Log(Log::Error); }
inline Log log_warn()  { return Log(Log::Warn); }
inline Log log_info()  { return Log(Log::Info); }
inline Log log_debug() { return Log(Log::Debug); }

} // namespace calib
