// Self-profile reporting: render the MetricsRegistry as a human table
// (cali-query --stats, CALIB_METRICS=1) or machine-readable JSON
// (cali-query --stats-json, the bench harness).
//
// The JSON schema is deliberately a *flat record array* — the same shape
// FORMAT json emits — so calib can query its own self-profile:
//
//   [ {"kind": "phase",   "name": "read", "count": 4, "total_s": 0.0123},
//     {"kind": "counter", "name": "reader.records", "value": 123456},
//     {"kind": "timer",   "name": "aggdb.flush", "count": 1,
//      "total_s": 0.004, "max_s": 0.004},
//     {"kind": "gauge",   "name": "pool.queue_depth", "value": 0},
//     {"kind": "histogram", "name": "runtime.snapshot_ns", "count": 10,
//      "sum": 52000, "mean": 5200, "max": 9000,
//      "p50": 4095, "p90": 8191, "p99": 8191} ]
//
// read_json_records() round-trips it, and
// `cali-query --json-input stats.json` works on it directly.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

namespace calib::obs {

/// Human-readable self-profile: the per-phase wall-clock table followed by
/// one section per instrument kind. Intended for stderr so query results
/// on stdout stay byte-identical.
void write_stats_table(std::FILE* out);

/// Machine-readable self-profile (schema above).
void write_stats_json(std::ostream& os);

/// Write the JSON report to \a path. Returns false (and logs an error)
/// when the file cannot be opened.
bool write_stats_json_file(const std::string& path);

} // namespace calib::obs
