#include "metrics.hpp"

#include "trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace calib::obs {

// ---------------------------------------------------------------- enable flag

namespace detail {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace{false};

std::size_t thread_index_slow() noexcept {
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
    detail::g_trace.store(on, std::memory_order_relaxed);
}

bool init_from_env() {
    if (const char* env = std::getenv("CALIB_METRICS"))
        if (*env != '\0' && std::strcmp(env, "0") != 0)
            set_enabled(true);
    return enabled();
}

// ----------------------------------------------------------------- instruments

Counter::Counter(const char* name) : name_(name) {
    MetricsRegistry::instance().add(Kind::Counter, name, this);
}

std::uint64_t Counter::value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_)
        sum += s.value.load(std::memory_order_relaxed);
    return sum;
}

void Counter::reset() noexcept {
    for (Shard& s : shards_)
        s.value.store(0, std::memory_order_relaxed);
}

Gauge::Gauge(const char* name) : name_(name) {
    MetricsRegistry::instance().add(Kind::Gauge, name, this);
}

Timer::Timer(const char* name) : name_(name) {
    MetricsRegistry::instance().add(Kind::Timer, name, this);
}

std::uint64_t Timer::count() const noexcept {
    std::uint64_t sum = 0;
    for (const TimerShard& s : shards_)
        sum += s.count.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t Timer::total_ns() const noexcept {
    std::uint64_t sum = 0;
    for (const TimerShard& s : shards_)
        sum += s.total.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t Timer::max_ns() const noexcept {
    std::uint64_t max = 0;
    for (const TimerShard& s : shards_)
        max = std::max(max, s.max.load(std::memory_order_relaxed));
    return max;
}

void Timer::reset() noexcept {
    for (TimerShard& s : shards_) {
        s.count.store(0, std::memory_order_relaxed);
        s.total.store(0, std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
    }
}

Histogram::Histogram(const char* name) : name_(name) {
    MetricsRegistry::instance().add(Kind::Histogram, name, this);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    const double target = q * static_cast<double>(n);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += buckets_[b].load(std::memory_order_relaxed);
        if (static_cast<double>(cumulative) >= target)
            // bucket b holds values < 2^b (bucket 0: the value 0)
            return b == 0 ? 0 : (1ull << (b >= 64 ? 63 : b)) - 1;
    }
    return max();
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------------- phases

namespace {
thread_local Phase* t_current_phase = nullptr;
} // namespace

namespace detail {

/// Nesting path of the innermost Phase open on this thread ("" if none).
const std::string* current_phase_path() noexcept {
    return t_current_phase ? &t_current_phase->path() : nullptr;
}

} // namespace detail

Phase::Phase(const char* name) : parent_(t_current_phase) {
    if (!enabled() && !trace_enabled()) {
        start_ = 0;
        return;
    }
    if (parent_ && !parent_->path().empty()) {
        path_.reserve(parent_->path().size() + 1 + std::strlen(name));
        path_.append(parent_->path()).append(1, '/').append(name);
    } else {
        path_ = name;
    }
    t_current_phase = this;
    start_          = now_ns(); // last, so path building is not timed
}

Phase::~Phase() {
    if (!start_)
        return;
    const std::uint64_t elapsed = now_ns() - start_;
    MetricsRegistry::instance().record_phase(path_, elapsed);
    if (trace_enabled())
        trace_record({path_, "phase", detail::thread_index(), start_, elapsed,
                      elapsed});
    t_current_phase = parent_;
}

// ------------------------------------------------------------------ registry

MetricsRegistry& MetricsRegistry::instance() {
    static MetricsRegistry r;
    return r;
}

void MetricsRegistry::add(Kind kind, const char* name, void* instrument) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.push_back({kind, name, instrument});
}

namespace {

Sample read_item(Kind kind, const char* name, void* instrument) {
    Sample s;
    s.name = name;
    s.kind = kind;
    switch (kind) {
    case Kind::Counter:
        s.value = static_cast<std::int64_t>(
            static_cast<const Counter*>(instrument)->value());
        s.count = static_cast<std::uint64_t>(s.value);
        break;
    case Kind::Gauge:
        s.value = static_cast<const Gauge*>(instrument)->value();
        break;
    case Kind::Timer: {
        const Timer* t = static_cast<const Timer*>(instrument);
        s.count        = t->count();
        s.total_ns     = t->total_ns();
        s.max_ns       = t->max_ns();
        break;
    }
    case Kind::Histogram: {
        const Histogram* h = static_cast<const Histogram*>(instrument);
        s.count            = h->count();
        s.total_ns         = h->sum();
        s.max_ns           = h->max();
        s.p50              = h->quantile(0.50);
        s.p90              = h->quantile(0.90);
        s.p99              = h->quantile(0.99);
        std::size_t last = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
            if (h->bucket_count(b) != 0)
                last = b;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= last && s.count != 0; ++b) {
            cumulative += h->bucket_count(b);
            s.buckets.emplace_back(Histogram::bucket_upper_bound(b), cumulative);
        }
        break;
    }
    }
    return s;
}

} // namespace

std::vector<Sample> MetricsRegistry::snapshot() const {
    std::vector<Sample> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(items_.size());
        for (const Item& item : items_)
            out.push_back(read_item(item.kind, item.name, item.instrument));
    }
    // registration order is static-init order (arbitrary across TUs);
    // sort by name for a deterministic report
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
}

std::vector<PhaseSample> MetricsRegistry::phases() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return phase_table_;
}

std::optional<Sample> MetricsRegistry::find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Item& item : items_)
        if (name == item.name)
            return read_item(item.kind, item.name, item.instrument);
    return std::nullopt;
}

std::int64_t MetricsRegistry::value(std::string_view name) const {
    const auto s = find(name);
    return s ? s->value : 0;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Item& item : items_) {
        switch (item.kind) {
        case Kind::Counter:
            static_cast<Counter*>(item.instrument)->reset();
            break;
        case Kind::Gauge:
            static_cast<Gauge*>(item.instrument)->reset();
            break;
        case Kind::Timer:
            static_cast<Timer*>(item.instrument)->reset();
            break;
        case Kind::Histogram:
            static_cast<Histogram*>(item.instrument)->reset();
            break;
        }
    }
    phase_table_.clear();
}

void MetricsRegistry::record_phase(const std::string& path, std::uint64_t ns) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PhaseSample& p : phase_table_) {
        if (p.path == path) {
            ++p.count;
            p.total_ns += ns;
            return;
        }
    }
    phase_table_.push_back({path, 1, ns});
}

} // namespace calib::obs
