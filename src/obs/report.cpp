#include "report.hpp"

#include "log.hpp"
#include "metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

// Build-time fallback commit id (set by CMake from `git rev-parse`); the
// CALIB_GIT_SHA environment variable overrides it at run time.
#ifndef CALIB_GIT_SHA
#define CALIB_GIT_SHA ""
#endif

namespace calib::obs {

namespace {

constexpr std::string_view phase_timer_prefix = "phase.";

/// Canonical pipeline order for the phase table; unknown phases sort after
/// these, in first-recorded order.
int phase_rank(std::string_view name) {
    static constexpr std::string_view order[] = {
        "parse", "plan",  "read",   "let",   "filter", "aggregate",
        "merge", "reduce", "sort",  "format", "write",
    };
    // rank by the leaf name so nested paths ("process/merge") line up too
    const std::size_t slash = name.rfind('/');
    const std::string_view leaf =
        slash == std::string_view::npos ? name : name.substr(slash + 1);
    for (std::size_t i = 0; i < std::size(order); ++i)
        if (leaf == order[i])
            return static_cast<int>(i);
    return static_cast<int>(std::size(order));
}

struct PhaseRow {
    std::string name;
    std::uint64_t count    = 0;
    std::uint64_t total_ns = 0;
};

/// The unified phase view: scoped Phase records plus the stage Timers
/// ("phase.read", "phase.filter", ...) that accumulate interleaved
/// pipeline-stage time which no single scope can bracket.
std::vector<PhaseRow> phase_rows(const std::vector<Sample>& samples,
                                 const std::vector<PhaseSample>& phases) {
    std::vector<PhaseRow> rows;
    for (const PhaseSample& p : phases)
        rows.push_back({p.path, p.count, p.total_ns});
    for (const Sample& s : samples) {
        if (s.kind != Kind::Timer ||
            std::string_view(s.name).substr(0, phase_timer_prefix.size()) !=
                phase_timer_prefix)
            continue;
        if (s.count == 0)
            continue;
        rows.push_back({s.name.substr(phase_timer_prefix.size()), s.count,
                        s.total_ns});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const PhaseRow& a, const PhaseRow& b) {
                         return phase_rank(a.name) < phase_rank(b.name);
                     });
    return rows;
}

bool is_phase_timer(const Sample& s) {
    return s.kind == Kind::Timer &&
           std::string_view(s.name).substr(0, phase_timer_prefix.size()) ==
               phase_timer_prefix;
}

double to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }
double to_us(std::uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

} // namespace

void write_stats_table(std::FILE* out) {
    const auto samples = MetricsRegistry::instance().snapshot();
    const auto rows    = phase_rows(samples, MetricsRegistry::instance().phases());

    std::fprintf(out, "== calib self-profile ==\n");
    std::fprintf(out, "%-28s %10s %12s\n", "phase", "count", "wall(s)");
    for (const PhaseRow& r : rows)
        std::fprintf(out, "  %-26s %10llu %12.6f\n", r.name.c_str(),
                     static_cast<unsigned long long>(r.count), to_s(r.total_ns));

    std::fprintf(out, "%-28s %22s\n", "counter", "value");
    for (const Sample& s : samples)
        if (s.kind == Kind::Counter && s.value != 0)
            std::fprintf(out, "  %-26s %22lld\n", s.name.c_str(),
                         static_cast<long long>(s.value));

    std::fprintf(out, "%-28s %22s\n", "gauge", "value");
    for (const Sample& s : samples)
        if (s.kind == Kind::Gauge)
            std::fprintf(out, "  %-26s %22lld\n", s.name.c_str(),
                         static_cast<long long>(s.value));

    std::fprintf(out, "%-28s %10s %12s %12s %12s\n", "timer", "count", "total(s)",
                 "avg(us)", "max(us)");
    for (const Sample& s : samples) {
        if (s.kind != Kind::Timer || is_phase_timer(s) || s.count == 0)
            continue;
        std::fprintf(out, "  %-26s %10llu %12.6f %12.3f %12.3f\n", s.name.c_str(),
                     static_cast<unsigned long long>(s.count), to_s(s.total_ns),
                     to_us(s.total_ns) / static_cast<double>(s.count),
                     to_us(s.max_ns));
    }

    std::fprintf(out, "%-28s %10s %12s %12s %12s %12s\n", "histogram", "count",
                 "mean", "p50<=", "p99<=", "max");
    for (const Sample& s : samples) {
        if (s.kind != Kind::Histogram || s.count == 0)
            continue;
        std::fprintf(out, "  %-26s %10llu %12.1f %12llu %12llu %12llu\n",
                     s.name.c_str(), static_cast<unsigned long long>(s.count),
                     static_cast<double>(s.total_ns) / static_cast<double>(s.count),
                     static_cast<unsigned long long>(s.p50),
                     static_cast<unsigned long long>(s.p99),
                     static_cast<unsigned long long>(s.max_ns));
    }
}

void write_stats_json(std::ostream& os) {
    const auto samples = MetricsRegistry::instance().snapshot();
    const auto rows    = phase_rows(samples, MetricsRegistry::instance().phases());

    char buf[64];
    auto num = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return std::string(buf);
    };

    os << "[\n";
    bool first = true;
    auto sep   = [&os, &first] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // run-provenance stamp, consumed by calib-benchdiff when the
    // self-profile is appended to a performance history
    {
        std::string commit;
        if (const char* env = std::getenv("CALIB_GIT_SHA"); env && *env)
            commit = env;
        else
            commit = CALIB_GIT_SHA;
        if (commit.empty())
            commit = "unknown";
        const std::time_t now = std::time(nullptr);
        std::tm tm{};
        gmtime_r(&now, &tm);
        char stamp[32];
        std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);
        char host[256] = {};
        if (gethostname(host, sizeof(host) - 1) != 0 || !host[0])
            std::snprintf(host, sizeof(host), "unknown");
        sep();
        os << "  {\"kind\": \"meta\", \"commit\": \"" << commit
           << "\", \"timestamp\": \"" << stamp << "\", \"host\": \"" << host
           << "\", \"hardware_concurrency\": "
           << std::thread::hardware_concurrency() << "}";
    }

    for (const PhaseRow& r : rows) {
        sep();
        os << "  {\"kind\": \"phase\", \"name\": \"" << r.name
           << "\", \"count\": " << r.count
           << ", \"total_s\": " << num(to_s(r.total_ns)) << "}";
    }
    for (const Sample& s : samples) {
        sep();
        switch (s.kind) {
        case Kind::Counter:
            os << "  {\"kind\": \"counter\", \"name\": \"" << s.name
               << "\", \"value\": " << s.value << "}";
            break;
        case Kind::Gauge:
            os << "  {\"kind\": \"gauge\", \"name\": \"" << s.name
               << "\", \"value\": " << s.value << "}";
            break;
        case Kind::Timer:
            os << "  {\"kind\": \"timer\", \"name\": \"" << s.name
               << "\", \"count\": " << s.count
               << ", \"total_s\": " << num(to_s(s.total_ns))
               << ", \"max_s\": " << num(to_s(s.max_ns)) << "}";
            break;
        case Kind::Histogram:
            os << "  {\"kind\": \"histogram\", \"name\": \"" << s.name
               << "\", \"count\": " << s.count << ", \"sum\": " << s.total_ns
               << ", \"mean\": "
               << num(s.count ? static_cast<double>(s.total_ns) /
                                    static_cast<double>(s.count)
                              : 0.0)
               << ", \"max\": " << s.max_ns << ", \"p50\": " << s.p50
               << ", \"p90\": " << s.p90 << ", \"p99\": " << s.p99 << "}";
            break;
        }
    }
    os << "\n]\n";
}

bool write_stats_json_file(const std::string& path) {
    std::ofstream os(path);
    if (!os) {
        log_error() << "cannot open stats output file " << path;
        return false;
    }
    write_stats_json(os);
    return true;
}

} // namespace calib::obs
