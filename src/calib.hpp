// calib — flexible data aggregation for performance profiling.
// Umbrella header for the public API.
#pragma once

#include "obs/log.hpp"     // IWYU pragma: export
#include "obs/metrics.hpp" // IWYU pragma: export
#include "obs/report.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"   // IWYU pragma: export

#include "common/attribute.hpp"   // IWYU pragma: export
#include "common/idrecord.hpp"    // IWYU pragma: export
#include "common/recordmap.hpp"   // IWYU pragma: export
#include "common/snapshot.hpp"    // IWYU pragma: export
#include "common/variant.hpp"     // IWYU pragma: export

#include "aggregate/aggregation_db.hpp" // IWYU pragma: export
#include "aggregate/ops.hpp"            // IWYU pragma: export

#include "query/calql.hpp"     // IWYU pragma: export
#include "query/formatter.hpp" // IWYU pragma: export
#include "query/processor.hpp" // IWYU pragma: export

#include "io/calireader.hpp" // IWYU pragma: export
#include "io/caliwriter.hpp" // IWYU pragma: export
#include "io/jsonreader.hpp" // IWYU pragma: export

#include "engine/morsel.hpp"             // IWYU pragma: export
#include "engine/parallel_processor.hpp" // IWYU pragma: export
#include "engine/thread_pool.hpp"        // IWYU pragma: export

#include "runtime/annotation.hpp" // IWYU pragma: export
#include "runtime/caliper.hpp"    // IWYU pragma: export
#include "runtime/config.hpp"     // IWYU pragma: export
