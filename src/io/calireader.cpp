#include "calireader.hpp"

#include "../common/util.hpp"
#include "../common/variant.hpp"

#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace calib {

namespace {

struct LocalAttr {
    const char* name; // interned
    Variant::Type type;
};

Variant parse_value(const LocalAttr& attr, const std::string& text) {
    Variant v = Variant::parse(attr.type, text);
    if (v.empty() && !text.empty())
        v = Variant::parse_guess(text); // type drifted within the stream
    if (v.empty() && attr.type == Variant::Type::String)
        v = Variant(std::string_view(text));
    return v;
}

} // namespace

void CaliReader::read(std::istream& is, const RecordSink& sink, RecordMap* globals) {
    read_range(is, 0, UINT64_MAX, sink, globals);
}

void CaliReader::read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                            const RecordSink& sink, RecordMap* globals) {
    std::unordered_map<std::uint32_t, LocalAttr> attrs;
    std::string line;
    std::size_t lineno        = 0;
    std::uint64_t record_index = 0;

    auto fail = [&lineno](const std::string& msg) {
        throw std::runtime_error("calib-stream line " + std::to_string(lineno) + ": " +
                                 msg);
    };

    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#')
            continue; // header / comments

        const char kind = line[0];
        if (line.size() >= 2 && line[1] != ',')
            fail("malformed line");
        // records outside the requested range are counted but not parsed
        if (kind == 'R') {
            const std::uint64_t index = record_index++;
            if (index < begin || index >= end)
                continue;
        }
        // a bare "R" is a legal empty record (snapshot with no entries)
        const std::string_view rest =
            line.size() >= 2 ? std::string_view(line).substr(2) : std::string_view();

        if (kind == 'A') {
            auto fields = util::split_escaped(rest, ',');
            if (fields.size() < 3)
                fail("malformed attribute definition");
            const std::uint32_t id = static_cast<std::uint32_t>(std::stoul(fields[0]));
            LocalAttr attr;
            attr.name = intern(util::unescape(fields[1]));
            attr.type = Variant::type_from_name(fields[2]);
            attrs[id] = attr;
        } else if (kind == 'R' || kind == 'G') {
            RecordMap rec;
            for (const std::string& field : util::split_escaped(rest, ',')) {
                if (field.empty())
                    continue;
                const std::size_t eq = field.find('=');
                if (eq == std::string::npos)
                    fail("missing '=' in record field");
                const std::uint32_t id =
                    static_cast<std::uint32_t>(std::stoul(field.substr(0, eq)));
                auto it = attrs.find(id);
                if (it == attrs.end())
                    fail("record references undefined attribute " + std::to_string(id));
                rec.append(it->second.name,
                           parse_value(it->second, util::unescape(field.substr(eq + 1))));
            }
            if (kind == 'R')
                sink(std::move(rec));
            else if (globals)
                for (const auto& [name, value] : rec)
                    globals->append(name, value);
        } else {
            fail(std::string("unknown line kind '") + kind + "'");
        }
    }
}

std::vector<RecordMap> CaliReader::read_all(std::istream& is, RecordMap* globals) {
    std::vector<RecordMap> out;
    read(is, [&out](RecordMap&& r) { out.push_back(std::move(r)); }, globals);
    return out;
}

std::vector<RecordMap> CaliReader::read_file(const std::string& path,
                                             RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return read_all(is, globals);
}

void CaliReader::read_file(const std::string& path, const RecordSink& sink,
                           RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read(is, sink, globals);
}

void CaliReader::read_file_range(const std::string& path, std::uint64_t begin,
                                 std::uint64_t end, const RecordSink& sink,
                                 RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read_range(is, begin, end, sink, globals);
}

std::uint64_t CaliReader::count_records(const std::string& path) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    std::uint64_t n = 0;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty() && line[0] == 'R')
            ++n;
    return n;
}

Dataset Dataset::load(const std::vector<std::string>& paths) {
    Dataset ds;
    for (const std::string& path : paths) {
        RecordMap g;
        CaliReader::read_file(path, [&ds](RecordMap&& r) {
            ds.records.push_back(std::move(r));
        }, &g);
        g.append("cali.file", Variant(std::string_view(path)));
        ds.globals.push_back(std::move(g));
    }
    return ds;
}

} // namespace calib
