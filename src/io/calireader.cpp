#include "calireader.hpp"

#include "reader_metrics.hpp"

#include "../common/util.hpp"
#include "../common/variant.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace calib {

namespace iometrics {
obs::Counter records("reader.records");
obs::Counter entries("reader.entries");
obs::Counter name_resolutions("reader.name_resolutions");
obs::Counter bytes("reader.bytes");
obs::Timer read_time("phase.read");
} // namespace iometrics

namespace {

/// Resolved attribute definition: the stream-local id maps straight to a
/// registry id, so record fields never touch the attribute name again.
struct LocalAttr {
    id_t id;
    Variant::Type type;
};

/// Iterate ','-separated fields, honoring backslash escapes of the
/// separator; keeps empty fields. Field views point into \a s with escape
/// sequences intact (split_escaped semantics without the allocations).
template <typename Fn>
void for_each_field(std::string_view s, Fn&& fn) {
    std::size_t start = 0;
    bool esc          = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (esc)
            esc = false;
        else if (s[i] == '\\')
            esc = true;
        else if (s[i] == ',') {
            fn(s.substr(start, i - start));
            start = i + 1;
        }
    }
    fn(s.substr(start));
}

/// Undo escapes only when the field actually contains one; the scratch
/// buffer is reused across fields so the common case allocates nothing.
std::string_view unescaped(std::string_view field, std::string& scratch) {
    if (field.find('\\') == std::string_view::npos)
        return field;
    scratch = util::unescape(field);
    return scratch;
}

Variant parse_value(Variant::Type type, std::string_view text) {
    Variant v = Variant::parse(type, text);
    if (v.empty() && !text.empty())
        v = Variant::parse_guess(text); // type drifted within the stream
    if (v.empty() && type == Variant::Type::String)
        v = Variant(text);
    return v;
}

} // namespace

void CaliReader::read(std::istream& is, AttributeRegistry& registry,
                      const IdSink& sink, IdRecord* globals) {
    read_range(is, 0, UINT64_MAX, registry, sink, globals);
}

void CaliReader::read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                            AttributeRegistry& registry, const IdSink& sink,
                            IdRecord* globals) {
    std::unordered_map<std::uint32_t, LocalAttr> attrs;
    std::string line, scratch;
    std::size_t lineno         = 0;
    std::uint64_t record_index = 0;
    std::uint64_t nbytes       = 0;
    obs::SpanTimer read_span(iometrics::read_time);

    auto fail = [&lineno](const std::string& msg) {
        throw std::runtime_error("calib-stream line " + std::to_string(lineno) + ": " +
                                 msg);
    };

    auto parse_local_id = [&fail](std::string_view text) {
        std::uint32_t id = 0;
        const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), id);
        if (ec != std::errc() || ptr == text.data())
            fail("malformed attribute id");
        return id;
    };

    while (std::getline(is, line)) {
        ++lineno;
        nbytes += line.size() + 1;
        if (line.empty())
            continue;
        if (line[0] == '#')
            continue; // header / comments

        const char kind = line[0];
        if (line.size() >= 2 && line[1] != ',')
            fail("malformed line");
        // records outside the requested range are counted but not parsed
        if (kind == 'R') {
            const std::uint64_t index = record_index++;
            if (index < begin || index >= end)
                continue;
        }
        // a bare "R" is a legal empty record (snapshot with no entries)
        const std::string_view rest =
            line.size() >= 2 ? std::string_view(line).substr(2) : std::string_view();

        if (kind == 'A') {
            // resolve the attribute name here, once per definition line —
            // every record field below is a pure integer lookup
            std::string_view fields[3];
            std::size_t nfields = 0;
            for_each_field(rest, [&](std::string_view f) {
                if (nfields < 3)
                    fields[nfields] = f;
                ++nfields;
            });
            if (nfields < 3)
                fail("malformed attribute definition");
            const std::uint32_t local = parse_local_id(fields[0]);
            const Variant::Type type  = Variant::type_from_name(fields[2]);
            const Attribute attribute =
                registry.create(unescaped(fields[1], scratch), type);
            iometrics::name_resolutions.add();
            attrs[local] = LocalAttr{attribute.id(), type};
        } else if (kind == 'R' || kind == 'G') {
            IdRecord rec;
            bool bad = false;
            for_each_field(rest, [&](std::string_view field) {
                if (field.empty() || bad)
                    return;
                const std::size_t eq = field.find('=');
                if (eq == std::string_view::npos) {
                    bad = true;
                    return;
                }
                const std::uint32_t local = parse_local_id(field.substr(0, eq));
                auto it                   = attrs.find(local);
                if (it == attrs.end())
                    fail("record references undefined attribute " +
                         std::to_string(local));
                rec.append(it->second.id,
                           parse_value(it->second.type,
                                       unescaped(field.substr(eq + 1), scratch)));
            });
            if (bad)
                fail("missing '=' in record field");
            if (kind == 'R') {
                iometrics::records.add();
                iometrics::entries.add(rec.size());
                read_span.pause(); // downstream filter/aggregate time is theirs
                sink(std::move(rec));
                read_span.resume();
            } else if (globals) {
                for (const Entry& e : rec)
                    globals->append(e);
            }
        } else {
            fail(std::string("unknown line kind '") + kind + "'");
        }
    }
    iometrics::bytes.add(nbytes);
}

void CaliReader::read_file(const std::string& path, AttributeRegistry& registry,
                           const IdSink& sink, IdRecord* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read(is, registry, sink, globals);
}

void CaliReader::read_file_range(const std::string& path, std::uint64_t begin,
                                 std::uint64_t end, AttributeRegistry& registry,
                                 const IdSink& sink, IdRecord* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read_range(is, begin, end, registry, sink, globals);
}

// -- name-based compatibility wrappers --------------------------------------

void CaliReader::read(std::istream& is, const RecordSink& sink, RecordMap* globals) {
    read_range(is, 0, UINT64_MAX, sink, globals);
}

void CaliReader::read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                            const RecordSink& sink, RecordMap* globals) {
    AttributeRegistry registry; // private dictionary, names restored below
    IdRecord g;
    read_range(is, begin, end, registry,
               [&](IdRecord&& rec) { sink(to_recordmap(rec, registry)); },
               globals ? &g : nullptr);
    if (globals)
        for (const Entry& e : g)
            globals->append(registry.get(e.attribute).name(), e.value);
}

std::vector<RecordMap> CaliReader::read_all(std::istream& is, RecordMap* globals) {
    std::vector<RecordMap> out;
    read(is, [&out](RecordMap&& r) { out.push_back(std::move(r)); }, globals);
    return out;
}

std::vector<RecordMap> CaliReader::read_file(const std::string& path,
                                             RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return read_all(is, globals);
}

void CaliReader::read_file(const std::string& path, const RecordSink& sink,
                           RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read(is, sink, globals);
}

void CaliReader::read_file_range(const std::string& path, std::uint64_t begin,
                                 std::uint64_t end, const RecordSink& sink,
                                 RecordMap* globals) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    read_range(is, begin, end, sink, globals);
}

std::uint64_t CaliReader::count_records(const std::string& path) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    std::uint64_t n = 0;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty() && line[0] == 'R')
            ++n;
    return n;
}

Dataset Dataset::load(const std::vector<std::string>& paths) {
    Dataset ds;
    for (const std::string& path : paths) {
        RecordMap g;
        CaliReader::read_file(path, [&ds](RecordMap&& r) {
            ds.records.push_back(std::move(r));
        }, &g);
        g.append("cali.file", Variant(std::string_view(path)));
        ds.globals.push_back(std::move(g));
    }
    return ds;
}

} // namespace calib
