#include "calireader.hpp"

#include "reader_metrics.hpp"

#include "../common/util.hpp"
#include "../common/variant.hpp"

#include <charconv>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace calib {

namespace iometrics {
obs::Counter records("reader.records");
obs::Counter entries("reader.entries");
obs::Counter name_resolutions("reader.name_resolutions");
obs::Counter bytes("reader.bytes");
obs::Timer read_time("phase.read");
obs::Timer batch_fill("batch.fill");
} // namespace iometrics

namespace {

/// Resolved attribute definition: the stream-local id maps straight to a
/// registry id, so record fields never touch the attribute name again.
/// Lives in a flat vector indexed by the (dense, file-local) id.
struct LocalAttr {
    id_t id            = invalid_id;
    Variant::Type type = Variant::Type::Empty;
    /// Memoized last raw value -> parsed Variant for string attributes:
    /// profiling streams repeat values heavily (kernel and function names),
    /// and a short byte compare beats re-unescaping and re-interning.
    bool has_last = false;
    std::string last_raw;
    Variant last_val;
};

/// Stream-local attribute ids are dense by contract (docs/FORMAT.md); this
/// bounds the flat definition table against corrupt or hostile inputs.
constexpr std::uint32_t kMaxLocalAttrId = 1u << 24;

/// Iterate ','-separated fields, honoring backslash escapes of the
/// separator; keeps empty fields. Field views point into \a s with escape
/// sequences intact (split_escaped semantics without the allocations).
/// Returns true when the input ends inside an escape sequence (a dangling
/// backslash — the input was truncated mid-field).
template <typename Fn>
bool for_each_field(std::string_view s, Fn&& fn) {
    std::size_t start = 0;
    bool esc          = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (esc)
            esc = false;
        else if (s[i] == '\\')
            esc = true;
        else if (s[i] == ',') {
            fn(s.substr(start, i - start));
            start = i + 1;
        }
    }
    fn(s.substr(start));
    return esc;
}

/// Undo escapes only when the field actually contains one; the scratch
/// buffer is reused across fields so the common case allocates nothing.
std::string_view unescaped(std::string_view field, std::string& scratch) {
    if (field.find('\\') == std::string_view::npos)
        return field;
    scratch = util::unescape(field);
    return scratch;
}

bool is_integer_literal(std::string_view text) {
    std::size_t i = (text[0] == '-') ? 1 : 0;
    if (i == text.size())
        return false;
    // "-0" (and "-000") is a double's negative zero, not an integer — the
    // exact-integer path would read it back as +0.0
    if (text[0] == '-' && text.find_first_not_of('0', 1) == std::string_view::npos)
        return false;
    for (; i < text.size(); ++i)
        if (text[i] < '0' || text[i] > '9')
            return false;
    return true;
}

Variant parse_value(Variant::Type type, std::string_view text) {
    // empty field text always means an empty string: the writer omits
    // Empty values entirely, so "x=" can only come from a string value
    // (possibly type-drifted into a differently-declared column)
    if (text.empty())
        return Variant(text);
    if (type == Variant::Type::Double && !text.empty() &&
        is_integer_literal(text)) {
        // A writer types a column from its first record, but result rows
        // legitimately mix exact integer sums with overflow-widened
        // doubles in one column. Parsing such an integer literal as
        // double would silently drop low bits above 2^53 — parse it
        // exactly, and keep the integer only when the double conversion
        // is lossy (type drifts, value survives).
        Variant exact = Variant::parse(Variant::Type::Int, text);
        if (exact.empty())
            exact = Variant::parse(Variant::Type::UInt, text);
        if (!exact.empty()) {
            const double d = exact.type() == Variant::Type::Int
                                 ? static_cast<double>(exact.as_int())
                                 : static_cast<double>(exact.as_uint());
            const bool lossless =
                exact.type() == Variant::Type::Int
                    ? (d >= -0x1p63 && d < 0x1p63 &&
                       static_cast<std::int64_t>(d) == exact.as_int())
                    : (d < 0x1p64 &&
                       static_cast<std::uint64_t>(d) == exact.as_uint());
            return lossless ? Variant(d) : exact;
        }
    }
    Variant v = Variant::parse(type, text);
    if (v.empty() && !text.empty())
        v = Variant::parse_guess(text); // type drifted within the stream
    if (v.empty() && type == Variant::Type::String)
        v = Variant(text);
    return v;
}

/// Line-level parser shared by every entry point (istream, whole buffer,
/// byte-range chunk). Holds the per-stream state — the local-id definition
/// table, a reused record, an unescape scratch buffer — so steady-state
/// record parsing allocates nothing. Metric deltas accumulate locally and
/// land on the global "reader.*" counters in one flush_metrics() call.
class CaliParser {
public:
    CaliParser(AttributeRegistry& registry, const CaliReader::IdSink& sink,
               IdRecord* globals, std::uint64_t begin = 0,
               std::uint64_t end = UINT64_MAX)
        : registry_(registry), sink_(sink), globals_(globals), begin_(begin),
          end_(end) {}

    /// Error messages use lineno + 1 for the next line() call — chunk
    /// readers set this so messages carry whole-file line numbers.
    void set_lineno(std::size_t lineno) noexcept { lineno_ = lineno; }

    /// Exclusive-read-time timer to pause around sink calls.
    void set_span(obs::SpanTimer* span) noexcept { span_ = span; }

    /// Switch to batched emission: records append into \a batch and \a sink
    /// fires every \a cap records. Call finish() after the last line to
    /// flush the trailing partial batch. Globals still accumulate record-
    /// at-a-time.
    void set_batch(RecordBatch& batch, std::size_t cap,
                   const CaliReader::BatchSink& sink) {
        batch_     = &batch;
        batch_cap_ = cap ? cap : 1;
        bsink_     = &sink;
        fill_start_ = std::chrono::steady_clock::now();
    }

    /// Emit a trailing partial batch (batch mode only).
    void finish() {
        if (batch_ && !batch_->empty())
            emit_batch();
    }

    /// Parse one line (newline and any trailing '\r' already stripped).
    void line(std::string_view line) {
        ++lineno_;
        if (line.empty())
            return;
        if (line[0] == '#')
            return; // header / comments

        const char kind = line[0];
        if (line.size() >= 2 && line[1] != ',')
            fail("malformed line");
        // records outside the requested range are counted but not parsed
        if (kind == 'R') {
            const std::uint64_t index = record_index_++;
            if (index < begin_ || index >= end_)
                return;
        }
        // a bare "R" is a legal empty record (snapshot with no entries)
        const std::string_view rest =
            line.size() >= 2 ? line.substr(2) : std::string_view();

        if (kind == 'A') {
            // resolve the attribute name here, once per definition line —
            // every record field below is a pure integer lookup
            std::string_view fields[3];
            std::size_t nfields = 0;
            const bool dangling = for_each_field(rest, [&](std::string_view f) {
                if (nfields < 3)
                    fields[nfields] = f;
                ++nfields;
            });
            if (dangling)
                fail("bad escape at end of field");
            if (nfields < 3)
                fail("malformed attribute definition");
            const std::uint32_t local = parse_local_id(fields[0]);
            const Variant::Type type  = Variant::type_from_name(fields[2]);
            const Attribute attribute =
                registry_.create(unescaped(fields[1], scratch_), type);
            ++resolutions_;
            if (local >= attrs_.size())
                attrs_.resize(local + 1);
            LocalAttr& slot = attrs_[local];
            slot.id         = attribute.id();
            slot.type       = type;
            slot.has_last   = false; // a redefinition invalidates the memo
        } else if (kind == 'R' || kind == 'G') {
            // batch mode: record fields go straight into the column
            // vectors; globals keep the record scratch either way
            const bool to_batch = batch_ != nullptr && kind == 'R';
            if (to_batch)
                batch_->begin_row();
            else
                rec_.clear();
            // single-pass field walk: id digits, '=', value up to the next
            // unescaped ',' — no repeated scans of the same bytes
            const char* p   = rest.data();
            const char* end = p + rest.size();
            while (p < end) {
                if (*p == ',') { // empty field
                    ++p;
                    continue;
                }
                std::uint32_t local = 0;
                const char* q       = p;
                while (q < end && *q >= '0' && *q <= '9') {
                    local = local * 10 + static_cast<std::uint32_t>(*q - '0');
                    if (local >= kMaxLocalAttrId)
                        fail("attribute id out of range");
                    ++q;
                }
                if (q == p)
                    fail("malformed attribute id");
                if (q == end || *q != '=')
                    fail("missing '=' in record field");
                if (local >= attrs_.size() || attrs_[local].id == invalid_id)
                    fail("record references undefined attribute " +
                         std::to_string(local));
                LocalAttr& a  = attrs_[local];
                const char* v = ++q;
                bool escaped  = false;
                while (q < end && *q != ',') {
                    if (*q == '\\') {
                        escaped = true;
                        if (++q == end)
                            fail("bad escape at end of field");
                    }
                    ++q;
                }
                const std::string_view raw(v, static_cast<std::size_t>(q - v));
                if (a.has_last && raw == a.last_raw) {
                    // memoized repeat value
                    if (to_batch)
                        batch_->append(a.id, a.last_val);
                    else
                        rec_.append(a.id, a.last_val);
                } else {
                    std::string_view text = raw;
                    if (escaped) {
                        scratch_ = util::unescape(raw);
                        text     = scratch_;
                    }
                    const Variant val = parse_value(a.type, text);
                    if (to_batch)
                        batch_->append(a.id, val);
                    else
                        rec_.append(a.id, val);
                    // memoize the raw field text for every type: equal raw
                    // bytes parse to an equal value, and numeric columns
                    // (ranks, iteration counters) repeat often too
                    a.last_raw.assign(raw.data(), raw.size());
                    a.last_val = val;
                    a.has_last = true;
                }
                p = q < end ? q + 1 : end;
            }
            if (kind == 'R') {
                ++records_;
                if (to_batch) {
                    entries_ += batch_->end_row();
                    if (batch_->rows() >= batch_cap_)
                        emit_batch();
                } else {
                    entries_ += rec_.size();
                    if (span_)
                        span_->pause(); // downstream pipeline time is theirs
                    sink_(std::move(rec_));
                    if (span_)
                        span_->resume();
                }
            } else if (globals_) {
                for (const Entry& e : rec_)
                    globals_->append(e);
            }
        } else {
            fail(std::string("unknown line kind '") + kind + "'");
        }
    }

    /// Land the accumulated deltas on the global reader instruments.
    /// \a nbytes is the input actually consumed by this parse.
    void flush_metrics(std::uint64_t nbytes) const {
        iometrics::records.add(records_);
        iometrics::entries.add(entries_);
        iometrics::name_resolutions.add(resolutions_);
        iometrics::bytes.add(nbytes);
    }

private:
    void emit_batch() {
        const auto now = std::chrono::steady_clock::now();
        iometrics::batch_fill.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 fill_start_)
                .count()));
        if (span_)
            span_->pause(); // downstream pipeline time is theirs
        (*bsink_)(*batch_);
        if (span_)
            span_->resume();
        batch_->clear(); // safe after a sink that moved the batch away
        fill_start_ = std::chrono::steady_clock::now();
    }

    [[noreturn]] void fail(const std::string& msg) const {
        throw std::runtime_error("calib-stream line " + std::to_string(lineno_) +
                                 ": " + msg);
    }

    std::uint32_t parse_local_id(std::string_view text) const {
        std::uint32_t id     = 0;
        const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), id);
        if (ec != std::errc() || ptr == text.data())
            fail("malformed attribute id");
        if (id >= kMaxLocalAttrId)
            fail("attribute id out of range");
        return id;
    }

    AttributeRegistry& registry_;
    const CaliReader::IdSink& sink_;
    IdRecord* globals_;
    std::uint64_t begin_, end_;

    std::vector<LocalAttr> attrs_; ///< flat table, indexed by local id
    IdRecord rec_;                 ///< reused record scratch
    std::string scratch_;          ///< reused unescape buffer
    obs::SpanTimer* span_ = nullptr;

    // batched emission (set_batch)
    RecordBatch* batch_                   = nullptr;
    std::size_t batch_cap_                = 0;
    const CaliReader::BatchSink* bsink_   = nullptr;
    std::chrono::steady_clock::time_point fill_start_{};

    std::size_t lineno_         = 0;
    std::uint64_t record_index_ = 0;
    std::uint64_t records_ = 0, entries_ = 0, resolutions_ = 0;
};

/// Walk newline-separated lines of \a text zero-copy, stripping a trailing
/// '\r' (CRLF input) from each line before handing it to \a fn.
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
    const char* base    = text.data();
    const std::size_t n = text.size();
    std::size_t pos     = 0;
    while (pos < n) {
        const void* nl = std::memchr(base + pos, '\n', n - pos);
        const std::size_t eol =
            nl ? static_cast<std::size_t>(static_cast<const char*>(nl) - base) : n;
        std::string_view line(base + pos, eol - pos);
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        fn(line);
        pos = eol + 1;
    }
}

void parse_buffer_range(std::string_view text, std::uint64_t begin,
                        std::uint64_t end, AttributeRegistry& registry,
                        const CaliReader::IdSink& sink, IdRecord* globals) {
    CaliParser parser(registry, sink, globals, begin, end);
    obs::SpanTimer span(iometrics::read_time);
    parser.set_span(&span);
    for_each_line(text, [&parser](std::string_view line) { parser.line(line); });
    parser.flush_metrics(text.size());
}

const CaliReader::IdSink& noop_id_sink() {
    static const CaliReader::IdSink sink = [](IdRecord&&) {};
    return sink;
}

void parse_buffer_range_batches(std::string_view text, std::uint64_t begin,
                                std::uint64_t end, AttributeRegistry& registry,
                                std::size_t batch_size,
                                const CaliReader::BatchSink& sink,
                                IdRecord* globals) {
    CaliParser parser(registry, noop_id_sink(), globals, begin, end);
    RecordBatch batch;
    parser.set_batch(batch, batch_size, sink);
    obs::SpanTimer span(iometrics::read_time);
    parser.set_span(&span);
    for_each_line(text, [&parser](std::string_view line) { parser.line(line); });
    parser.finish();
    parser.flush_metrics(text.size());
}

} // namespace

void CaliReader::read(std::istream& is, AttributeRegistry& registry,
                      const IdSink& sink, IdRecord* globals) {
    read_range(is, 0, UINT64_MAX, registry, sink, globals);
}

void CaliReader::read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                            AttributeRegistry& registry, const IdSink& sink,
                            IdRecord* globals) {
    CaliParser parser(registry, sink, globals, begin, end);
    obs::SpanTimer span(iometrics::read_time);
    parser.set_span(&span);
    std::string line;
    std::uint64_t nbytes = 0;
    while (std::getline(is, line)) {
        // bytes actually consumed: the line (incl. any '\r') plus the '\n'
        // delimiter — unless this final line was terminated by EOF instead
        nbytes += line.size() + (is.eof() ? 0 : 1);
        std::string_view ln(line);
        if (!ln.empty() && ln.back() == '\r')
            ln.remove_suffix(1); // CRLF input parses identically
        parser.line(ln);
    }
    parser.flush_metrics(nbytes);
}

void CaliReader::read_buffer(std::string_view text, AttributeRegistry& registry,
                             const IdSink& sink, IdRecord* globals) {
    parse_buffer_range(text, 0, UINT64_MAX, registry, sink, globals);
}

void CaliReader::read_file(const std::string& path, AttributeRegistry& registry,
                           const IdSink& sink, IdRecord* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    read_buffer(buf.view(), registry, sink, globals);
}

void CaliReader::read_file_range(const std::string& path, std::uint64_t begin,
                                 std::uint64_t end, AttributeRegistry& registry,
                                 const IdSink& sink, IdRecord* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    parse_buffer_range(buf.view(), begin, end, registry, sink, globals);
}

// -- batched entry points ----------------------------------------------------

void CaliReader::read_buffer_batches(std::string_view text,
                                     AttributeRegistry& registry,
                                     std::size_t batch_size,
                                     const BatchSink& sink, IdRecord* globals) {
    parse_buffer_range_batches(text, 0, UINT64_MAX, registry, batch_size, sink,
                               globals);
}

void CaliReader::read_file_batches(const std::string& path,
                                   AttributeRegistry& registry,
                                   std::size_t batch_size, const BatchSink& sink,
                                   IdRecord* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    read_buffer_batches(buf.view(), registry, batch_size, sink, globals);
}

void CaliReader::read_file_range_batches(const std::string& path,
                                         std::uint64_t begin, std::uint64_t end,
                                         AttributeRegistry& registry,
                                         std::size_t batch_size,
                                         const BatchSink& sink,
                                         IdRecord* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    parse_buffer_range_batches(buf.view(), begin, end, registry, batch_size,
                               sink, globals);
}

// -- byte-range source -------------------------------------------------------

CaliFileSource::CaliFileSource(std::string path, std::size_t target_chunk_bytes)
    : buffer_(FileBuffer::open(path)), path_(std::move(path)) {
    const std::string_view text = buffer_.view();
    const char* base            = text.data();
    const std::size_t n         = text.size();
    if (target_chunk_bytes == 0)
        target_chunk_bytes = n ? n : 1;

    // single planning pass: line-boundary chunk splits, per-chunk record
    // counts, and the offsets of every (rare) 'A'/'G' metadata line
    Chunk cur{0, 0, 1, 0};
    std::size_t lineno = 0;
    std::size_t pos    = 0;
    while (pos < n) {
        if (pos - cur.begin >= target_chunk_bytes) {
            cur.end = pos;
            chunks_.push_back(cur);
            cur = Chunk{pos, 0, lineno + 1, 0};
        }
        ++lineno;
        const void* nl = std::memchr(base + pos, '\n', n - pos);
        const std::size_t eol =
            nl ? static_cast<std::size_t>(static_cast<const char*>(nl) - base) : n;
        std::uint32_t len = static_cast<std::uint32_t>(eol - pos);
        if (len > 0 && base[pos + len - 1] == '\r')
            --len;
        const char kind = len > 0 ? base[pos] : '\0';
        if (kind == 'R') {
            ++cur.records;
            ++num_records_;
        } else if (kind == 'A' || kind == 'G') {
            meta_.push_back(MetaLine{pos, len, lineno, kind});
        }
        pos = eol + 1;
    }
    if (n > 0) {
        cur.end = n;
        chunks_.push_back(cur);
    }
}

bool CaliFileSource::has_globals() const noexcept {
    for (const MetaLine& m : meta_)
        if (m.kind == 'G')
            return true;
    return false;
}

void CaliFileSource::read_chunk(std::size_t index, AttributeRegistry& registry,
                                const CaliReader::IdSink& sink) const {
    const Chunk& chunk = chunks_.at(index);
    CaliParser parser(registry, sink, nullptr);
    obs::SpanTimer span(iometrics::read_time);
    parser.set_span(&span);

    // replay the attribute definitions preceding this range, in file order
    // and under their original line numbers, so the chunk parses exactly as
    // a sequential scan would have ('A' lines inside the range parse
    // in-place; 'G' lines are handled once, by read_globals())
    for (const MetaLine& m : meta_) {
        if (m.offset >= chunk.begin)
            break;
        if (m.kind != 'A')
            continue;
        parser.set_lineno(m.lineno - 1);
        parser.line(std::string_view(buffer_.data() + m.offset, m.size));
    }

    parser.set_lineno(chunk.first_line - 1);
    for_each_line(std::string_view(buffer_.data() + chunk.begin,
                                   chunk.end - chunk.begin),
                  [&parser](std::string_view line) { parser.line(line); });
    // only the bytes of this range count: per-worker reader.bytes sums to
    // the file size, not workers x file size
    parser.flush_metrics(chunk.end - chunk.begin);
}

void CaliFileSource::read_chunk_batches(std::size_t index,
                                        AttributeRegistry& registry,
                                        std::size_t batch_size,
                                        const CaliReader::BatchSink& sink) const {
    const Chunk& chunk = chunks_.at(index);
    CaliParser parser(registry, noop_id_sink(), nullptr);
    obs::SpanTimer span(iometrics::read_time);
    parser.set_span(&span);

    // replay the attribute definitions preceding this range (see
    // read_chunk); batch emission only begins with the range's own records
    for (const MetaLine& m : meta_) {
        if (m.offset >= chunk.begin)
            break;
        if (m.kind != 'A')
            continue;
        parser.set_lineno(m.lineno - 1);
        parser.line(std::string_view(buffer_.data() + m.offset, m.size));
    }

    RecordBatch batch;
    parser.set_batch(batch, batch_size, sink);
    parser.set_lineno(chunk.first_line - 1);
    for_each_line(std::string_view(buffer_.data() + chunk.begin,
                                   chunk.end - chunk.begin),
                  [&parser](std::string_view line) { parser.line(line); });
    parser.finish();
    parser.flush_metrics(chunk.end - chunk.begin);
}

IdRecord CaliFileSource::read_globals(AttributeRegistry& registry) const {
    IdRecord globals;
    const CaliReader::IdSink noop = [](IdRecord&&) {};
    CaliParser parser(registry, noop, &globals);
    for (const MetaLine& m : meta_) {
        parser.set_lineno(m.lineno - 1);
        parser.line(std::string_view(buffer_.data() + m.offset, m.size));
    }
    return globals;
}

// -- name-based compatibility wrappers --------------------------------------

void CaliReader::read(std::istream& is, const RecordSink& sink, RecordMap* globals) {
    read_range(is, 0, UINT64_MAX, sink, globals);
}

namespace {

/// Adapt an id sink + private registry to the name-based API.
void restore_globals(const IdRecord& g, const AttributeRegistry& registry,
                     RecordMap* globals) {
    if (!globals)
        return;
    for (const Entry& e : g)
        globals->append(registry.get(e.attribute).name(), e.value);
}

} // namespace

void CaliReader::read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                            const RecordSink& sink, RecordMap* globals) {
    AttributeRegistry registry; // private dictionary, names restored below
    IdRecord g;
    read_range(is, begin, end, registry,
               [&](IdRecord&& rec) { sink(to_recordmap(rec, registry)); },
               globals ? &g : nullptr);
    restore_globals(g, registry, globals);
}

std::vector<RecordMap> CaliReader::read_all(std::istream& is, RecordMap* globals) {
    std::vector<RecordMap> out;
    read(is, [&out](RecordMap&& r) { out.push_back(std::move(r)); }, globals);
    return out;
}

std::vector<RecordMap> CaliReader::read_file(const std::string& path,
                                             RecordMap* globals) {
    std::vector<RecordMap> out;
    read_file(path, [&out](RecordMap&& r) { out.push_back(std::move(r)); }, globals);
    return out;
}

void CaliReader::read_file(const std::string& path, const RecordSink& sink,
                           RecordMap* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    AttributeRegistry registry;
    IdRecord g;
    read_buffer(buf.view(), registry,
                [&](IdRecord&& rec) { sink(to_recordmap(rec, registry)); },
                globals ? &g : nullptr);
    restore_globals(g, registry, globals);
}

void CaliReader::read_file_range(const std::string& path, std::uint64_t begin,
                                 std::uint64_t end, const RecordSink& sink,
                                 RecordMap* globals) {
    const FileBuffer buf = FileBuffer::open(path);
    AttributeRegistry registry;
    IdRecord g;
    parse_buffer_range(buf.view(), begin, end, registry,
                       [&](IdRecord&& rec) { sink(to_recordmap(rec, registry)); },
                       globals ? &g : nullptr);
    restore_globals(g, registry, globals);
}

std::uint64_t CaliReader::count_records(const std::string& path) {
    const FileBuffer buf = FileBuffer::open(path);
    std::uint64_t n = 0;
    for_each_line(buf.view(), [&n](std::string_view line) {
        if (!line.empty() && line[0] == 'R')
            ++n;
    });
    return n;
}

Dataset Dataset::load(const std::vector<std::string>& paths) {
    Dataset ds;
    for (const std::string& path : paths) {
        RecordMap g;
        CaliReader::read_file(path, [&ds](RecordMap&& r) {
            ds.records.push_back(std::move(r));
        }, &g);
        g.append("cali.file", Variant(std::string_view(path)));
        ds.globals.push_back(std::move(g));
    }
    return ds;
}

} // namespace calib
