#include "filebuffer.hpp"

#include "../obs/metrics.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define CALIB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#include <iostream>
#endif

namespace calib {

namespace {

// bytes currently mmap-mapped by readers
obs::Gauge mmap_gauge("reader.mmap");

std::atomic<bool>& mmap_flag() noexcept {
    static std::atomic<bool> flag{[] {
        const char* e = std::getenv("CALIB_NO_MMAP");
        return !(e && *e && std::strcmp(e, "0") != 0);
    }()};
    return flag;
}

} // namespace

bool FileBuffer::mmap_enabled() noexcept {
    return mmap_flag().load(std::memory_order_relaxed);
}

void FileBuffer::set_mmap_enabled(bool on) noexcept {
    mmap_flag().store(on, std::memory_order_relaxed);
}

FileBuffer::~FileBuffer() { release(); }

FileBuffer::FileBuffer(FileBuffer&& other) noexcept { *this = std::move(other); }

FileBuffer& FileBuffer::operator=(FileBuffer&& other) noexcept {
    if (this == &other)
        return *this;
    release();
    mapped_ = other.mapped_;
    size_   = other.size_;
    owned_  = std::move(other.owned_);
    // a moved std::string may relocate its bytes (SSO), so the fallback
    // view must be re-derived from the new storage
    data_ = mapped_ ? other.data_ : owned_.data();
    other.data_   = nullptr;
    other.size_   = 0;
    other.mapped_ = false;
    other.owned_.clear();
    return *this;
}

void FileBuffer::release() noexcept {
#ifdef CALIB_HAVE_MMAP
    if (mapped_ && data_) {
        munmap(const_cast<char*>(data_), size_);
        mmap_gauge.add(-static_cast<std::int64_t>(size_));
    }
#endif
    data_   = nullptr;
    size_   = 0;
    mapped_ = false;
    owned_.clear();
}

FileBuffer FileBuffer::from_string(std::string text) {
    FileBuffer buf;
    buf.owned_ = std::move(text);
    buf.data_  = buf.owned_.data();
    buf.size_  = buf.owned_.size();
    return buf;
}

#ifdef CALIB_HAVE_MMAP

FileBuffer FileBuffer::open(const std::string& path) {
    const bool is_stdin = path == "-";
    const int fd = is_stdin ? STDIN_FILENO : ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throw std::runtime_error("cannot open " + path);

    FileBuffer buf;
    struct stat st {};
    const bool regular = fstat(fd, &st) == 0 && S_ISREG(st.st_mode);

    if (regular && st.st_size > 0 && mmap_enabled()) {
        void* p = mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
            buf.data_   = static_cast<const char*>(p);
            buf.size_   = static_cast<std::size_t>(st.st_size);
            buf.mapped_ = true;
            mmap_gauge.add(static_cast<std::int64_t>(buf.size_));
            if (!is_stdin)
                ::close(fd); // the mapping outlives the descriptor
            return buf;
        }
        // MAP_FAILED (odd filesystem, resource limit): fall through to read()
    }

    // fallback: slurp the descriptor — pipes, stdin, /proc files (st_size 0)
    if (regular && st.st_size > 0)
        buf.owned_.reserve(static_cast<std::size_t>(st.st_size));
    char chunk[1 << 16];
    while (true) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            buf.owned_.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
            break;
        } else if (errno != EINTR) {
            if (!is_stdin)
                ::close(fd);
            throw std::runtime_error("cannot open " + path);
        }
    }
    if (!is_stdin)
        ::close(fd);
    buf.data_ = buf.owned_.data();
    buf.size_ = buf.owned_.size();
    return buf;
}

#else // !CALIB_HAVE_MMAP: portable iostream fallback (never maps)

FileBuffer FileBuffer::open(const std::string& path) {
    FileBuffer buf;
    if (path == "-") {
        char chunk[1 << 16];
        while (std::cin.read(chunk, sizeof chunk) || std::cin.gcount() > 0)
            buf.owned_.append(chunk, static_cast<std::size_t>(std::cin.gcount()));
    } else {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            throw std::runtime_error("cannot open " + path);
        char chunk[1 << 16];
        while (is.read(chunk, sizeof chunk) || is.gcount() > 0)
            buf.owned_.append(chunk, static_cast<std::size_t>(is.gcount()));
    }
    buf.data_ = buf.owned_.data();
    buf.size_ = buf.owned_.size();
    return buf;
}

#endif

} // namespace calib
