// Minimal JSON reader for record arrays, the inverse of FORMAT json:
//
//   [ {"kernel": "advec", "count": 3, "t": 1.5}, ... ]
//
// Supports the subset the JSON formatter emits: an array of flat objects
// with string / number / bool / null values. Lets query pipelines consume
// reports produced by other tools (or by calib itself).
#pragma once

#include "../common/recordmap.hpp"

#include <functional>
#include <istream>
#include <string_view>
#include <vector>

namespace calib {

/// Parse a JSON array of flat objects into records.
/// Throws std::runtime_error (with byte position) on malformed input.
std::vector<RecordMap> read_json_records(std::string_view text);

/// Streaming variants: records are parsed directly off the stream (one
/// object at a time — the input is never slurped into memory) and handed
/// to \a sink as they complete.
void read_json_records(std::istream& is,
                       const std::function<void(RecordMap&&)>& sink);
std::vector<RecordMap> read_json_records(std::istream& is);

} // namespace calib
