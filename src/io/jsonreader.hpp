// Minimal JSON reader for record arrays, the inverse of FORMAT json:
//
//   [ {"kernel": "advec", "count": 3, "t": 1.5}, ... ]
//
// Supports the subset the JSON formatter emits: an array of flat objects
// with string / number / bool / null values. Lets query pipelines consume
// reports produced by other tools (or by calib itself).
//
// The id-based entry points resolve each distinct object key against the
// caller's AttributeRegistry once per stream (a per-parser dictionary
// caches the resolution), emitting IdRecords for the query hot path. The
// RecordMap API remains as a compatibility wrapper.
#pragma once

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordbatch.hpp"
#include "../common/recordmap.hpp"

#include <functional>
#include <istream>
#include <string_view>
#include <vector>

namespace calib {

/// Streaming id-based parse: records are parsed directly off the stream
/// (one object at a time — the input is never slurped into memory), keys
/// resolve through \a registry once per distinct name, and completed
/// records go to \a sink. Read accounting feeds the global "reader.*"
/// instruments (see obs/metrics.hpp). Throws std::runtime_error (with
/// byte position) on malformed input.
void read_json_records(std::istream& is, AttributeRegistry& registry,
                       const std::function<void(IdRecord&&)>& sink);

/// Read a JSON record-array file; "-" reads standard input. The file is
/// mapped via FileBuffer (read() fallback for pipes) and parsed in place.
/// Throws std::runtime_error ("cannot open <path>", or a parse error with
/// byte position).
void read_json_file(const std::string& path, AttributeRegistry& registry,
                    const std::function<void(IdRecord&&)>& sink);

/// Batched wrapper over read_json_file(): parsed records accumulate into a
/// RecordBatch handed to \a sink every \a batch_size records (plus one
/// trailing partial batch). The batch is reusable scratch — consume it in
/// place or std::move() it away (see CaliReader::BatchSink).
void read_json_file_batches(const std::string& path, AttributeRegistry& registry,
                            std::size_t batch_size,
                            const std::function<void(RecordBatch&)>& sink);

/// Parse a JSON array of flat objects into name-based records.
std::vector<RecordMap> read_json_records(std::string_view text);

/// Streaming name-based variants (compatibility wrappers).
void read_json_records(std::istream& is,
                       const std::function<void(RecordMap&&)>& sink);
std::vector<RecordMap> read_json_records(std::istream& is);

} // namespace calib
