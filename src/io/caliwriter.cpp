#include "caliwriter.hpp"

#include "../common/util.hpp"

namespace calib {

namespace {
constexpr std::string_view header = "#calib-stream v1";
constexpr std::string_view value_specials = ",=";
} // namespace

CaliWriter::CaliWriter(std::ostream& os) : os_(os) {
    put_line(std::string(header));
}

void CaliWriter::put_line(const std::string& line) {
    os_ << line << '\n';
    bytes_ += line.size() + 1;
}

std::uint32_t CaliWriter::define(std::string_view name, Variant::Type type,
                                 std::uint32_t properties) {
    auto it = attrs_.find(std::string(name));
    if (it != attrs_.end())
        return it->second.id;

    const std::uint32_t id = next_id_++;
    attrs_.emplace(std::string(name), LocalAttr{id, type});
    put_line("A," + std::to_string(id) + ',' + util::escape(name, value_specials) +
             ',' + Variant::type_name(type) + ',' + std::to_string(properties));
    return id;
}

void CaliWriter::write_global(std::string_view name, const Variant& value) {
    const std::uint32_t id = define(name, value.type(), prop::none);
    put_line("G," + std::to_string(id) + '=' +
             util::escape(value.to_repr(), value_specials));
}

void CaliWriter::write_record(const RecordMap& record) {
    std::string line = "R";
    for (const auto& [name, value] : record) {
        // an Empty value carries no information and its text form is
        // indistinguishable from an empty string — omit the field (a
        // missing name reads back as Empty anyway)
        if (value.empty())
            continue;
        const std::uint32_t id = define(name, value.type(), prop::none);
        // to_repr, not to_string: a written stream must parse back to the
        // bit-identical double (%.12g drops up to 5 bits)
        line += ',' + std::to_string(id) + '=' +
                util::escape(value.to_repr(), value_specials);
    }
    put_line(line);
    ++records_;
}

void CaliWriter::write_snapshot(const AttributeRegistry& registry,
                                const SnapshotRecord& record) {
    std::string line = "R";
    for (const Entry& e : record) {
        const Attribute a = registry.get(e.attribute);
        if (!a.valid() || e.value.empty())
            continue;
        const std::uint32_t id = define(a.name_view(), a.type(), a.properties());
        line += ',' + std::to_string(id) + '=' +
                util::escape(e.value.to_repr(), value_specials);
    }
    put_line(line);
    ++records_;
}

} // namespace calib
