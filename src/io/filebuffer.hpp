// FileBuffer: a read-only, whole-file byte view for zero-copy parsing.
//
// Regular files are mmap()ed (the kernel pages them in on demand, and
// multiple workers can read disjoint byte ranges of one mapping without
// any per-worker I/O or copies). Pipes, stdin ("-"), non-regular files,
// and platforms without mmap fall back to a plain read()-into-buffer
// slurp, so every caller sees the same contiguous `string_view` either
// way. Setting CALIB_NO_MMAP=1 (or set_mmap_enabled(false)) forces the
// fallback path — the differential suites use it to vet both paths.
//
// The "reader.mmap" gauge tracks bytes currently mapped (see
// docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace calib {

class FileBuffer {
public:
    FileBuffer() = default;
    ~FileBuffer();

    FileBuffer(FileBuffer&& other) noexcept;
    FileBuffer& operator=(FileBuffer&& other) noexcept;
    FileBuffer(const FileBuffer&)            = delete;
    FileBuffer& operator=(const FileBuffer&) = delete;

    /// Open \a path for reading; "-" reads standard input. Throws
    /// std::runtime_error ("cannot open <path>") when the file is not
    /// readable.
    static FileBuffer open(const std::string& path);

    /// Wrap in-memory text (tests, synthetic inputs). The buffer owns a
    /// copy of \a text.
    static FileBuffer from_string(std::string text);

    /// The file's bytes. Valid for the lifetime of this buffer.
    std::string_view view() const noexcept { return {data_, size_}; }
    const char* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }

    /// True when the view is mmap-backed (false: owned fallback buffer).
    bool mapped() const noexcept { return mapped_; }

    /// Process-wide switch for the mmap fast path; initialized from the
    /// CALIB_NO_MMAP environment variable. When off, open() always reads
    /// into an owned buffer.
    static bool mmap_enabled() noexcept;
    static void set_mmap_enabled(bool on) noexcept;

private:
    void release() noexcept;

    const char* data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_      = false;
    std::string owned_; ///< fallback storage (empty when mapped)
};

} // namespace calib
