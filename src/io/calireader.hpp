// Reader for the calib stream format (see caliwriter.hpp). Produces
// name-based offline records (RecordMap) ready for the query engine.
//
// All entry points are stateless and safe to call concurrently from
// multiple threads (string interning and attribute registries synchronize
// internally), which the parallel query engine relies on: each worker
// opens its own stream over its morsel of the input.
#pragma once

#include "../common/recordmap.hpp"

#include <cstdint>
#include <functional>
#include <istream>
#include <string>
#include <vector>

namespace calib {

class CaliReader {
public:
    using RecordSink = std::function<void(RecordMap&&)>;

    /// Stream records from \a is into \a sink; dataset globals (if any)
    /// accumulate into \a globals. Throws std::runtime_error on a
    /// malformed stream.
    static void read(std::istream& is, const RecordSink& sink,
                     RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_all(std::istream& is,
                                           RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_file(const std::string& path,
                                            RecordMap* globals = nullptr);

    /// Stream records from a file (avoids materializing the record vector).
    static void read_file(const std::string& path, const RecordSink& sink,
                          RecordMap* globals = nullptr);

    /// Stream only records with index in [\a begin, \a end) into \a sink
    /// (record indices count 'R' lines in stream order). The whole stream
    /// is still scanned — attribute definitions and globals can appear
    /// anywhere — but records outside the range are skipped without
    /// parsing their fields. Used for record-range morsels.
    static void read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                           const RecordSink& sink, RecordMap* globals = nullptr);

    static void read_file_range(const std::string& path, std::uint64_t begin,
                                std::uint64_t end, const RecordSink& sink,
                                RecordMap* globals = nullptr);

    /// Number of records in a file (a plain line scan; no field parsing).
    static std::uint64_t count_records(const std::string& path);
};

/// A loaded multi-file dataset (e.g. one file per MPI rank).
struct Dataset {
    std::vector<RecordMap> records;
    /// Per-file globals; each entry also gets a "cali.file" attribute.
    std::vector<RecordMap> globals;

    static Dataset load(const std::vector<std::string>& paths);
};

} // namespace calib
