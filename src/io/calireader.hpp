// Reader for the calib stream format (see caliwriter.hpp). Produces
// name-based offline records (RecordMap) ready for the query engine.
#pragma once

#include "../common/recordmap.hpp"

#include <functional>
#include <istream>
#include <string>
#include <vector>

namespace calib {

class CaliReader {
public:
    using RecordSink = std::function<void(RecordMap&&)>;

    /// Stream records from \a is into \a sink; dataset globals (if any)
    /// accumulate into \a globals. Throws std::runtime_error on a
    /// malformed stream.
    static void read(std::istream& is, const RecordSink& sink,
                     RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_all(std::istream& is,
                                           RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_file(const std::string& path,
                                            RecordMap* globals = nullptr);

    /// Stream records from a file (avoids materializing the record vector).
    static void read_file(const std::string& path, const RecordSink& sink,
                          RecordMap* globals = nullptr);
};

/// A loaded multi-file dataset (e.g. one file per MPI rank).
struct Dataset {
    std::vector<RecordMap> records;
    /// Per-file globals; each entry also gets a "cali.file" attribute.
    std::vector<RecordMap> globals;

    static Dataset load(const std::vector<std::string>& paths);
};

} // namespace calib
