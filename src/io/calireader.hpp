// Reader for the calib stream format (see caliwriter.hpp).
//
// The primary entry points resolve attribute names against a caller-
// provided AttributeRegistry *once per attribute definition* — a name that
// repeats across thousands of records costs one registry lookup total —
// and emit id-based records (IdRecord) straight into the query pipeline.
// The name-based RecordMap API remains as a compatibility wrapper over
// the same parser (it resolves through a private registry and converts
// each record back to names).
//
// All entry points are stateless and safe to call concurrently from
// multiple threads (string interning and attribute registries synchronize
// internally), which the parallel query engine relies on: each worker
// opens its own stream over its morsel of the input.
#pragma once

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordmap.hpp"

#include <cstdint>
#include <functional>
#include <istream>
#include <string>
#include <vector>

namespace calib {

class CaliReader {
public:
    using RecordSink = std::function<void(RecordMap&&)>;
    using IdSink     = std::function<void(IdRecord&&)>;

    // -- id-based entry points (resolve-once; the query hot path) ----------
    //
    // Read accounting (records, entries, name resolutions, bytes) feeds the
    // global "reader.*" instruments in the obs metrics registry; enable via
    // obs::set_enabled() / CALIB_METRICS and read with cali-query --stats.

    /// Stream id-based records from \a is into \a sink; attribute names
    /// resolve through \a registry at their definition line. Dataset
    /// globals (if any) accumulate into \a globals. Throws
    /// std::runtime_error on a malformed stream.
    static void read(std::istream& is, AttributeRegistry& registry,
                     const IdSink& sink, IdRecord* globals = nullptr);

    /// Stream only records with index in [\a begin, \a end) into \a sink
    /// (record indices count 'R' lines in stream order). The whole stream
    /// is still scanned — attribute definitions and globals can appear
    /// anywhere — but records outside the range are skipped without
    /// parsing their fields. Used for record-range morsels.
    static void read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                           AttributeRegistry& registry, const IdSink& sink,
                           IdRecord* globals = nullptr);

    static void read_file(const std::string& path, AttributeRegistry& registry,
                          const IdSink& sink, IdRecord* globals = nullptr);

    static void read_file_range(const std::string& path, std::uint64_t begin,
                                std::uint64_t end, AttributeRegistry& registry,
                                const IdSink& sink, IdRecord* globals = nullptr);

    // -- name-based entry points (compatibility wrappers) -------------------

    static void read(std::istream& is, const RecordSink& sink,
                     RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_all(std::istream& is,
                                           RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_file(const std::string& path,
                                            RecordMap* globals = nullptr);

    /// Stream records from a file (avoids materializing the record vector).
    static void read_file(const std::string& path, const RecordSink& sink,
                          RecordMap* globals = nullptr);

    static void read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                           const RecordSink& sink, RecordMap* globals = nullptr);

    static void read_file_range(const std::string& path, std::uint64_t begin,
                                std::uint64_t end, const RecordSink& sink,
                                RecordMap* globals = nullptr);

    /// Number of records in a file (a plain line scan; no field parsing).
    static std::uint64_t count_records(const std::string& path);
};

/// A loaded multi-file dataset (e.g. one file per MPI rank).
struct Dataset {
    std::vector<RecordMap> records;
    /// Per-file globals; each entry also gets a "cali.file" attribute.
    std::vector<RecordMap> globals;

    static Dataset load(const std::vector<std::string>& paths);
};

} // namespace calib
