// Reader for the calib stream format (see caliwriter.hpp).
//
// The primary entry points resolve attribute names against a caller-
// provided AttributeRegistry *once per attribute definition* — a name that
// repeats across thousands of records costs one registry lookup total —
// and emit id-based records (IdRecord) straight into the query pipeline.
// The name-based RecordMap API remains as a compatibility wrapper over
// the same parser (it resolves through a private registry and converts
// each record back to names).
//
// File-based entry points are zero-copy: the file is mmap()ed (FileBuffer,
// with a read()-into-buffer fallback for pipes/stdin) and the parser walks
// string_view lines directly over the mapped bytes — no per-line
// std::string, a flat vector indexed by the stream-local attribute id, and
// a reused record scratch buffer, so steady-state record parsing performs
// no allocations. The istream entry points remain for true streams and
// tests (std::getline per line).
//
// CaliFileSource supports parallel reads of one file: a single cheap
// chunking pass splits the mapped bytes into line-aligned ranges and
// indexes the (rare) 'A'/'G' metadata lines, so each worker replays only
// the attribute definitions preceding its range and then parses its own
// byte span — total scan work stays O(file), not O(file x workers).
// docs/FORMAT.md describes the split semantics.
//
// All entry points are stateless and safe to call concurrently from
// multiple threads (string interning and attribute registries synchronize
// internally), which the parallel query engine relies on.
#pragma once

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordbatch.hpp"
#include "../common/recordmap.hpp"
#include "filebuffer.hpp"

#include <cstdint>
#include <functional>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

namespace calib {

class CaliReader {
public:
    using RecordSink = std::function<void(RecordMap&&)>;
    using IdSink     = std::function<void(IdRecord&&)>;
    /// Batched sink: the batch is the reader's reusable scratch — consume
    /// it in place (the reader clears it after the call, retaining the
    /// column layout), or std::move() it away to keep it.
    using BatchSink  = std::function<void(RecordBatch&)>;

    // -- id-based entry points (resolve-once; the query hot path) ----------
    //
    // Read accounting (records, entries, name resolutions, bytes) feeds the
    // global "reader.*" instruments in the obs metrics registry; enable via
    // obs::set_enabled() / CALIB_METRICS and read with cali-query --stats.

    /// Stream id-based records from \a is into \a sink; attribute names
    /// resolve through \a registry at their definition line. Dataset
    /// globals (if any) accumulate into \a globals. Throws
    /// std::runtime_error on a malformed stream.
    static void read(std::istream& is, AttributeRegistry& registry,
                     const IdSink& sink, IdRecord* globals = nullptr);

    /// Stream only records with index in [\a begin, \a end) into \a sink
    /// (record indices count 'R' lines in stream order). The whole stream
    /// is still scanned — attribute definitions and globals can appear
    /// anywhere — but records outside the range are skipped without
    /// parsing their fields.
    static void read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                           AttributeRegistry& registry, const IdSink& sink,
                           IdRecord* globals = nullptr);

    /// Zero-copy parse of in-memory stream text (no istream, no per-line
    /// copies). File readers map the file and call this.
    static void read_buffer(std::string_view text, AttributeRegistry& registry,
                            const IdSink& sink, IdRecord* globals = nullptr);

    /// Mmap \a path ("-" = stdin, via the read() fallback) and parse it
    /// zero-copy.
    static void read_file(const std::string& path, AttributeRegistry& registry,
                          const IdSink& sink, IdRecord* globals = nullptr);

    static void read_file_range(const std::string& path, std::uint64_t begin,
                                std::uint64_t end, AttributeRegistry& registry,
                                const IdSink& sink, IdRecord* globals = nullptr);

    // -- batched entry points (the columnar hot path) -----------------------
    //
    // Record fields append straight into RecordBatch column vectors as they
    // parse; \a sink receives a batch every \a batch_size records (plus one
    // trailing partial batch). Semantically identical to the IdSink entry
    // points — the fuzz differential runner guards byte-identity.

    static void read_buffer_batches(std::string_view text,
                                    AttributeRegistry& registry,
                                    std::size_t batch_size, const BatchSink& sink,
                                    IdRecord* globals = nullptr);

    static void read_file_batches(const std::string& path,
                                  AttributeRegistry& registry,
                                  std::size_t batch_size, const BatchSink& sink,
                                  IdRecord* globals = nullptr);

    static void read_file_range_batches(const std::string& path,
                                        std::uint64_t begin, std::uint64_t end,
                                        AttributeRegistry& registry,
                                        std::size_t batch_size,
                                        const BatchSink& sink,
                                        IdRecord* globals = nullptr);

    // -- name-based entry points (compatibility wrappers) -------------------

    static void read(std::istream& is, const RecordSink& sink,
                     RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_all(std::istream& is,
                                           RecordMap* globals = nullptr);

    static std::vector<RecordMap> read_file(const std::string& path,
                                            RecordMap* globals = nullptr);

    /// Stream records from a file (avoids materializing the record vector).
    static void read_file(const std::string& path, const RecordSink& sink,
                          RecordMap* globals = nullptr);

    static void read_range(std::istream& is, std::uint64_t begin, std::uint64_t end,
                           const RecordSink& sink, RecordMap* globals = nullptr);

    static void read_file_range(const std::string& path, std::uint64_t begin,
                                std::uint64_t end, const RecordSink& sink,
                                RecordMap* globals = nullptr);

    /// Number of records in a file (a plain line scan; no field parsing).
    static std::uint64_t count_records(const std::string& path);
};

/// A .cali file prepared for parallel byte-range reads: the file is mapped
/// once and split into line-aligned chunks by a single cheap scan that also
/// indexes every 'A' (attribute definition) and 'G' (globals) line. Workers
/// call read_chunk() with disjoint chunk indices; each replays the
/// definitions preceding its range, then parses only its own bytes.
/// Immutable after construction — safe to share across threads.
class CaliFileSource {
public:
    /// One line-aligned byte range of the file.
    struct Chunk {
        std::size_t begin      = 0; ///< first byte (start of a line)
        std::size_t end        = 0; ///< one past the last byte
        std::size_t first_line = 1; ///< 1-based line number at begin
        std::uint64_t records  = 0; ///< 'R' lines within the range
    };

    /// Map (or slurp) \a path and plan chunks of ~\a target_chunk_bytes.
    /// Throws std::runtime_error when the file cannot be opened.
    CaliFileSource(std::string path, std::size_t target_chunk_bytes);

    const std::string& path() const noexcept { return path_; }
    std::size_t size_bytes() const noexcept { return buffer_.size(); }
    bool mapped() const noexcept { return buffer_.mapped(); }
    std::uint64_t num_records() const noexcept { return num_records_; }
    bool has_globals() const noexcept;

    /// Chunks tile [0, size_bytes()) in file order; empty for an empty file.
    const std::vector<Chunk>& chunks() const noexcept { return chunks_; }

    /// Parse the records of chunk \a index into \a sink (thread-safe for
    /// distinct indices). Error messages carry whole-file line numbers.
    void read_chunk(std::size_t index, AttributeRegistry& registry,
                    const CaliReader::IdSink& sink) const;

    /// Batched variant of read_chunk() (see CaliReader::BatchSink).
    void read_chunk_batches(std::size_t index, AttributeRegistry& registry,
                            std::size_t batch_size,
                            const CaliReader::BatchSink& sink) const;

    /// All dataset globals ('G' lines anywhere in the file), resolved
    /// against \a registry.
    IdRecord read_globals(AttributeRegistry& registry) const;

private:
    /// An 'A' or 'G' line, indexed by the planning scan.
    struct MetaLine {
        std::size_t offset = 0; ///< byte offset of the line start
        std::uint32_t size = 0; ///< line length (newline / CR stripped)
        std::size_t lineno = 0; ///< 1-based, for error messages
        char kind          = 0; ///< 'A' or 'G'
    };

    FileBuffer buffer_;
    std::string path_;
    std::vector<MetaLine> meta_;
    std::vector<Chunk> chunks_;
    std::uint64_t num_records_ = 0;
};

/// A loaded multi-file dataset (e.g. one file per MPI rank).
struct Dataset {
    std::vector<RecordMap> records;
    /// Per-file globals; each entry also gets a "cali.file" attribute.
    std::vector<RecordMap> globals;

    static Dataset load(const std::vector<std::string>& paths);
};

} // namespace calib
