// Shared reader instruments (defined in calireader.cpp). Both stream
// readers feed the same counters, so "reader.*" reflects total input work
// regardless of format:
//
//   reader.records           records delivered to the sink
//   reader.entries           record fields delivered
//   reader.name_resolutions  registry lookups (the resolve-once invariant:
//                            one per attribute *definition*, not per record)
//   reader.bytes             input bytes consumed
//   phase.read               exclusive read time (sink calls excluded)
#pragma once

#include "../obs/metrics.hpp"

namespace calib::iometrics {

extern obs::Counter records;
extern obs::Counter entries;
extern obs::Counter name_resolutions;
extern obs::Counter bytes;
extern obs::Timer read_time;

} // namespace calib::iometrics
