// Shared reader instruments (defined in calireader.cpp). Both stream
// readers feed the same counters, so "reader.*" reflects total input work
// regardless of format:
//
//   reader.records           records delivered to the sink
//   reader.entries           record fields delivered
//   reader.name_resolutions  registry lookups (the resolve-once invariant:
//                            one per attribute *definition*, not per record)
//   reader.bytes             actual input bytes consumed (terminators and
//                            CRLF included; each byte counted once — a
//                            byte-range worker charges only its own chunk)
//   phase.read               exclusive read time (sink calls excluded)
//   batch.fill               time to fill one RecordBatch (batched entry
//                            points only; sink calls excluded)
//
// filebuffer.cpp additionally owns the reader.mmap gauge: bytes currently
// memory-mapped (0 on the read() fallback path).
#pragma once

#include "../obs/metrics.hpp"

namespace calib::iometrics {

extern obs::Counter records;
extern obs::Counter entries;
extern obs::Counter name_resolutions;
extern obs::Counter bytes;
extern obs::Timer read_time;
extern obs::Timer batch_fill;

} // namespace calib::iometrics
