// Writer for the calib stream format: a self-describing, line-oriented
// text serialization of performance-data records.
//
//   #calib-stream v1
//   A,<id>,<name>,<type>,<props>     attribute definition (lazy, on first use)
//   G,<id>=<value>,...               per-dataset global metadata
//   R,<id>=<value>,...               one record
//
// Values escape ',', '=', '\' and newlines with backslashes. Attribute
// types let the reader restore typed values without per-value tags.
#pragma once

#include "../common/attribute.hpp"
#include "../common/recordmap.hpp"
#include "../common/snapshot.hpp"

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace calib {

class CaliWriter {
public:
    explicit CaliWriter(std::ostream& os);

    /// Write one dataset-global metadata entry (e.g. "mpi.rank", problem size).
    void write_global(std::string_view name, const Variant& value);

    /// Write an offline (name-based) record.
    void write_record(const RecordMap& record);

    /// Write a snapshot record, resolving names through \a registry.
    /// Attribute properties are carried into the stream.
    void write_snapshot(const AttributeRegistry& registry, const SnapshotRecord& record);

    std::uint64_t num_records() const noexcept { return records_; }
    std::uint64_t num_bytes() const noexcept { return bytes_; }

private:
    struct LocalAttr {
        std::uint32_t id;
        Variant::Type type;
    };

    std::uint32_t define(std::string_view name, Variant::Type type,
                         std::uint32_t properties);
    void put_line(const std::string& line);

    std::ostream& os_;
    std::unordered_map<std::string, LocalAttr> attrs_;
    std::uint32_t next_id_     = 0;
    std::uint64_t records_     = 0;
    std::uint64_t bytes_       = 0;
};

} // namespace calib
