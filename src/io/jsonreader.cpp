#include "jsonreader.hpp"

#include "filebuffer.hpp"
#include "reader_metrics.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <unordered_map>

namespace calib {

namespace {

// Pulls characters off the stream one record at a time, so arbitrarily
// large inputs parse in bounded memory (the largest single object).
// Object keys resolve to attribute ids through a per-parser dictionary:
// each distinct key costs one registry lookup per stream, not per record.
class JsonParser {
public:
    JsonParser(std::istream& is, AttributeRegistry& registry)
        : is_(is), registry_(registry) {}

    void parse_records(const std::function<void(IdRecord&&)>& sink) {
        obs::SpanTimer read_span(iometrics::read_time);
        skip_ws();
        expect('[');
        skip_ws();
        if (peek() == ']') {
            next();
        } else {
            while (true) {
                IdRecord rec = parse_object();
                iometrics::records.add();
                iometrics::entries.add(rec.size());
                read_span.pause(); // downstream pipeline time is not read time
                sink(std::move(rec));
                read_span.resume();
                skip_ws();
                const char c = next();
                if (c == ']')
                    break;
                if (c != ',')
                    fail("expected ',' or ']' after object");
                skip_ws();
            }
        }
        skip_ws();
        if (peek() != '\0')
            fail("trailing content after the record array");
        iometrics::bytes.add(pos_);
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw std::runtime_error("json (offset " + std::to_string(pos_) +
                                 "): " + msg);
    }

    char peek() {
        const int c = is_.peek();
        return c == std::char_traits<char>::eof() ? '\0' : static_cast<char>(c);
    }
    char next() {
        const int c = is_.get();
        if (c == std::char_traits<char>::eof())
            fail("unexpected end of input");
        ++pos_;
        return static_cast<char>(c);
    }
    void expect(char c) {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }
    void skip_ws() {
        while (std::isspace(static_cast<unsigned char>(peek())))
            next();
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                case 'n':  out += '\n'; break;
                case 't':  out += '\t'; break;
                case 'r':  out += '\r'; break;
                case 'b':  out += '\b'; break;
                case 'f':  out += '\f'; break;
                case '"':  out += '"'; break;
                case '\\': out += '\\'; break;
                case '/':  out += '/'; break;
                case 'u': {
                    // \uXXXX: decode the BMP code point as UTF-8
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = next();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    Variant parse_value() {
        skip_ws();
        const char c = peek();
        if (c == '"')
            return Variant(parse_string());
        if (c == 't') {
            literal("true");
            return Variant(true);
        }
        if (c == 'f') {
            literal("false");
            return Variant(false);
        }
        if (c == 'n') {
            literal("null");
            return {};
        }
        // number
        std::string token;
        if (peek() == '-' || peek() == '+')
            token += next();
        bool is_double = false;
        while (true) {
            const char d = peek();
            if (std::isdigit(static_cast<unsigned char>(d))) {
                token += next();
            } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
                is_double = true;
                token += next();
            } else {
                break;
            }
        }
        if (token.empty())
            fail("expected a value");
        if (!is_double) {
            errno = 0;
            const long long v = std::strtoll(token.c_str(), nullptr, 10);
            if (errno == 0)
                return Variant(v);
            if (token[0] != '-') {
                // integers in (INT64_MAX, UINT64_MAX] stay exact as UInt
                // instead of losing low bits through the double fallback
                errno                  = 0;
                const unsigned long long u =
                    std::strtoull(token.c_str(), nullptr, 10);
                if (errno == 0)
                    return Variant(u);
            }
        }
        return Variant(std::strtod(token.c_str(), nullptr));
    }

    void literal(std::string_view word) {
        for (char c : word)
            if (next() != c)
                fail("bad literal");
    }

    id_t resolve_key(const std::string& key) {
        auto [it, fresh] = key_ids_.try_emplace(key, invalid_id);
        if (fresh) {
            // first sighting in this stream: one registry resolution;
            // JSON carries no type declarations, so keys default to String
            it->second = registry_.create(key, Variant::Type::String).id();
            iometrics::name_resolutions.add();
        }
        return it->second;
    }

    IdRecord parse_object() {
        skip_ws();
        expect('{');
        IdRecord rec;
        skip_ws();
        if (peek() == '}') {
            next();
            return rec;
        }
        while (true) {
            skip_ws();
            const std::string key = parse_string();
            skip_ws();
            expect(':');
            Variant value = parse_value();
            if (!value.empty())
                rec.append(resolve_key(key), value);
            skip_ws();
            const char c = next();
            if (c == '}')
                return rec;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::istream& is_;
    AttributeRegistry& registry_;
    std::unordered_map<std::string, id_t> key_ids_; ///< per-stream dictionary
    std::size_t pos_ = 0; ///< bytes consumed, for error offsets
};

// Read-only streambuf view over in-memory text (no copy).
class ViewBuf : public std::streambuf {
public:
    explicit ViewBuf(std::string_view text) {
        char* p = const_cast<char*>(text.data());
        setg(p, p, p + text.size());
    }
};

} // namespace

void read_json_records(std::istream& is, AttributeRegistry& registry,
                       const std::function<void(IdRecord&&)>& sink) {
    JsonParser(is, registry).parse_records(sink);
}

void read_json_file(const std::string& path, AttributeRegistry& registry,
                    const std::function<void(IdRecord&&)>& sink) {
    const FileBuffer buf = FileBuffer::open(path);
    ViewBuf view(buf.view());
    std::istream is(&view);
    read_json_records(is, registry, sink);
}

void read_json_file_batches(const std::string& path, AttributeRegistry& registry,
                            std::size_t batch_size,
                            const std::function<void(RecordBatch&)>& sink) {
    if (batch_size == 0)
        batch_size = 1;
    RecordBatch batch;
    auto fill_start = std::chrono::steady_clock::now();
    const auto emit = [&]() {
        const auto now = std::chrono::steady_clock::now();
        iometrics::batch_fill.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 fill_start)
                .count()));
        sink(batch);
        batch.clear(); // safe after a sink that moved the batch away
        fill_start = std::chrono::steady_clock::now();
    };
    read_json_file(path, registry, [&](IdRecord&& rec) {
        batch.append_record(rec);
        if (batch.rows() >= batch_size)
            emit();
    });
    if (!batch.empty())
        emit();
}

void read_json_records(std::istream& is,
                       const std::function<void(RecordMap&&)>& sink) {
    AttributeRegistry registry; // private dictionary, names restored below
    read_json_records(is, registry,
                      [&](IdRecord&& rec) { sink(to_recordmap(rec, registry)); });
}

std::vector<RecordMap> read_json_records(std::istream& is) {
    std::vector<RecordMap> out;
    read_json_records(is, [&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

std::vector<RecordMap> read_json_records(std::string_view text) {
    ViewBuf buf(text);
    std::istream is(&buf);
    return read_json_records(is);
}

} // namespace calib
