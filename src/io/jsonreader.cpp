#include "jsonreader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace calib {

namespace {

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::vector<RecordMap> parse_records() {
        std::vector<RecordMap> out;
        skip_ws();
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.push_back(parse_object());
            skip_ws();
            const char c = next();
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']' after object");
            skip_ws();
        }
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing content after the record array");
        return out;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw std::runtime_error("json (offset " + std::to_string(pos_) +
                                 "): " + msg);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    char next() {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_++];
    }
    void expect(char c) {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                case 'n':  out += '\n'; break;
                case 't':  out += '\t'; break;
                case 'r':  out += '\r'; break;
                case 'b':  out += '\b'; break;
                case 'f':  out += '\f'; break;
                case '"':  out += '"'; break;
                case '\\': out += '\\'; break;
                case '/':  out += '/'; break;
                case 'u': {
                    // \uXXXX: decode the BMP code point as UTF-8
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = next();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    Variant parse_value() {
        skip_ws();
        const char c = peek();
        if (c == '"')
            return Variant(parse_string());
        if (c == 't') {
            literal("true");
            return Variant(true);
        }
        if (c == 'f') {
            literal("false");
            return Variant(false);
        }
        if (c == 'n') {
            literal("null");
            return {};
        }
        // number
        const std::size_t start = pos_;
        if (peek() == '-' || peek() == '+')
            ++pos_;
        bool is_double = false;
        while (pos_ < text_.size()) {
            const char d = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(d))) {
                ++pos_;
            } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
                is_double = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        if (!is_double) {
            errno = 0;
            const long long v = std::strtoll(token.c_str(), nullptr, 10);
            if (errno == 0)
                return Variant(v);
        }
        return Variant(std::strtod(token.c_str(), nullptr));
    }

    void literal(std::string_view word) {
        for (char c : word)
            if (next() != c)
                fail("bad literal");
    }

    RecordMap parse_object() {
        skip_ws();
        expect('{');
        RecordMap rec;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return rec;
        }
        while (true) {
            skip_ws();
            const std::string key = parse_string();
            skip_ws();
            expect(':');
            Variant value = parse_value();
            if (!value.empty())
                rec.append(key, value);
            skip_ws();
            const char c = next();
            if (c == '}')
                return rec;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

std::vector<RecordMap> read_json_records(std::string_view text) {
    return JsonParser(text).parse_records();
}

} // namespace calib
