#include "filter.hpp"

#include "../obs/metrics.hpp"

namespace calib {

namespace {

obs::Counter filter_checked("filter.checked");
obs::Counter filter_passed("filter.passed");

/// Compare a record value against a filter value, coercing across
/// numeric/string representations (so `loop.iteration=4` matches whether
/// the stored value is the integer 4 or the string "4").
int coerced_compare(const Variant& record_value, const Variant& filter_value) {
    const bool rn = record_value.is_numeric() || record_value.is_bool();
    const bool fn = filter_value.is_numeric() || filter_value.is_bool();
    if (rn == fn)
        return record_value.compare(filter_value);
    // mixed: compare textual forms
    return record_value.to_string().compare(filter_value.to_string());
}

bool apply_op(FilterSpec::Op op, bool present, const Variant& value,
              const Variant& filter_value) {
    switch (op) {
    case FilterSpec::Op::Exist:
        return present;
    case FilterSpec::Op::NotExist:
        return !present;
    default:
        break;
    }
    if (!present)
        return false;
    const int c = coerced_compare(value, filter_value);
    switch (op) {
    case FilterSpec::Op::Eq: return c == 0;
    case FilterSpec::Op::Ne: return c != 0;
    case FilterSpec::Op::Lt: return c < 0;
    case FilterSpec::Op::Le: return c <= 0;
    case FilterSpec::Op::Gt: return c > 0;
    case FilterSpec::Op::Ge: return c >= 0;
    default:                 return false;
    }
}

} // namespace

bool filter_matches(const FilterSpec& filter, const RecordMap& record) {
    // one scan resolves presence and value together
    const Variant* v = record.find(filter.attribute);
    return apply_op(filter.op, v != nullptr, v ? *v : Variant(), filter.value);
}

bool filters_match(const std::vector<FilterSpec>& filters, const RecordMap& record) {
    for (const FilterSpec& f : filters)
        if (!filter_matches(f, record))
            return false;
    return true;
}

SnapshotFilter::SnapshotFilter(std::vector<FilterSpec> filters,
                               AttributeRegistry* registry)
    : filters_(std::move(filters)), registry_(registry) {
    ids_.assign(filters_.size(), invalid_id);
}

void SnapshotFilter::resolve() {
    const std::size_t gen = registry_->generation();
    if (fully_resolved_ || gen == resolved_generation_)
        return;
    resolved_generation_ = gen;
    bool all             = true;
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        if (ids_[i] == invalid_id) {
            Attribute a = registry_->find(filters_[i].attribute);
            if (a.valid())
                ids_[i] = a.id();
            else
                all = false;
        }
    }
    fully_resolved_ = all;
}

void SnapshotFilter::matches(const RecordBatch& batch,
                             std::vector<std::uint32_t>& selection) {
    resolve();
    const std::size_t n = batch.rows();
    filter_checked.add(n);
    selection.resize(n);
    for (std::size_t r = 0; r < n; ++r)
        selection[r] = static_cast<std::uint32_t>(r);
    static const Variant no_value;
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        const FilterSpec& f    = filters_[i];
        const id_t id          = ids_[i];
        const std::int32_t ci  = id == invalid_id ? -1 : batch.column_index(id);
        const RecordBatch::Column* col =
            ci >= 0 ? &batch.column_at(static_cast<std::size_t>(ci)) : nullptr;
        std::size_t out = 0;
        for (std::size_t k = 0; k < selection.size(); ++k) {
            const std::uint32_t r = selection[k];
            bool ok;
            if (batch.is_overflow(r)) {
                // record-at-a-time fallback: first matching entry wins
                const Entry* e = nullptr;
                if (id != invalid_id)
                    for (const Entry& cand : batch.overflow_record(r))
                        if (cand.attribute == id) {
                            e = &cand;
                            break;
                        }
                ok = apply_op(f.op, e != nullptr, e ? e->value : no_value,
                              f.value);
            } else {
                const bool present = col != nullptr && col->valid[r] != 0;
                ok = apply_op(f.op, present, present ? col->values[r] : no_value,
                              f.value);
            }
            if (ok)
                selection[out++] = r;
        }
        selection.resize(out);
    }
    filter_passed.add(selection.size());
}

bool SnapshotFilter::matches(std::span<const Entry> record) {
    resolve();
    filter_checked.add();
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        const Entry* e = nullptr;
        if (ids_[i] != invalid_id)
            for (const Entry& candidate : record)
                if (candidate.attribute == ids_[i]) {
                    e = &candidate;
                    break;
                }
        if (!apply_op(filters_[i].op, e != nullptr, e ? e->value : Variant(),
                      filters_[i].value))
            return false;
    }
    filter_passed.add();
    return true;
}

} // namespace calib
