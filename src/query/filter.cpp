#include "filter.hpp"

#include "../obs/metrics.hpp"

namespace calib {

namespace {

obs::Counter filter_checked("filter.checked");
obs::Counter filter_passed("filter.passed");

/// Compare a record value against a filter value, coercing across
/// numeric/string representations (so `loop.iteration=4` matches whether
/// the stored value is the integer 4 or the string "4").
int coerced_compare(const Variant& record_value, const Variant& filter_value) {
    const bool rn = record_value.is_numeric() || record_value.is_bool();
    const bool fn = filter_value.is_numeric() || filter_value.is_bool();
    if (rn == fn)
        return record_value.compare(filter_value);
    // mixed: compare textual forms
    return record_value.to_string().compare(filter_value.to_string());
}

bool apply_op(FilterSpec::Op op, bool present, const Variant& value,
              const Variant& filter_value) {
    switch (op) {
    case FilterSpec::Op::Exist:
        return present;
    case FilterSpec::Op::NotExist:
        return !present;
    default:
        break;
    }
    if (!present)
        return false;
    const int c = coerced_compare(value, filter_value);
    switch (op) {
    case FilterSpec::Op::Eq: return c == 0;
    case FilterSpec::Op::Ne: return c != 0;
    case FilterSpec::Op::Lt: return c < 0;
    case FilterSpec::Op::Le: return c <= 0;
    case FilterSpec::Op::Gt: return c > 0;
    case FilterSpec::Op::Ge: return c >= 0;
    default:                 return false;
    }
}

} // namespace

bool filter_matches(const FilterSpec& filter, const RecordMap& record) {
    // one scan resolves presence and value together
    const Variant* v = record.find(filter.attribute);
    return apply_op(filter.op, v != nullptr, v ? *v : Variant(), filter.value);
}

bool filters_match(const std::vector<FilterSpec>& filters, const RecordMap& record) {
    for (const FilterSpec& f : filters)
        if (!filter_matches(f, record))
            return false;
    return true;
}

SnapshotFilter::SnapshotFilter(std::vector<FilterSpec> filters,
                               AttributeRegistry* registry)
    : filters_(std::move(filters)), registry_(registry) {
    ids_.assign(filters_.size(), invalid_id);
}

void SnapshotFilter::resolve() {
    const std::size_t gen = registry_->generation();
    if (fully_resolved_ || gen == resolved_generation_)
        return;
    resolved_generation_ = gen;
    bool all             = true;
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        if (ids_[i] == invalid_id) {
            Attribute a = registry_->find(filters_[i].attribute);
            if (a.valid())
                ids_[i] = a.id();
            else
                all = false;
        }
    }
    fully_resolved_ = all;
}

bool SnapshotFilter::matches(std::span<const Entry> record) {
    resolve();
    filter_checked.add();
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        const Entry* e = nullptr;
        if (ids_[i] != invalid_id)
            for (const Entry& candidate : record)
                if (candidate.attribute == ids_[i]) {
                    e = &candidate;
                    break;
                }
        if (!apply_op(filters_[i].op, e != nullptr, e ? e->value : Variant(),
                      filters_[i].value))
            return false;
    }
    filter_passed.add();
    return true;
}

} // namespace calib
