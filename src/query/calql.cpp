#include "calql.hpp"

#include "../common/util.hpp"

#include <cctype>
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace calib {

namespace {

enum class Tok { Ident, Number, String, Comma, LParen, RParen, Star, Cmp, End };

struct Token {
    Tok kind = Tok::End;
    std::string text;
    std::size_t pos = 0;
};

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
           c == '#' || c == '/' || c == ':' || c == '@' || c == '-' || c == '+' ||
           c == '%';
}

std::vector<Token> tokenize(std::string_view q) {
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < q.size()) {
        const char c = q[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '\\') { // line continuation as used in the paper's listings
            ++i;
            continue;
        }
        const std::size_t start = i;
        if (c == ',') {
            out.push_back({Tok::Comma, ",", start});
            ++i;
        } else if (c == '(') {
            out.push_back({Tok::LParen, "(", start});
            ++i;
        } else if (c == ')') {
            out.push_back({Tok::RParen, ")", start});
            ++i;
        } else if (c == '*') {
            out.push_back({Tok::Star, "*", start});
            ++i;
        } else if (c == '=' || c == '<' || c == '>' || c == '!') {
            std::string op(1, c);
            ++i;
            if (i < q.size() && q[i] == '=') {
                op += '=';
                ++i;
            }
            if (op == "!")
                throw CalQLError("stray '!'", start);
            out.push_back({Tok::Cmp, op, start});
        } else if (c == '\'' || c == '"') {
            const char quote = c;
            std::string text;
            ++i;
            while (i < q.size() && q[i] != quote) {
                if (q[i] == '\\' && i + 1 < q.size())
                    ++i;
                text += q[i++];
            }
            if (i >= q.size())
                throw CalQLError("unterminated string literal", start);
            ++i; // closing quote
            out.push_back({Tok::String, text, start});
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   ((c == '-' || c == '+') && i + 1 < q.size() &&
                    std::isdigit(static_cast<unsigned char>(q[i + 1])))) {
            std::string text(1, c);
            ++i;
            bool ident = false;
            while (i < q.size() && is_ident_char(q[i])) {
                if (!std::isdigit(static_cast<unsigned char>(q[i])) && q[i] != '.' &&
                    q[i] != 'e' && q[i] != 'E' && q[i] != '-' && q[i] != '+')
                    ident = true;
                text += q[i++];
            }
            out.push_back({ident ? Tok::Ident : Tok::Number, text, start});
        } else if (is_ident_char(c)) {
            std::string text;
            while (i < q.size() && is_ident_char(q[i]))
                text += q[i++];
            out.push_back({Tok::Ident, text, start});
        } else {
            throw CalQLError(std::string("unexpected character '") + c + "'", start);
        }
    }
    out.push_back({Tok::End, "", q.size()});
    return out;
}

/// Accept the paper's "aggregate.count" spelling for online-aggregation
/// result attributes (our flush emits "count", "sum#x", ...).
std::string normalize_attr(std::string name) {
    if (name == "aggregate.count")
        return "count";
    constexpr std::string_view prefix = "aggregate.";
    if (name.starts_with(prefix)) {
        const std::string_view rest = std::string_view(name).substr(prefix.size());
        if (rest.starts_with("sum#") || rest.starts_with("min#") ||
            rest.starts_with("max#") || rest.starts_with("avg#"))
            return std::string(rest);
    }
    return name;
}

class Parser {
public:
    explicit Parser(std::string_view q) : tokens_(tokenize(q)) {}

    QuerySpec parse() {
        QuerySpec spec;
        while (peek().kind != Tok::End) {
            const Token t = expect(Tok::Ident, "clause keyword");
            const std::string kw = util::to_lower(t.text);
            if (kw == "select")
                parse_select(spec);
            else if (kw == "aggregate")
                parse_aggregate(spec);
            else if (kw == "group") {
                reject_duplicate(seen_group_, t);
                parse_group_by(spec);
            } else if (kw == "where")
                parse_where(spec);
            else if (kw == "order") {
                reject_duplicate(seen_order_, t);
                parse_order_by(spec);
            } else if (kw == "format") {
                reject_duplicate(seen_format_, t);
                parse_format(spec);
            } else if (kw == "limit") {
                reject_duplicate(seen_limit_, t);
                parse_limit(spec);
            } else if (kw == "window") {
                reject_duplicate(seen_window_, t);
                parse_window(spec);
            } else if (kw == "slide") {
                reject_duplicate(seen_slide_, t);
                slide_pos_ = t.pos;
                parse_slide(spec);
            }
            else if (kw == "let")
                parse_let(spec);
            else
                throw CalQLError("unknown clause '" + t.text + "'", t.pos);
        }
        if (seen_slide_ && !seen_window_)
            throw CalQLError("SLIDE without a WINDOW clause", slide_pos_);
        if (spec.window.slide_us > spec.window.duration_us)
            throw CalQLError("SLIDE is larger than the WINDOW duration",
                             slide_pos_);
        return spec;
    }

private:
    const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    Token next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
    Token expect(Tok kind, const char* what) {
        Token t = next();
        if (t.kind != kind)
            throw CalQLError(std::string("expected ") + what + ", got '" + t.text + "'",
                             t.pos);
        return t;
    }
    bool accept(Tok kind) {
        if (peek().kind == kind) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool accept_keyword(std::string_view kw) {
        if (peek().kind == Tok::Ident && util::iequals(peek().text, kw)) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool at_clause_boundary() const {
        if (peek().kind != Tok::Ident)
            return peek().kind == Tok::End;
        static const char* clauses[] = {"select", "aggregate", "group",
                                        "where",  "order",     "let",
                                        "format", "limit",     "window",
                                        "slide"};
        for (const char* c : clauses)
            if (util::iequals(peek().text, c))
                return true;
        return false;
    }

    /// op(attr) [AS alias] | count | bare-attribute (implies sum)
    AggOpConfig parse_agg_item() {
        const Token t = next();
        AggOpConfig cfg;
        if (t.kind != Tok::Ident)
            throw CalQLError("expected aggregation term, got '" + t.text + "'", t.pos);

        if (peek().kind == Tok::LParen) {
            auto op = agg_op_from_name(t.text);
            if (!op)
                throw CalQLError("unknown aggregation operator '" + t.text + "'", t.pos);
            cfg.op = *op;
            next(); // '('
            if (!agg_op_is_nullary(cfg.op)) {
                const Token arg = next();
                if (arg.kind != Tok::Ident && arg.kind != Tok::String &&
                    arg.kind != Tok::Number)
                    throw CalQLError("expected attribute name", arg.pos);
                cfg.attribute = normalize_attr(arg.text);
            }
            expect(Tok::RParen, "')'");
        } else if (auto op = agg_op_from_name(t.text); op && agg_op_is_nullary(*op)) {
            cfg.op = *op;
        } else {
            // bare attribute: default to sum (paper §VI-C "AGGREGATE count,
            // time.duration")
            cfg.op        = AggOp::Sum;
            cfg.attribute = normalize_attr(t.text);
        }

        if (accept_keyword("as")) {
            const Token alias = next();
            if (alias.kind != Tok::Ident && alias.kind != Tok::String)
                throw CalQLError("expected alias after AS", alias.pos);
            cfg.alias = alias.text;
        }
        return cfg;
    }

    void add_op(QuerySpec& spec, const AggOpConfig& cfg) {
        for (const AggOpConfig& existing : spec.aggregation.ops)
            if (existing.op == cfg.op && existing.attribute == cfg.attribute)
                return;
        spec.aggregation.ops.push_back(cfg);
    }

    void parse_aggregate(QuerySpec& spec) {
        do {
            add_op(spec, parse_agg_item());
        } while (accept(Tok::Comma));
    }

    void parse_select(QuerySpec& spec) {
        do {
            if (accept(Tok::Star)) {
                spec.select.clear(); // '*' = all columns
                continue;
            }
            const Token t = peek();
            if (t.kind == Tok::Ident && peek(1).kind == Tok::LParen) {
                // "sum(x) AS total": the alias becomes the output column
                // label, exactly as in the AGGREGATE clause
                AggOpConfig cfg = parse_agg_item();
                add_op(spec, cfg);
                spec.select.push_back(cfg.result_label());
            } else if (t.kind == Tok::Ident || t.kind == Tok::String) {
                next();
                std::string name = normalize_attr(t.text);
                if (accept_keyword("as")) {
                    const Token alias = next();
                    if (alias.kind != Tok::Ident && alias.kind != Tok::String)
                        throw CalQLError("expected alias after AS", alias.pos);
                    // conflicting aliases for one column would silently
                    // resolve last-one-wins; repeating the same alias is fine
                    auto it = spec.aliases.find(name);
                    if (it != spec.aliases.end() && it->second != alias.text)
                        throw CalQLError("conflicting alias '" + alias.text +
                                             "' for column '" + name +
                                             "' (already aliased as '" +
                                             it->second + "')",
                                         alias.pos);
                    spec.aliases[name] = alias.text;
                }
                spec.select.push_back(std::move(name));
            } else {
                throw CalQLError("expected column in SELECT", t.pos);
            }
        } while (accept(Tok::Comma));
    }

    void parse_group_by(QuerySpec& spec) {
        Token by = next();
        if (by.kind != Tok::Ident || !util::iequals(by.text, "by"))
            throw CalQLError("expected BY after GROUP", by.pos);
        if (accept(Tok::Star)) {
            spec.aggregation.key = KeySpec::everything();
            return;
        }
        do {
            const Token t = next();
            if (t.kind != Tok::Ident && t.kind != Tok::String)
                throw CalQLError("expected attribute in GROUP BY", t.pos);
            std::string name = normalize_attr(t.text);
            // a repeated key attribute adds nothing to the grouping but
            // would duplicate the column in every output row — drop it
            auto& attrs = spec.aggregation.key.attributes;
            if (std::find(attrs.begin(), attrs.end(), name) == attrs.end())
                attrs.push_back(std::move(name));
        } while (accept(Tok::Comma));
    }

    void parse_where(QuerySpec& spec) {
        do {
            FilterSpec f;
            const Token t = next();
            if (t.kind != Tok::Ident && t.kind != Tok::String)
                throw CalQLError("expected condition in WHERE", t.pos);

            if (util::iequals(t.text, "not") && peek().kind == Tok::LParen) {
                next(); // '('
                const Token attr = next();
                if (attr.kind != Tok::Ident && attr.kind != Tok::String)
                    throw CalQLError("expected attribute in not()", attr.pos);
                expect(Tok::RParen, "')'");
                f.attribute = normalize_attr(attr.text);
                f.op        = FilterSpec::Op::NotExist;
            } else {
                f.attribute = normalize_attr(t.text);
                if (peek().kind == Tok::Cmp) {
                    const std::string op = next().text;
                    const Token v        = next();
                    if (v.kind != Tok::Ident && v.kind != Tok::String &&
                        v.kind != Tok::Number)
                        throw CalQLError("expected comparison value", v.pos);
                    f.value = v.kind == Tok::String ? Variant(v.text)
                                                    : Variant::parse_guess(v.text);
                    if (op == "=" || op == "==")
                        f.op = FilterSpec::Op::Eq;
                    else if (op == "!=")
                        f.op = FilterSpec::Op::Ne;
                    else if (op == "<")
                        f.op = FilterSpec::Op::Lt;
                    else if (op == "<=")
                        f.op = FilterSpec::Op::Le;
                    else if (op == ">")
                        f.op = FilterSpec::Op::Gt;
                    else if (op == ">=")
                        f.op = FilterSpec::Op::Ge;
                    else
                        throw CalQLError("unknown comparison '" + op + "'", t.pos);
                } else {
                    f.op = FilterSpec::Op::Exist;
                }
            }
            spec.filters.push_back(std::move(f));
        } while (accept(Tok::Comma) || accept_keyword("and"));
    }

    void parse_order_by(QuerySpec& spec) {
        Token by = next();
        if (by.kind != Tok::Ident || !util::iequals(by.text, "by"))
            throw CalQLError("expected BY after ORDER", by.pos);
        do {
            const Token t = next();
            if (t.kind != Tok::Ident && t.kind != Tok::String)
                throw CalQLError("expected attribute in ORDER BY", t.pos);
            SortSpec s;
            s.attribute = normalize_attr(t.text);
            if (accept_keyword("desc"))
                s.descending = true;
            else
                accept_keyword("asc");
            spec.sort.push_back(std::move(s));
        } while (accept(Tok::Comma));
    }

    void parse_format(QuerySpec& spec) {
        const Token t = expect(Tok::Ident, "format name");
        const std::string fmt = util::to_lower(t.text);
        if (fmt != "table" && fmt != "csv" && fmt != "json" && fmt != "expand" &&
            fmt != "tree")
            throw CalQLError("unknown format '" + t.text + "'", t.pos);
        spec.format = fmt;
    }

    /// LET target = fn(attr[, attr|number]...), ...
    void parse_let(QuerySpec& spec) {
        do {
            LetSpec let;
            const Token name = next();
            if (name.kind != Tok::Ident && name.kind != Tok::String)
                throw CalQLError("expected derived-attribute name in LET", name.pos);
            let.target = normalize_attr(name.text);

            const Token eq = next();
            if (eq.kind != Tok::Cmp || eq.text != "=")
                throw CalQLError("expected '=' in LET", eq.pos);

            const Token fn = next();
            if (fn.kind != Tok::Ident)
                throw CalQLError("expected function in LET", fn.pos);
            const std::string fname = util::to_lower(fn.text);
            if (fname == "scale")
                let.fn = LetSpec::Fn::Scale;
            else if (fname == "truncate")
                let.fn = LetSpec::Fn::Truncate;
            else if (fname == "ratio")
                let.fn = LetSpec::Fn::Ratio;
            else if (fname == "first")
                let.fn = LetSpec::Fn::First;
            else
                throw CalQLError("unknown LET function '" + fn.text + "'", fn.pos);

            expect(Tok::LParen, "'('");
            bool saw_parameter = false;
            while (peek().kind != Tok::RParen) {
                const Token arg = next();
                if (arg.kind == Tok::Number) {
                    let.parameter = std::strtod(arg.text.c_str(), nullptr);
                    saw_parameter = true;
                } else if (arg.kind == Tok::Ident || arg.kind == Tok::String) {
                    let.args.push_back(normalize_attr(arg.text));
                } else {
                    throw CalQLError("expected argument in LET function", arg.pos);
                }
                if (!accept(Tok::Comma))
                    break;
            }
            expect(Tok::RParen, "')'");
            if (let.args.empty())
                throw CalQLError("LET function needs at least one attribute",
                                 fn.pos);
            if ((let.fn == LetSpec::Fn::Scale || let.fn == LetSpec::Fn::Truncate) &&
                !saw_parameter)
                throw CalQLError("LET " + fname + "() needs a numeric parameter",
                                 fn.pos);
            spec.lets.push_back(std::move(let));
        } while (accept(Tok::Comma));
    }

    /// "10s", "500ms", bare "1500" (µs) — validated with the same
    /// parse_size-family rules as the CLI duration flags.
    std::uint64_t parse_duration_value(const char* clause) {
        const Token t = next();
        if (t.kind != Tok::Number && t.kind != Tok::Ident)
            throw CalQLError(std::string("expected duration after ") + clause,
                             t.pos);
        std::uint64_t us = 0;
        if (!util::parse_duration(t.text, us))
            throw CalQLError(std::string(clause) + " duration '" + t.text +
                                 "' is not a valid duration (digits with "
                                 "optional us/ms/s/m/h suffix)",
                             t.pos);
        if (us == 0)
            throw CalQLError(std::string(clause) + " duration must be positive",
                             t.pos);
        return us;
    }

    /// WINDOW <duration> [BY <time-attribute>]
    void parse_window(QuerySpec& spec) {
        spec.window.duration_us = parse_duration_value("WINDOW");
        if (accept_keyword("by")) {
            const Token attr = next();
            if (attr.kind != Tok::Ident && attr.kind != Tok::String)
                throw CalQLError("expected time attribute after BY", attr.pos);
            spec.window.attribute = normalize_attr(attr.text);
        }
    }

    /// SLIDE <duration>
    void parse_slide(QuerySpec& spec) {
        spec.window.slide_us = parse_duration_value("SLIDE");
    }

    void parse_limit(QuerySpec& spec) {
        const Token t = expect(Tok::Number, "limit value");
        if (!t.text.empty() && t.text[0] == '-')
            throw CalQLError("negative LIMIT", t.pos);
        std::uint64_t v = 0;
        const char* begin = t.text.data();
        const char* end   = begin + t.text.size();
        if (*begin == '+')
            ++begin;
        auto [p, ec] = std::from_chars(begin, end, v);
        if (ec != std::errc() || p != end)
            throw CalQLError("LIMIT value '" + t.text + "' is not a valid count",
                             t.pos);
        spec.limit = static_cast<std::size_t>(v);
    }

    /// GROUP BY / ORDER BY / FORMAT / LIMIT set a single value, so a second
    /// occurrence is almost certainly a mistake — reject it rather than
    /// silently letting the later clause win. (SELECT / AGGREGATE / WHERE /
    /// LET accumulate, so repeats of those are legal.)
    void reject_duplicate(bool& seen, const Token& t) {
        if (seen)
            throw CalQLError("duplicate " + util::to_lower(t.text) + " clause",
                             t.pos);
        seen = true;
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    bool seen_group_  = false;
    bool seen_order_  = false;
    bool seen_format_ = false;
    bool seen_limit_  = false;
    bool seen_window_ = false;
    bool seen_slide_  = false;
    std::size_t slide_pos_ = 0; ///< for the end-of-parse SLIDE checks
};

std::string quote_if_needed(const std::string& s) {
    for (char c : s)
        if (!is_ident_char(c))
            return "\"" + s + "\"";
    return s.empty() ? "\"\"" : s;
}

} // namespace

QuerySpec parse_calql(std::string_view query) {
    return Parser(query).parse();
}

std::string to_calql(const QuerySpec& spec) {
    std::string out;
    auto append_clause = [&out](const std::string& text) {
        if (!out.empty())
            out += ' ';
        out += text;
    };

    if (!spec.select.empty()) {
        std::string s = "SELECT ";
        for (std::size_t i = 0; i < spec.select.size(); ++i) {
            if (i)
                s += ',';
            s += quote_if_needed(spec.select[i]);
            auto it = spec.aliases.find(spec.select[i]);
            if (it != spec.aliases.end())
                s += " AS " + quote_if_needed(it->second);
        }
        append_clause(s);
    }
    if (!spec.aggregation.ops.empty()) {
        std::string s = "AGGREGATE ";
        for (std::size_t i = 0; i < spec.aggregation.ops.size(); ++i) {
            const AggOpConfig& op = spec.aggregation.ops[i];
            if (i)
                s += ',';
            if (agg_op_is_nullary(op.op))
                s += agg_op_name(op.op);
            else
                s += std::string(agg_op_name(op.op)) + "(" + quote_if_needed(op.attribute) + ")";
            if (!op.alias.empty())
                s += " AS " + quote_if_needed(op.alias);
        }
        append_clause(s);
    }
    if (spec.aggregation.key.all) {
        append_clause("GROUP BY *");
    } else if (!spec.aggregation.key.attributes.empty()) {
        std::string s = "GROUP BY ";
        for (std::size_t i = 0; i < spec.aggregation.key.attributes.size(); ++i) {
            if (i)
                s += ',';
            s += quote_if_needed(spec.aggregation.key.attributes[i]);
        }
        append_clause(s);
    }
    if (!spec.lets.empty()) {
        std::string s = "LET ";
        for (std::size_t i = 0; i < spec.lets.size(); ++i) {
            const LetSpec& let = spec.lets[i];
            if (i)
                s += ',';
            s += quote_if_needed(let.target) + "=";
            static const char* fns[] = {"scale", "truncate", "ratio", "first"};
            s += fns[static_cast<int>(let.fn)];
            s += '(';
            for (std::size_t a = 0; a < let.args.size(); ++a) {
                if (a)
                    s += ',';
                s += quote_if_needed(let.args[a]);
            }
            if (let.fn == LetSpec::Fn::Scale || let.fn == LetSpec::Fn::Truncate) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), ",%g", let.parameter);
                s += buf;
            }
            s += ')';
        }
        append_clause(s);
    }
    if (!spec.filters.empty()) {
        std::string s = "WHERE ";
        for (std::size_t i = 0; i < spec.filters.size(); ++i) {
            const FilterSpec& f = spec.filters[i];
            if (i)
                s += ',';
            switch (f.op) {
            case FilterSpec::Op::Exist:
                s += quote_if_needed(f.attribute);
                break;
            case FilterSpec::Op::NotExist:
                s += "not(" + quote_if_needed(f.attribute) + ")";
                break;
            default: {
                static const char* ops[] = {"", "", "=", "!=", "<", "<=", ">", ">="};
                s += quote_if_needed(f.attribute) + ops[static_cast<int>(f.op)];
                s += f.value.is_string() ? "\"" + f.value.to_string() + "\""
                                         : f.value.to_string();
            }
            }
        }
        append_clause(s);
    }
    if (!spec.sort.empty()) {
        std::string s = "ORDER BY ";
        for (std::size_t i = 0; i < spec.sort.size(); ++i) {
            if (i)
                s += ',';
            s += quote_if_needed(spec.sort[i].attribute);
            if (spec.sort[i].descending)
                s += " DESC";
        }
        append_clause(s);
    }
    if (spec.window.enabled()) {
        std::string s = "WINDOW " + util::format_duration(spec.window.duration_us);
        if (!spec.window.attribute.empty())
            s += " BY " + quote_if_needed(spec.window.attribute);
        if (spec.window.slide_us > 0)
            s += " SLIDE " + util::format_duration(spec.window.slide_us);
        append_clause(s);
    }
    if (spec.format != "table")
        append_clause("FORMAT " + spec.format);
    if (spec.limit > 0)
        append_clause("LIMIT " + std::to_string(spec.limit));
    return out;
}

} // namespace calib
