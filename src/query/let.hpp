// Evaluation of LET terms (derived attributes).
#pragma once

#include "queryspec.hpp"

#include "../common/recordmap.hpp"

#include <vector>

namespace calib {

/// Compute the value of one LET term for \a record; Empty when the
/// sources are missing or non-numeric (for numeric functions).
Variant evaluate_let(const LetSpec& let, const RecordMap& record);

/// Append every LET term's value (when computable) to \a record.
/// Terms are evaluated in order, so later terms may use earlier targets.
void apply_lets(const std::vector<LetSpec>& lets, RecordMap& record);

} // namespace calib
