// Evaluation of LET terms (derived attributes).
#pragma once

#include "queryspec.hpp"

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordbatch.hpp"
#include "../common/recordmap.hpp"

#include <vector>

namespace calib {

/// Compute the value of one LET term for \a record; Empty when the
/// sources are missing or non-numeric (for numeric functions).
Variant evaluate_let(const LetSpec& let, const RecordMap& record);

/// Append every LET term's value (when computable) to \a record.
/// Terms are evaluated in order, so later terms may use earlier targets.
void apply_lets(const std::vector<LetSpec>& lets, RecordMap& record);

/// Id-compiled LET terms for the id-based offline pipeline: target and
/// argument names resolve against one registry (targets are created on
/// first use; arguments re-resolve lazily so late-created attributes still
/// bind), and per-record evaluation is id compares only.
class CompiledLets {
public:
    CompiledLets(std::vector<LetSpec> lets, AttributeRegistry* registry);

    /// Apply every term (in order, so later terms see earlier targets)
    /// to \a record; semantics match apply_lets() exactly.
    void apply(IdRecord& record);

    /// Columnar stage: apply every term to every row of \a batch. Targets
    /// become append-target columns (conforming rows) or in-record writes
    /// (overflow rows); per-row results are identical to apply(record).
    void apply(RecordBatch& batch);

    bool empty() const noexcept { return lets_.empty(); }

private:
    void resolve();
    Variant evaluate(std::size_t term, const IdRecord& record) const;
    Variant evaluate_cols(std::size_t term, const RecordBatch& batch,
                          const std::int32_t* argcols, std::size_t row) const;

    std::vector<LetSpec> lets_;
    AttributeRegistry* registry_;
    std::vector<id_t> target_ids_;
    std::vector<std::vector<id_t>> arg_ids_;
    std::size_t resolved_generation_ = static_cast<std::size_t>(-1);
    bool fully_resolved_             = false;
};

} // namespace calib
