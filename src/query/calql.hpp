// CalQL: the aggregation description language (paper §III-B).
//
// A query is a sequence of clauses, in any order:
//
//   SELECT    col, op(attr) [AS alias], ...   projection (ops imply AGGREGATE)
//   AGGREGATE op(attr) [AS alias], ...        aggregation operators
//   GROUP BY  attr, ... | *                   aggregation key ('*' = everything)
//   WHERE     cond, ...                       conjunctive filters; conditions are
//                                             attr | not(attr) | attr <op> value
//   ORDER BY  attr [ASC|DESC], ...
//   WINDOW    duration [BY time-attr]         sliding window over a time
//   SLIDE     duration                        attribute (default time.offset);
//                                             durations like 10s, 500ms, 1500
//                                             (bare = µs); SLIDE <= WINDOW
//   FORMAT    table | csv | json | expand | tree
//   LIMIT     n
//
// Keywords are case-insensitive. Attribute labels may contain '.', '#',
// '/', ':' (e.g. "iteration#mainloop", "sum#time.duration"). Values may be
// quoted with single or double quotes.
#pragma once

#include "queryspec.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

namespace calib {

/// Error with position information thrown on malformed queries.
class CalQLError : public std::runtime_error {
public:
    CalQLError(const std::string& what, std::size_t position)
        : std::runtime_error(what), position_(position) {}

    /// Byte offset into the query string where the error was detected.
    std::size_t position() const noexcept { return position_; }

private:
    std::size_t position_;
};

/// Parse a CalQL query string. Throws CalQLError on malformed input.
QuerySpec parse_calql(std::string_view query);

/// Render a QuerySpec back into canonical CalQL text (round-trippable).
std::string to_calql(const QuerySpec& spec);

} // namespace calib
