#include "formatter.hpp"

#include "../common/util.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace calib {

namespace {

std::string display_name(const std::string& column, const QuerySpec& spec) {
    auto it = spec.aliases.find(column);
    return it != spec.aliases.end() ? it->second : column;
}

std::string cell_text(const Variant& v) {
    return v.to_string();
}

/// Table cells render doubles with 6 significant digits for readability;
/// csv/json/expand keep the full-precision to_string() form.
std::string table_cell_text(const Variant& v) {
    if (v.type() == Variant::Type::Double) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v.as_double());
        return buf;
    }
    return v.to_string();
}

bool column_is_numeric(const std::string& column,
                       const std::vector<RecordMap>& records) {
    bool seen = false;
    for (const RecordMap& r : records) {
        if (!r.contains(column))
            continue;
        const Variant v = r.get(column);
        if (!v.is_numeric())
            return false;
        seen = true;
    }
    return seen;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string csv_escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::vector<std::string> output_columns(const std::vector<RecordMap>& records,
                                        const QuerySpec& spec) {
    if (!spec.select.empty())
        return spec.select;

    std::vector<std::string> columns;
    std::set<std::string> seen;
    auto add = [&](const std::string& name) {
        if (seen.insert(name).second)
            columns.push_back(name);
    };

    // preferred order: grouping key, then aggregation results
    for (const std::string& attr : spec.aggregation.key.attributes)
        add(attr);
    for (const AggOpConfig& op : spec.aggregation.ops)
        add(op.result_label());

    // anything else in first-appearance order
    std::vector<std::string> extras;
    std::set<std::string> extra_seen;
    for (const RecordMap& r : records)
        for (const auto& [name, value] : r) {
            std::string n(name);
            if (!seen.count(n) && extra_seen.insert(n).second)
                extras.push_back(std::move(n));
        }
    // keep key columns stable for implicit (*) grouping: sort extras only
    // when aggregating by everything, so output is deterministic
    if (spec.aggregation.key.all)
        std::sort(extras.begin(), extras.end());
    for (std::string& e : extras)
        add(e);

    // drop columns that never appear in the data (unless explicitly selected)
    std::erase_if(columns, [&](const std::string& c) {
        for (const RecordMap& r : records)
            if (r.contains(c))
                return false;
        return true;
    });
    return columns;
}

void format_table(std::ostream& os, const std::vector<RecordMap>& records,
                  const QuerySpec& spec) {
    const std::vector<std::string> columns = output_columns(records, spec);
    if (columns.empty())
        return;

    std::vector<std::size_t> width(columns.size());
    std::vector<bool> numeric(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        width[c]   = display_name(columns[c], spec).size();
        numeric[c] = column_is_numeric(columns[c], records);
        for (const RecordMap& r : records)
            width[c] = std::max(width[c], table_cell_text(r.get(columns[c])).size());
    }

    auto put_cell = [&](std::size_t c, const std::string& text, bool last) {
        if (numeric[c]) {
            os << std::string(width[c] - text.size(), ' ') << text;
        } else {
            os << text;
            if (!last)
                os << std::string(width[c] - text.size(), ' ');
        }
        if (!last)
            os << "  ";
    };

    for (std::size_t c = 0; c < columns.size(); ++c)
        put_cell(c, display_name(columns[c], spec), c + 1 == columns.size());
    os << '\n';

    for (const RecordMap& r : records) {
        for (std::size_t c = 0; c < columns.size(); ++c)
            put_cell(c, table_cell_text(r.get(columns[c])), c + 1 == columns.size());
        os << '\n';
    }
}

void format_csv(std::ostream& os, const std::vector<RecordMap>& records,
                const QuerySpec& spec) {
    const std::vector<std::string> columns = output_columns(records, spec);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            os << ',';
        os << csv_escape(display_name(columns[c], spec));
    }
    os << '\n';
    for (const RecordMap& r : records) {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                os << ',';
            os << csv_escape(cell_text(r.get(columns[c])));
        }
        os << '\n';
    }
}

void format_json(std::ostream& os, const std::vector<RecordMap>& records,
                 const QuerySpec& spec) {
    const std::vector<std::string> columns = output_columns(records, spec);
    os << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        os << "  {";
        bool first = true;
        for (const std::string& c : columns) {
            if (!records[i].contains(c))
                continue;
            const Variant v = records[i].get(c);
            if (!first)
                os << ", ";
            first = false;
            os << '"' << json_escape(display_name(c, spec)) << "\": ";
            if (v.type() == Variant::Type::Double &&
                !std::isfinite(v.as_double()))
                os << "null"; // JSON has no nan/inf literal
            else if (v.is_numeric())
                os << v.to_repr();
            else if (v.is_bool())
                os << (v.as_bool() ? "true" : "false");
            else
                os << '"' << json_escape(v.to_string()) << '"';
        }
        os << '}' << (i + 1 < records.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void format_expand(std::ostream& os, const std::vector<RecordMap>& records,
                   const QuerySpec& spec) {
    const std::vector<std::string> columns = output_columns(records, spec);
    for (const RecordMap& r : records) {
        bool first = true;
        for (const std::string& c : columns) {
            if (!r.contains(c))
                continue;
            if (!first)
                os << ',';
            first = false;
            os << display_name(c, spec) << '='
               << util::escape(r.get(c).to_string(), ",=");
        }
        os << '\n';
    }
}

void format_tree(std::ostream& os, const std::vector<RecordMap>& records,
                 const QuerySpec& spec) {
    const std::vector<std::string> columns = output_columns(records, spec);
    if (columns.empty())
        return;
    const std::string& path_column = columns.front();

    // Collect rows sorted by path so prefixes precede their children.
    std::vector<const RecordMap*> rows;
    rows.reserve(records.size());
    for (const RecordMap& r : records)
        rows.push_back(&r);
    std::sort(rows.begin(), rows.end(), [&](const RecordMap* a, const RecordMap* b) {
        return a->get(path_column).to_string() < b->get(path_column).to_string();
    });

    // metric column widths
    std::vector<std::size_t> width(columns.size());
    std::size_t path_width = display_name(path_column, spec).size();
    for (const RecordMap* r : rows) {
        const std::string path = r->get(path_column).to_string();
        auto parts             = util::split(path, '/');
        path_width             = std::max(path_width,
                                          2 * (parts.size() - 1) + parts.back().size());
    }
    for (std::size_t c = 1; c < columns.size(); ++c) {
        width[c] = display_name(columns[c], spec).size();
        for (const RecordMap* r : rows)
            width[c] = std::max(width[c], table_cell_text(r->get(columns[c])).size());
    }

    os << display_name(path_column, spec)
       << std::string(path_width - display_name(path_column, spec).size(), ' ');
    for (std::size_t c = 1; c < columns.size(); ++c) {
        const std::string title = display_name(columns[c], spec);
        os << "  " << std::string(width[c] - title.size(), ' ') << title;
    }
    os << '\n';

    for (const RecordMap* r : rows) {
        const std::string path = r->get(path_column).to_string();
        auto parts             = util::split(path, '/');
        const std::size_t ind  = 2 * (parts.size() - 1);
        std::string label      = std::string(ind, ' ') + std::string(parts.back());
        os << label << std::string(path_width - label.size(), ' ');
        for (std::size_t c = 1; c < columns.size(); ++c) {
            const std::string text = table_cell_text(r->get(columns[c]));
            os << "  " << std::string(width[c] - text.size(), ' ') << text;
        }
        os << '\n';
    }
}

void format_records(std::ostream& os, const std::vector<RecordMap>& records,
                    const QuerySpec& spec) {
    if (spec.format == "csv")
        format_csv(os, records, spec);
    else if (spec.format == "json")
        format_json(os, records, spec);
    else if (spec.format == "expand")
        format_expand(os, records, spec);
    else if (spec.format == "tree")
        format_tree(os, records, spec);
    else
        format_table(os, records, spec);
}

} // namespace calib
