// QuerySpec: the parsed form of an aggregation/query description
// (paper §III-B). Produced by the CalQL parser, consumed by the query
// processor, the online aggregation service, and the report formatters.
#pragma once

#include "../aggregate/ops.hpp"
#include "../aggregate/window.hpp"
#include "../common/variant.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace calib {

/// One WHERE condition.
struct FilterSpec {
    enum class Op {
        Exist,    ///< attribute present:            WHERE attr
        NotExist, ///< attribute absent:             WHERE not(attr)
        Eq,       ///< attr = value
        Ne,       ///< attr != value
        Lt,       ///< attr < value
        Le,       ///< attr <= value
        Gt,       ///< attr > value
        Ge        ///< attr >= value
    };

    std::string attribute;
    Op op = Op::Exist;
    Variant value;

    bool operator==(const FilterSpec& rhs) const {
        return attribute == rhs.attribute && op == rhs.op && value == rhs.value;
    }
};

/// One LET term: a derived attribute computed per record before
/// filtering and aggregation (the expressiveness Cube's derived-metric
/// language offers offline, available in both query stages here).
struct LetSpec {
    enum class Fn {
        Scale,    ///< scale(attr, factor)     — numeric multiply
        Truncate, ///< truncate(attr, width)   — floor to a bucket boundary
        Ratio,    ///< ratio(a, b)             — a / b where both present
        First,    ///< first(a, b, ...)        — first present attribute
    };

    std::string target; ///< name of the derived attribute
    Fn fn = Fn::Scale;
    std::vector<std::string> args; ///< source attribute labels
    double parameter = 1.0;        ///< factor/width for scale/truncate

    bool operator==(const LetSpec& rhs) const {
        return target == rhs.target && fn == rhs.fn && args == rhs.args &&
               parameter == rhs.parameter;
    }
};

/// One ORDER BY term.
struct SortSpec {
    std::string attribute;
    bool descending = false;

    bool operator==(const SortSpec& rhs) const {
        return attribute == rhs.attribute && descending == rhs.descending;
    }
};

/// A complete query: filters -> aggregation -> projection -> sort -> format.
struct QuerySpec {
    AggregationConfig aggregation;

    /// Output columns in order; empty = all columns.
    std::vector<std::string> select;

    /// Derived attributes, computed per record before WHERE and AGGREGATE.
    std::vector<LetSpec> lets;

    /// Conjunction of conditions (all must hold).
    std::vector<FilterSpec> filters;

    std::vector<SortSpec> sort;

    /// "table", "csv", "json", "expand", or "tree".
    std::string format = "table";

    /// Maximum number of output records; 0 = unlimited.
    std::size_t limit = 0;

    /// Sliding window ("WINDOW 10s SLIDE 1s BY time.offset"); disabled by
    /// default. Restricts the result to records whose time attribute falls
    /// in the trailing window ending at the maximum timestamp seen.
    WindowSpec window;

    /// Display-name overrides (attribute -> column title).
    std::unordered_map<std::string, std::string> aliases;

    bool has_aggregation() const {
        return !aggregation.ops.empty() || !aggregation.key.attributes.empty() ||
               aggregation.key.all;
    }
};

} // namespace calib
