#include "processor.hpp"

#include "../obs/metrics.hpp"

#include <algorithm>
#include <cstring>

namespace calib {

namespace {
// Pipeline-stage timers for the id-based hot path; the report merges
// "phase.*" timers into the per-phase table (see obs/report.cpp).
obs::Timer let_time("phase.let");
obs::Timer filter_time("phase.filter");
obs::Timer aggregate_time("phase.aggregate");
// Columnar-path instruments: rows entering add_batch() and rows surviving
// the WHERE selection vector (their ratio is the batch selectivity).
obs::Counter batch_rows("batch.rows");
obs::Counter batch_selectivity("batch.selectivity");
} // namespace

QueryProcessor::QueryProcessor(QuerySpec spec)
    : spec_(std::move(spec)), owned_registry_(std::make_unique<AttributeRegistry>()),
      registry_(owned_registry_.get()), id_filter_(spec_.filters, registry_),
      id_lets_(spec_.lets, registry_) {
    if (spec_.has_aggregation()) {
        AggregationConfig cfg = spec_.aggregation;
        // GROUP BY without AGGREGATE: default to count (record frequency),
        // so a bare "GROUP BY function" query is meaningful.
        if (cfg.ops.empty())
            cfg.ops.push_back(AggOpConfig{AggOp::Count, "", ""});
        if (spec_.window.enabled())
            wdb_.emplace(std::move(cfg), spec_.window, registry_);
        else
            db_.emplace(std::move(cfg), registry_);
    }
}

QueryProcessor::QueryProcessor(QuerySpec spec, AttributeRegistry* registry)
    : spec_(std::move(spec)), registry_(registry), id_filter_(spec_.filters, registry_),
      id_lets_(spec_.lets, registry_) {
    if (spec_.has_aggregation()) {
        AggregationConfig cfg = spec_.aggregation;
        if (cfg.ops.empty())
            cfg.ops.push_back(AggOpConfig{AggOp::Count, "", ""});
        if (spec_.window.enabled())
            wdb_.emplace(std::move(cfg), spec_.window, registry_);
        else
            db_.emplace(std::move(cfg), registry_);
    }
}

Variant QueryProcessor::passthrough_timestamp(const IdRecord& record) {
    if (pass_time_id_ == invalid_id && pass_time_gen_ != registry_->generation()) {
        pass_time_gen_ = registry_->generation();
        pass_time_id_  = registry_->find(spec_.window.time_attribute()).id();
    }
    return pass_time_id_ != invalid_id ? record.get(pass_time_id_) : Variant();
}

void QueryProcessor::add_passthrough(RecordMap&& row, const Variant& timestamp) {
    if (!spec_.window.enabled()) {
        passthrough_.push_back(std::move(row));
        return;
    }
    const std::optional<std::int64_t> p =
        pane_index(timestamp, spec_.window.slide());
    if (!p) {
        ++pass_dropped_;
        return;
    }
    passthrough_.push_back(std::move(row));
    passthrough_panes_.push_back(*p);
    if (!pass_watermark_ || *p > *pass_watermark_)
        pass_watermark_ = *p;
}

void QueryProcessor::add(IdRecord&& record) {
    ++in_;
    // derived attributes are computed before filtering and aggregation
    if (!id_lets_.empty()) {
        obs::Timer::Scope t(let_time);
        id_lets_.apply(record);
    }
    {
        obs::Timer::Scope t(filter_time);
        if (!id_filter_.matches(record))
            return;
    }
    ++kept_;
    if (db_) {
        obs::Timer::Scope t(aggregate_time);
        db_->process(record);
    } else if (wdb_) {
        obs::Timer::Scope t(aggregate_time);
        wdb_->process(record);
    } else {
        // passthrough rows surface verbatim in the output, so they go back
        // to names here; aggregated rows stay id-based until flush()
        const Variant ts =
            spec_.window.enabled() ? passthrough_timestamp(record) : Variant();
        add_passthrough(to_recordmap(record, *registry_), ts);
    }
}

void QueryProcessor::add_batch(RecordBatch& batch) {
    const std::size_t n = batch.rows();
    if (n == 0)
        return;
    in_ += n;
    batch_rows.add(n);
    if (!id_lets_.empty()) {
        obs::Timer::Scope t(let_time);
        id_lets_.apply(batch);
    }
    {
        obs::Timer::Scope t(filter_time);
        id_filter_.matches(batch, sel_);
    }
    kept_ += sel_.size();
    batch_selectivity.add(sel_.size());
    if (sel_.empty())
        return;
    if (db_) {
        obs::Timer::Scope t(aggregate_time);
        db_->process_batch(batch, sel_);
    } else if (wdb_) {
        // windowed: route row by row — pane assignment is per record, and
        // the record-at-a-time path keeps batched and unbatched runs
        // trivially byte-identical
        obs::Timer::Scope t(aggregate_time);
        for (const std::uint32_t r : sel_) {
            batch.materialize(r, rec_scratch_);
            wdb_->process(rec_scratch_);
        }
    } else {
        for (const std::uint32_t r : sel_) {
            batch.materialize(r, rec_scratch_);
            const Variant ts = spec_.window.enabled()
                                   ? passthrough_timestamp(rec_scratch_)
                                   : Variant();
            add_passthrough(to_recordmap(rec_scratch_, *registry_), ts);
        }
    }
}

void QueryProcessor::set_aggregation_memory_budget(std::size_t bytes) {
    if (db_)
        db_->set_memory_budget(bytes);
    if (wdb_)
        wdb_->set_memory_budget(bytes);
}

void QueryProcessor::add(const RecordMap& record) {
    ++in_;
    if (spec_.lets.empty()) {
        if (!filters_match(spec_.filters, record))
            return;
        ++kept_;
        if (db_)
            db_->process_offline(record);
        else if (wdb_)
            wdb_->process_offline(record);
        else
            add_passthrough(RecordMap(record),
                            spec_.window.enabled()
                                ? record.get(spec_.window.time_attribute())
                                : Variant());
        return;
    }
    // derived attributes are computed before filtering and aggregation
    RecordMap derived = record;
    apply_lets(spec_.lets, derived);
    if (!filters_match(spec_.filters, derived))
        return;
    ++kept_;
    if (db_)
        db_->process_offline(derived);
    else if (wdb_)
        wdb_->process_offline(derived);
    else {
        const Variant ts = spec_.window.enabled()
                               ? derived.get(spec_.window.time_attribute())
                               : Variant();
        add_passthrough(std::move(derived), ts);
    }
}

void QueryProcessor::add(const std::vector<RecordMap>& records) {
    for (const RecordMap& r : records)
        add(r);
}

void QueryProcessor::merge(QueryProcessor& other) {
    in_ += other.in_;
    kept_ += other.kept_;
    if (db_ && other.db_) {
        // registries differ; go through the name-based serialized form
        db_->merge_serialized(other.db_->serialize());
    } else if (wdb_ && other.wdb_) {
        wdb_->merge_serialized(other.wdb_->serialize());
    } else {
        passthrough_.insert(passthrough_.end(), other.passthrough_.begin(),
                            other.passthrough_.end());
        passthrough_panes_.insert(passthrough_panes_.end(),
                                  other.passthrough_panes_.begin(),
                                  other.passthrough_panes_.end());
        pass_dropped_ += other.pass_dropped_;
        if (other.pass_watermark_ &&
            (!pass_watermark_ || *other.pass_watermark_ > *pass_watermark_))
            pass_watermark_ = other.pass_watermark_;
    }
}

void QueryProcessor::merge(QueryProcessor&& other) {
    in_ += other.in_;
    kept_ += other.kept_;
    other.in_ = other.kept_ = 0;
    if (db_ && other.db_) {
        if (registry_ == other.registry_)
            db_->merge(std::move(*other.db_));
        else
            db_->merge_serialized(other.db_->serialize());
    } else if (wdb_ && other.wdb_) {
        if (registry_ == other.registry_)
            wdb_->merge(std::move(*other.wdb_));
        else
            wdb_->merge_serialized(other.wdb_->serialize());
    } else {
        passthrough_.insert(passthrough_.end(),
                            std::make_move_iterator(other.passthrough_.begin()),
                            std::make_move_iterator(other.passthrough_.end()));
        other.passthrough_.clear();
        passthrough_panes_.insert(passthrough_panes_.end(),
                                  other.passthrough_panes_.begin(),
                                  other.passthrough_panes_.end());
        other.passthrough_panes_.clear();
        pass_dropped_ += other.pass_dropped_;
        other.pass_dropped_ = 0;
        if (other.pass_watermark_ &&
            (!pass_watermark_ || *other.pass_watermark_ > *pass_watermark_))
            pass_watermark_ = other.pass_watermark_;
    }
}

std::size_t QueryProcessor::aggregation_entries() const noexcept {
    return db_ ? db_->size() : wdb_ ? wdb_->entries() : 0;
}

std::vector<std::byte> QueryProcessor::take_partial() {
    if (db_ && !db_->empty()) {
        // the record count travels inside the buffer (db.processed_);
        // in_/kept_ stay here so they are counted exactly once
        std::vector<std::byte> buf = db_->serialize();
        db_->clear();
        return buf;
    }
    if (wdb_ && !wdb_->empty()) {
        std::vector<std::byte> buf = wdb_->serialize();
        wdb_->clear(); // keeps the watermark: late records must stay late
        return buf;
    }
    return {};
}

std::vector<std::byte> QueryProcessor::serialize_partial() const {
    if (db_)
        return db_->serialize();
    if (wdb_)
        return wdb_->serialize();
    // no aggregation: serialize raw records. In windowed passthrough mode
    // the magic changes and every record carries its pane index.
    const bool windowed = spec_.window.enabled();
    std::vector<std::byte> buf;
    ByteWriter w(buf);
    w.put(static_cast<std::uint32_t>(windowed ? 0x0CA11B10u : 0x0CA11B0Fu));
    w.put(static_cast<std::uint64_t>(in_));
    if (windowed) {
        w.put(static_cast<std::uint8_t>(pass_watermark_.has_value() ? 1 : 0));
        w.put(static_cast<std::int64_t>(pass_watermark_.value_or(0)));
        w.put(pass_dropped_);
    }
    w.put(static_cast<std::uint32_t>(passthrough_.size()));
    for (std::size_t i = 0; i < passthrough_.size(); ++i) {
        const RecordMap& r = passthrough_[i];
        if (windowed)
            w.put(passthrough_panes_[i]);
        w.put(static_cast<std::uint32_t>(r.size()));
        for (const auto& [name, value] : r) {
            w.put_string(name);
            w.put_variant(value);
        }
    }
    return buf;
}

void QueryProcessor::merge_serialized(std::span<const std::byte> data) {
    if (db_) {
        db_->merge_serialized(data);
        return;
    }
    if (wdb_) {
        wdb_->merge_serialized(data);
        return;
    }
    ByteReader r(data);
    const auto magic    = r.get<std::uint32_t>();
    const bool windowed = magic == 0x0CA11B10u;
    if (!windowed && magic != 0x0CA11B0Fu)
        throw std::runtime_error("QueryProcessor: bad record-buffer magic");
    in_ += r.get<std::uint64_t>();
    if (windowed) {
        const bool has_wm     = r.get<std::uint8_t>() != 0;
        const std::int64_t wm = r.get<std::int64_t>();
        if (has_wm && (!pass_watermark_ || wm > *pass_watermark_))
            pass_watermark_ = wm;
        pass_dropped_ += r.get<std::uint64_t>();
    }
    const auto n = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
        if (windowed)
            passthrough_panes_.push_back(r.get<std::int64_t>());
        RecordMap rec;
        const auto fields = r.get<std::uint32_t>();
        for (std::uint32_t f = 0; f < fields; ++f) {
            const std::string_view name = r.get_string();
            rec.append(name, r.get_variant());
        }
        passthrough_.push_back(std::move(rec));
        ++kept_;
    }
}

void QueryProcessor::sort_records(std::vector<RecordMap>& records) const {
    if (spec_.sort.empty())
        return;
    std::stable_sort(records.begin(), records.end(),
                     [this](const RecordMap& a, const RecordMap& b) {
                         for (const SortSpec& s : spec_.sort) {
                             const Variant va = a.get(s.attribute);
                             const Variant vb = b.get(s.attribute);
                             const int c      = va.compare(vb);
                             if (c != 0)
                                 return s.descending ? c > 0 : c < 0;
                         }
                         return false;
                     });
}

// Aggregated rows come out of the hash table in insertion order, which
// depends on how the input was partitioned. Re-sorting them by their
// name-sorted (name, value) field sequences yields an order determined only
// by the row *contents* — so serial and parallel runs (any thread count)
// emit identical bytes. User ORDER BY is applied afterwards with a stable
// sort, preserving this canonical order among ties.
void QueryProcessor::canonicalize_rows(std::vector<RecordMap>& records) const {
    if (records.size() < 2)
        return;
    using FieldPtr = const RecordMap::value_type*;
    std::vector<std::pair<std::vector<FieldPtr>, std::size_t>> keys;
    keys.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        std::vector<FieldPtr> fields;
        fields.reserve(records[i].size());
        for (const auto& field : records[i])
            fields.push_back(&field);
        // field order inside a record can differ across registries
        // (attribute-id order); names are unique within a row
        std::sort(fields.begin(), fields.end(), [](FieldPtr a, FieldPtr b) {
            return std::strcmp(a->first, b->first) < 0;
        });
        keys.emplace_back(std::move(fields), i);
    }
    std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
        const std::size_t n = std::min(a.first.size(), b.first.size());
        for (std::size_t i = 0; i < n; ++i) {
            const int c = std::strcmp(a.first[i]->first, b.first[i]->first);
            if (c != 0)
                return c < 0;
            if (a.first[i]->second < b.first[i]->second)
                return true;
            if (b.first[i]->second < a.first[i]->second)
                return false;
        }
        return a.first.size() < b.first.size();
    });
    std::vector<RecordMap> out;
    out.reserve(records.size());
    for (auto& [fields, index] : keys)
        out.push_back(std::move(records[index]));
    records = std::move(out);
}

const std::vector<RecordMap>& QueryProcessor::result() {
    if (result_)
        return *result_;
    std::vector<RecordMap> out;
    if (db_) {
        out = db_->flush();
        canonicalize_rows(out);
    } else if (wdb_) {
        out = wdb_->flush(); // fold of the live panes
        canonicalize_rows(out);
    } else if (spec_.window.enabled()) {
        // windowed passthrough: keep rows whose pane lies in the trailing
        // window ending at the watermark, preserving input order
        if (pass_watermark_) {
            const std::int64_t lo =
                *pass_watermark_ -
                static_cast<std::int64_t>(spec_.window.pane_count()) + 1;
            for (std::size_t i = 0; i < passthrough_.size(); ++i)
                if (passthrough_panes_[i] >= lo)
                    out.push_back(std::move(passthrough_[i]));
        }
        passthrough_.clear();
        passthrough_panes_.clear();
    } else {
        out = std::move(passthrough_);
    }
    sort_records(out);
    if (spec_.limit > 0 && out.size() > spec_.limit)
        out.resize(spec_.limit);
    result_ = std::move(out);
    return *result_;
}

void QueryProcessor::write(std::ostream& os) {
    format_records(os, result(), spec_);
}

std::vector<std::string> unknown_query_attributes(const QuerySpec& spec,
                                                  const AttributeRegistry& registry) {
    // names the query itself introduces; referencing them is always fine
    std::vector<std::string> produced;
    for (const LetSpec& let : spec.lets)
        produced.push_back(let.target);
    for (const AggOpConfig& op : spec.aggregation.ops) {
        produced.push_back(op.result_label());
        if (!op.alias.empty())
            produced.push_back(op.alias);
    }

    auto is_produced = [&produced](const std::string& name) {
        return std::find(produced.begin(), produced.end(), name) != produced.end();
    };
    auto known = [&](const std::string& name) {
        return is_produced(name) || registry.find(name).valid();
    };

    std::vector<std::string> warnings;
    auto warn = [&warnings](const std::string& clause, const std::string& name,
                            const char* effect) {
        warnings.push_back(clause + " references attribute '" + name +
                           "' which never appears in the input; " + effect);
    };

    for (const FilterSpec& f : spec.filters)
        if (f.op != FilterSpec::Op::NotExist && !known(f.attribute))
            warn("WHERE", f.attribute, "no record can match this condition");
    if (!spec.aggregation.key.all)
        for (const std::string& k : spec.aggregation.key.attributes)
            if (!known(k))
                warn("GROUP BY", k, "all records collapse into one group");
    for (const AggOpConfig& op : spec.aggregation.ops) {
        if (agg_op_is_nullary(op.op))
            continue;
        // re-aggregating an aggregated profile reads the "op#attr" column
        const std::string fallback =
            AggOpConfig{op.op, op.attribute, ""}.result_label();
        if (!known(op.attribute) && !registry.find(fallback).valid())
            warn("AGGREGATE", op.attribute, "the result will be empty");
    }
    for (const SortSpec& s : spec.sort)
        if (!known(s.attribute))
            warn("ORDER BY", s.attribute, "it has no effect on the order");
    return warnings;
}

std::vector<RecordMap> run_query(std::string_view query,
                                 const std::vector<RecordMap>& records) {
    QueryProcessor proc(parse_calql(query));
    proc.add(records);
    return proc.result();
}

void run_query(std::string_view query, const std::vector<RecordMap>& records,
               std::ostream& os) {
    QueryProcessor proc(parse_calql(query));
    proc.add(records);
    proc.write(os);
}

} // namespace calib
