// Record filtering (WHERE clause evaluation) for offline records and,
// with resolved attribute ids, for online snapshot records.
#pragma once

#include "queryspec.hpp"

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordbatch.hpp"
#include "../common/recordmap.hpp"
#include "../common/snapshot.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace calib {

/// Evaluate a single condition against an offline record.
bool filter_matches(const FilterSpec& filter, const RecordMap& record);

/// Evaluate a conjunction of conditions.
bool filters_match(const std::vector<FilterSpec>& filters, const RecordMap& record);

/// Filter with id-resolved conditions: conditions compile to attribute ids
/// against one registry (lazily, so late-created attributes still bind),
/// and evaluation is id compares — no string scans. Serves both the online
/// snapshot path and the id-based offline pipeline.
class SnapshotFilter {
public:
    SnapshotFilter(std::vector<FilterSpec> filters, AttributeRegistry* registry);

    /// True when all conditions hold for \a record.
    bool matches(std::span<const Entry> record);
    bool matches(const SnapshotRecord& record) {
        return matches(std::span<const Entry>(record.begin(), record.size()));
    }
    bool matches(const IdRecord& record) { return matches(record.span()); }

    /// Columnar stage: fill \a selection with the (ascending) indices of
    /// the rows of \a batch that pass every condition. Each condition is a
    /// tight in-place compaction loop over one column; per-row outcomes
    /// and the filter.checked/passed counter totals are identical to
    /// calling matches() per record.
    void matches(const RecordBatch& batch, std::vector<std::uint32_t>& selection);

    bool empty() const noexcept { return filters_.empty(); }

private:
    void resolve();

    std::vector<FilterSpec> filters_;
    AttributeRegistry* registry_;
    std::vector<id_t> ids_;
    std::size_t resolved_generation_ = static_cast<std::size_t>(-1);
    bool fully_resolved_             = false;
};

} // namespace calib
