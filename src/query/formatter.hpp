// Report formatters: render query results (offline records) as aligned
// tables, CSV, JSON, attribute=value lines, or an indented tree.
#pragma once

#include "queryspec.hpp"

#include "../common/recordmap.hpp"

#include <ostream>
#include <string>
#include <vector>

namespace calib {

/// Determine the output column order for a record set:
/// SELECT list if present; otherwise GROUP BY attributes, then aggregation
/// result labels, then remaining attributes in first-appearance order.
std::vector<std::string> output_columns(const std::vector<RecordMap>& records,
                                        const QuerySpec& spec);

/// Render \a records according to spec.format.
void format_records(std::ostream& os, const std::vector<RecordMap>& records,
                    const QuerySpec& spec);

// Individual formatters (used directly by tests and tools):
void format_table(std::ostream& os, const std::vector<RecordMap>& records,
                  const QuerySpec& spec);
void format_csv(std::ostream& os, const std::vector<RecordMap>& records,
                const QuerySpec& spec);
void format_json(std::ostream& os, const std::vector<RecordMap>& records,
                 const QuerySpec& spec);
void format_expand(std::ostream& os, const std::vector<RecordMap>& records,
                   const QuerySpec& spec);
/// Tree view: the first column is interpreted as a '/'-separated path
/// (e.g. a call path); rows are shown indented under their path prefix.
void format_tree(std::ostream& os, const std::vector<RecordMap>& records,
                 const QuerySpec& spec);

} // namespace calib
