// QueryProcessor: the offline record-processing pipeline
// (paper §IV-C, local stage): filter -> aggregate -> sort -> limit -> format.
//
// Records are streamed in with add(); the aggregation is a streaming
// reduction, so memory use is proportional to the number of unique keys,
// not the number of input records.
#pragma once

#include "calql.hpp"
#include "filter.hpp"
#include "formatter.hpp"
#include "let.hpp"
#include "queryspec.hpp"

#include "../aggregate/aggregation_db.hpp"
#include "../aggregate/windowed_db.hpp"
#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordmap.hpp"

#include <memory>
#include <optional>
#include <ostream>
#include <vector>

namespace calib {

class QueryProcessor {
public:
    explicit QueryProcessor(QuerySpec spec);

    /// Processor over an external (shared) attribute registry. Processors
    /// sharing one registry agree on attribute ids, so their partial
    /// aggregations merge by id without serialization (parallel engine,
    /// phase 2). \a registry must outlive the processor.
    QueryProcessor(QuerySpec spec, AttributeRegistry* registry);

    QueryProcessor(QueryProcessor&&) noexcept = default;

    /// Stream one id-based record through the pipeline (the hot path: the
    /// record's attribute ids must come from registry()). LET terms and
    /// WHERE conditions are evaluated in their id-compiled forms; no
    /// per-record name resolution happens anywhere downstream.
    void add(IdRecord&& record);

    /// Stream a whole record batch through the pipeline (the columnar hot
    /// path): LET writes column vectors, WHERE compacts a selection
    /// vector, and the aggregation probes the hash table per batch.
    /// Byte-identical to calling add() per row (the batch is consumed as
    /// working storage and left in an unspecified state).
    void add_batch(RecordBatch& batch);

    /// Bound the aggregation's in-memory group table: beyond roughly
    /// \a bytes of key+state storage, sorted runs of partial aggregates
    /// spill to a temp file and merge at flush (see AggregationDB).
    /// 0 = unbounded. No-op without aggregation.
    void set_aggregation_memory_budget(std::size_t bytes);

    /// Stream one name-based record through the pipeline (compatibility
    /// path; resolves attribute names per record).
    void add(const RecordMap& record);
    void add(const std::vector<RecordMap>& records);

    /// Merge the partial aggregation state of another processor running the
    /// same query (cross-process reduction, paper §IV-C). Without
    /// aggregation, appends the other processor's records.
    void merge(QueryProcessor& other);

    /// Destructive merge: id-based (no serialization round-trip) when both
    /// processors share one registry; record buffers are moved, not copied.
    void merge(QueryProcessor&& other);

    /// Serialized partial state for tree-based reduction across ranks.
    std::vector<std::byte> serialize_partial() const;
    void merge_serialized(std::span<const std::byte> data);

    /// Number of aggregation entries held (0 without aggregation). The
    /// parallel engine's early-flush check watches this.
    std::size_t aggregation_entries() const noexcept;

    /// Direct access to the aggregation database (nullptr without
    /// aggregation, and nullptr for windowed queries — the pane ring is
    /// not one monolithic table, so the radix merge demotes to tree). The
    /// parallel engine's radix merge extracts hash partitions from worker
    /// partials and absorbs the folded partitions into the root through
    /// this.
    AggregationDB* aggregation_db() noexcept { return db_ ? &*db_ : nullptr; }
    const AggregationDB* aggregation_db() const noexcept {
        return db_ ? &*db_ : nullptr;
    }

    /// The pane ring backing a windowed aggregation (nullptr otherwise).
    WindowedAggregator* windowed_db() noexcept { return wdb_ ? &*wdb_ : nullptr; }
    const WindowedAggregator* windowed_db() const noexcept {
        return wdb_ ? &*wdb_ : nullptr;
    }

    /// Early flush: serialize the partial aggregation state and clear it,
    /// bounding worker memory on high-cardinality keys. Returns an empty
    /// buffer when there is no aggregation (or nothing to flush); record
    /// counts stay on the processor.
    std::vector<std::byte> take_partial();

    /// Finish the query: flush, sort, apply LIMIT. Idempotent.
    const std::vector<RecordMap>& result();

    /// Finish and render with the spec's formatter.
    void write(std::ostream& os);

    const QuerySpec& spec() const noexcept { return spec_; }

    /// The attribute dictionary this processor's id-based records are
    /// resolved against. Readers feeding add(IdRecord&&) must resolve
    /// names through this registry.
    AttributeRegistry* registry() const noexcept { return registry_; }

    /// Number of records seen (pre-filter) and kept (post-filter).
    std::uint64_t num_records_in() const noexcept { return in_; }
    std::uint64_t num_records_kept() const noexcept { return kept_; }

private:
    void sort_records(std::vector<RecordMap>& records) const;
    void canonicalize_rows(std::vector<RecordMap>& records) const;
    /// Time-attribute value of a record in windowed passthrough mode
    /// (lazily resolves the attribute id, AggregationDB-style).
    Variant passthrough_timestamp(const IdRecord& record);
    /// Append a passthrough row; in windowed mode assigns its pane (rows
    /// without a usable timestamp are dropped and counted).
    void add_passthrough(RecordMap&& row, const Variant& timestamp);

    QuerySpec spec_;
    std::unique_ptr<AttributeRegistry> owned_registry_;
    AttributeRegistry* registry_;
    SnapshotFilter id_filter_; ///< id-compiled WHERE (shares registry_)
    CompiledLets id_lets_;     ///< id-compiled LET (shares registry_)
    std::optional<AggregationDB> db_;
    std::optional<WindowedAggregator> wdb_; ///< windowed aggregation mode
    std::vector<RecordMap> passthrough_;
    /// Windowed passthrough mode: pane index per passthrough row, plus the
    /// watermark the live range anchors to at result() time.
    std::vector<std::int64_t> passthrough_panes_;
    std::optional<std::int64_t> pass_watermark_;
    std::uint64_t pass_dropped_ = 0;
    id_t pass_time_id_          = invalid_id;
    std::size_t pass_time_gen_  = static_cast<std::size_t>(-1);
    std::optional<std::vector<RecordMap>> result_;
    std::vector<std::uint32_t> sel_; ///< reused selection-vector scratch
    IdRecord rec_scratch_;           ///< reused row-materialize scratch
    std::uint64_t in_   = 0;
    std::uint64_t kept_ = 0;
};

/// Diagnose silently-inert query clauses: returns one warning message per
/// attribute referenced in WHERE / GROUP BY / AGGREGATE / ORDER BY that
/// never appeared in the input (\a registry is the registry the input was
/// resolved against — call after the run). Names the query itself produces
/// (LET targets, aggregation result labels and aliases) are exempt. An
/// unknown WHERE attribute silently drops every record and an unknown
/// GROUP BY key silently collapses to one group, so these are warnings,
/// not errors.
std::vector<std::string> unknown_query_attributes(const QuerySpec& spec,
                                                  const AttributeRegistry& registry);

/// One-shot helper: run \a query over \a records and return the output.
std::vector<RecordMap> run_query(std::string_view query,
                                 const std::vector<RecordMap>& records);

/// One-shot helper: run \a query over \a records and render to \a os.
void run_query(std::string_view query, const std::vector<RecordMap>& records,
               std::ostream& os);

} // namespace calib
