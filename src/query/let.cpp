#include "let.hpp"

#include <cmath>

namespace calib {

Variant evaluate_let(const LetSpec& let, const RecordMap& record) {
    switch (let.fn) {
    case LetSpec::Fn::Scale: {
        if (let.args.empty())
            return {};
        const Variant v = record.get(let.args[0]);
        if (!v.is_numeric())
            return {};
        return Variant(v.to_double() * let.parameter);
    }
    case LetSpec::Fn::Truncate: {
        if (let.args.empty() || let.parameter <= 0.0)
            return {};
        const Variant v = record.get(let.args[0]);
        if (!v.is_numeric())
            return {};
        return Variant(std::floor(v.to_double() / let.parameter) * let.parameter);
    }
    case LetSpec::Fn::Ratio: {
        if (let.args.size() < 2)
            return {};
        const Variant a = record.get(let.args[0]);
        const Variant b = record.get(let.args[1]);
        if (!a.is_numeric() || !b.is_numeric() || b.to_double() == 0.0)
            return {};
        return Variant(a.to_double() / b.to_double());
    }
    case LetSpec::Fn::First: {
        for (const std::string& arg : let.args) {
            Variant v = record.get(arg);
            if (!v.empty())
                return v;
        }
        return {};
    }
    }
    return {};
}

void apply_lets(const std::vector<LetSpec>& lets, RecordMap& record) {
    for (const LetSpec& let : lets) {
        Variant v = evaluate_let(let, record);
        if (!v.empty())
            record.set(let.target, v);
    }
}

} // namespace calib
