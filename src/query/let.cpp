#include "let.hpp"

#include <cmath>

namespace calib {

Variant evaluate_let(const LetSpec& let, const RecordMap& record) {
    switch (let.fn) {
    case LetSpec::Fn::Scale: {
        if (let.args.empty())
            return {};
        const Variant v = record.get(let.args[0]);
        if (!v.is_numeric())
            return {};
        return Variant(v.to_double() * let.parameter);
    }
    case LetSpec::Fn::Truncate: {
        if (let.args.empty() || let.parameter <= 0.0)
            return {};
        const Variant v = record.get(let.args[0]);
        if (!v.is_numeric())
            return {};
        return Variant(std::floor(v.to_double() / let.parameter) * let.parameter);
    }
    case LetSpec::Fn::Ratio: {
        if (let.args.size() < 2)
            return {};
        const Variant a = record.get(let.args[0]);
        const Variant b = record.get(let.args[1]);
        if (!a.is_numeric() || !b.is_numeric() || b.to_double() == 0.0)
            return {};
        return Variant(a.to_double() / b.to_double());
    }
    case LetSpec::Fn::First: {
        for (const std::string& arg : let.args) {
            Variant v = record.get(arg);
            if (!v.empty())
                return v;
        }
        return {};
    }
    }
    return {};
}

void apply_lets(const std::vector<LetSpec>& lets, RecordMap& record) {
    for (const LetSpec& let : lets) {
        Variant v = evaluate_let(let, record);
        if (!v.empty())
            record.set(let.target, v);
    }
}

CompiledLets::CompiledLets(std::vector<LetSpec> lets, AttributeRegistry* registry)
    : lets_(std::move(lets)), registry_(registry) {
    target_ids_.assign(lets_.size(), invalid_id);
    arg_ids_.resize(lets_.size());
    for (std::size_t i = 0; i < lets_.size(); ++i)
        arg_ids_[i].assign(lets_[i].args.size(), invalid_id);
}

void CompiledLets::resolve() {
    if (fully_resolved_)
        return;
    const std::size_t gen = registry_->generation();
    if (gen == resolved_generation_)
        return;
    // targets first: create() is idempotent, and a later term's argument
    // may name an earlier term's target
    for (std::size_t i = 0; i < lets_.size(); ++i)
        if (target_ids_[i] == invalid_id)
            target_ids_[i] =
                registry_->create(lets_[i].target, Variant::Type::Double).id();
    bool all = true;
    for (std::size_t i = 0; i < lets_.size(); ++i) {
        for (std::size_t k = 0; k < arg_ids_[i].size(); ++k) {
            if (arg_ids_[i][k] == invalid_id) {
                Attribute a = registry_->find(lets_[i].args[k]);
                if (a.valid())
                    arg_ids_[i][k] = a.id();
                else
                    all = false;
            }
        }
    }
    resolved_generation_ = registry_->generation(); // after target creation
    fully_resolved_      = all;
}

Variant CompiledLets::evaluate(std::size_t term, const IdRecord& record) const {
    const LetSpec& let           = lets_[term];
    const std::vector<id_t>& ids = arg_ids_[term];
    auto arg = [&](std::size_t k) -> Variant {
        return ids[k] == invalid_id ? Variant() : record.get(ids[k]);
    };
    switch (let.fn) {
    case LetSpec::Fn::Scale: {
        if (ids.empty())
            return {};
        const Variant v = arg(0);
        if (!v.is_numeric())
            return {};
        return Variant(v.to_double() * let.parameter);
    }
    case LetSpec::Fn::Truncate: {
        if (ids.empty() || let.parameter <= 0.0)
            return {};
        const Variant v = arg(0);
        if (!v.is_numeric())
            return {};
        return Variant(std::floor(v.to_double() / let.parameter) * let.parameter);
    }
    case LetSpec::Fn::Ratio: {
        if (ids.size() < 2)
            return {};
        const Variant a = arg(0);
        const Variant b = arg(1);
        if (!a.is_numeric() || !b.is_numeric() || b.to_double() == 0.0)
            return {};
        return Variant(a.to_double() / b.to_double());
    }
    case LetSpec::Fn::First: {
        for (std::size_t k = 0; k < ids.size(); ++k) {
            Variant v = arg(k);
            if (!v.empty())
                return v;
        }
        return {};
    }
    }
    return {};
}

void CompiledLets::apply(IdRecord& record) {
    resolve();
    for (std::size_t i = 0; i < lets_.size(); ++i) {
        Variant v = evaluate(i, record);
        if (!v.empty())
            record.set(target_ids_[i], v);
    }
}

Variant CompiledLets::evaluate_cols(std::size_t term, const RecordBatch& batch,
                                    const std::int32_t* argcols,
                                    std::size_t row) const {
    const LetSpec& let     = lets_[term];
    const std::size_t nargs = arg_ids_[term].size();
    auto arg = [&](std::size_t k) -> Variant {
        const std::int32_t c = argcols[k];
        if (c < 0)
            return {};
        const RecordBatch::Column& col = batch.column_at(static_cast<std::size_t>(c));
        return col.valid[row] ? col.values[row] : Variant();
    };
    switch (let.fn) {
    case LetSpec::Fn::Scale: {
        if (nargs == 0)
            return {};
        const Variant v = arg(0);
        if (!v.is_numeric())
            return {};
        return Variant(v.to_double() * let.parameter);
    }
    case LetSpec::Fn::Truncate: {
        if (nargs == 0 || let.parameter <= 0.0)
            return {};
        const Variant v = arg(0);
        if (!v.is_numeric())
            return {};
        return Variant(std::floor(v.to_double() / let.parameter) * let.parameter);
    }
    case LetSpec::Fn::Ratio: {
        if (nargs < 2)
            return {};
        const Variant a = arg(0);
        const Variant b = arg(1);
        if (!a.is_numeric() || !b.is_numeric() || b.to_double() == 0.0)
            return {};
        return Variant(a.to_double() / b.to_double());
    }
    case LetSpec::Fn::First: {
        for (std::size_t k = 0; k < nargs; ++k) {
            Variant v = arg(k);
            if (!v.empty())
                return v;
        }
        return {};
    }
    }
    return {};
}

void CompiledLets::apply(RecordBatch& batch) {
    resolve();
    if (lets_.empty() || batch.empty())
        return;
    const std::size_t n = batch.rows();
    std::vector<std::int32_t> argcols;
    // term-major is equivalent to the record path's record-major order:
    // terms only interact through same-row target/argument values, and
    // term i finishes every row before term i+1 reads its target
    for (std::size_t i = 0; i < lets_.size(); ++i) {
        const std::size_t target = batch.append_target(target_ids_[i]);
        const std::vector<id_t>& ids = arg_ids_[i];
        argcols.assign(ids.size(), -1);
        for (std::size_t k = 0; k < ids.size(); ++k)
            if (ids[k] != invalid_id)
                argcols[k] = batch.column_index(ids[k]);
        for (std::size_t r = 0; r < n; ++r) {
            if (batch.is_overflow(r)) {
                IdRecord& rec   = batch.overflow_record(r);
                const Variant v = evaluate(i, rec);
                if (!v.empty())
                    rec.set(target_ids_[i], v);
                continue;
            }
            const Variant v = evaluate_cols(i, batch, argcols.data(), r);
            if (!v.empty())
                batch.set_row_value(target, r, v);
        }
    }
}

} // namespace calib
