#include "merge_strategy.hpp"

#include "../common/log.hpp"
#include "../common/util.hpp"

#include <cstdlib>

namespace calib::engine {

namespace {

MergeStrategy g_default = MergeStrategy::Default; // Default = env fallback

} // namespace

const char* merge_strategy_name(MergeStrategy s) noexcept {
    switch (s) {
    case MergeStrategy::Adaptive: return "adaptive";
    case MergeStrategy::Pairwise: return "pairwise";
    case MergeStrategy::Tree:     return "tree";
    case MergeStrategy::Radix:    return "radix";
    case MergeStrategy::Default:  break;
    }
    return "default";
}

bool parse_merge_strategy(std::string_view name, MergeStrategy& out) noexcept {
    if (name == "adaptive" || name == "auto")
        out = MergeStrategy::Adaptive;
    else if (name == "pairwise" || name == "serial")
        out = MergeStrategy::Pairwise;
    else if (name == "tree")
        out = MergeStrategy::Tree;
    else if (name == "radix")
        out = MergeStrategy::Radix;
    else
        return false;
    return true;
}

int merge_strategy_code(MergeStrategy s) noexcept {
    switch (s) {
    case MergeStrategy::Pairwise: return 1;
    case MergeStrategy::Tree:     return 2;
    case MergeStrategy::Radix:    return 3;
    default:                      return 0;
    }
}

MergeStrategy default_merge_strategy() {
    if (g_default != MergeStrategy::Default)
        return g_default;
    static const MergeStrategy env = [] {
        MergeStrategy s = MergeStrategy::Adaptive;
        if (const char* v = std::getenv("CALIB_MERGE_STRATEGY")) {
            if (!parse_merge_strategy(v, s))
                log_warn() << "CALIB_MERGE_STRATEGY='" << v
                           << "' is not a merge strategy "
                              "(adaptive|pairwise|tree|radix); using adaptive";
        }
        return s;
    }();
    return env;
}

void set_default_merge_strategy(MergeStrategy s) {
    g_default = s;
}

MergeTuning default_merge_tuning() {
    static const MergeTuning env = [] {
        MergeTuning t;
        t.small_entries = util::env_size("CALIB_MERGE_SMALL", t.small_entries);
        t.radix_entries = util::env_size("CALIB_MERGE_RADIX_MIN", t.radix_entries);
        return t;
    }();
    return env;
}

MergeStrategy select_merge_strategy(const MergeObservation& obs,
                                    const MergeTuning& tuning) noexcept {
    if (!obs.has_aggregation)
        return obs.partials >= 8 ? MergeStrategy::Tree : MergeStrategy::Pairwise;
    if (obs.total_entries <= tuning.small_entries)
        return MergeStrategy::Pairwise;
    if (obs.flush_buffers > 0 || obs.total_entries >= tuning.radix_entries)
        return MergeStrategy::Radix;
    return MergeStrategy::Tree;
}

} // namespace calib::engine
