#include "thread_pool.hpp"

#include "../obs/metrics.hpp"

#include <exception>
#include <utility>

namespace calib::engine {

namespace {
obs::Counter pool_tasks("pool.tasks");
obs::Timer pool_queue_wait("pool.queue_wait");
obs::Timer pool_busy("pool.busy");
obs::Gauge pool_queue_depth("pool.queue_depth");
obs::Gauge pool_active_workers("pool.active_workers");
} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0)
        threads = default_threads();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

std::size_t ThreadPool::default_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    QueuedTask item{std::packaged_task<void()>(std::move(task)),
                    obs::enabled() ? obs::now_ns() : 0};
    std::future<void> result = item.task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(item));
        pool_queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return result;
}

std::size_t ThreadPool::queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::size_t ThreadPool::active_workers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker() {
    while (true) {
        QueuedTask item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            item = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
            pool_queue_depth.set(static_cast<std::int64_t>(queue_.size()));
            pool_active_workers.set(static_cast<std::int64_t>(active_));
        }
        if (item.submit_ns)
            pool_queue_wait.record(obs::now_ns() - item.submit_ns);
        pool_tasks.add();
        {
            obs::Timer::Scope busy(pool_busy);
            item.task(); // exceptions land in the task's future
        }
        bool idle;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            pool_active_workers.set(static_cast<std::int64_t>(active_));
            idle = queue_.empty() && active_ == 0;
        }
        if (idle)
            idle_cv_.notify_all();
    }
}

void wait_all(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (std::future<void>& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace calib::engine
