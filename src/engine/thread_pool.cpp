#include "thread_pool.hpp"

#include <exception>
#include <utility>

namespace calib::engine {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0)
        threads = default_threads();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

std::size_t ThreadPool::default_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> wrapped(std::move(task));
    std::future<void> result = wrapped.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
    return result;
}

void ThreadPool::worker() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

void wait_all(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (std::future<void>& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace calib::engine
