// Morsel-driven input splitting for the parallel query engine.
//
// A morsel is one independently processable unit of query input. The split
// policy depends only on the input set (never on the worker count), so the
// phase-2 merge structure — and therefore the output bytes — are identical
// for every thread count:
//
//   - multi-file input: one morsel per file (parallel I/O + parse),
//   - a single dominating file: record-range chunks of ~64K records; every
//     worker scans the stream but only materializes records in its range,
//   - JSON inputs: one morsel per file (the array parser cannot skip).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace calib::engine {

struct Morsel {
    enum class Kind {
        CaliFile,  ///< a whole .cali stream file
        CaliRange, ///< records [begin, end) of a .cali stream file
        JsonFile,  ///< a whole JSON record-array file
    };

    Kind kind = Kind::CaliFile;
    std::string path;
    std::uint64_t begin = 0; ///< first record index (CaliRange)
    std::uint64_t end   = UINT64_MAX; ///< one past the last record index
};

struct MorselOptions {
    bool json_input = false;
    /// Target records per range morsel when a single file is split.
    std::uint64_t records_per_morsel = 65536;
};

/// Split \a files into morsels. A single .cali file is pre-scanned (cheap
/// line count) to size its record ranges; everything else maps 1:1.
std::vector<Morsel> make_morsels(const std::vector<std::string>& files,
                                 const MorselOptions& opts = {});

} // namespace calib::engine
