// Morsel-driven input splitting for the parallel query engine.
//
// A morsel is one independently processable unit of query input. The split
// policy depends only on the input set (never on the worker count), so the
// phase-2 merge structure — and therefore the output bytes — are identical
// for every thread count:
//
//   - multi-file input: one morsel per file (parallel I/O + parse),
//   - a single dominating file: byte-range chunks over one shared
//     CaliFileSource mapping — a single cheap planning scan finds
//     line-boundary split points and indexes the rare attribute-definition
//     lines, so each worker replays that tiny prefix and parses only its
//     own byte span (total scan work is O(file), not O(file x workers)),
//   - JSON inputs: one morsel per file (the array parser cannot skip).
#pragma once

#include "../io/calireader.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace calib::engine {

struct Morsel {
    enum class Kind {
        CaliFile,  ///< a whole .cali stream file
        CaliBytes, ///< one byte-range chunk of a shared CaliFileSource
        CaliRange, ///< records [begin, end) of a .cali file (legacy split)
        JsonFile,  ///< a whole JSON record-array file
    };

    Kind kind = Kind::CaliFile;
    std::string path;
    std::uint64_t begin = 0;          ///< first record index (CaliRange)
    std::uint64_t end   = UINT64_MAX; ///< one past the last record index
    std::size_t chunk   = 0;          ///< chunk index (CaliBytes)
    /// The shared mapped file (CaliBytes); all chunk morsels of one file
    /// point at the same source, so the file is mapped and planned once.
    std::shared_ptr<const CaliFileSource> source;
};

struct MorselOptions {
    bool json_input = false;
    /// Target bytes per chunk when a single file is split (0: never split).
    std::size_t bytes_per_morsel = std::size_t(4) << 20;
};

/// Split \a files into morsels. A single .cali file is mapped and planned
/// by CaliFileSource (one cheap line scan, no record-count pre-pass);
/// everything else maps 1:1.
std::vector<Morsel> make_morsels(const std::vector<std::string>& files,
                                 const MorselOptions& opts = {});

} // namespace calib::engine
