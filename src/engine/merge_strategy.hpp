// Phase-2 merge strategies for the parallel query engine.
//
// Phase 1 produces one partial QueryProcessor per morsel; phase 2 folds
// them into the root. Three strategies realize the *same* per-key
// floating-point reduction DAG (the stride-doubling tree over morsel
// indices, then early-flush buffers in (morsel, flush-sequence) order),
// so their output bytes are identical — they differ only in how the work
// is scheduled:
//
//   pairwise  the stride merges run serially on the driver thread. No
//             task overhead; best for small group counts.
//   tree      each level's independent merges run as ThreadPool tasks
//             with a barrier per level (the historical default).
//   radix     every partial is split by key-hash radix into P fixed
//             partitions; the P partition folds are independent pool
//             tasks (each folding its pieces in the same stride-doubling
//             worker-index order), and the driver concatenates the
//             disjoint partition results in partition order. Parallelism
//             is per-partition instead of per-level, and each partition's
//             hash table is ~1/P the size — cache-resident at high
//             cardinality where a monolithic table thrashes.
//
// The adaptive selector picks one per query from cardinality observed at
// the end of phase 1. Its inputs (morsel count, per-partial entry counts,
// flush counts) are functions of the input set only — never the thread
// count — so the choice, like the strategies themselves, cannot perturb
// output bytes. docs/ENGINE.md has the full determinism argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace calib::engine {

enum class MergeStrategy : std::uint8_t {
    Default = 0, ///< resolve via default_merge_strategy() (env or adaptive)
    Adaptive,    ///< select per query from phase-1 cardinality
    Pairwise,    ///< serial stride-doubling fold on the driver
    Tree,        ///< stride-doubling fold, level merges as pool tasks
    Radix,       ///< hash-partitioned parallel fold + ordered concatenation
};

/// Lower-case name ("adaptive", "pairwise", "tree", "radix").
const char* merge_strategy_name(MergeStrategy s) noexcept;

/// Parse a strategy name (as accepted by --merge-strategy /
/// CALIB_MERGE_STRATEGY). Returns false on an unknown name.
bool parse_merge_strategy(std::string_view name, MergeStrategy& out) noexcept;

/// Stable numeric code for the engine.merge_strategy gauge:
/// 0 none/serial, 1 pairwise, 2 tree, 3 radix.
int merge_strategy_code(MergeStrategy s) noexcept;

/// Process-wide default used when EngineOptions::merge_strategy is
/// Default: the last set_default_merge_strategy() value, else
/// CALIB_MERGE_STRATEGY, else Adaptive. (mpi-caliquery plumbs its
/// --merge-strategy through this, like set_default_batch_size.)
MergeStrategy default_merge_strategy();
/// Override the process-wide default (Default restores the env fallback).
void set_default_merge_strategy(MergeStrategy s);

/// What phase 1 observed, fed to the adaptive selector. Every field is a
/// deterministic function of the input set (morsel plan + records), never
/// of the thread count — see the determinism note above.
struct MergeObservation {
    std::size_t partials        = 0; ///< morsel count (= partial count)
    bool has_aggregation        = false;
    std::size_t total_entries   = 0; ///< live + early-flushed entries, summed
    std::size_t max_entries     = 0; ///< largest single partial (live+flushed)
    std::size_t flush_buffers   = 0; ///< early-flush buffers across partials
};

/// Selector thresholds (see docs/ENGINE.md "Tuning the selector").
struct MergeTuning {
    /// At or below this many total observed groups the merge is trivial:
    /// stay pairwise and skip task overhead.
    std::size_t small_entries = 4096;
    /// At or above this many total observed groups (or when any partial
    /// early-flushed, which means cardinality already blew the partial
    /// bound) the monolithic fold is cache-bound: go radix.
    std::size_t radix_entries = std::size_t(1) << 16;
};

/// Resolve the MergeTuning defaults, honoring CALIB_MERGE_SMALL and
/// CALIB_MERGE_RADIX_MIN when set.
MergeTuning default_merge_tuning();

/// The adaptive policy: pairwise below small_entries, radix at or above
/// radix_entries (or after any early flush), tree in between. Queries
/// without aggregation have nothing to partition: pairwise for few
/// partials, tree otherwise.
MergeStrategy select_merge_strategy(const MergeObservation& obs,
                                    const MergeTuning& tuning) noexcept;

} // namespace calib::engine
