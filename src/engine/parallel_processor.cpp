#include "parallel_processor.hpp"

#include "thread_pool.hpp"

#include "../common/util.hpp"
#include "../io/calireader.hpp"
#include "../io/jsonreader.hpp"
#include "../obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

namespace calib::engine {

namespace {

obs::Counter engine_early_flushes("engine.early_flushes");
obs::Counter engine_early_flush_bytes("engine.early_flush_bytes");
// last run's phase-2 profile: strategy code (0 none, 1 pairwise, 2 tree,
// 3 radix), radix partition count, and merge wall time in milliseconds
obs::Gauge engine_merge_strategy("engine.merge_strategy");
obs::Gauge engine_merge_partitions("engine.merge_partitions");
obs::Gauge engine_merge_ms("engine.merge_ms");
// per-partition fold spans (radix): visible in --stats and as --trace-json
// timeline events
obs::Timer merge_partition_time("merge.partition");

constexpr std::size_t max_batch_rows = std::size_t(1) << 20;

std::size_t clamp_batch_size(std::size_t rows) {
    return rows == 0 ? 1 : std::min(rows, max_batch_rows);
}

std::size_t g_default_batch_size = 0; // 0 = unset; fall back to env / 1024
std::size_t g_default_agg_budget = static_cast<std::size_t>(-1); // unset

void join_globals(IdRecord& record, const IdRecord& globals) {
    for (const Entry& g : globals)
        if (!record.contains(g.attribute))
            record.append(g);
}

/// Batched twin of join_globals(IdRecord&): conforming rows take the
/// global through an append-target column (record `append` semantics —
/// rows already carrying the attribute keep their value), overflow rows go
/// through the record path verbatim.
void join_globals(RecordBatch& batch, const IdRecord& globals) {
    for (const Entry& g : globals) {
        const std::size_t col = batch.append_target(g.attribute);
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            if (batch.is_overflow(r)) {
                IdRecord& rec = batch.overflow_record(r);
                if (!rec.contains(g.attribute))
                    rec.append(g);
            } else if (!batch.column_at(col).valid[r]) {
                batch.set_row_value(col, r, g.value);
            }
        }
    }
}

/// Per-morsel partial state produced in phase 1.
struct Partial {
    std::unique_ptr<QueryProcessor> proc;
    /// Early-flushed aggregation buffers, in flush order.
    std::vector<std::vector<std::byte>> flushed;
};

/// The canonical phase-2 fold: a stride-doubling tree over morsel indices
/// (merge neighbor i+stride into i). Every strategy executes exactly this
/// per-key merge order; they differ only in scheduling, so output bytes
/// are strategy-invariant. Here: serially, on the driver.
void fold_pairwise(std::vector<Partial>& partials) {
    const std::size_t n = partials.size();
    for (std::size_t stride = 1; stride < n; stride *= 2)
        for (std::size_t i = 0; i + stride < n; i += 2 * stride)
            partials[i].proc->merge(std::move(*partials[i + stride].proc));
}

/// The same fold with each level's independent merges as pool tasks and a
/// barrier per level.
void fold_tree(std::vector<Partial>& partials, ThreadPool& pool) {
    const std::size_t n = partials.size();
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        std::vector<std::future<void>> level;
        for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
            level.push_back(pool.submit([&a = partials[i], &b = partials[i + stride]] {
                a.proc->merge(std::move(*b.proc));
            }));
        }
        wait_all(level);
    }
}

} // namespace

std::size_t default_batch_size() {
    if (g_default_batch_size != 0)
        return g_default_batch_size;
    // util::env_size warns on a set-but-unparsable value — the same
    // validation the CLI flag applies, minus the hard error
    static const std::size_t env =
        clamp_batch_size(util::env_size("CALIB_BATCH_SIZE", 1024));
    return env;
}

void set_default_batch_size(std::size_t rows) {
    g_default_batch_size = rows == 0 ? 0 : clamp_batch_size(rows);
}

std::size_t default_agg_memory_budget() {
    if (g_default_agg_budget != static_cast<std::size_t>(-1))
        return g_default_agg_budget;
    static const std::size_t env = util::env_size("CALIB_AGG_MEM", 0);
    return env;
}

void set_default_agg_memory_budget(std::size_t bytes) {
    g_default_agg_budget = bytes;
}

ParallelQueryProcessor::ParallelQueryProcessor(QuerySpec spec, EngineOptions opts)
    : opts_(opts), root_(std::move(spec), &registry_) {
    opts_.batch_size = opts_.batch_size == 0 ? default_batch_size()
                                             : clamp_batch_size(opts_.batch_size);
    if (opts_.agg_memory_budget == static_cast<std::size_t>(-1))
        opts_.agg_memory_budget = default_agg_memory_budget();
    // the budget lives on the root processor: worker partials drain into it
    // unspilled (early flush bounds their memory), and the root's sort-spill
    // bounds the merged group table
    if (opts_.agg_memory_budget != 0)
        root_.set_aggregation_memory_budget(opts_.agg_memory_budget);
}

QueryProcessor& ParallelQueryProcessor::run(const std::vector<std::string>& files) {
    const std::size_t threads =
        opts_.threads > 0 ? opts_.threads : ThreadPool::default_threads();

    std::optional<std::vector<Morsel>> planned;
    {
        obs::Phase plan_phase("plan");
        planned = make_morsels(files, {opts_.json_input, opts_.bytes_per_morsel});
    }
    const std::vector<Morsel>& morsels = *planned;
    stats_.morsels = morsels.size();
    if (morsels.size() <= 1) {
        stats_.threads = 1;
        run_serial(files);
        return root_;
    }

    // -t1 runs the same per-morsel partial + merge-tree DAG as any other
    // thread count (on a one-worker pool) rather than a single left-fold
    // over all records. Floating-point reduction is not associative, so
    // executing the *identical* arithmetic DAG — whose shape depends only
    // on the morsel list — is what makes output byte-identical for every
    // thread count even on adversarial doubles (catastrophic cancellation,
    // huge exponent spreads). docs/CORRECTNESS.md has the argument.
    stats_.threads = threads < morsels.size() ? threads : morsels.size();
    run_parallel(morsels, stats_.threads);
    return root_;
}

void ParallelQueryProcessor::run_serial(const std::vector<std::string>& files) {
    if (opts_.batched) {
        const std::size_t bs = opts_.batch_size;
        for (const std::string& file : files) {
            if (opts_.json_input) {
                read_json_file_batches(file, registry_, bs,
                                       [this](RecordBatch& b) { root_.add_batch(b); });
            } else if (opts_.with_globals) {
                // globals may appear anywhere in the stream, so batches are
                // buffered until the file is fully scanned
                IdRecord globals;
                std::vector<RecordBatch> batches;
                CaliReader::read_file_batches(
                    file, registry_, bs,
                    [&batches](RecordBatch& b) { batches.push_back(std::move(b)); },
                    &globals);
                for (RecordBatch& b : batches) {
                    join_globals(b, globals);
                    root_.add_batch(b);
                }
            } else {
                CaliReader::read_file_batches(
                    file, registry_, bs,
                    [this](RecordBatch& b) { root_.add_batch(b); });
            }
        }
        return;
    }
    for (const std::string& file : files) {
        if (opts_.json_input) {
            read_json_file(file, registry_,
                           [this](IdRecord&& r) { root_.add(std::move(r)); });
        } else if (opts_.with_globals) {
            // globals may appear anywhere in the stream, so records are
            // buffered until the file is fully scanned
            IdRecord globals;
            std::vector<IdRecord> records;
            CaliReader::read_file(
                file, registry_,
                [&records](IdRecord&& r) { records.push_back(std::move(r)); },
                &globals);
            for (IdRecord& r : records) {
                join_globals(r, globals);
                root_.add(std::move(r));
            }
        } else {
            CaliReader::read_file(file, registry_,
                                  [this](IdRecord&& r) { root_.add(std::move(r)); });
        }
    }
}

void ParallelQueryProcessor::run_parallel(const std::vector<Morsel>& morsels,
                                          std::size_t threads) {
    const std::size_t n = morsels.size();
    std::vector<Partial> partials(n);
    for (Partial& p : partials)
        p.proc = std::make_unique<QueryProcessor>(root_.spec(), &registry_);

    // byte-range chunks only see their own span, so file-scoped globals are
    // resolved once up front (from the planning scan's metadata index) and
    // joined onto records on the fly — no per-worker record buffering
    IdRecord source_globals;
    if (opts_.with_globals) {
        for (const Morsel& m : morsels) {
            if (m.kind == Morsel::Kind::CaliBytes) {
                source_globals = m.source->read_globals(registry_);
                break; // chunk morsels always share one source (one file)
            }
        }
    }

    // the pool is declared after the state its tasks reference, so its
    // destructor (which joins the workers) runs first
    ThreadPool pool(threads);

    // phase 1: one task per morsel, each filling its own partial
    std::optional<obs::Phase> process_phase;
    process_phase.emplace("process");
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(pool.submit([this, &m = morsels[i], &p = partials[i],
                                       &source_globals] {
            QueryProcessor& proc = *p.proc;
            auto flush_check     = [this, &proc, &p] {
                if (opts_.max_partial_entries > 0 &&
                    proc.aggregation_entries() > opts_.max_partial_entries) {
                    std::vector<std::byte> buf = proc.take_partial();
                    if (!buf.empty())
                        p.flushed.push_back(std::move(buf));
                }
            };
            auto feed = [&proc, &flush_check](IdRecord&& r) {
                proc.add(std::move(r));
                flush_check();
            };
            auto batch_feed = [&proc, &flush_check](RecordBatch& b) {
                proc.add_batch(b);
                flush_check();
            };
            const std::size_t bs = opts_.batch_size;
            if (m.kind == Morsel::Kind::JsonFile) {
                if (opts_.batched)
                    read_json_file_batches(m.path, registry_, bs, batch_feed);
                else
                    read_json_file(m.path, registry_, feed);
            } else if (m.kind == Morsel::Kind::CaliBytes) {
                // the shared source is already mapped and planned; this
                // worker parses only its own byte span (plus the tiny
                // attribute-definition prefix)
                if (opts_.batched) {
                    if (opts_.with_globals) {
                        m.source->read_chunk_batches(m.chunk, registry_, bs,
                                                     [&](RecordBatch& b) {
                                                         join_globals(b, source_globals);
                                                         batch_feed(b);
                                                     });
                    } else {
                        m.source->read_chunk_batches(m.chunk, registry_, bs,
                                                     batch_feed);
                    }
                } else if (opts_.with_globals) {
                    m.source->read_chunk(m.chunk, registry_,
                                         [&](IdRecord&& r) {
                                             join_globals(r, source_globals);
                                             feed(std::move(r));
                                         });
                } else {
                    m.source->read_chunk(m.chunk, registry_, feed);
                }
            } else if (opts_.with_globals) {
                IdRecord globals;
                if (opts_.batched) {
                    std::vector<RecordBatch> batches;
                    CaliReader::read_file_range_batches(
                        m.path, m.begin, m.end, registry_, bs,
                        [&batches](RecordBatch& b) { batches.push_back(std::move(b)); },
                        &globals);
                    for (RecordBatch& b : batches) {
                        join_globals(b, globals);
                        batch_feed(b);
                    }
                } else {
                    std::vector<IdRecord> records;
                    CaliReader::read_file_range(
                        m.path, m.begin, m.end, registry_,
                        [&records](IdRecord&& r) { records.push_back(std::move(r)); },
                        &globals);
                    for (IdRecord& r : records) {
                        join_globals(r, globals);
                        feed(std::move(r));
                    }
                }
            } else if (opts_.batched) {
                CaliReader::read_file_range_batches(m.path, m.begin, m.end, registry_,
                                                    bs, batch_feed);
            } else {
                CaliReader::read_file_range(m.path, m.begin, m.end, registry_, feed);
            }
        }));
    }
    wait_all(futures);
    process_phase.reset();

    for (const Partial& p : partials) {
        stats_.early_flushes += p.flushed.size();
        for (const std::vector<std::byte>& buf : p.flushed)
            stats_.early_flush_bytes += buf.size();
    }
    engine_early_flushes.add(stats_.early_flushes);
    engine_early_flush_bytes.add(stats_.early_flush_bytes);

    // phase 2: pick a merge strategy from what phase 1 observed, then fold
    // the partials into the root. Every strategy realizes the same per-key
    // reduction DAG — the stride-doubling tree over morsel indices (which
    // keeps passthrough records in morsel order and depends only on the
    // morsel count, never the thread count), with early-flush buffers
    // folded in (morsel, flush-sequence) order — so output bytes are
    // identical across strategies; only the schedule differs.
    MergeObservation mobs;
    mobs.partials        = n;
    mobs.has_aggregation = root_.aggregation_db() != nullptr;
    for (const Partial& p : partials) {
        std::size_t own = p.proc->aggregation_entries();
        for (const std::vector<std::byte>& buf : p.flushed)
            own += root_.windowed_db()
                       ? WindowedAggregator::serialized_entry_count(buf)
                       : AggregationDB::serialized_entry_count(buf);
        mobs.total_entries += own;
        mobs.max_entries = std::max(mobs.max_entries, own);
        mobs.flush_buffers += p.flushed.size();
    }
    MergeTuning tuning = default_merge_tuning();
    if (opts_.merge_small_entries != 0)
        tuning.small_entries = opts_.merge_small_entries;
    if (opts_.merge_radix_entries != 0)
        tuning.radix_entries = opts_.merge_radix_entries;
    MergeStrategy strategy = opts_.merge_strategy == MergeStrategy::Default
                                 ? default_merge_strategy()
                                 : opts_.merge_strategy;
    if (strategy == MergeStrategy::Adaptive || strategy == MergeStrategy::Default)
        strategy = select_merge_strategy(mobs, tuning);
    if (strategy == MergeStrategy::Radix && !mobs.has_aggregation)
        strategy = MergeStrategy::Tree; // passthrough rows and windowed pane
                                        // rings: no monolithic table to
                                        // hash-partition

    obs::Phase merge_phase("merge");
    const std::uint64_t merge_t0 = obs::now_ns();

    if (strategy == MergeStrategy::Radix) {
        unsigned bits = opts_.merge_radix_bits != 0 ? opts_.merge_radix_bits : 4;
        bits          = std::clamp(bits, 1u, 8u);
        const std::size_t nparts = std::size_t(1) << bits;
        stats_.merge_partitions  = nparts;

        // split every partial's group table into hash partitions (verbatim
        // state copies — no kernel arithmetic), one pool task per partial
        std::vector<std::vector<AggregationDB>> pieces(n);
        {
            std::vector<std::future<void>> extract;
            extract.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                extract.push_back(
                    pool.submit([&pc = pieces[i], &p = partials[i], bits] {
                        pc = p.proc->aggregation_db()->extract_partitions(bits);
                    }));
            }
            wait_all(extract);
        }
        // the databases are now empty, so these merges only fold record
        // counts (in/kept/processed) into the root
        for (Partial& p : partials)
            root_.merge(std::move(*p.proc));

        // flush buffers in (morsel, flush-sequence) order, shared read-only
        // by every partition task
        std::vector<const std::vector<std::byte>*> flushed;
        for (const Partial& p : partials)
            for (const std::vector<std::byte>& buf : p.flushed)
                flushed.push_back(&buf);

        // one pool task per partition: fold its pieces in the same
        // stride-doubling worker-index order as the tree (identical per-key
        // arithmetic), then replay the flush buffers filtered to this
        // partition. Partition tables are ~1/P the monolithic size, so the
        // fold stays cache-resident at high cardinality.
        std::vector<std::future<void>> tasks;
        tasks.reserve(nparts);
        for (std::size_t part = 0; part < nparts; ++part) {
            tasks.push_back(pool.submit([&pieces, &flushed, part, bits, n] {
                obs::SpanTimer span(merge_partition_time);
                for (std::size_t stride = 1; stride < n; stride *= 2)
                    for (std::size_t i = 0; i + stride < n; i += 2 * stride)
                        pieces[i][part].merge(std::move(pieces[i + stride][part]));
                for (const std::vector<std::byte>* buf : flushed)
                    pieces[0][part].merge_serialized(*buf, bits, part);
            }));
        }
        wait_all(tasks);

        // concatenate the disjoint partition results in partition order —
        // deterministic, and byte-invisible anyway (flush denominators and
        // row order are canonicalized downstream). Sizing the root once up
        // front avoids log(P) incremental rehashes of the full table.
        AggregationDB* rootdb = root_.aggregation_db();
        std::size_t total = 0;
        for (std::size_t part = 0; part < nparts; ++part)
            total += pieces[0][part].size();
        for (std::size_t part = 0; part < nparts; ++part) {
            rootdb->absorb_disjoint(std::move(pieces[0][part]));
            // the first non-empty absorb steals that partition's arenas;
            // size for the full concatenation right after it (skipped when
            // a spill budget caps the live table anyway)
            if (opts_.agg_memory_budget == 0 && rootdb->size() != 0 &&
                total != 0) {
                rootdb->reserve(total);
                total = 0;
            }
        }
    } else {
        if (strategy == MergeStrategy::Pairwise)
            fold_pairwise(partials);
        else
            fold_tree(partials, pool);
        root_.merge(std::move(*partials[0].proc));
        // early-flushed buffers fold in last, in morsel order (deterministic)
        for (Partial& p : partials)
            for (const std::vector<std::byte>& buf : p.flushed)
                root_.merge_serialized(buf);
    }

    stats_.merge_strategy = strategy;
    stats_.merge_ns       = obs::now_ns() - merge_t0;
    engine_merge_strategy.set(merge_strategy_code(strategy));
    engine_merge_partitions.set(static_cast<std::int64_t>(stats_.merge_partitions));
    engine_merge_ms.set(static_cast<std::int64_t>(stats_.merge_ns / 1000000));
}

} // namespace calib::engine
