// A fixed-size worker pool with a shared task queue, used by the parallel
// query engine (and reusable by any other subsystem that needs intra-process
// task parallelism).
//
// Tasks are submitted as std::function<void()> and return a std::future<void>
// that rethrows any exception the task threw — workers never swallow errors.
// The destructor drains the queue: every task submitted before destruction
// runs to completion, then the workers join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace calib::engine {

class ThreadPool {
public:
    /// \param threads worker count; 0 = default_threads()
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&)            = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task. The returned future becomes ready when the task
    /// finishes; future.get() rethrows any exception the task threw.
    std::future<void> submit(std::function<void()> task);

    /// std::thread::hardware_concurrency(), clamped to at least 1.
    static std::size_t default_threads() noexcept;

private:
    void worker();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/// Wait for every future, then rethrow the first stored exception (if any).
/// All tasks complete even when an early one fails, so partially-written
/// shared state is never abandoned mid-flight.
void wait_all(std::vector<std::future<void>>& futures);

} // namespace calib::engine
