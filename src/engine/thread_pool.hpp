// A fixed-size worker pool with a shared task queue, used by the parallel
// query engine (and reusable by any other subsystem that needs intra-process
// task parallelism).
//
// Tasks are submitted as std::function<void()> and return a std::future<void>
// that rethrows any exception the task threw — workers never swallow errors.
// The destructor drains the queue: every task submitted before destruction
// runs to completion, then the workers join.
//
// The pool is instrumented (obs metrics): "pool.tasks" counts executions,
// "pool.queue_wait" / "pool.busy" time the submit-to-dequeue and run spans,
// and the "pool.queue_depth" / "pool.active_workers" gauges expose live
// occupancy — queue_depth()/active_workers()/wait_idle() read the same
// state directly (no metrics enablement needed), so tests can wait on
// pool quiescence instead of sleeping.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace calib::engine {

class ThreadPool {
public:
    /// \param threads worker count; 0 = default_threads()
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&)            = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task. The returned future becomes ready when the task
    /// finishes; future.get() rethrows any exception the task threw.
    std::future<void> submit(std::function<void()> task);

    /// Tasks queued but not yet picked up by a worker.
    std::size_t queue_depth() const;

    /// Workers currently running a task.
    std::size_t active_workers() const;

    /// Block until the queue is empty and no worker is running a task.
    /// Quiescence, not completion: a running task may submit more work
    /// after this returns. Use the futures to wait on specific tasks.
    void wait_idle();

    /// std::thread::hardware_concurrency(), clamped to at least 1.
    static std::size_t default_threads() noexcept;

private:
    struct QueuedTask {
        std::packaged_task<void()> task;
        std::uint64_t submit_ns = 0; ///< 0 when metrics were off at submit
    };

    void worker();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::size_t active_ = 0;
    bool stop_          = false;
};

/// Wait for every future, then rethrow the first stored exception (if any).
/// All tasks complete even when an early one fails, so partially-written
/// shared state is never abandoned mid-flight.
void wait_all(std::vector<std::future<void>>& futures);

} // namespace calib::engine
