// The parallel query engine: morsel-driven, two-phase execution of one
// QuerySpec over a set of input files.
//
//   phase 1  workers pull morsels and run the full record pipeline
//            (read -> LET -> filter -> aggregate) into thread-local
//            partial QueryProcessors sharing one attribute registry;
//   phase 2  partials are combined by one of three merge strategies —
//            pairwise (serial), tree (level-parallel), or radix
//            (partition-parallel) — picked per query by an adaptive
//            cardinality selector (see merge_strategy.hpp), then the
//            driver finishes: canonical order -> ORDER BY -> LIMIT ->
//            FORMAT.
//
// Output bytes are identical for every thread count and every merge
// strategy: the morsel split and the per-key reduction DAG depend only on
// the input set (so every configuration executes the same floating-point
// arithmetic), and aggregated rows are re-sorted canonically before
// formatting (see QueryProcessor::result()). docs/ENGINE.md and
// docs/CORRECTNESS.md have the full argument.
//
// An adaptive escape hatch bounds worker memory on high-cardinality keys:
// when a partial database exceeds max_partial_entries, it is serialized
// and cleared (early flush); the buffers are folded back in after the
// reduction, in morsel order, so determinism is unaffected.
#pragma once

#include "merge_strategy.hpp"
#include "morsel.hpp"

#include "../common/attribute.hpp"
#include "../query/processor.hpp"
#include "../query/queryspec.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace calib::engine {

struct EngineOptions {
    /// Worker threads; 0 = hardware concurrency. 1 executes the same
    /// morsel/merge DAG on a one-worker pool (single-morsel inputs skip
    /// the pool entirely), so floating-point results are byte-identical
    /// for every thread count.
    std::size_t threads = 0;
    bool json_input     = false;
    /// Join each file's globals (e.g. mpi.rank) onto its records.
    bool with_globals = false;
    /// Target bytes per chunk when a single file is split into byte-range
    /// morsels (0: never split).
    std::size_t bytes_per_morsel = std::size_t(4) << 20;
    /// Early-flush a worker partial exceeding this many aggregation
    /// entries (0 disables).
    std::size_t max_partial_entries = 1u << 20;
    /// Feed the pipeline in columnar RecordBatch morsels (the batched hot
    /// path) instead of record-at-a-time. Output bytes are identical either
    /// way; the fuzz differential runner guards it.
    bool batched = true;
    /// Rows per RecordBatch; 0 = default_batch_size() (CALIB_BATCH_SIZE or
    /// 1024). Clamped to [1, 1<<20].
    std::size_t batch_size = 0;
    /// Aggregation memory budget in bytes applied to the root processor
    /// (partial aggregates sort-spill to a temp file beyond it; 0 =
    /// unbounded). The sentinel SIZE_MAX resolves to
    /// default_agg_memory_budget() (CALIB_AGG_MEM or unbounded).
    std::size_t agg_memory_budget = static_cast<std::size_t>(-1);
    /// Phase-2 merge strategy. Default resolves through
    /// default_merge_strategy() (CALIB_MERGE_STRATEGY or Adaptive); all
    /// strategies produce byte-identical output (see merge_strategy.hpp),
    /// so this is a performance knob, never a correctness one.
    MergeStrategy merge_strategy = MergeStrategy::Default;
    /// Radix partition count as a bit width (2^bits partitions), clamped
    /// to [1, 8]. 0 = default (4 bits = 16 partitions).
    unsigned merge_radix_bits = 0;
    /// Adaptive-selector thresholds; 0 = default_merge_tuning()
    /// (CALIB_MERGE_SMALL / CALIB_MERGE_RADIX_MIN or built-ins).
    std::size_t merge_small_entries = 0;
    std::size_t merge_radix_entries = 0;
};

/// Process-wide default rows-per-batch for batched execution: the last
/// set_default_batch_size() value, else CALIB_BATCH_SIZE, else 1024.
/// Always in [1, 1<<20].
std::size_t default_batch_size();
/// Override the process-wide default (0 restores the env/1024 fallback).
void set_default_batch_size(std::size_t rows);

/// Process-wide default aggregation memory budget in bytes (0 = unbounded):
/// the last set_default_agg_memory_budget() value, else CALIB_AGG_MEM.
std::size_t default_agg_memory_budget();
void set_default_agg_memory_budget(std::size_t bytes);

struct EngineStats {
    std::size_t threads           = 0; ///< workers actually used
    std::size_t morsels           = 0;
    std::size_t early_flushes     = 0;
    std::uint64_t early_flush_bytes = 0;
    /// Phase-2 strategy actually executed (Default = no merge phase ran,
    /// i.e. the single-morsel serial path).
    MergeStrategy merge_strategy = MergeStrategy::Default;
    /// Radix partition count (0 unless the radix strategy ran).
    std::size_t merge_partitions = 0;
    /// Phase-2 merge wall time in nanoseconds (0 on the serial path).
    std::uint64_t merge_ns = 0;
};

class ParallelQueryProcessor {
public:
    explicit ParallelQueryProcessor(QuerySpec spec, EngineOptions opts = {});

    /// Execute the query over \a files (single-shot). Returns the root
    /// processor, ready for result() / write().
    QueryProcessor& run(const std::vector<std::string>& files);

    QueryProcessor& processor() noexcept { return root_; }
    const EngineStats& stats() const noexcept { return stats_; }

private:
    void run_serial(const std::vector<std::string>& files);
    void run_parallel(const std::vector<Morsel>& morsels, std::size_t threads);

    EngineOptions opts_;
    AttributeRegistry registry_; // shared by all partials; before root_
    QueryProcessor root_;
    EngineStats stats_;
};

} // namespace calib::engine
