#include "morsel.hpp"

#include "../obs/metrics.hpp"

namespace calib::engine {

namespace {
obs::Counter engine_morsels("engine.morsels");
// record count per morsel; known up front for byte-range chunks (the
// planning scan counts 'R' lines per chunk as it finds the split points)
obs::Histogram engine_morsel_records("engine.morsel_records");
} // namespace

std::vector<Morsel> make_morsels(const std::vector<std::string>& files,
                                 const MorselOptions& opts) {
    std::vector<Morsel> morsels;

    if (opts.json_input) {
        for (const std::string& f : files)
            morsels.push_back({Morsel::Kind::JsonFile, f, 0, UINT64_MAX, 0, nullptr});
        engine_morsels.add(morsels.size());
        return morsels;
    }

    if (files.size() != 1) {
        for (const std::string& f : files)
            morsels.push_back({Morsel::Kind::CaliFile, f, 0, UINT64_MAX, 0, nullptr});
        engine_morsels.add(morsels.size());
        return morsels;
    }

    // single file: map it once and split into line-aligned byte ranges
    // (stdin and pipes cannot be planned twice — the source slurps them
    // into its fallback buffer, so chunked reads still work)
    const std::string& file = files.front();
    const std::size_t chunk_bytes =
        opts.bytes_per_morsel > 0 ? opts.bytes_per_morsel : SIZE_MAX;
    auto source = std::make_shared<const CaliFileSource>(file, chunk_bytes);

    if (source->chunks().size() <= 1) {
        // too small to split: a whole-file morsel (the serial path re-reads
        // the file; dropping the source unmaps it)
        morsels.push_back({Morsel::Kind::CaliFile, file, 0, UINT64_MAX, 0, nullptr});
        engine_morsels.add(1);
        engine_morsel_records.record(source->num_records());
        return morsels;
    }
    for (std::size_t i = 0; i < source->chunks().size(); ++i) {
        morsels.push_back({Morsel::Kind::CaliBytes, file, 0, UINT64_MAX, i, source});
        engine_morsel_records.record(source->chunks()[i].records);
    }
    engine_morsels.add(morsels.size());
    return morsels;
}

} // namespace calib::engine
