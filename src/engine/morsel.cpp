#include "morsel.hpp"

#include "../io/calireader.hpp"
#include "../obs/metrics.hpp"

namespace calib::engine {

namespace {
obs::Counter engine_morsels("engine.morsels");
// record count per morsel; only range morsels have a known size up front
obs::Histogram engine_morsel_records("engine.morsel_records");
} // namespace

std::vector<Morsel> make_morsels(const std::vector<std::string>& files,
                                 const MorselOptions& opts) {
    std::vector<Morsel> morsels;

    if (opts.json_input) {
        for (const std::string& f : files)
            morsels.push_back({Morsel::Kind::JsonFile, f, 0, UINT64_MAX});
        engine_morsels.add(morsels.size());
        return morsels;
    }

    if (files.size() != 1) {
        for (const std::string& f : files)
            morsels.push_back({Morsel::Kind::CaliFile, f, 0, UINT64_MAX});
        engine_morsels.add(morsels.size());
        return morsels;
    }

    // single file: split into record ranges when it is large enough to
    // matter; the pre-scan is a plain line count
    const std::string& file   = files.front();
    const std::uint64_t total = CaliReader::count_records(file);
    const std::uint64_t chunk = opts.records_per_morsel > 0 ? opts.records_per_morsel
                                                            : UINT64_MAX;
    if (total <= chunk) {
        morsels.push_back({Morsel::Kind::CaliFile, file, 0, UINT64_MAX});
        engine_morsels.add(1);
        engine_morsel_records.record(total);
        return morsels;
    }
    for (std::uint64_t begin = 0; begin < total; begin += chunk) {
        const std::uint64_t end = begin + chunk < total ? begin + chunk : total;
        morsels.push_back({Morsel::Kind::CaliRange, file, begin, end});
        engine_morsel_records.record(end - begin);
    }
    engine_morsels.add(morsels.size());
    return morsels;
}

} // namespace calib::engine
