// Trend analysis and the noise-aware regression gate.
//
// Dogfooding contract: every pass over history *records* goes through the
// CalQL engine (history_query), never a hand-rolled loop. The gate asks one
// query — per-(bench, metric, seq, commit) averages, ordered by seq — and
// all the arithmetic below operates on those few result rows: per-series
// medians, MAD, thresholds.
//
// The verdict model (per series, newest point = the run under test):
//
//   baseline  = median of the trailing window of *prior* points
//   sigma     = 1.4826 * MAD of that window   (robust sigma estimate)
//   threshold = max(k * sigma, rel_floor * |baseline|)
//   delta     = current - baseline
//
// A regression is a delta past threshold in the metric's bad direction
// (classify_metric, overridable). Noisy-but-flat series self-defend: their
// MAD inflates sigma, so honest scatter never trips the gate, while a
// genuine 2x step on a quiet series exceeds both terms. Series with fewer
// than min_samples baseline points are reported Insufficient and never
// fail the gate.
#pragma once

#include "history.hpp"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace calib::benchdiff {

/// Run one CalQL query over the history file through the parallel engine
/// and return the result rows. Throws std::runtime_error on parse or I/O
/// failure.
std::vector<RecordMap> history_query(const std::string& history_path,
                                     std::string_view calql,
                                     std::size_t threads = 1);

/// Sequence number for the next append segment: max(bd.seq) + 1, via
/// `AGGREGATE max(bd.seq)`; 0 for a missing or empty history.
std::uint64_t next_seq(const std::string& history_path);

/// Gate tuning; the defaults favour few false alarms on noisy CI hosts.
struct GateConfig {
    std::size_t window      = 20;   ///< trailing points in the baseline
    double k                = 4.0;  ///< MAD-sigma multiplier
    double rel_floor        = 0.05; ///< relative threshold floor (5%)
    std::size_t min_samples = 4;    ///< baseline points required to gate
};

/// One override-file entry: a glob over "bench/metric" plus the fields it
/// sets. All entries matching a series apply in file order.
struct Override {
    std::string pattern;
    std::optional<std::size_t> window;
    std::optional<double> k;
    std::optional<double> rel_floor;
    std::optional<std::size_t> min_samples;
    std::optional<Direction> direction;
    bool skip = false;
};

/// Match \a text against \a pattern where '*' spans any run of characters.
bool glob_match(std::string_view pattern, std::string_view text);

/// Parse an override file. Line format (see docs/BENCHDIFF.md):
///   <glob> [window=N] [k=F] [rel_floor=F] [min_samples=N]
///          [direction=higher|lower|untracked] [skip]
/// '#' starts a comment. Throws std::runtime_error with the line number
/// on malformed entries.
std::vector<Override> load_overrides(const std::string& path);

enum class Status {
    Ok,           ///< within threshold
    Regression,   ///< moved past threshold in the bad direction
    Improvement,  ///< moved past threshold in the good direction
    Insufficient, ///< fewer than min_samples baseline points
    Stale,        ///< series has no sample in the newest run
    Untracked,    ///< no direction (stored, never gated)
    Skipped       ///< disabled by an override
};

const char* status_name(Status s) noexcept;

/// Per-series verdict.
struct Verdict {
    std::string bench;
    std::string metric;
    Direction direction = Direction::Untracked;
    Status status       = Status::Ok;
    double current      = 0.0;
    double baseline     = 0.0; ///< trailing-window median
    double sigma        = 0.0; ///< 1.4826 * MAD
    double threshold    = 0.0;
    double delta        = 0.0; ///< current - baseline
    double ratio        = 0.0; ///< current / baseline (0 when undefined)
    std::size_t n_baseline = 0;
};

struct GateReport {
    std::vector<Verdict> verdicts; ///< sorted by bench, then metric
    std::string commit;            ///< commit id of the run under test
    std::uint64_t seq = 0;         ///< seq of the run under test
    std::size_t regressions  = 0;
    std::size_t improvements = 0;
    std::size_t gated        = 0; ///< series that reached the math

    bool failed() const noexcept { return regressions > 0; }
};

/// Evaluate the gate over the whole history. Throws like history_query;
/// an empty history yields an empty report.
GateReport run_gate(const std::string& history_path,
                    const GateConfig& defaults,
                    const std::vector<Override>& overrides,
                    std::size_t threads = 1);

/// Human-readable table. \a verbose includes Ok/Untracked/Stale rows.
void write_report_table(std::ostream& os, const GateReport& report,
                        bool verbose);

/// Machine-readable report: a flat JSON record array (re-queryable via
/// `cali-query --json-input`) of kind=verdict rows plus one kind=summary
/// row.
void write_report_json(std::ostream& os, const GateReport& report);

} // namespace calib::benchdiff
