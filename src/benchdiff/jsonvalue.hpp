// A minimal JSON *tree* parser for the benchdiff normalizer.
//
// The io/ JsonReader is deliberately restricted to flat record arrays (the
// query-pipeline input shape) and streams records without building a tree.
// Bench harnesses, however, emit small *nested* documents (BENCH_*.json:
// objects holding arrays of result objects), and normalizing those into
// history records requires walking the whole structure. This parser builds
// the tree for exactly that purpose — documents are a few KiB, so the
// allocation cost of a tree is irrelevant here.
//
// Supported: the full JSON value grammar (null/bool/number/string with
// escapes/array/object), which is a superset of what the benches emit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace calib::benchdiff {

class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /// Members in document order (bench docs rely on no particular order,
    /// but deterministic iteration keeps normalization stable).
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_number() const noexcept { return type == Type::Number; }
    bool is_string() const noexcept { return type == Type::String; }
    bool is_array() const noexcept { return type == Type::Array; }
    bool is_object() const noexcept { return type == Type::Object; }

    /// First member named \a key, or nullptr (objects only).
    const JsonValue* find(std::string_view key) const noexcept {
        for (const auto& [k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error with the byte position on malformed input.
JsonValue parse_json(std::string_view text);

} // namespace calib::benchdiff
